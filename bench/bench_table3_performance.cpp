// Table 3 reproduction: WebBench throughput/latency for the four server
// configurations under unsaturated (1 client) and saturated (15 clients)
// load, simulated by the calibrated DES (see perf/cost_model.h), printed
// side by side with the paper's measurements.
#include <cstdio>

#include "perf/webbench.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace nv;  // NOLINT
  using perf::ServerSetup;

  std::printf("=== Table 3: Performance Results (WebBench 5.0 model) ===\n");
  std::printf("paper hardware: 1.4 GHz Pentium 4, 384 MB, Fedora Core 5 (2.6.16)\n");
  std::printf("ours: discrete-event simulation calibrated on configuration 1\n\n");

  const perf::CostModel model;
  constexpr ServerSetup kSetups[] = {
      ServerSetup::kUnmodified,
      ServerSetup::kTransformed,
      ServerSetup::kTwoVariantAddress,
      ServerSetup::kTwoVariantUid,
  };

  for (const bool saturated : {false, true}) {
    std::printf("--- %s (%u client%s) ---\n", saturated ? "Saturated" : "Unsaturated",
                saturated ? 15u : 1u, saturated ? "s" : "");
    util::TextTable table;
    table.set_header({"Configuration", "Thr KB/s", "paper", "ratio", "Lat ms", "paper",
                      "ratio", "CPU util"});
    for (std::size_t c = 1; c <= 7; ++c) table.align_right(c);

    double base_thr = 0;
    double paper_base_thr = 0;
    for (const ServerSetup setup : kSetups) {
      perf::WorkloadConfig workload;
      workload.clients = saturated ? 15 : 1;
      workload.duration = 30 * sim::kSecond;
      const auto result = perf::run_webbench(setup, model, workload);
      const auto paper = perf::paper_table3(setup, saturated);
      if (setup == ServerSetup::kUnmodified) {
        base_thr = result.throughput_kbps;
        paper_base_thr = paper.throughput_kbps;
      }
      table.add_row({std::string(perf::to_string(setup)),
                     util::format("%.0f", result.throughput_kbps),
                     util::format("%.0f", paper.throughput_kbps),
                     util::format("%.3f", result.throughput_kbps / paper.throughput_kbps),
                     util::format("%.2f", result.latency_ms),
                     util::format("%.2f", paper.latency_ms),
                     util::format("%.3f", result.latency_ms / paper.latency_ms),
                     util::format("%.2f", result.cpu_utilization)});
      (void)base_thr;
      (void)paper_base_thr;
    }
    std::printf("%s", table.render().c_str());

    // The shape claims the paper makes about this load level.
    perf::WorkloadConfig workload;
    workload.clients = saturated ? 15 : 1;
    workload.duration = 30 * sim::kSecond;
    const auto cfg1 = perf::run_webbench(ServerSetup::kUnmodified, model, workload);
    const auto cfg3 = perf::run_webbench(ServerSetup::kTwoVariantAddress, model, workload);
    const auto cfg4 = perf::run_webbench(ServerSetup::kTwoVariantUid, model, workload);
    std::printf("2-variant throughput drop vs baseline: %.1f%% (paper: %s)\n",
                100.0 * (1.0 - cfg3.throughput_kbps / cfg1.throughput_kbps),
                saturated ? "56%" : "12.2%");
    std::printf("UID variation extra cost vs config 3:  %.1f%% (paper: %s)\n\n",
                100.0 * (1.0 - cfg4.throughput_kbps / cfg3.throughput_kbps),
                saturated ? "4.5%" : "1%");
  }

  std::printf("Conclusion (paper, reproduced): redundant execution dominates the cost;\n"
              "additional variations compose at marginal overhead. I/O-bound services\n"
              "pay little; CPU-bound services pay ~Nx compute.\n");
  return 0;
}

// Table 1 reproduction: the four variations' reexpression functions, with
// machine-checked inverse and disjointedness properties plus micro-costs.
#include <chrono>
#include <cstdio>

#include "core/reexpression.h"
#include "util/strings.h"
#include "util/table.h"
#include "variants/address_partitioning.h"
#include "variants/instruction_tagging.h"
#include "variants/uid_variation.h"

namespace {

using namespace nv;  // NOLINT

/// Nanoseconds per reexpress+invert round trip (coarse micro-benchmark).
template <typename Fn>
double nanos_per_op(Fn&& fn, int iterations = 2'000'000) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) fn(static_cast<std::uint32_t>(i));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::nano>(elapsed).count() / iterations;
}

}  // namespace

int main() {
  std::printf("=== Table 1: Reexpression Functions ===\n");
  std::printf("(paper: Cox et al. [16] rows 1,3; Bruschi et al. [9] row 2; this paper row 4)\n\n");

  const auto uid_samples = core::uid_property_samples(200000);
  const auto addr_samples = core::address_property_samples(200000);

  util::TextTable table;
  table.set_header({"Variation", "Target Type", "R0", "R1", "inverse", "disjoint",
                    "ns/op"});

  // Row 1: address space partitioning.
  {
    const core::AddressOffset r0(0);
    const core::AddressOffset r1(0x80000000ULL);
    const bool inverse = core::verify_inverse<std::uint64_t>(r0, addr_samples) &&
                         core::verify_inverse<std::uint64_t>(r1, addr_samples);
    const bool disjoint =
        core::disjointedness_violations<std::uint64_t>(r0, r1, addr_samples).empty();
    const double ns = nanos_per_op([&](std::uint32_t x) { return r1.invert(r1.reexpress(x)); });
    table.add_row({"Address Space Partitioning [16]", "Address", "R0(a)=a",
                   "R1(a)=a+0x80000000", inverse ? "OK" : "FAIL", disjoint ? "OK" : "FAIL",
                   util::format("%.2f", ns)});
  }

  // Row 2: extended partitioning (per-variant offset).
  {
    const variants::ExtendedAddressPartitioning ext(0x80000000ULL, 1ULL << 20, 42);
    const auto r1 = ext.reexpression(1);
    const core::AddressOffset r0(0);
    const bool inverse = core::verify_inverse<std::uint64_t>(r1, addr_samples);
    const bool disjoint =
        core::disjointedness_violations<std::uint64_t>(r0, r1, addr_samples).empty();
    const double ns = nanos_per_op([&](std::uint32_t x) { return r1.invert(r1.reexpress(x)); });
    table.add_row({"Extended Address Partitioning [9]", "Address", "R0(a)=a",
                   "R1(a)=a+0x80000000+offset", inverse ? "OK" : "FAIL",
                   disjoint ? "OK" : "FAIL", util::format("%.2f", ns)});
  }

  // Row 3: instruction set tagging.
  {
    const core::InstructionTag r0(0xA0);
    const core::InstructionTag r1(0xA1);
    bool inverse = true;
    bool disjoint = true;
    for (std::uint8_t op = 0; op < 16; ++op) {
      const std::vector<std::uint8_t> inst = {op, 0x01, 0x02};
      inverse = inverse && r0.invert(r0.reexpress(inst)) == inst;
      // Disjointedness: a unit valid for one variant traps in the other.
      const auto tagged = r0.reexpress(inst);
      try {
        (void)r1.invert(tagged);
        disjoint = false;
      } catch (const std::exception&) {
      }
    }
    table.add_row({"Instruction Set Tagging [16]", "Instruction", "R0(i)=0xa0||i",
                   "R1(i)=0xa1||i", inverse ? "OK" : "FAIL", disjoint ? "OK" : "FAIL", "-"});
  }

  // Row 4: UID variation (this paper).
  {
    const core::Identity<os::uid_t> r0;
    const core::XorMask r1(0x7FFFFFFF);
    const bool inverse = core::verify_inverse<os::uid_t>(r0, uid_samples) &&
                         core::verify_inverse<os::uid_t>(r1, uid_samples);
    const bool disjoint =
        core::disjointedness_violations<os::uid_t>(r0, r1, uid_samples).empty();
    const double ns = nanos_per_op([&](std::uint32_t x) { return r1.invert(r1.reexpress(x)); });
    table.add_row({"UID Variation (this paper)", "UID", "R0(u)=u", "R1(u)=u XOR 0x7FFFFFFF",
                   inverse ? "OK" : "FAIL", disjoint ? "OK" : "FAIL",
                   util::format("%.2f", ns)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Properties checked on %zu structured+random UID samples and %zu address samples.\n",
              uid_samples.size(), addr_samples.size());
  std::printf("Closed form cross-check: XOR masks are disjoint iff they differ -> %s\n",
              core::xor_masks_disjoint(0, 0x7FFFFFFF) ? "holds" : "VIOLATED");
  return 0;
}

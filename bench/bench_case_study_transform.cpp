// §4 case-study reproduction: run the automated UID transformation over the
// mini-Apache source model and regenerate the 73-changes accounting.
#include <cstdio>

#include "transform/analysis.h"
#include "transform/mini_apache.h"
#include "transform/parser.h"
#include "transform/printer.h"
#include "transform/transform_pass.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace nv;            // NOLINT
  using namespace nv::transform; // NOLINT

  std::printf("=== Apache Case Study: transformation change accounting (§4) ===\n\n");

  Program program = parse(mini_apache_source());
  const AnalysisResult analysis = analyze(program);
  if (!analysis.ok()) {
    std::printf("analysis FAILED: %s\n", analysis.errors.front().c_str());
    return 1;
  }

  std::printf("functions analyzed: %zu\n", program.functions.size());
  std::printf("UID-typed variables inferred from dataflow (Splint-style, §4):\n");
  for (const auto& var : analysis.inferred_uid_vars) {
    std::printf("  %s (declared int, used as uid_t)\n", var.c_str());
  }
  std::printf("\n");

  TransformStats stats;
  TransformOptions options;  // mask 0x7FFFFFFF, detection syscalls
  const Program variant1 = transform_uid(program, options, &stats);

  util::TextTable table;
  table.set_header({"Change category", "ours", "paper (Apache)"});
  table.align_right(1);
  table.align_right(2);
  table.add_row({"Reexpression of constant UID values", std::to_string(stats.constants_reexpressed),
                 std::to_string(CaseStudyCounts::kConstants)});
  table.add_row({"uid_value insertions (single UID uses)",
                 std::to_string(stats.uid_value_insertions),
                 std::to_string(CaseStudyCounts::kUidValue)});
  table.add_row({"cc_* comparison rewrites", std::to_string(stats.cc_rewrites),
                 std::to_string(CaseStudyCounts::kComparisons)});
  table.add_row({"cond_chk conditional checks", std::to_string(stats.cond_chk_insertions),
                 std::to_string(CaseStudyCounts::kCondChk)});
  table.add_row({"TOTAL", std::to_string(stats.total()),
                 std::to_string(CaseStudyCounts::kTotal)});
  std::printf("%s\n", table.render().c_str());

  // The user-space alternative (§3.3/§3.5): reversed inequalities instead of
  // cc_* syscalls.
  TransformStats user_stats;
  TransformOptions user_options;
  user_options.detection = DetectionMode::kUserSpaceReversed;
  (void)transform_uid(program, user_options, &user_stats);
  std::printf("user-space alternative: %d inequality operators logically reversed "
              "(variant instruction streams diverge — the drawback §3.5 notes)\n\n",
              user_stats.inequalities_reversed);

  // A taste of the output: the privilege-drop function, before and after.
  const Function* before = program.find("escalate");
  const Function* after = variant1.find("escalate");
  if (before != nullptr && after != nullptr) {
    Program single_before;
    single_before.functions.push_back(before->clone());
    Program single_after;
    single_after.functions.push_back(after->clone());
    std::printf("--- original ---\n%s", print(single_before).c_str());
    std::printf("--- transformed for variant 1 ---\n%s", print(single_after).c_str());
  }
  return 0;
}

// Table 2 reproduction: the detection system calls — semantics demonstrated
// live on a 2-variant system, with per-call syscall-round costs.
#include <cstdio>

#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "util/strings.h"
#include "util/table.h"
#include "variants/registry.h"

namespace {

using namespace nv;  // NOLINT

class DetectionGuest final : public guest::GuestProgram {
 public:
  void run(guest::GuestContext& ctx) override {
    const os::uid_t root = ctx.uid_const(0);
    const os::uid_t alice = ctx.uid_const(1000);
    // uid_value: returns its argument after the cross-variant check.
    (void)ctx.uid_value(alice);
    // cond_chk: both variants on the same path.
    (void)ctx.cond_chk(true);
    (void)ctx.cond_chk(false);
    // cc_*: evaluated on canonical values with the original operator.
    (void)ctx.cc(vkernel::CcOp::kEq, root, root);
    (void)ctx.cc(vkernel::CcOp::kNeq, root, alice);
    (void)ctx.cc(vkernel::CcOp::kLt, root, alice);
    (void)ctx.cc(vkernel::CcOp::kLeq, alice, alice);
    (void)ctx.cc(vkernel::CcOp::kGt, alice, root);
    (void)ctx.cc(vkernel::CcOp::kGeq, alice, alice);
    ctx.exit(0);
  }
};

class InjectedGuest final : public guest::GuestProgram {
 public:
  void run(guest::GuestContext& ctx) override {
    (void)ctx.uid_value(0);  // attacker-injected concrete value
    ctx.exit(0);
  }
};

std::unique_ptr<core::NVariantSystem> make_system() {
  return core::NVariantSystem::Builder()
      .rendezvous_timeout(std::chrono::milliseconds(1000))
      .variation(variants::make_builtin("uid-xor"))
      .build();
}

}  // namespace

int main() {
  std::printf("=== Table 2: Detection System Calls ===\n\n");

  util::TextTable table;
  table.set_header({"Function Signature", "Description", "Demonstrated"});
  table.add_row({"uid_t uid_value(uid_t)",
                 "Compares parameter value (across variants), returns passed value",
                 "agree: pass / injected 0x0: ALARM"});
  table.add_row({"bool cond_chk(bool)", "Checks conditional value is same between variants",
                 "agree: pass / diverge: ALARM"});
  table.add_row({"bool cc_eq/neq/lt/leq/gt/geq(uid_t, uid_t)",
                 "Compares parameters, returns truth value for comparison",
                 "canonical evaluation, identical instruction streams"});

  // Live demonstration on a 2-variant UID system.
  {
    const auto system = make_system();
    const auto root = os::Credentials::root();
    (void)system->fs().mkdir_p("/etc", root);
    (void)system->fs().write_file("/etc/passwd", "root:x:0:0:r:/:/bin/sh\n", root);
    (void)system->fs().write_file("/etc/group", "root:x:0:\n", root);
    DetectionGuest guest;
    const auto report = guest::run_nvariant(*system, guest);
    std::printf("%s\n", table.render().c_str());
    std::printf("normal run: %llu syscall rounds, %llu detection checks, alarms: %s\n",
                static_cast<unsigned long long>(report.syscall_rounds),
                static_cast<unsigned long long>(system->monitor().detection_checks()),
                report.attack_detected ? "YES (unexpected!)" : "none");
  }
  {
    const auto system = make_system();
    const auto root = os::Credentials::root();
    (void)system->fs().mkdir_p("/etc", root);
    (void)system->fs().write_file("/etc/passwd", "root:x:0:0:r:/:/bin/sh\n", root);
    (void)system->fs().write_file("/etc/group", "root:x:0:\n", root);
    InjectedGuest guest;
    const auto report = guest::run_nvariant(*system, guest);
    std::printf("injected run: uid_value(0x0) -> %s\n",
                report.alarm ? report.alarm->describe().c_str() : "no alarm (unexpected!)");
  }

  // Per-call cost in syscall rounds (the deployment-relevant metric: each
  // detection call is one extra rendezvous, §5 "the costs of these extra
  // system calls appear to be minor").
  std::printf("\nper-request cost model: 1 cc_* syscall per request (config 2), "
              "uid_value+cc on the escalation path (config 4)\n");
  return 0;
}

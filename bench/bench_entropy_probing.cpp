// §2.1's secrets argument quantified: probing attacks against secret-based
// randomization (ASR per Shacham et al. [37], ISR per Sovarel et al. [38])
// versus the N-variant framework's secretless disjointedness.
#include <cstdio>

#include "baseline/secret_defense.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace nv;  // NOLINT
  using baseline::SecretRandomization;

  std::printf("=== Secret-based randomization vs probing attacks ===\n");
  std::printf("(average probes to full key recovery over 50 random keys per row)\n\n");

  util::TextTable table;
  table.set_header({"Entropy", "brute force (avg)", "theory 2^(k-1)", "incremental 8-bit (avg)",
                    "theory (k/8)*128", "N-variant evasion prob."});
  for (std::size_t c = 1; c <= 5; ++c) table.align_right(c);

  for (const unsigned bits : {8u, 12u, 16u, 20u, 24u}) {
    util::RunningStats brute;
    util::RunningStats incremental;
    for (std::uint64_t trial = 0; trial < 50; ++trial) {
      const SecretRandomization defense(bits, 1000 + trial);
      const auto b = defense.brute_force(1ULL << bits);
      const auto i = defense.incremental(8, 1ULL << bits);
      if (b.recovered) brute.add(static_cast<double>(b.probes));
      if (i.recovered) incremental.add(static_cast<double>(i.probes));
    }
    table.add_row({util::format("%u bits", bits),
                   util::format("%.0f", brute.mean()),
                   util::format("%.0f", baseline::expected_brute_force_probes(bits)),
                   util::format("%.0f", incremental.mean()),
                   util::format("%.0f", baseline::expected_incremental_probes(bits, 8)),
                   util::format("%.1f", baseline::nvariant_evasion_probability(1ULL << bits))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("reading the table:\n"
              "  - incremental probing collapses exponential key spaces to linear cost —\n"
              "    how real ASR (16-28 bits on 32-bit Linux) and ISR keys fall [37][38];\n"
              "  - the N-variant column is structurally zero: there is NO key; any\n"
              "    injected value satisfies at most one variant's interpretation\n"
              "    (disjointedness), so detection is deterministic, not probabilistic.\n"
              "  - this is the paper's core claim: high-assurance arguments from\n"
              "    low-entropy, PUBLIC transformations (§1, §2.1).\n");
  return 0;
}

// Fleet throughput: jobs/s as the worker pool widens (1..hardware threads)
// and as the per-session variant count N grows, plus what work stealing buys
// benign traffic while attacked lanes respawn. The workload is the
// socket-free uid-churn guest, so the numbers measure the MVEE + fleet
// machinery (rendezvous rounds, dispatch, quarantine/respawn), not simulated
// network latency.
// `--trace-ab` runs ONLY the tracing A/B (also printed on every full run):
// the same workload with no recorder attached, with a recorder attached but
// disabled, and with default-sampling tracing enabled — the observability
// layer's "cheap when off, affordable when on" claim, measured.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fleet/fleet.h"
#include "fleet/jobs.h"
#include "obs/trace.h"
#include "util/mutex.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nv;  // NOLINT

namespace {

struct BenchResult {
  double jobs_per_sec = 0;
  double p50_us = 0;
  double p95_us = 0;
  std::uint64_t syscall_rounds = 0;
};

BenchResult run_fleet(unsigned pool_size, unsigned n_variants, unsigned jobs,
                      unsigned rounds_per_job,
                      std::shared_ptr<obs::TraceRecorder> trace = nullptr) {
  fleet::FleetConfig config;
  config.spec.n_variants = n_variants;
  config.spec.variations = {"uid-xor"};
  config.pool_size = pool_size;
  config.queue_capacity = jobs;
  config.trace = std::move(trace);
  fleet::VariantFleet fleet(config);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<fleet::JobOutcome>> futures;
  futures.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i) {
    futures.push_back(fleet.submit(fleet::jobs::uid_churn(rounds_per_job)));
  }
  for (auto& future : futures) (void)future.get();
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);

  const auto snap = fleet.telemetry().snapshot();
  BenchResult result;
  result.jobs_per_sec = static_cast<double>(jobs) / elapsed.count();
  result.p50_us = snap.latency_p50_us;
  result.p95_us = snap.latency_p95_us;
  result.syscall_rounds = snap.syscall_rounds;
  return result;
}

/// END-TO-END (submit -> completion) benign p95 while a trickle of attacks
/// quarantines sessions — end-to-end, because the damage a stalled lane does
/// is QUEUE time, which JobOutcome::latency (execution only) cannot see. The
/// respawn is padded to `respawn_cost` (modelling a realistic re-diversify +
/// spawn cost; the in-process factory alone is microseconds): with stealing
/// OFF the respawning lane's queued benign jobs eat that pause, with
/// stealing ON the surviving lanes absorb the backlog.
double benign_p95_under_attack(unsigned pool_size, unsigned benign_jobs, unsigned attacks,
                               bool work_stealing, std::chrono::milliseconds respawn_cost) {
  fleet::FleetConfig config;
  config.spec.n_variants = 2;
  config.spec.variations = {"uid-xor"};
  config.pool_size = pool_size;
  config.queue_capacity = benign_jobs + attacks;
  config.seed = 0xBE7C;
  config.work_stealing = work_stealing;
  config.respawn_hook = [respawn_cost](unsigned) { std::this_thread::sleep_for(respawn_cost); };
  fleet::VariantFleet fleet(config);

  // Each benign job stamps its own completion on the worker thread, so the
  // measurement is submit -> finish regardless of the order we harvest
  // futures in.
  auto latencies = std::make_shared<util::Samples>();
  auto latencies_mutex = std::make_shared<util::Mutex>();
  auto timed_churn = [&latencies, &latencies_mutex] {
    const auto submitted = std::chrono::steady_clock::now();
    fleet::FleetJob inner = fleet::jobs::uid_churn(100);
    return [latencies, latencies_mutex, submitted,
            inner = std::move(inner)](core::NVariantSystem& system) {
      core::RunReport report = inner(system);
      const double end_to_end_us =
          std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - submitted)
              .count();
      const util::MutexLock lock(*latencies_mutex);
      latencies->add(end_to_end_us);
      return report;
    };
  };

  std::vector<std::future<fleet::JobOutcome>> futures;
  // Interleave: one attack ahead of each slice of benign traffic, so benign
  // jobs queue BEHIND the lanes that are about to quarantine.
  const unsigned slice = attacks == 0 ? benign_jobs : benign_jobs / attacks;
  unsigned attacks_sent = 0;
  for (unsigned i = 0; i < benign_jobs; ++i) {
    if (attacks > 0 && slice > 0 && i % slice == 0 && attacks_sent < attacks) {
      futures.push_back(fleet.submit([](core::NVariantSystem&) -> core::RunReport {
        throw std::runtime_error("bench attack");
      }));
      ++attacks_sent;
    }
    futures.push_back(fleet.submit(timed_churn()));
  }
  for (auto& future : futures) (void)future.get();
  return latencies->percentile(95.0);
}

/// The tracing A/B: identical workload under the three recorder states the
/// cost model promises are cheap (docs/TRACING.md). States are interleaved
/// within each repetition (so machine drift hits all three equally) and the
/// verdict uses each state's BEST run — scheduler noise only ever adds.
void trace_ab(unsigned pool, unsigned jobs, unsigned rounds) {
  std::printf("--- tracing A/B: off vs attached-but-disabled vs default sampling ---\n\n");
  constexpr int kReps = 9;
  struct State {
    const char* label;
    std::shared_ptr<obs::TraceRecorder> (*make)();
  };
  const State states[] = {
      {"no recorder (null pointer)", [] { return std::shared_ptr<obs::TraceRecorder>(); }},
      {"recorder attached, enabled=false",
       [] {
         obs::TraceConfig config;
         config.enabled = false;
         return std::make_shared<obs::TraceRecorder>(config);
       }},
      {"tracing ON, default sampling",
       [] { return std::make_shared<obs::TraceRecorder>(); }},
  };

  double p95[3];
  double throughput[3];
  std::fill(std::begin(p95), std::end(p95), 0.0);
  std::fill(std::begin(throughput), std::end(throughput), 0.0);
  (void)run_fleet(pool, 2, jobs, rounds);  // warm caches/allocator once
  for (int rep = 0; rep < kReps; ++rep) {
    for (int i = 0; i < 3; ++i) {
      // Rotate which state runs first each rep: CPU frequency/thermal state
      // correlates with position in the triple, and a fixed order would bill
      // that drift to one state.
      const int s = (i + rep) % 3;
      const BenchResult r = run_fleet(pool, 2, jobs, rounds, states[s].make());
      p95[s] = p95[s] == 0.0 ? r.p95_us : std::min(p95[s], r.p95_us);
      throughput[s] = std::max(throughput[s], r.jobs_per_sec);
    }
  }

  util::TextTable table;
  table.set_header({"state", "jobs/s", "job p95 us", "p95 vs untraced"});
  for (std::size_t c = 1; c <= 3; ++c) table.align_right(c);
  for (int s = 0; s < 3; ++s) {
    table.add_row({states[s].label, util::format("%.0f", throughput[s]),
                   util::format("%.0f", p95[s]), util::format("%.2fx", p95[s] / p95[0])});
  }
  std::printf("%s\n", table.render().c_str());
  const double overhead = p95[2] / p95[0] - 1.0;
  std::printf("reading: a null recorder never enters the record path and enabled=false is\n"
              "two relaxed loads per event site. Default sampling (1-in-16 rendezvous\n"
              "rounds, every per-job event) costs %.1f%% on job p95 (target: <= 5%%,\n"
              "best of %d interleaved runs per state).\n",
              overhead * 100.0, kReps);
}

}  // namespace

int main(int argc, char** argv) {
  const bool ab_only =
      argc > 1 && std::any_of(argv + 1, argv + argc,
                              [](const char* arg) { return std::strcmp(arg, "--trace-ab") == 0; });
  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  // Sweep at least {1, 2} so the scaling table is informative even on a
  // single-core box (where it honestly reports ~1x).
  const unsigned max_pool = std::max(2U, std::min(hw, 8U));
  constexpr unsigned kJobs = 48;
  constexpr unsigned kRounds = 100;

  std::printf("=== fleet throughput (uid-churn jobs, %u jobs x %u rounds) ===\n\n", kJobs,
              kRounds);

  if (ab_only) {
    trace_ab(std::min(max_pool, 4U), kJobs, kRounds);
    return 0;
  }

  std::printf("--- scaling the worker pool (N=2 variants per session) ---\n\n");
  {
    util::TextTable table;
    table.set_header({"pool", "jobs/s", "speedup", "job p50 us", "job p95 us"});
    for (std::size_t c = 1; c <= 4; ++c) table.align_right(c);
    double base = 0;
    for (unsigned pool = 1; pool <= max_pool; pool *= 2) {
      const BenchResult r = run_fleet(pool, 2, kJobs, kRounds);
      if (base == 0) base = r.jobs_per_sec;
      table.add_row({std::to_string(pool), util::format("%.0f", r.jobs_per_sec),
                     util::format("%.2fx", r.jobs_per_sec / base),
                     util::format("%.0f", r.p50_us), util::format("%.0f", r.p95_us)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("reading: sessions are independent, so throughput scales with the pool\n"
                "until the machine runs out of cores (each session itself burns N threads).\n\n");
  }

  std::printf("--- scaling N per session (pool of %u) ---\n\n", std::min(max_pool, 4U));
  {
    util::TextTable table;
    table.set_header({"N", "jobs/s", "vs N=2", "syscall rounds", "job p50 us"});
    for (std::size_t c = 1; c <= 4; ++c) table.align_right(c);
    double base = 0;
    for (unsigned n = 2; n <= 4; ++n) {
      const BenchResult r = run_fleet(std::min(max_pool, 4U), n, kJobs, kRounds);
      if (base == 0) base = r.jobs_per_sec;
      table.add_row({std::to_string(n), util::format("%.0f", r.jobs_per_sec),
                     util::format("%.2fx", r.jobs_per_sec / base),
                     std::to_string(r.syscall_rounds), util::format("%.0f", r.p50_us)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("reading: widening N adds redundant compute and a wider rendezvous per\n"
                "syscall — the paper's N-cost, now measured at fleet scale.\n\n");
  }

  std::printf("--- benign p95 under attack: work stealing on vs off ---\n\n");
  {
    const unsigned pool = std::min(max_pool, 4U);
    constexpr unsigned kBenign = 48;
    constexpr unsigned kAttacks = 6;
    const auto kRespawnCost = std::chrono::milliseconds(20);

    const double baseline = benign_p95_under_attack(pool, kBenign, 0, true, kRespawnCost);
    const double stealing = benign_p95_under_attack(pool, kBenign, kAttacks, true, kRespawnCost);
    const double affinity = benign_p95_under_attack(pool, kBenign, kAttacks, false, kRespawnCost);

    util::TextTable table;
    table.set_header({"scenario", "benign p95 us", "vs no-attack baseline"});
    for (std::size_t c = 1; c <= 2; ++c) table.align_right(c);
    table.add_row({"no attacks (baseline)", util::format("%.0f", baseline), "1.00x"});
    table.add_row({util::format("%u attacks, stealing ON", kAttacks),
                   util::format("%.0f", stealing), util::format("%.2fx", stealing / baseline)});
    table.add_row({util::format("%u attacks, stealing OFF", kAttacks),
                   util::format("%.0f", affinity), util::format("%.2fx", affinity / baseline)});
    std::printf("%s\n", table.render().c_str());
    std::printf("reading: each attack pins its lane for a %lld ms respawn. With stealing the\n"
                "surviving lanes absorb the stalled backlog and benign p95 stays near the\n"
                "no-attack baseline (target: within 2x); with strict affinity every benign\n"
                "job queued behind a quarantined session eats the full respawn pause.\n",
                static_cast<long long>(kRespawnCost.count()));
  }

  std::printf("\n");
  trace_ab(std::min(max_pool, 4U), kJobs, kRounds);
  return 0;
}

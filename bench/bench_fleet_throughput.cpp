// Fleet throughput: jobs/s as the worker pool widens (1..hardware threads)
// and as the per-session variant count N grows. The workload is the
// socket-free uid-churn guest, so the numbers measure the MVEE + fleet
// machinery (rendezvous rounds, dispatch, respawn-free steady state), not
// simulated network latency.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "fleet/fleet.h"
#include "fleet/jobs.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nv;  // NOLINT

namespace {

struct BenchResult {
  double jobs_per_sec = 0;
  double p50_us = 0;
  double p95_us = 0;
  std::uint64_t syscall_rounds = 0;
};

BenchResult run_fleet(unsigned pool_size, unsigned n_variants, unsigned jobs,
                      unsigned rounds_per_job) {
  fleet::FleetConfig config;
  config.spec.n_variants = n_variants;
  config.spec.variations = {"uid-xor"};
  config.pool_size = pool_size;
  config.queue_capacity = jobs;
  fleet::VariantFleet fleet(config);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<fleet::JobOutcome>> futures;
  futures.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i) {
    futures.push_back(fleet.submit(fleet::jobs::uid_churn(rounds_per_job)));
  }
  for (auto& future : futures) (void)future.get();
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);

  const auto snap = fleet.telemetry().snapshot();
  BenchResult result;
  result.jobs_per_sec = static_cast<double>(jobs) / elapsed.count();
  result.p50_us = snap.latency_p50_us;
  result.p95_us = snap.latency_p95_us;
  result.syscall_rounds = snap.syscall_rounds;
  return result;
}

}  // namespace

int main() {
  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  // Sweep at least {1, 2} so the scaling table is informative even on a
  // single-core box (where it honestly reports ~1x).
  const unsigned max_pool = std::max(2U, std::min(hw, 8U));
  constexpr unsigned kJobs = 48;
  constexpr unsigned kRounds = 100;

  std::printf("=== fleet throughput (uid-churn jobs, %u jobs x %u rounds) ===\n\n", kJobs,
              kRounds);

  std::printf("--- scaling the worker pool (N=2 variants per session) ---\n\n");
  {
    util::TextTable table;
    table.set_header({"pool", "jobs/s", "speedup", "job p50 us", "job p95 us"});
    for (std::size_t c = 1; c <= 4; ++c) table.align_right(c);
    double base = 0;
    for (unsigned pool = 1; pool <= max_pool; pool *= 2) {
      const BenchResult r = run_fleet(pool, 2, kJobs, kRounds);
      if (base == 0) base = r.jobs_per_sec;
      table.add_row({std::to_string(pool), util::format("%.0f", r.jobs_per_sec),
                     util::format("%.2fx", r.jobs_per_sec / base),
                     util::format("%.0f", r.p50_us), util::format("%.0f", r.p95_us)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("reading: sessions are independent, so throughput scales with the pool\n"
                "until the machine runs out of cores (each session itself burns N threads).\n\n");
  }

  std::printf("--- scaling N per session (pool of %u) ---\n\n", std::min(max_pool, 4U));
  {
    util::TextTable table;
    table.set_header({"N", "jobs/s", "vs N=2", "syscall rounds", "job p50 us"});
    for (std::size_t c = 1; c <= 4; ++c) table.align_right(c);
    double base = 0;
    for (unsigned n = 2; n <= 4; ++n) {
      const BenchResult r = run_fleet(std::min(max_pool, 4U), n, kJobs, kRounds);
      if (base == 0) base = r.jobs_per_sec;
      table.add_row({std::to_string(n), util::format("%.0f", r.jobs_per_sec),
                     util::format("%.2fx", r.jobs_per_sec / base),
                     std::to_string(r.syscall_rounds), util::format("%.0f", r.p50_us)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("reading: widening N adds redundant compute and a wider rendezvous per\n"
                "syscall — the paper's N-cost, now measured at fleet scale.\n");
  }
  return 0;
}

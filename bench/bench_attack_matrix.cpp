// The security evaluation: attack x defense outcome matrix — the executable
// form of Figures 1-2 and the §2.3/§3.2 detection arguments — plus the §6
// output-voting comparison.
#include <cstdio>

#include "attack/attack.h"
#include "baseline/output_voting.h"
#include "util/table.h"

int main() {
  using namespace nv;  // NOLINT
  using attack::AttackKind;
  using attack::DefenseKind;
  using attack::Outcome;

  std::printf("=== Attack x Defense matrix (every cell executed live) ===\n\n");

  constexpr AttackKind kAttacks[] = {
      AttackKind::kUidFullWord,      AttackKind::kUidLowByte,
      AttackKind::kUidHighBitFlip,   AttackKind::kAddressInjection,
      AttackKind::kPointerLowBytes,  AttackKind::kCodeInjection,
      AttackKind::kLinearOverrun,
  };
  constexpr DefenseKind kDefenses[] = {
      DefenseKind::kSingleProcess,        DefenseKind::kDualIdentical,
      DefenseKind::kAddressPartitioning,  DefenseKind::kExtendedPartitioning,
      DefenseKind::kInstructionTagging,   DefenseKind::kUidVariation,
      DefenseKind::kUidPlusAddress,       DefenseKind::kStackReversal,
  };

  util::TextTable table;
  {
    std::vector<std::string> header = {"attack \\ defense"};
    for (const auto defense : kDefenses) header.emplace_back(attack::to_string(defense));
    table.set_header(std::move(header));
  }

  int cells = 0;
  int agreements = 0;
  for (const auto atk : kAttacks) {
    std::vector<std::string> row = {std::string(attack::to_string(atk))};
    for (const auto defense : kDefenses) {
      const Outcome outcome = attack::run_attack(atk, defense);
      const Outcome predicted = attack::expected_outcome(atk, defense);
      ++cells;
      if (outcome == predicted) ++agreements;
      std::string cell{attack::to_string(outcome)};
      if (outcome != predicted) cell += " (!)";
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("agreement with the paper's predicted outcomes: %d/%d cells\n\n", agreements,
              cells);

  std::printf("key observations (paper sections in parentheses):\n"
              "  - redundancy without diversity stops nothing (2-variant-identical column)\n"
              "  - each variation covers exactly its attack class (Table 1 rows)\n"
              "  - uid-high-bit-flip escapes detection: the 0x7FFFFFFF mask leaves bit 31\n"
              "    unflipped (§3.2) — but yields no usable identity either\n"
              "  - pointer-low-bytes beats plain partitioning, extended closes it (§2.3)\n"
              "  - variations compose: uid+address covers both classes (§4)\n"
              "  - stack reversal (Franz [20], extension) catches linear overruns but\n"
              "    not targeted writes — diversity must match the attack class\n\n");

  // §6: output-voting comparators miss the UID exploit entirely.
  std::printf("=== Output-voting baselines vs the UID exploit (§6) ===\n\n");
  using baseline::OutputVotingMonitor;
  using baseline::ServedOutput;
  using baseline::VotingMode;
  const ServedOutput page_from_compromised{200, "<html><body>It works!</body></html>"};
  const ServedOutput page_from_healthy{200, "<html><body>It works!</body></html>"};
  util::TextTable voting;
  voting.set_header({"Monitor", "UID exploit (pages unperturbed)", "N-variant monitor"});
  for (const VotingMode mode : {VotingMode::kStatusCodes, VotingMode::kFullResponse}) {
    const OutputVotingMonitor monitor(mode);
    voting.add_row({std::string(to_string(mode)),
                    monitor.detects(page_from_compromised, page_from_healthy)
                        ? "detected"
                        : "MISSED",
                    "detected (uid_value divergence)"});
  }
  std::printf("%s", voting.render().c_str());
  return 0;
}

// Ablation (beyond the paper's tables, motivated by its discussion):
//   (a) cost of scaling the variant count N on one core vs N cores — the §4
//       remark that "multiprocessors may alleviate some of the problem";
//   (b) where the 2-variant overhead lives: redundant compute vs rendezvous
//       vs detection syscalls (decomposing configuration 4's cost).
#include <cstdio>

#include "perf/webbench.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace nv;  // NOLINT
  const perf::CostModel model;

  std::printf("=== Ablation A: N variants, saturated throughput (15 clients) ===\n\n");
  {
    util::TextTable table;
    table.set_header({"N", "Thr KB/s (1 core)", "vs N=1", "Thr KB/s (N cores)", "vs N=1",
                      "unsat latency ms (1 core)"});
    for (std::size_t c = 1; c <= 5; ++c) table.align_right(c);

    const double d1 = model.demand_ms(perf::ServerSetup::kUnmodified);
    double base_thr = 0;
    for (unsigned n = 1; n <= 4; ++n) {
      // N variants: N x compute, rendezvous on every syscall when N > 1.
      const double per_syscall_us =
          model.syscall_overhead_us + (n > 1 ? model.rendezvous_us : 0.0);
      const double demand =
          n * model.cpu_ms + model.syscalls_per_request * per_syscall_us / 1000.0;
      const double visible =
          n == 1 ? demand : d1 + (demand - d1) * (1.0 - model.duplicate_compute_overlap);

      perf::WorkloadConfig saturated;
      saturated.clients = 15;
      saturated.duration = 20 * sim::kSecond;
      const auto one_core = perf::run_closed_loop(demand, visible, 1, model, saturated);
      // With one core per variant, the variants' compute runs in parallel and
      // only the rendezvous serializes: demand per core ~ single-variant.
      const double parallel_demand =
          model.cpu_ms + model.syscalls_per_request * per_syscall_us / 1000.0;
      const auto n_cores = perf::run_closed_loop(parallel_demand, parallel_demand, 1, model,
                                                 saturated);

      perf::WorkloadConfig unsat;
      unsat.clients = 1;
      unsat.duration = 20 * sim::kSecond;
      const auto unsat_result = perf::run_closed_loop(demand, visible, 1, model, unsat);

      if (n == 1) base_thr = one_core.throughput_kbps;
      table.add_row({std::to_string(n), util::format("%.0f", one_core.throughput_kbps),
                     util::format("%.2fx", base_thr / one_core.throughput_kbps),
                     util::format("%.0f", n_cores.throughput_kbps),
                     util::format("%.2fx", base_thr / n_cores.throughput_kbps),
                     util::format("%.2f", unsat_result.latency_ms)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("reading: on one core, throughput scales ~1/N (redundant compute);\n"
                "with a core per variant only the rendezvous tax remains — the paper's\n"
                "multiprocessor remark quantified.\n\n");
  }

  std::printf("=== Ablation B: decomposing configuration 4's overhead ===\n\n");
  {
    struct Step {
      const char* label;
      double cpu_factor;      // per-variant CPU multiplier
      int variants;
      double rendezvous_us;   // per syscall
      int extra_syscalls;
    };
    const Step steps[] = {
        {"baseline (config 1)", 1.0, 1, 0.0, 0},
        {"+ transformation", model.transform_factor, 1, 0.0, model.transformed_extra_syscalls},
        {"+ second variant (x2 compute)", model.transform_factor, 2, 0.0,
         model.transformed_extra_syscalls},
        {"+ rendezvous/monitor per syscall", model.transform_factor, 2, model.rendezvous_us,
         model.transformed_extra_syscalls},
        {"+ UID detection syscalls (config 4)", model.transform_factor, 2, model.rendezvous_us,
         model.transformed_extra_syscalls + model.uid_variation_extra_syscalls},
    };
    util::TextTable table;
    table.set_header({"Configuration step", "demand ms/req", "sat thr KB/s", "cumulative drop"});
    for (std::size_t c = 1; c <= 3; ++c) table.align_right(c);
    double base = 0;
    for (const Step& step : steps) {
      const double per_syscall_us = model.syscall_overhead_us + step.rendezvous_us;
      const double demand = step.variants * model.cpu_ms * step.cpu_factor +
                            (model.syscalls_per_request + step.extra_syscalls) *
                                per_syscall_us / 1000.0;
      perf::WorkloadConfig saturated;
      saturated.clients = 15;
      saturated.duration = 20 * sim::kSecond;
      const auto result = perf::run_closed_loop(demand, demand, 1, model, saturated);
      if (base == 0) base = result.throughput_kbps;
      table.add_row({step.label, util::format("%.3f", demand),
                     util::format("%.0f", result.throughput_kbps),
                     util::format("%.1f%%", 100.0 * (1.0 - result.throughput_kbps / base))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("reading: the second variant's compute dominates (the paper's \"approximate\n"
                "halving\"); rendezvous adds a second-order tax; the UID variation's own\n"
                "detection syscalls are nearly free (§4: ~4.5%% on top of config 3).\n");
  }
  return 0;
}

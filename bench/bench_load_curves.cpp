// Latency/goodput vs offered load, measured on a REAL VariantFleet driven by
// the src/load open-workload harness (deterministic ManualClock, seeded
// arrival stream, heavy-tailed service mix).
//
//   $ ./bench_load_curves [--quick] [--out BENCH_load_curves.json]
//
// Two experiments in one document (schema load_curves/v1, contract in
// docs/BENCH_SCHEMAS.md, validated by tools/check_load_curves.py):
//
//   curve     an offered-load sweep (rho = lambda * E[S] / lanes) under the
//             kShed admission policy: latency percentiles vs rho up to and
//             past saturation, the knee, and the shed fraction that bounds
//             latency once rho > 1.
//   campaign  one load point run twice — all-benign vs. an attacker fraction
//             — to price detection under load: the attacked fleet must raise
//             exactly its one correlated campaign alert while BENIGN goodput
//             stays above a stated floor of the no-attack baseline.
//
// Exit code is non-zero when any acceptance claim fails:
//   - benign p99 latency is non-decreasing in rho (20% tolerance for
//     percentile jitter) and strictly higher at the top of the sweep;
//   - shed fraction is monotone non-decreasing in rho, zero before the knee,
//     positive past it (the knee exists inside the sweep);
//   - under campaign: alerts >= 1 and goodput >= goodput_floor * baseline.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "load/harness.h"
#include "load/workload.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nv;  // NOLINT

namespace {

// Past the knee p99 PLATEAUS (the queue is pinned at capacity, so waiting
// time is bounded); which heavy-tail arrivals land in the admitted set then
// shifts the saturated percentile by >10% between adjacent rho points even
// though every run is bit-reproducible. 20% slack keeps the trend claim
// honest without tripping on plateau wobble.
constexpr double kP99Tolerance = 0.80;  // p99[i] >= 0.8 * p99[i-1]
// The quick sweep's short horizon amplifies the campaign tax (the probe mass
// lands on fewer benign requests): it prices out around 75% there vs ~98% at
// the full horizon. The floor stays under BOTH so either mode failing it
// means an actual regression, not horizon arithmetic.
constexpr double kGoodputFloor = 0.70;
constexpr double kShedThreshold = 0.005;
constexpr double kLatencyKneeFactor = 3.0;

load::LoadHarnessConfig base_config(bool quick) {
  load::LoadHarnessConfig config;
  config.mode = load::LoadMode::kOpenLoop;
  config.pool_size = 4;
  config.queue_capacity = 16;
  config.admission = fleet::AdmissionPolicy::kShed;
  config.quantum = std::chrono::milliseconds(5);
  config.workload.seed = 0x10adc4e5;
  config.workload.duration = (quick ? 2 : 5) * sim::kSecond;
  return config;
}

std::string point_json(double rho, const load::LoadReport& r) {
  return util::format(
      "{\"rho\": %.4f, \"offered\": %llu, \"offered_per_sec\": %.2f, "
      "\"admitted\": %llu, \"shed\": %llu, \"shed_fraction\": %.6f, "
      "\"deadline_dropped\": %llu, \"completed\": %llu, \"errors\": %llu, "
      "\"goodput_per_sec\": %.2f, \"latency_count\": %zu, "
      "\"latency_p50_ms\": %.3f, \"latency_p95_ms\": %.3f, \"latency_p99_ms\": %.3f, "
      "\"queue_high_watermark\": %llu, \"quarantined\": %llu, "
      "\"campaign_alerts\": %llu, \"duration_s\": %.3f}",
      rho, static_cast<unsigned long long>(r.offered), r.offered_per_sec,
      static_cast<unsigned long long>(r.admitted), static_cast<unsigned long long>(r.shed),
      r.shed_fraction, static_cast<unsigned long long>(r.deadline_dropped),
      static_cast<unsigned long long>(r.completed), static_cast<unsigned long long>(r.errors),
      r.goodput_per_sec, r.latency_count, r.latency_p50_ms, r.latency_p95_ms,
      r.latency_p99_ms, static_cast<unsigned long long>(r.queue_high_watermark),
      static_cast<unsigned long long>(r.quarantined),
      static_cast<unsigned long long>(r.campaign_alerts), r.duration_s);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_load_curves.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const load::LoadHarnessConfig base = base_config(quick);
  const double mean_service_ms = base.workload.mean_service_ms();
  std::printf("=== load curves: a real fleet under an open workload ===\n");
  std::printf("(%u lanes, capacity %zu, kShed admission, E[S]=%.1f ms, %s virtual horizon)\n\n",
              base.pool_size, base.queue_capacity, mean_service_ms, quick ? "2 s" : "5 s");

  // --- experiment 1: the offered-load sweep --------------------------------
  const std::vector<double> rhos =
      quick ? std::vector<double>{0.4, 0.8, 1.6, 3.2}
            : std::vector<double>{0.4, 0.8, 1.2, 1.6, 2.4, 3.2};
  std::vector<load::LoadCurvePoint> curve;
  for (const double rho : rhos) {
    load::LoadHarnessConfig config = base;
    config.workload.offered_per_sec =
        load::rate_for_rho(config.workload, rho, config.pool_size);
    load::LoadCurvePoint point;
    point.rho = rho;
    point.report = load::run_load(config);
    std::printf("rho %.2f: %s\n", rho, point.report.describe().c_str());
    curve.push_back(std::move(point));
  }
  const std::size_t knee =
      load::knee_index(curve, kLatencyKneeFactor, kShedThreshold);

  util::TextTable table;
  table.set_header({"rho", "offered/s", "shed %", "goodput/s", "p50 ms", "p95 ms", "p99 ms",
                    "watermark"});
  for (std::size_t c = 0; c <= 7; ++c) table.align_right(c);
  for (const auto& point : curve) {
    const load::LoadReport& r = point.report;
    table.add_row({util::format("%.2f", point.rho), util::format("%.1f", r.offered_per_sec),
                   util::format("%.2f", r.shed_fraction * 100.0),
                   util::format("%.1f", r.goodput_per_sec),
                   util::format("%.1f", r.latency_p50_ms),
                   util::format("%.1f", r.latency_p95_ms),
                   util::format("%.1f", r.latency_p99_ms),
                   std::to_string(r.queue_high_watermark)});
  }
  std::printf("\n%s\n", table.render().c_str());
  if (knee < curve.size()) {
    std::printf("saturation knee at rho %.2f (first shedding / p99 blow-up point)\n\n",
                curve[knee].rho);
  }

  // --- experiment 2: goodput under campaign --------------------------------
  // Same offered rate twice; the attack run replaces 5%% of arrivals with
  // probes sharing one signature. The window spans the whole horizon so the
  // correlator folds every probe into a single campaign alert.
  load::LoadHarnessConfig baseline_config = base;
  baseline_config.workload.offered_per_sec =
      load::rate_for_rho(baseline_config.workload, 0.8, baseline_config.pool_size);
  load::LoadHarnessConfig attack_config = baseline_config;
  attack_config.workload.attacker_fraction = 0.05;
  attack_config.campaign.threshold = 3;
  attack_config.campaign.window =
      std::chrono::milliseconds(static_cast<std::int64_t>(sim::to_ms(base.workload.duration)) * 4);
  const load::LoadReport baseline = load::run_load(baseline_config);
  const load::LoadReport attacked = load::run_load(attack_config);
  const double goodput_ratio =
      baseline.goodput_per_sec > 0.0 ? attacked.goodput_per_sec / baseline.goodput_per_sec
                                     : 0.0;
  std::printf("campaign pair at rho 0.80:\n  baseline: %s\n  attacked: %s\n",
              baseline.describe().c_str(), attacked.describe().c_str());
  std::printf("  benign goodput under campaign: %.1f%% of baseline (floor %.0f%%)\n\n",
              goodput_ratio * 100.0, kGoodputFloor * 100.0);

  // --- document ------------------------------------------------------------
  std::string json = "{\n  \"schema\": \"load_curves/v1\",\n";
  json += util::format("  \"quick\": %s,\n", quick ? "true" : "false");
  json += util::format(
      "  \"config\": {\"pool_size\": %u, \"queue_capacity\": %zu, "
      "\"admission\": \"shed\", \"quantum_ms\": %lld, \"horizon_ms\": %llu, "
      "\"seed\": %llu, \"mean_service_ms\": %.3f, \"attacker_fraction\": %.3f},\n",
      base.pool_size, base.queue_capacity, static_cast<long long>(base.quantum.count()),
      static_cast<unsigned long long>(sim::to_ms(base.workload.duration)),
      static_cast<unsigned long long>(base.workload.seed), mean_service_ms,
      attack_config.workload.attacker_fraction);
  json += util::format(
      "  \"claims\": {\"p99_tolerance\": %.2f, \"shed_threshold\": %.3f, "
      "\"latency_knee_factor\": %.1f, \"goodput_floor\": %.2f, "
      "\"campaign_alerts_min\": 1},\n",
      kP99Tolerance, kShedThreshold, kLatencyKneeFactor, kGoodputFloor);
  json += "  \"curve\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    json += "    " + point_json(curve[i].rho, curve[i].report);
    json += i + 1 < curve.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += util::format("  \"knee_index\": %zu,\n", knee);
  json += "  \"campaign\": {\n    \"baseline\": " + point_json(0.8, baseline) +
          ",\n    \"attacked\": " + point_json(0.8, attacked) + ",\n";
  json += util::format("    \"goodput_ratio\": %.4f\n  }\n}\n", goodput_ratio);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json;
  out.close();
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), json.size());

  // --- acceptance claims, enforced -----------------------------------------
  bool ok = true;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].report.latency_p99_ms < curve[i - 1].report.latency_p99_ms * kP99Tolerance) {
      ok = false;
      std::fprintf(stderr, "P99 VIOLATION: rho %.2f p99 %.2f ms < %.0f%% of rho %.2f p99 %.2f ms\n",
                   curve[i].rho, curve[i].report.latency_p99_ms, kP99Tolerance * 100.0,
                   curve[i - 1].rho, curve[i - 1].report.latency_p99_ms);
    }
    if (curve[i].report.shed_fraction + 1e-9 < curve[i - 1].report.shed_fraction) {
      ok = false;
      std::fprintf(stderr, "SHED VIOLATION: shed fraction fell from %.4f (rho %.2f) to %.4f (rho %.2f)\n",
                   curve[i - 1].report.shed_fraction, curve[i - 1].rho,
                   curve[i].report.shed_fraction, curve[i].rho);
    }
  }
  if (curve.back().report.latency_p99_ms <= curve.front().report.latency_p99_ms) {
    ok = false;
    std::fprintf(stderr, "P99 VIOLATION: saturated p99 %.2f ms not above light-load p99 %.2f ms\n",
                 curve.back().report.latency_p99_ms, curve.front().report.latency_p99_ms);
  }
  if (knee >= curve.size()) {
    ok = false;
    std::fprintf(stderr, "KNEE VIOLATION: no saturation knee inside the sweep (rho up to %.2f)\n",
                 curve.back().rho);
  }
  if (curve.back().report.shed_fraction <= kShedThreshold) {
    ok = false;
    std::fprintf(stderr, "SHED VIOLATION: rho %.2f shed fraction %.4f — admission control idle past saturation\n",
                 curve.back().rho, curve.back().report.shed_fraction);
  }
  if (attacked.campaign_alerts < 1) {
    ok = false;
    std::fprintf(stderr, "CAMPAIGN VIOLATION: attacked run raised no campaign alert\n");
  }
  if (goodput_ratio < kGoodputFloor) {
    ok = false;
    std::fprintf(stderr, "GOODPUT VIOLATION: under campaign %.3f of baseline, floor %.2f\n",
                 goodput_ratio, kGoodputFloor);
  }
  std::printf("=> p99 rises with rho: %s; shedding monotone past the knee: %s; "
              "campaign detected at %.0f%% goodput: %s\n",
              ok ? "yes" : "CHECK FAILED", ok ? "yes" : "CHECK FAILED",
              goodput_ratio * 100.0, attacked.campaign_alerts >= 1 ? "yes" : "NO");
  return ok ? 0 : 1;
}

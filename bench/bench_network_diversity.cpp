// Fleet-of-fleets attacker-cost curves: what does SHARDING the deployment —
// independent per-shard draw spaces + drawn network identities + cross-shard
// campaign gossip — cost an attacker, at FIXED total lanes and FIXED total
// payload keyspace? Fully deterministic (one ManualClock, fixed seed, strict
// lane affinity), so the emitted BENCH_network_diversity.json is diffable
// across PRs — CI archives it and tools/check_network_diversity.py validates
// the schema, the ledger arithmetic, and the monotonicity.
//
//   $ ./bench_network_diversity [--quick] [--out BENCH_network_diversity.json]
//                               [--trace-out TRACE.json]
//
// --trace-out threads a TraceRecorder through the LAST grid point (the
// highest shard count) and writes the whole campaign — session draws, probe
// jobs, quarantines, alerts, gossip hops, remote tightens, sweeps — as a
// Chrome/Perfetto-loadable trace. Tracing does not perturb the deterministic
// bench numbers; CI validates the artifact with tools/check_trace.py.
//
// Exit code is non-zero when the core claim fails: attacker cost must rise
// STRICTLY with the shard count.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "experiments/network_diversity.h"
#include "obs/exporters.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nv;  // NOLINT

namespace {

experiments::ClusterExperimentConfig base_config(bool quick) {
  experiments::ClusterExperimentConfig config;
  config.total_lanes = 8;
  config.seed = 0xC0FFEE;
  config.tick = std::chrono::milliseconds(10);
  config.ticks = quick ? 400 : 800;
  config.probes_per_tick = 4;
  config.timeline_stride = quick ? 8 : 16;
  return config;
}

void print_grid(const std::vector<experiments::ClusterCurve>& grid) {
  util::TextTable table;
  table.set_header({"shards", "lanes/shard", "payload probes", "endpoint probes",
                    "compromised lane-ticks", "pre-warned", "attacker cost"});
  for (std::size_t c = 0; c <= 6; ++c) table.align_right(c);
  for (const auto& curve : grid) {
    table.add_row({std::to_string(curve.shards), std::to_string(curve.lanes_per_shard),
                   std::to_string(curve.payload_probes), std::to_string(curve.endpoint_probes),
                   std::to_string(curve.compromised_lane_ticks),
                   std::to_string(curve.pre_warned_shards),
                   util::format("%.1f", curve.attacker_cost)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_network_diversity.json";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH] [--trace-out PATH]\n", argv[0]);
      return 2;
    }
  }

  const auto base = base_config(quick);
  std::printf("=== network diversity: attacker cost vs. shard count ===\n");
  std::printf("(%u total lanes, probing %s, network %s, %u ticks x %lld ms manual time%s)\n\n",
              base.total_lanes, base.probed_variation.c_str(),
              base.network_variations.empty() ? "static" : base.network_variations[0].c_str(),
              base.ticks, static_cast<long long>(base.tick.count()),
              quick ? ", --quick" : "");

  // The grid: shard counts at FIXED total lanes (and the probed variation's
  // keyspace is per shard but identical across grid points, so total payload
  // entropy is held fixed too). Ascending — the checker and the exit-code
  // gate below both require cost to rise strictly along it.
  const std::vector<unsigned> shard_counts =
      quick ? std::vector<unsigned>{1, 2, 4} : std::vector<unsigned>{1, 2, 4, 8};
  std::vector<experiments::ClusterCurve> grid;
  std::shared_ptr<obs::TraceRecorder> recorder;
  for (const unsigned shards : shard_counts) {
    auto config = base;
    config.shards = shards;
    if (!trace_path.empty() && shards == shard_counts.back()) {
      // Trace the most interesting grid point (highest shard count: gossip,
      // remote tightens, and network rotations all in play). A generous ring
      // keeps the causal chains complete for check_trace.py's span closure.
      obs::TraceConfig trace_config;
      trace_config.ring_capacity = 65'536;
      recorder = std::make_shared<obs::TraceRecorder>(trace_config);
      config.trace = recorder;
    }
    grid.push_back(experiments::run_cluster_experiment(config));
  }
  print_grid(grid);

  if (recorder) {
    std::ofstream trace_out(trace_path);
    if (!trace_out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 2;
    }
    trace_out << obs::to_chrome_trace(*recorder);
    trace_out.close();
    std::printf("wrote %s (%llu events, %llu dropped)\n", trace_path.c_str(),
                static_cast<unsigned long long>(recorder->recorded()),
                static_cast<unsigned long long>(recorder->dropped()));
  }
  std::printf(
      "reading: payload probes buy per-shard guesses (shard draw spaces are\n"
      "independent: a mapped re-expression on shard A says nothing about shard B),\n"
      "and every shard contacted — or re-contacted after a network-identity\n"
      "rotation — first costs an endpoint scan of 2^%.1f-1 bits expected (%llu\n"
      "probes). Campaign gossip pre-warns the shards the attacker has not reached\n"
      "yet (pre-warned), so the defender's sweep re-diversifies them BEFORE they\n"
      "lose a session. More shards at the same total capacity => strictly more\n"
      "probes per lane-tick of control.\n\n",
      grid.front().network_bits,
      static_cast<unsigned long long>(grid.front().endpoint_discovery_cost));

  const std::string json = experiments::cluster_curves_to_json(base, grid, quick);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json;
  out.close();
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), json.size());

  // The acceptance claim, enforced: STRICTLY rising cost along the grid.
  bool monotone = true;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    if (grid[i].attacker_cost <= grid[i - 1].attacker_cost) {
      monotone = false;
      std::fprintf(stderr,
                   "MONOTONICITY VIOLATION: %llu shards cost %.3f <= %llu shards cost %.3f\n",
                   static_cast<unsigned long long>(grid[i].shards), grid[i].attacker_cost,
                   static_cast<unsigned long long>(grid[i - 1].shards),
                   grid[i - 1].attacker_cost);
    }
  }
  // Gossip must actually pre-warn once there is more than one shard.
  bool gossip_warns = true;
  for (const auto& curve : grid) {
    if (curve.shards > 1 && curve.campaign_alerts > 0 && curve.pre_warned_shards == 0) {
      gossip_warns = false;
      std::fprintf(stderr, "GOSSIP VIOLATION: %llu shards raised %llu campaigns, pre-warned 0\n",
                   static_cast<unsigned long long>(curve.shards),
                   static_cast<unsigned long long>(curve.campaign_alerts));
    }
  }
  std::printf("=> attacker cost strictly monotone in shard count: %s; gossip pre-warns: %s\n",
              monotone ? "yes" : "NO", gossip_warns ? "yes" : "NO");
  return monotone && gossip_warns ? 0 : 1;
}

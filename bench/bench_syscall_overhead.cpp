// Micro-costs of the framework mechanisms (google-benchmark): plain syscall
// dispatch, MVEE rendezvous round, monitor comparison, reexpression, and the
// unshared-files open path. These are the constants behind Table 3's
// per-syscall overhead terms.
#include <benchmark/benchmark.h>

#include "core/nvariant_system.h"
#include "core/reexpression.h"
#include "guest/runners.h"
#include "variants/registry.h"
#include "vkernel/kernel.h"

namespace {

using namespace nv;  // NOLINT

void BM_PlainSyscallDispatch(benchmark::State& state) {
  vfs::FileSystem fs;
  vkernel::SocketHub hub;
  vkernel::KernelContext ctx(fs, hub);
  vkernel::PlainKernel kernel(ctx, "bench");
  vkernel::SyscallArgs args;
  args.no = vkernel::Sys::kGetpid;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.syscall(args));
  }
}
BENCHMARK(BM_PlainSyscallDispatch);

void BM_ReexpressionRoundTrip(benchmark::State& state) {
  const core::XorMask coder(0x7FFFFFFF);
  os::uid_t uid = 1000;
  for (auto _ : state) {
    uid = coder.invert(coder.reexpress(uid));
    benchmark::DoNotOptimize(uid);
  }
}
BENCHMARK(BM_ReexpressionRoundTrip);

void BM_MonitorArgComparison(benchmark::State& state) {
  vkernel::SyscallArgs a;
  a.no = vkernel::Sys::kWrite;
  a.ints = {3};
  a.strs = {"GET /index.html HTTP/1.0\r\n\r\n"};
  vkernel::SyscallArgs b = a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a == b);
  }
}
BENCHMARK(BM_MonitorArgComparison);

/// Full 2-variant rendezvous round trip: two threads, one getpid each.
void BM_MveeSyscallRound(benchmark::State& state) {
  const auto system = core::NVariantSystem::Builder()
                          .rendezvous_timeout(std::chrono::milliseconds(10000))
                          .build();

  // Guests spin issuing getpid until told to stop via a shared atomic.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rounds{0};
  system->launch([&](unsigned variant, vkernel::SyscallPort& port, vkernel::Process&,
                    const core::VariantConfig&) {
    vkernel::SyscallArgs args;
    args.no = vkernel::Sys::kGetpid;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)port.syscall(args);
      if (variant == 0) rounds.fetch_add(1, std::memory_order_relaxed);
    }
    vkernel::SyscallArgs exit_call;
    exit_call.no = vkernel::Sys::kExit;
    exit_call.ints = {0};
    (void)port.syscall(exit_call);
  });

  const std::uint64_t start = rounds.load();
  for (auto _ : state) {
    const std::uint64_t target = rounds.load(std::memory_order_relaxed) + 1;
    while (rounds.load(std::memory_order_relaxed) < target) {
    }
  }
  const std::uint64_t done = rounds.load() - start;
  stop.store(true);
  (void)system->stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(done));
}
BENCHMARK(BM_MveeSyscallRound)->Unit(benchmark::kMicrosecond);

void BM_UnsharedOpenReadClose(benchmark::State& state) {
  const auto system = core::NVariantSystem::Builder()
                          .rendezvous_timeout(std::chrono::milliseconds(10000))
                          .variation(variants::make_builtin("uid-xor"))
                          .build();
  const auto root = os::Credentials::root();
  (void)system->fs().mkdir_p("/etc", root);
  (void)system->fs().write_file("/etc/passwd", "root:x:0:0:r:/:/bin/sh\n", root);
  (void)system->fs().write_file("/etc/group", "root:x:0:\n", root);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rounds{0};
  system->launch([&](unsigned variant, vkernel::SyscallPort& port, vkernel::Process& proc,
                    const core::VariantConfig& config) {
    guest::GuestContext ctx(port, proc, config);
    while (!stop.load(std::memory_order_relaxed)) {
      auto content = ctx.read_file("/etc/passwd");  // unshared: per-variant copy
      benchmark::DoNotOptimize(content);
      if (variant == 0) rounds.fetch_add(1, std::memory_order_relaxed);
    }
    try {
      ctx.exit(0);
    } catch (const guest::GuestExit&) {
    }
  });

  for (auto _ : state) {
    const std::uint64_t target = rounds.load(std::memory_order_relaxed) + 1;
    while (rounds.load(std::memory_order_relaxed) < target) {
    }
  }
  stop.store(true);
  (void)system->stop();
}
BENCHMARK(BM_UnsharedOpenReadClose)->Unit(benchmark::kMicrosecond);

}  // namespace

// Syscall-pipeline overhead: the per-call rendezvous barrier vs. the async/
// batched pipeline (core/rendezvous.h). Two A/B scenarios on the real MVEE:
//
//   completion_getpid  per-call barrier (PipelineMode::kLockstep) vs. the
//                      async completion ring (kPipelined) on an argument-free
//                      read-only input call (BatchPolicy::kCompletion).
//   batched_read       per-call exchange vs. raw_syscall_batch() coalescing K
//                      reads into one barrier round (BatchPolicy::kCoalesce).
//
// Emits BENCH_syscall_overhead.json ("syscall_overhead/v1"); CI archives it
// and tools/check_syscall_overhead.py validates the schema. Exit code is
// non-zero when the acceptance claim fails: read-only scenarios must show at
// least a 3x throughput gain over the per-call barrier, and the fast side
// must synchronize strictly fewer barrier rounds.
//
//   $ ./bench_syscall_overhead [--quick] [--out BENCH_syscall_overhead.json]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/nvariant_system.h"
#include "guest/guest_program.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nv;  // NOLINT

namespace {

constexpr double kReadonlySpeedupMin = 3.0;

struct RunResult {
  double us = 0.0;  // best-of-repetitions wall time for the guest bodies
  core::RunReport report;
};

struct Scenario {
  std::string name;
  bool read_only = false;
  std::uint64_t calls = 0;
  std::string baseline_mode;
  std::string fast_mode;
  RunResult baseline;
  RunResult fast;

  [[nodiscard]] double speedup() const { return fast.us > 0.0 ? baseline.us / fast.us : 0.0; }
  [[nodiscard]] double baseline_calls_per_sec() const {
    return baseline.us > 0.0 ? static_cast<double>(calls) * 1e6 / baseline.us : 0.0;
  }
  [[nodiscard]] double fast_calls_per_sec() const {
    return fast.us > 0.0 ? static_cast<double>(calls) * 1e6 / fast.us : 0.0;
  }
};

/// Time one full run() of `body` on a fresh 2-variant system; keep the best
/// (minimum) wall time over `reps` repetitions so scheduler noise shrinks the
/// measured gap instead of inflating it.
template <typename MakeSystem, typename Body>
RunResult timed_run(const MakeSystem& make_system, const Body& body, unsigned reps) {
  RunResult result;
  result.us = 0.0;
  for (unsigned rep = 0; rep < reps; ++rep) {
    auto system = make_system();
    const auto start = std::chrono::steady_clock::now();
    auto report = system->run(body);
    const auto us = static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                            std::chrono::steady_clock::now() - start)
                                            .count());
    if (rep == 0 || us < result.us) result.us = us;
    result.report = std::move(report);
  }
  return result;
}

RunResult run_getpid(core::PipelineMode mode, std::uint64_t calls, unsigned reps) {
  const auto make_system = [mode] {
    return core::NVariantSystem::Builder()
        .pipeline(mode)
        .rendezvous_timeout(std::chrono::milliseconds(10000))
        .build();
  };
  const auto body = [calls](unsigned, vkernel::SyscallPort& port, vkernel::Process&,
                            const core::VariantConfig&) {
    vkernel::SyscallArgs args;
    args.no = vkernel::Sys::kGetpid;
    for (std::uint64_t i = 0; i < calls; ++i) (void)port.syscall(args);
    vkernel::SyscallArgs exit_call;
    exit_call.no = vkernel::Sys::kExit;
    exit_call.ints = {0};
    (void)port.syscall(exit_call);
  };
  return timed_run(make_system, body, reps);
}

RunResult run_read(bool batched, std::uint64_t calls, std::size_t batch_size, unsigned reps) {
  const auto make_system = [] {
    auto system = core::NVariantSystem::Builder()
                      .pipeline(core::PipelineMode::kPipelined)
                      .rendezvous_timeout(std::chrono::milliseconds(10000))
                      .build();
    (void)system->fs().write_file("/bench.dat", std::string(4096, 'x'),
                                  os::Credentials::root());
    return system;
  };
  const auto body = [batched, calls, batch_size](unsigned, vkernel::SyscallPort& port,
                                                 vkernel::Process& proc,
                                                 const core::VariantConfig& config) {
    guest::GuestContext ctx(port, proc, config);
    auto fd = ctx.open("/bench.dat", os::OpenFlags::kRead);
    int code = 0;
    if (!fd) {
      code = 1;
    } else if (batched) {
      vkernel::SyscallBatch batch;
      batch.calls.reserve(batch_size);
      for (std::size_t j = 0; j < batch_size; ++j) {
        vkernel::SyscallArgs args;
        args.no = vkernel::Sys::kRead;
        args.ints = {static_cast<std::uint64_t>(*fd), 1};
        batch.calls.push_back(std::move(args));
      }
      for (std::uint64_t i = 0; i < calls; i += batch_size) (void)ctx.raw_syscall_batch(batch);
    } else {
      for (std::uint64_t i = 0; i < calls; ++i) (void)ctx.read(*fd, 1);
    }
    if (fd) (void)ctx.close(*fd);
    try {
      ctx.exit(code);
    } catch (const guest::GuestExit&) {
    }
  };
  return timed_run(make_system, body, reps);
}

void append_side(std::string& json, const char* key, const std::string& mode,
                 const RunResult& side, std::uint64_t calls, bool last) {
  json += util::format(
      "      \"%s\": {\"mode\": \"%s\", \"us\": %.1f, \"calls_per_sec\": %.1f, "
      "\"rounds\": %llu, \"batches\": %llu, \"async_completions\": %llu}%s\n",
      key, mode.c_str(), side.us,
      side.us > 0.0 ? static_cast<double>(calls) * 1e6 / side.us : 0.0,
      static_cast<unsigned long long>(side.report.syscall_rounds),
      static_cast<unsigned long long>(side.report.syscall_batches),
      static_cast<unsigned long long>(side.report.async_completions), last ? "" : ",");
}

std::string to_json(const std::vector<Scenario>& scenarios, bool quick, std::uint64_t calls,
                    std::size_t batch_size, unsigned reps) {
  std::string json;
  json += "{\n";
  json += "  \"schema\": \"syscall_overhead/v1\",\n";
  json += util::format("  \"quick\": %s,\n", quick ? "true" : "false");
  json += util::format(
      "  \"config\": {\"variants\": 2, \"calls\": %llu, \"batch_size\": %zu, "
      "\"repetitions\": %u},\n",
      static_cast<unsigned long long>(calls), batch_size, reps);
  json += util::format("  \"claims\": {\"readonly_speedup_min\": %.1f},\n", kReadonlySpeedupMin);
  json += "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    json += "    {\n";
    json += util::format("      \"name\": \"%s\",\n", s.name.c_str());
    json += util::format("      \"read_only\": %s,\n", s.read_only ? "true" : "false");
    json += util::format("      \"calls\": %llu,\n", static_cast<unsigned long long>(s.calls));
    append_side(json, "baseline", s.baseline_mode, s.baseline, s.calls, false);
    append_side(json, "fast", s.fast_mode, s.fast, s.calls, false);
    json += util::format("      \"speedup\": %.3f\n", s.speedup());
    json += i + 1 < scenarios.size() ? "    },\n" : "    }\n";
  }
  json += "  ]\n";
  json += "}\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_syscall_overhead.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::uint64_t calls = quick ? 4096 : 16384;
  const std::size_t batch_size = 32;
  const unsigned reps = quick ? 2 : 3;

  std::printf("=== syscall pipeline overhead: per-call barrier vs. async/batched ===\n");
  std::printf("(2 variants, %llu calls per guest, batch size %zu, best of %u runs%s)\n\n",
              static_cast<unsigned long long>(calls), batch_size, reps,
              quick ? ", --quick" : "");

  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "completion_getpid";
    s.read_only = true;
    s.calls = calls;
    s.baseline_mode = "lockstep";
    s.fast_mode = "pipelined";
    s.baseline = run_getpid(core::PipelineMode::kLockstep, calls, reps);
    s.fast = run_getpid(core::PipelineMode::kPipelined, calls, reps);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "batched_read";
    s.read_only = true;
    s.calls = calls;
    s.baseline_mode = "per_call";
    s.fast_mode = "batched";
    s.baseline = run_read(false, calls, batch_size, reps);
    s.fast = run_read(true, calls, batch_size, reps);
    scenarios.push_back(std::move(s));
  }

  util::TextTable table;
  table.set_header({"scenario", "baseline us", "fast us", "baseline rounds", "fast rounds",
                    "async", "speedup"});
  for (std::size_t c = 1; c <= 6; ++c) table.align_right(c);
  for (const auto& s : scenarios) {
    table.add_row({s.name, util::format("%.0f", s.baseline.us), util::format("%.0f", s.fast.us),
                   std::to_string(s.baseline.report.syscall_rounds),
                   std::to_string(s.fast.report.syscall_rounds),
                   std::to_string(s.fast.report.async_completions),
                   util::format("%.2fx", s.speedup())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: lockstep pays one full cross-variant barrier (two condvar sleeps)\n"
      "per call; the pipeline completes completion-class calls through a lock-free\n"
      "ring and coalesces same-class runs into one barrier per batch, so the\n"
      "barrier count — the dominant cost — drops by the batch factor.\n\n");

  const std::string json = to_json(scenarios, quick, calls, batch_size, reps);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json;
  out.close();
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), json.size());

  // The acceptance claims, enforced in-bench so a regression fails CI even
  // before the checker parses the JSON.
  bool ok = true;
  for (const auto& s : scenarios) {
    if (!s.baseline.report.completed || !s.fast.report.completed) {
      ok = false;
      std::fprintf(stderr, "%s: run did not complete cleanly\n", s.name.c_str());
    }
    if (s.fast.report.syscall_rounds >= s.baseline.report.syscall_rounds) {
      ok = false;
      std::fprintf(stderr, "%s: fast path synchronized %llu rounds >= baseline %llu\n",
                   s.name.c_str(),
                   static_cast<unsigned long long>(s.fast.report.syscall_rounds),
                   static_cast<unsigned long long>(s.baseline.report.syscall_rounds));
    }
    if (s.read_only && s.speedup() < kReadonlySpeedupMin) {
      ok = false;
      std::fprintf(stderr, "%s: read-only speedup %.2fx below the %.1fx claim\n",
                   s.name.c_str(), s.speedup(), kReadonlySpeedupMin);
    }
  }
  std::printf("=> read-only scenarios >= %.1fx with fewer barrier rounds: %s\n",
              kReadonlySpeedupMin, ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

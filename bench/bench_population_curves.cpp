// Chen-et-al-style population effectiveness curves on the real fleet:
// attacker cost vs. the defender's re-diversification rate, and expected
// compromised fraction vs. time, plus an adaptive-defense vs. static-policy
// comparison. Fully deterministic (ManualClock + fixed seed + strict lane
// affinity), so the emitted BENCH_population_curves.json is diffable across
// PRs — CI archives it as the perf trajectory and
// tools/check_population_curves.py validates the schema + monotonicity.
//
//   $ ./bench_population_curves [--quick] [--out BENCH_population_curves.json]
//
// Exit code is non-zero when the core claim fails: attacker cost must rise
// MONOTONICALLY with the re-diversification rate.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "experiments/population_curves.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nv;  // NOLINT

namespace {

experiments::PopulationExperimentConfig base_config(bool quick) {
  experiments::PopulationExperimentConfig config;
  config.pool_size = 4;
  config.seed = 0xC0FFEE;
  config.tick = std::chrono::milliseconds(10);
  config.ticks = quick ? 400 : 1600;
  // The attacker probes address-partitioning's REAL registry-reported
  // keyspace (16 strides => S = 16, success period 160 ms at 1 probe/tick);
  // uid-xor rides along so the composed session space (~34 bits) never
  // exhausts the factory. The grid intervals below deliberately avoid
  // multiples of that 160 ms so the success schedule does not phase-lock to
  // the rotation period (footholds land at varied offsets and the average
  // hold stays ~interval/2, as the analytic expectation wants).
  config.variations = {"address-partitioning", "uid-xor"};
  config.attacker.probed_variation = "address-partitioning";
  config.attacker.probes_per_tick = 1;
  config.timeline_stride = quick ? 8 : 16;
  return config;
}

void print_grid(const std::vector<experiments::PopulationCurve>& grid) {
  util::TextTable table;
  table.set_header({"rediversify", "rate Hz", "probes", "compromised lane-ticks",
                    "mean comp. frac", "attacker cost"});
  for (std::size_t c = 1; c <= 5; ++c) table.align_right(c);
  for (const auto& curve : grid) {
    table.add_row({curve.rediversify_interval_ms == 0
                       ? std::string("never")
                       : util::format("%llu ms", static_cast<unsigned long long>(
                                                     curve.rediversify_interval_ms)),
                   util::format("%.2f", curve.rediversify_rate_hz),
                   std::to_string(curve.probes), std::to_string(curve.compromised_lane_ticks),
                   util::format("%.3f", curve.mean_compromised_fraction),
                   util::format("%.3f", curve.attacker_cost)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_population_curves.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const auto base = base_config(quick);
  std::printf("=== population curves: attacker cost vs. re-diversification rate ===\n");
  std::printf("(pool %u, probing %s, %u ticks x %lld ms manual time%s)\n\n",
              base.pool_size, base.attacker.probed_variation.c_str(), base.ticks,
              static_cast<long long>(base.tick.count()), quick ? ", --quick" : "");

  // The primary grid: periodic re-diversification, slow to fast, campaigns
  // out of the way (the rotation-rate lever in isolation). No interval is a
  // multiple of the 160 ms success period (see base_config).
  const std::vector<std::uint64_t> intervals_ms = {0, 1290, 650, 330, 170, 90};
  std::vector<experiments::PopulationCurve> grid;
  for (const std::uint64_t interval : intervals_ms) {
    auto config = base;
    config.rediversify_interval = std::chrono::milliseconds(interval);
    grid.push_back(experiments::run_population_experiment(config));
  }
  print_grid(grid);
  std::printf(
      "reading: each probe costs the attacker one real quarantine; every S-th (here %llu-th,\n"
      "S = 2^%.1f, the registry-reported %s keyspace) guess lands silently\n"
      "and HOLDS until that session is re-diversified. Rotating faster shortens every\n"
      "foothold, so the probes the attacker must spend per lane-tick of control — the\n"
      "attacker cost — rises with the re-diversification rate.\n\n",
      static_cast<unsigned long long>(grid.front().keyspace_keys),
      grid.front().keyspace_bits, grid.front().probed_variation.c_str());

  // Adaptive vs. static at the same baseline: campaigns ON (threshold 3,
  // 2 s window), no periodic rotation — the defense must come from the
  // adaptive posture (tighten on alert, re-diversify every 170 ms while
  // tightened, decay after 1 s of quiet).
  std::vector<experiments::PopulationCurve> comparison;
  {
    auto static_config = base;
    static_config.campaign.threshold = 3;
    static_config.campaign.window = std::chrono::milliseconds(2000);
    comparison.push_back(experiments::run_population_experiment(static_config));

    auto adaptive_config = static_config;
    adaptive_config.adaptive = true;
    adaptive_config.adaptive_config.threshold_floor = 1;
    adaptive_config.adaptive_config.window_step = std::chrono::milliseconds(2000);
    adaptive_config.adaptive_config.window_cap = std::chrono::milliseconds(8000);
    adaptive_config.adaptive_config.quiet_period = std::chrono::milliseconds(1000);
    adaptive_config.adaptive_config.tightened_rotation_interval =
        std::chrono::milliseconds(170);
    comparison.push_back(experiments::run_population_experiment(adaptive_config));
  }
  std::printf("--- adaptive defense vs. static policy (no periodic rotation) ---\n\n");
  {
    util::TextTable table;
    table.set_header({"posture", "probes", "compromised lane-ticks", "attacker cost",
                      "rotations", "tightened", "decayed"});
    for (std::size_t c = 1; c <= 6; ++c) table.align_right(c);
    const char* names[] = {"static", "adaptive"};
    for (std::size_t i = 0; i < comparison.size(); ++i) {
      const auto& curve = comparison[i];
      table.add_row({names[i], std::to_string(curve.probes),
                     std::to_string(curve.compromised_lane_ticks),
                     util::format("%.3f", curve.attacker_cost),
                     std::to_string(curve.rotations), std::to_string(curve.policy_tightened),
                     std::to_string(curve.policy_decayed)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "reading: the campaign alert tightens the live policy and starts heightened-\n"
        "posture re-diversification; the same attack against the static policy keeps\n"
        "its footholds. Adaptation buys the rate increase only while under attack.\n\n");
  }

  // The entropy A/B: the same attacker, the same fixed rotation rate, probing
  // variations with DIFFERENT real keyspaces. The curves now carry genuine
  // per-variation units, so "more entropy => more probes per lane-tick held"
  // is checkable instead of assumed.
  std::vector<experiments::PopulationCurve> variation_grid;
  for (const char* probed : {"address-partitioning", "instruction-tagging"}) {
    auto config = base;
    config.variations = {probed, "uid-xor"};
    config.attacker.probed_variation = probed;
    config.rediversify_interval = std::chrono::milliseconds(330);
    variation_grid.push_back(experiments::run_population_experiment(config));
  }
  std::printf("--- variation A/B: attacker cost vs. probed keyspace (rotation 330 ms) ---\n\n");
  {
    util::TextTable table;
    table.set_header({"probed variation", "keyspace", "bits", "probes",
                      "compromised lane-ticks", "attacker cost"});
    for (std::size_t c = 1; c <= 5; ++c) table.align_right(c);
    for (const auto& curve : variation_grid) {
      table.add_row({curve.probed_variation, std::to_string(curve.keyspace_keys),
                     util::format("%.1f", curve.keyspace_bits), std::to_string(curve.probes),
                     std::to_string(curve.compromised_lane_ticks),
                     util::format("%.3f", curve.attacker_cost)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "reading: at a fixed defense rate the attacker's cost scales with the probed\n"
        "variation's real entropy — the per-variation units Chen et al. ask diversity\n"
        "effectiveness claims to carry.\n\n");
  }

  const std::string json =
      experiments::curves_to_json(base, grid, comparison, variation_grid, quick);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json;
  out.close();
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), json.size());

  // The acceptance claim, enforced: cost must rise monotonically with the
  // rate. The grid above is ordered slowest-to-fastest.
  bool monotone = true;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    if (grid[i].attacker_cost <= grid[i - 1].attacker_cost) {
      monotone = false;
      std::fprintf(stderr,
                   "MONOTONICITY VIOLATION: rate %.2f Hz cost %.3f <= rate %.2f Hz cost %.3f\n",
                   grid[i].rediversify_rate_hz, grid[i].attacker_cost,
                   grid[i - 1].rediversify_rate_hz, grid[i - 1].attacker_cost);
    }
  }
  const bool adaptive_wins =
      comparison.size() == 2 && comparison[1].attacker_cost > comparison[0].attacker_cost;
  if (!adaptive_wins) {
    std::fprintf(stderr, "adaptive posture did not raise attacker cost over static\n");
  }
  // Entropy claim: more real keyspace must cost the attacker more at the same
  // defense rate (variation_grid is ordered by ascending keyspace_bits).
  bool entropy_monotone = true;
  for (std::size_t i = 1; i < variation_grid.size(); ++i) {
    if (variation_grid[i].keyspace_bits <= variation_grid[i - 1].keyspace_bits ||
        variation_grid[i].attacker_cost <= variation_grid[i - 1].attacker_cost) {
      entropy_monotone = false;
      std::fprintf(stderr,
                   "ENTROPY VIOLATION: %s (%.1f bits) cost %.3f vs %s (%.1f bits) cost %.3f\n",
                   variation_grid[i].probed_variation.c_str(), variation_grid[i].keyspace_bits,
                   variation_grid[i].attacker_cost,
                   variation_grid[i - 1].probed_variation.c_str(),
                   variation_grid[i - 1].keyspace_bits, variation_grid[i - 1].attacker_cost);
    }
  }
  std::printf(
      "=> attacker cost monotone in re-diversification rate: %s; adaptive > static: %s; "
      "cost monotone in probed entropy: %s\n",
      monotone ? "yes" : "NO", adaptive_wins ? "yes" : "NO", entropy_monotone ? "yes" : "NO");
  return monotone && adaptive_wins && entropy_monotone ? 0 : 1;
}

// Chen-et-al-style population effectiveness curves on the real fleet:
// attacker cost vs. the defender's re-diversification rate, and expected
// compromised fraction vs. time, plus an adaptive-defense vs. static-policy
// comparison. Fully deterministic (ManualClock + fixed seed + strict lane
// affinity), so the emitted BENCH_population_curves.json is diffable across
// PRs — CI archives it as the perf trajectory and
// tools/check_population_curves.py validates the schema + monotonicity.
//
//   $ ./bench_population_curves [--quick] [--out BENCH_population_curves.json]
//
// Exit code is non-zero when the core claim fails: attacker cost must rise
// MONOTONICALLY with the re-diversification rate.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "experiments/population_curves.h"
#include "util/strings.h"
#include "util/table.h"

using namespace nv;  // NOLINT

namespace {

experiments::PopulationExperimentConfig base_config(bool quick) {
  experiments::PopulationExperimentConfig config;
  config.pool_size = 4;
  config.seed = 0xC0FFEE;
  config.tick = std::chrono::milliseconds(10);
  config.ticks = quick ? 400 : 1600;
  // Prime, so the success schedule never phase-locks to a rotation interval
  // (footholds land at varied offsets inside the rotation period and the
  // average hold is ~interval/2, as the analytic model expects).
  config.attacker.keyspace = 37;
  config.attacker.probes_per_tick = 1;
  config.timeline_stride = quick ? 8 : 16;
  return config;
}

void print_grid(const std::vector<experiments::PopulationCurve>& grid) {
  util::TextTable table;
  table.set_header({"rediversify", "rate Hz", "probes", "compromised lane-ticks",
                    "mean comp. frac", "attacker cost"});
  for (std::size_t c = 1; c <= 5; ++c) table.align_right(c);
  for (const auto& curve : grid) {
    table.add_row({curve.rediversify_interval_ms == 0
                       ? std::string("never")
                       : util::format("%llu ms", static_cast<unsigned long long>(
                                                     curve.rediversify_interval_ms)),
                   util::format("%.2f", curve.rediversify_rate_hz),
                   std::to_string(curve.probes), std::to_string(curve.compromised_lane_ticks),
                   util::format("%.3f", curve.mean_compromised_fraction),
                   util::format("%.3f", curve.attacker_cost)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_population_curves.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const auto base = base_config(quick);
  std::printf("=== population curves: attacker cost vs. re-diversification rate ===\n");
  std::printf("(pool %u, model keyspace %u, %u ticks x %lld ms manual time%s)\n\n",
              base.pool_size, base.attacker.keyspace, base.ticks,
              static_cast<long long>(base.tick.count()), quick ? ", --quick" : "");

  // The primary grid: periodic re-diversification, slow to fast, campaigns
  // out of the way (the rotation-rate lever in isolation).
  const std::vector<std::uint64_t> intervals_ms = {0, 1280, 640, 320, 160, 80};
  std::vector<experiments::PopulationCurve> grid;
  for (const std::uint64_t interval : intervals_ms) {
    auto config = base;
    config.rediversify_interval = std::chrono::milliseconds(interval);
    grid.push_back(experiments::run_population_experiment(config));
  }
  print_grid(grid);
  std::printf(
      "reading: each probe costs the attacker one real quarantine; every S-th (here %u-th) guess\n"
      "lands silently and HOLDS until that session is re-diversified. Rotating faster\n"
      "shortens every foothold, so the probes the attacker must spend per lane-tick of\n"
      "control — the attacker cost — rises with the re-diversification rate.\n\n",
      base.attacker.keyspace);

  // Adaptive vs. static at the same baseline: campaigns ON (threshold 3,
  // 2 s window), no periodic rotation — the defense must come from the
  // adaptive posture (tighten on alert, re-diversify every 160 ms while
  // tightened, decay after 1 s of quiet).
  std::vector<experiments::PopulationCurve> comparison;
  {
    auto static_config = base;
    static_config.campaign.threshold = 3;
    static_config.campaign.window = std::chrono::milliseconds(2000);
    comparison.push_back(experiments::run_population_experiment(static_config));

    auto adaptive_config = static_config;
    adaptive_config.adaptive = true;
    adaptive_config.adaptive_config.threshold_floor = 1;
    adaptive_config.adaptive_config.window_step = std::chrono::milliseconds(2000);
    adaptive_config.adaptive_config.window_cap = std::chrono::milliseconds(8000);
    adaptive_config.adaptive_config.quiet_period = std::chrono::milliseconds(1000);
    adaptive_config.adaptive_config.tightened_rotation_interval =
        std::chrono::milliseconds(160);
    comparison.push_back(experiments::run_population_experiment(adaptive_config));
  }
  std::printf("--- adaptive defense vs. static policy (no periodic rotation) ---\n\n");
  {
    util::TextTable table;
    table.set_header({"posture", "probes", "compromised lane-ticks", "attacker cost",
                      "rotations", "tightened", "decayed"});
    for (std::size_t c = 1; c <= 6; ++c) table.align_right(c);
    const char* names[] = {"static", "adaptive"};
    for (std::size_t i = 0; i < comparison.size(); ++i) {
      const auto& curve = comparison[i];
      table.add_row({names[i], std::to_string(curve.probes),
                     std::to_string(curve.compromised_lane_ticks),
                     util::format("%.3f", curve.attacker_cost),
                     std::to_string(curve.rotations), std::to_string(curve.policy_tightened),
                     std::to_string(curve.policy_decayed)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "reading: the campaign alert tightens the live policy and starts heightened-\n"
        "posture re-diversification; the same attack against the static policy keeps\n"
        "its footholds. Adaptation buys the rate increase only while under attack.\n\n");
  }

  const std::string json = experiments::curves_to_json(base, grid, comparison, quick);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json;
  out.close();
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), json.size());

  // The acceptance claim, enforced: cost must rise monotonically with the
  // rate. The grid above is ordered slowest-to-fastest.
  bool monotone = true;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    if (grid[i].attacker_cost <= grid[i - 1].attacker_cost) {
      monotone = false;
      std::fprintf(stderr,
                   "MONOTONICITY VIOLATION: rate %.2f Hz cost %.3f <= rate %.2f Hz cost %.3f\n",
                   grid[i].rediversify_rate_hz, grid[i].attacker_cost,
                   grid[i - 1].rediversify_rate_hz, grid[i - 1].attacker_cost);
    }
  }
  const bool adaptive_wins =
      comparison.size() == 2 && comparison[1].attacker_cost > comparison[0].attacker_cost;
  if (!adaptive_wins) {
    std::fprintf(stderr, "adaptive posture did not raise attacker cost over static\n");
  }
  std::printf("=> attacker cost monotone in re-diversification rate: %s; adaptive > static: %s\n",
              monotone ? "yes" : "NO", adaptive_wins ? "yes" : "NO");
  return monotone && adaptive_wins ? 0 : 1;
}

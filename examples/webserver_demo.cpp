// The §4 case study end to end: mini-Apache under a 2-variant UID-variation
// MVEE, serving real (simulated) HTTP, then hit with Chen et al.'s
// non-control-data attack — first against an unprotected single process
// (root shell for the attacker), then against the N-variant system (alarm).
//
//   $ ./examples/webserver_demo
#include <cstdio>
#include <thread>

#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "httpd/client.h"
#include "httpd/mini_httpd.h"
#include "util/strings.h"
#include "variants/registry.h"

using namespace nv;  // NOLINT

namespace {

constexpr std::uint16_t kPort = 8080;

std::map<std::string, std::string> attack_headers() {
  std::string agent(256, 'A');     // fill the 256-byte header buffer...
  agent += std::string(4, '\0');   // ...and overwrite the adjacent worker UID with 0
  return {{"User-Agent", agent}};
}

void wait_for_bind(vkernel::SocketHub& hub) {
  while (!hub.is_bound(kPort)) std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void drive_attack(vkernel::SocketHub& hub, const char* label) {
  std::printf("[%s] GET /            -> %d\n", label, httpd::http_get(hub, kPort, "/").status);
  std::printf("[%s] GET / + overflow User-Agent (overwrites stored worker UID with 0)\n",
              label);
  (void)httpd::http_get(hub, kPort, "/", attack_headers());
  std::printf("[%s] GET /secret/key.txt (escalate; restore from CORRUPTED uid)\n", label);
  const auto secret = httpd::http_get(hub, kPort, "/secret/key.txt");
  std::printf("[%s]   -> status %d\n", label, secret.status);
  const auto who = httpd::http_get(hub, kPort, "/whoami");
  const std::string identity =
      who.status > 0 ? std::string(util::trim(who.body)) : std::string("(no response)");
  std::printf("[%s] GET /whoami      -> \"%s\"\n", label, identity.c_str());
}

}  // namespace

int main() {
  std::printf("=== mini-Apache + UID corruption attack (Chen et al. pattern) ===\n\n");

  // Round 1: unprotected single process.
  std::printf("--- round 1: single process, no defense ---\n");
  {
    vfs::FileSystem fs;
    vkernel::SocketHub hub;
    vkernel::KernelContext ctx(fs, hub);
    httpd::ServerConfig config;
    config.max_requests = 5;
    config.uid_ops_mode = guest::UidOpsMode::kPlain;
    httpd::install_default_site(fs, config);
    httpd::MiniHttpd server;
    std::thread thread([&] { (void)guest::run_plain(ctx, server); });
    wait_for_bind(hub);
    drive_attack(hub, "plain");
    hub.shutdown();
    thread.join();
    std::printf("=> the worker now answers as ROOT: silent compromise.\n\n");
  }

  // Round 2: the same server, same attack, under the 2-variant UID variation.
  std::printf("--- round 2: 2-variant system, UID variation ---\n");
  {
    const auto system = core::NVariantSystem::Builder()
                            .variation(variants::make_builtin("uid-xor"))
                            .build();
    httpd::ServerConfig config;
    config.max_requests = 10;
    config.uid_ops_mode = guest::UidOpsMode::kSyscallChecked;
    httpd::install_default_site(system->fs(), config);
    httpd::MiniHttpd server;
    guest::launch_nvariant(*system, server);
    wait_for_bind(system->hub());
    drive_attack(system->hub(), "nvar ");
    const auto report = system->stop();
    std::printf("=> monitor verdict: %s\n",
                report.alarm ? report.alarm->describe().c_str() : "no alarm");
    std::printf("   the corrupted UID meant two different things in the two variants;\n"
                "   uid_value() exposed the divergence before seteuid installed it.\n");
    return report.attack_detected ? 0 : 1;
  }
}

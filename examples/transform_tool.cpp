// transform_tool: the automated source-to-source UID transformer as a CLI —
// the "could be readily automated" claim of §5 made concrete.
//
//   $ ./examples/transform_tool                   # transform the bundled mini-Apache
//   $ ./examples/transform_tool --mode userspace  # reversed-inequality variant
//   $ ./examples/transform_tool --mask 0x3FFFFFFF # custom reexpression mask
//   $ echo 'int main() { if (!getuid()) { return 1; } return 0; }' |
//       ./examples/transform_tool --stdin
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "transform/analysis.h"
#include "transform/mini_apache.h"
#include "transform/parser.h"
#include "transform/printer.h"
#include "transform/transform_pass.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace nv::transform;  // NOLINT

  TransformOptions options;
  bool from_stdin = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stdin") {
      from_stdin = true;
    } else if (arg == "--mask" && i + 1 < argc) {
      options.mask = static_cast<nv::os::uid_t>(
          nv::util::parse_u64(argv[++i]).value_or(0x7FFFFFFF));
    } else if (arg == "--mode" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "userspace") options.detection = DetectionMode::kUserSpaceReversed;
      else if (mode == "none") options.detection = DetectionMode::kNone;
      else options.detection = DetectionMode::kSyscalls;
    } else if (arg == "--help") {
      std::printf("usage: transform_tool [--stdin] [--mask HEX] [--mode syscalls|userspace|none]\n");
      return 0;
    }
  }

  std::string source;
  if (from_stdin) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    source = std::string(mini_apache_source());
  }

  try {
    Program program = parse(source);
    const AnalysisResult analysis = analyze(program);
    if (!analysis.ok()) {
      for (const auto& error : analysis.errors) std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    for (const auto& inferred : analysis.inferred_uid_vars) {
      std::fprintf(stderr, "note: inferred UID type for %s\n", inferred.c_str());
    }
    TransformStats stats;
    const Program transformed = transform_uid(program, options, &stats);
    std::printf("%s", print(transformed).c_str());
    std::fprintf(stderr,
                 "\n// transformation summary (mask 0x%08x):\n"
                 "//   constants reexpressed : %d\n"
                 "//   implicit made explicit: %d\n"
                 "//   uid_value insertions  : %d\n"
                 "//   cc_* rewrites         : %d\n"
                 "//   cond_chk insertions   : %d\n"
                 "//   inequalities reversed : %d\n"
                 "//   total changes         : %d\n",
                 options.mask, stats.constants_reexpressed, stats.implicit_made_explicit,
                 stats.uid_value_insertions, stats.cc_rewrites, stats.cond_chk_insertions,
                 stats.inequalities_reversed, stats.total());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}

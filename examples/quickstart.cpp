// Quickstart: compose a 3-variant diversity suite by name from the registry
// (address partitioning + UID XOR), validate pairwise disjointedness at
// build time, run a guest, and watch an injected UID value get caught by
// disjoint reexpression.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/diversity_suite.h"
#include "core/interpreter_model.h"
#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "variants/registry.h"

using namespace nv;  // NOLINT

namespace {

/// A well-behaved guest: every UID constant goes through uid_const (the
/// transformed-program discipline), so the variants stay equivalent.
class GoodGuest final : public guest::GuestProgram {
 public:
  void run(guest::GuestContext& ctx) override {
    std::printf("[variant %u] geteuid() -> 0x%08x (my encoding of root)\n", ctx.variant(),
                ctx.geteuid());
    if (ctx.seteuid(ctx.uid_const(1000)) != os::Errno::kOk) ctx.exit(1);
    std::printf("[variant %u] dropped to uid_const(1000) = 0x%08x\n", ctx.variant(),
                ctx.geteuid());
    ctx.exit(0);
  }
};

/// A corrupted guest: a concrete UID value (as an attacker would inject
/// through a memory-corruption bug) flows into a privileged operation.
class CorruptedGuest final : public guest::GuestProgram {
 public:
  void run(guest::GuestContext& ctx) override {
    const os::uid_t injected = 0;  // the attacker wants root
    (void)ctx.uid_value(injected);
    (void)ctx.seteuid(injected);
    ctx.exit(0);
  }
};

/// Compose the demo suite: variations constructed by NAME with typed
/// parameters, then all (R_i, R_j) pairs validated before anything launches.
core::DiversitySuite make_suite(unsigned n_variants) {
  const auto& registry = variants::builtin_registry();
  auto uid = registry.make("uid-xor");
  auto address = registry.make("address-partitioning");
  if (!uid || !address) {
    std::fprintf(stderr, "registry error: %s\n", (!uid ? uid : address).error().c_str());
    std::exit(1);
  }
  auto suite = core::DiversitySuite::compose(n_variants, {*uid, *address});
  if (!suite) {
    std::fprintf(stderr, "suite rejected: %s\n", suite.error().c_str());
    std::exit(1);
  }
  return *std::move(suite);
}

std::unique_ptr<core::NVariantSystem> make_system(const core::DiversitySuite& suite) {
  auto system = core::NVariantSystem::Builder()
                    .suite(suite)
                    .rendezvous_timeout(std::chrono::milliseconds(2000))
                    .build();
  const auto root = os::Credentials::root();
  (void)system->fs().mkdir_p("/etc", root);
  (void)system->fs().write_file("/etc/passwd", "root:x:0:0:r:/:/bin/sh\n", root);
  (void)system->fs().write_file("/etc/group", "root:x:0:\n", root);
  return system;
}

}  // namespace

int main() {
  std::printf("=== nvsys quickstart: N-variant execution with UID data diversity ===\n\n");

  // The model first (Figure 2 in one paragraph): variant 1 stores UIDs XOR
  // 0x7FFFFFFF; the kernel wrapper inverts before use. Trusted data agrees;
  // injected data cannot.
  const core::Identity<os::uid_t> r0;
  const core::XorMask r1(0x7FFFFFFF);
  std::printf("%s\n", core::explain_injection(r0, r1, 0).c_str());

  // Build-time safety: a suite whose reexpressions collide is rejected
  // before any variant launches. uid-xor with mask 0 makes R_1 == R_0.
  {
    auto bad_uid = variants::builtin_registry().make(
        "uid-xor", core::VariationParams{{"mask", std::uint64_t{0}}});
    auto rejected = core::DiversitySuite::compose(2, {*bad_uid});
    std::printf("degenerate suite (uid mask 0): %s\n\n",
                rejected ? "ACCEPTED (bug!)" : rejected.error().c_str());
  }

  // Now the real thing: THREE variants in syscall lockstep under a validated
  // uid-xor + address-partitioning suite.
  const auto suite = make_suite(3);
  std::printf("suite: %s\n\n", suite.describe().c_str());
  const auto system = make_system(suite);

  std::printf("--- normal run (transformed program) ---\n");
  GoodGuest good;
  const auto ok_report = guest::run_nvariant(*system, good);
  std::printf("completed=%s alarms=%s syscall_rounds=%llu\n\n",
              ok_report.completed ? "yes" : "no", ok_report.attack_detected ? "YES" : "none",
              static_cast<unsigned long long>(ok_report.syscall_rounds));

  std::printf("--- attacked run (injected UID 0x00000000) ---\n");
  const auto system2 = make_system(suite);
  CorruptedGuest bad;
  const auto attack_report = guest::run_nvariant(*system2, bad);
  std::printf("attack detected: %s\n", attack_report.attack_detected ? "YES" : "no");
  if (attack_report.alarm) std::printf("alarm: %s\n", attack_report.alarm->describe().c_str());
  return ok_report.completed && !ok_report.attack_detected && attack_report.attack_detected ? 0
                                                                                            : 1;
}

// attack_lab: run any attack from the corpus against any defense and watch
// the outcome, with the three Table 1 variations beyond the UID variation
// (address partitioning via Figure 1, instruction tagging, composition).
//
//   $ ./examples/attack_lab                       # run the full tour
//   $ ./examples/attack_lab uid-full-word uid-variation
#include <cstdio>
#include <string>

#include "attack/attack.h"

using namespace nv::attack;  // NOLINT

namespace {

constexpr AttackKind kAttacks[] = {
    AttackKind::kUidFullWord,      AttackKind::kUidLowByte,     AttackKind::kUidHighBitFlip,
    AttackKind::kAddressInjection, AttackKind::kPointerLowBytes, AttackKind::kCodeInjection,
};
constexpr DefenseKind kDefenses[] = {
    DefenseKind::kSingleProcess,        DefenseKind::kDualIdentical,
    DefenseKind::kAddressPartitioning,  DefenseKind::kExtendedPartitioning,
    DefenseKind::kInstructionTagging,   DefenseKind::kUidVariation,
    DefenseKind::kUidPlusAddress,
};

void run_cell(AttackKind attack, DefenseKind defense) {
  const Outcome outcome = run_attack(attack, defense);
  const Outcome predicted = expected_outcome(attack, defense);
  std::printf("%-28s vs %-24s -> %-10s (paper predicts: %s)%s\n",
              std::string(to_string(attack)).c_str(), std::string(to_string(defense)).c_str(),
              std::string(to_string(outcome)).c_str(), std::string(to_string(predicted)).c_str(),
              outcome == predicted ? "" : "  <-- MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3) {
    for (const auto attack : kAttacks) {
      for (const auto defense : kDefenses) {
        if (std::string(argv[1]) == to_string(attack) &&
            std::string(argv[2]) == to_string(defense)) {
          run_cell(attack, defense);
          return 0;
        }
      }
    }
    std::fprintf(stderr, "unknown attack/defense pair\n");
    return 1;
  }

  std::printf("=== attack lab: guided tour ===\n\n");
  std::printf("1. The motivating attack: UID corruption (Chen et al.)\n");
  run_cell(AttackKind::kUidFullWord, DefenseKind::kSingleProcess);
  run_cell(AttackKind::kUidFullWord, DefenseKind::kDualIdentical);
  run_cell(AttackKind::kUidFullWord, DefenseKind::kUidVariation);

  std::printf("\n2. Figure 1: address partitioning vs absolute-address injection\n");
  run_cell(AttackKind::kAddressInjection, DefenseKind::kSingleProcess);
  run_cell(AttackKind::kAddressInjection, DefenseKind::kAddressPartitioning);

  std::printf("\n3. Partial overwrites: §2.3's caveat and Bruschi's fix\n");
  run_cell(AttackKind::kPointerLowBytes, DefenseKind::kAddressPartitioning);
  run_cell(AttackKind::kPointerLowBytes, DefenseKind::kExtendedPartitioning);

  std::printf("\n4. The §3.2 gap: high-bit flips escape the 0x7FFFFFFF mask\n");
  run_cell(AttackKind::kUidHighBitFlip, DefenseKind::kUidVariation);

  std::printf("\n5. Instruction tagging vs injected code\n");
  run_cell(AttackKind::kCodeInjection, DefenseKind::kSingleProcess);
  run_cell(AttackKind::kCodeInjection, DefenseKind::kInstructionTagging);

  std::printf("\n6. Composition: UID + address variations together (§4)\n");
  run_cell(AttackKind::kUidFullWord, DefenseKind::kUidPlusAddress);
  run_cell(AttackKind::kAddressInjection, DefenseKind::kUidPlusAddress);
  return 0;
}

// Unshared files (§3.4): the kernel transparently redirects trusted-file
// opens to per-variant diversified copies, so each variant reads UIDs in its
// own representation without any reexpression code inside the application.
//
//   $ ./examples/unshared_files_demo
#include <cstdio>

#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "variants/registry.h"

using namespace nv;  // NOLINT

namespace {

class PasswdReader final : public guest::GuestProgram {
 public:
  void run(guest::GuestContext& ctx) override {
    // The guest just opens "/etc/passwd" — the kernel picks the variant copy.
    auto content = ctx.read_file("/etc/passwd");
    if (!content) ctx.exit(1);
    std::printf("[variant %u] /etc/passwd (as this variant sees it):\n%s\n", ctx.variant(),
                content->c_str());
    const auto www = ctx.getpwnam("www");
    if (!www) ctx.exit(1);
    std::printf("[variant %u] getpwnam(\"www\").uid = 0x%08x; installing it...\n",
                ctx.variant(), www->uid);
    // Both variants pass DIFFERENT raw values; the kernel wrapper inverts
    // each to the same canonical UID 33 — normal equivalence holds.
    if (ctx.seteuid(www->uid) != os::Errno::kOk) ctx.exit(1);
    std::printf("[variant %u] geteuid() = 0x%08x (== my encoding of 33: %s)\n", ctx.variant(),
                ctx.geteuid(), ctx.geteuid() == ctx.uid_const(33) ? "yes" : "NO");
    ctx.exit(0);
  }
};

}  // namespace

int main() {
  std::printf("=== Unshared files: per-variant /etc/passwd (§3.4) ===\n\n");

  const auto system = core::NVariantSystem::Builder()
                          .variation(variants::make_builtin("uid-xor"))
                          .build();
  const auto root = os::Credentials::root();
  (void)system->fs().mkdir_p("/etc", root);
  (void)system->fs().write_file("/etc/passwd",
                                "root:x:0:0:root:/root:/bin/sh\n"
                                "www:x:33:33:www-data:/var/www:/usr/sbin/nologin\n"
                                "alice:x:1000:1000:Alice:/home/alice:/bin/sh\n",
                                root);
  (void)system->fs().write_file("/etc/group", "root:x:0:\nwww:x:33:\n", root);

  PasswdReader reader;
  const auto report = guest::run_nvariant(*system, reader);

  std::printf("--- what actually exists in the filesystem ---\n");
  for (const char* path : {"/etc/passwd", "/etc/passwd-0", "/etc/passwd-1"}) {
    auto content = system->fs().read_file(path, root);
    std::printf("%s:\n%s\n", path, content ? content->c_str() : "(absent)");
  }
  std::printf("run: completed=%s alarms=%s\n", report.completed ? "yes" : "no",
              report.attack_detected ? "YES" : "none");
  return report.completed && !report.attack_detected ? 0 : 1;
}

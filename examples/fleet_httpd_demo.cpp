// The fleet posture end to end: a pool of independently-diversified
// mini-Apache MVEE sessions serving concurrent request streams while the
// attack lab fires the User-Agent UID-smash at some of them. Attacked
// sessions alarm, are quarantined with full forensics, and are respawned
// with FRESH diversity parameters — the rest of the fleet never stops
// serving.
//
// New in the ops layer: the three quarantines share one attack SIGNATURE, so
// the CampaignCorrelator folds them into exactly ONE fleet-level
// CampaignAlert (a coordinated campaign, not three unrelated incidents) and
// escalates by rotating every surviving session to a fresh reexpression.
// The alert also drives the ADAPTIVE policy controller: the live campaign
// policy tightens fleet-wide (threshold to the floor, window widened) while
// the attack runs, then decays back to the configured baseline once the
// fleet has been quiet. The run ends with a deadline-bounded graceful drain.
//
// The whole story is also TRACED: an obs::TraceRecorder rides along and the
// demo exports TRACE_fleet_httpd.json (Chrome/Perfetto-loadable) on exit —
// then PROVES, from the recorded events, that the campaign reads as one
// causal chain: the quarantined jobs' spans parent the single CampaignAlert,
// which parents the fleet-wide policy tighten and the escalation rotations.
// Load the JSON at ui.perfetto.dev to see the arrows; docs/TRACING.md is the
// glossary.
//
//   $ ./examples/fleet_httpd_demo
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "fleet/fleet.h"
#include "fleet/jobs.h"
#include "fleet/ops.h"
#include "obs/exporters.h"
#include "obs/trace.h"

using namespace nv;  // NOLINT

namespace {

void print_policy(const char* label, const fleet::CampaignPolicy& policy) {
  std::printf("  %s: threshold %u, window %lld ms, rotation %s\n", label, policy.threshold,
              static_cast<long long>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(policy.window)
                      .count()),
              policy.rotate_fleet_on_alert ? "armed" : "off");
}

}  // namespace

int main() {
  std::printf("=== variant fleet: concurrent MVEE sessions under attack ===\n\n");

  auto recorder = std::make_shared<obs::TraceRecorder>();

  fleet::FleetConfig config;
  config.trace = recorder;
  config.spec.n_variants = 2;
  config.spec.variations = {"uid-xor"};
  config.pool_size = 4;
  config.queue_capacity = 32;
  config.seed = 0xF1EE7;
  config.campaign.threshold = 3;                          // K quarantines...
  config.campaign.window = std::chrono::seconds(60);      // ...within this window
  config.campaign.rotate_fleet_on_alert = true;           // escalate: rotate survivors
  config.adaptive.enabled = true;                         // tighten on alert...
  config.adaptive.threshold_floor = 1;
  config.adaptive.threshold_step = 2;                     // ...straight to the floor
  config.adaptive.window_step = std::chrono::seconds(60);
  config.adaptive.window_cap = std::chrono::minutes(2);
  config.adaptive.quiet_period = std::chrono::milliseconds(300);  // demo-sized
  config.on_campaign = [](const fleet::CampaignAlert& alert) {
    std::printf("  !! CAMPAIGN ALERT: %s\n", alert.describe().c_str());
  };
  fleet::VariantFleet fleet(config);

  std::printf("--- initial fleet (every session drew its own uid mask) ---\n");
  for (const auto& fingerprint : fleet.live_fingerprints()) {
    std::printf("  %s\n", fingerprint.c_str());
  }
  print_policy("baseline campaign policy", fleet.campaign_policy());

  httpd::ServerConfig server;
  server.uid_ops_mode = guest::UidOpsMode::kSyscallChecked;
  server.max_requests = 10;

  std::printf("\n--- dispatching 9 benign request streams + a 3-session UID-smash campaign ---\n");
  std::vector<std::future<fleet::JobOutcome>> normal;
  std::vector<std::future<fleet::JobOutcome>> attacked;
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 3; ++i) {
      normal.push_back(
          fleet.submit(fleet::jobs::httpd_request_stream(server, fleet::jobs::normal_browse(4))));
    }
    attacked.push_back(fleet.submit(
        fleet::jobs::httpd_request_stream(server, fleet::jobs::uid_smash_attack())));
  }

  unsigned normal_ok = 0;
  for (auto& future : normal) normal_ok += future.get().ok() ? 1 : 0;
  unsigned detected = 0;
  for (auto& future : attacked) {
    const auto outcome = future.get();
    detected += (outcome.report.attack_detected && outcome.session_quarantined) ? 1 : 0;
  }
  std::printf("  benign streams completed cleanly: %u/9\n", normal_ok);
  std::printf("  attacks detected & session quarantined: %u/3\n", detected);

  std::printf("\n--- quarantine forensics (alarm retained, replacement re-diversified) ---\n");
  for (const auto& record : fleet.quarantine_log()) {
    std::printf("  %s\n    alarm: %s\n    jobs served before alarm: %llu\n    replaced by %s\n",
                record.fingerprint.c_str(), record.alarm.describe().c_str(),
                static_cast<unsigned long long>(record.jobs_served),
                record.replacement_fingerprint.c_str());
  }

  std::printf("\n--- campaign correlation (3 quarantines, ONE signature, ONE alert) ---\n");
  const auto alerts = fleet.campaign_alerts();
  for (const auto& alert : alerts) {
    std::printf("  %s\n  burned reexpressions:\n", alert.describe().c_str());
    for (const auto& fingerprint : alert.fingerprints) {
      std::printf("    %s\n", fingerprint.c_str());
    }
  }
  const bool one_campaign = alerts.size() == 1 && alerts[0].session_ids.size() == 3;

  std::printf("\n--- adaptive defense: the alert TIGHTENED the live policy fleet-wide ---\n");
  const fleet::CampaignPolicy during = fleet.campaign_policy();
  print_policy("live policy under attack", during);
  // config.adaptive.enabled above guarantees the controller exists.
  const bool tightened = during.threshold == 1 &&
                         during.window > config.campaign.window &&
                         fleet.adaptive()->tightened();
  std::printf("  (%s)\n", fleet.adaptive()->describe().c_str());

  std::printf("\n--- fleet after recovery + rotation escalation (all-new reexpressions) ---\n");
  for (const auto& fingerprint : fleet.live_fingerprints()) {
    std::printf("  %s\n", fingerprint.c_str());
  }

  // The attacker goes quiet: after the (demo-sized) quiet period the policy
  // decays back to the baseline on its own — heightened posture is only paid
  // for while it earns something.
  std::this_thread::sleep_for(std::chrono::milliseconds(450));
  (void)fleet.poll_adaptive();
  std::printf("\n--- attacker quiet for a beat: the policy DECAYED back to baseline ---\n");
  const fleet::CampaignPolicy after = fleet.campaign_policy();
  print_policy("live policy after decay", after);
  const bool decayed = after.threshold == config.campaign.threshold &&
                       after.window == config.campaign.window &&
                       !fleet.adaptive()->tightened();
  std::printf("  (%s)\n", fleet.adaptive()->describe().c_str());

  // Deadline-bounded graceful drain: admission stops, in-flight work
  // finishes, and anything still queued past the deadline comes back counted.
  const fleet::DrainReport drain = fleet.shutdown(std::chrono::milliseconds(2000));
  std::printf("\n--- graceful drain ---\n  %s\n", drain.describe().c_str());
  std::printf("\n--- telemetry ---\n  %s\n", fleet.telemetry().snapshot().describe().c_str());

  // The trace must tell the same story as the counters, as ONE causal chain:
  // each quarantine carries its poisoning job's span, the single alert is
  // parented to the job that crossed the threshold, and the policy tighten
  // hangs off the alert. Rotations the escalation caused (lanes rotate
  // lazily, so the count depends on post-alert traffic) must all point at
  // the alert too.
  std::printf("\n--- causal trace (obs::TraceRecorder rode along) ---\n");
  std::set<std::uint64_t> quarantine_spans;
  std::uint64_t alert_span = 0;
  std::uint64_t alert_parent = 0;
  unsigned alert_events = 0;
  unsigned tightens_on_alert = 0;
  unsigned rotations_on_alert = 0;
  for (const auto& event : recorder->all_events()) {
    switch (event.kind) {
      case obs::TraceEventKind::kQuarantine: quarantine_spans.insert(event.span); break;
      case obs::TraceEventKind::kCampaignAlert:
        ++alert_events;
        alert_span = event.span;
        alert_parent = event.parent;
        break;
      case obs::TraceEventKind::kPolicyTightened:
        tightens_on_alert += event.parent != 0 && event.parent == alert_span ? 1 : 0;
        break;
      case obs::TraceEventKind::kRotation:
        rotations_on_alert += event.parent != 0 && event.parent == alert_span ? 1 : 0;
        break;
      default: break;
    }
  }
  const bool chain = alert_events == 1 && quarantine_spans.size() == 3 &&
                     quarantine_spans.count(alert_parent) == 1 && tightens_on_alert == 1;
  std::printf("  quarantined job spans: %zu; alert parented to a quarantined job: %s;\n"
              "  tighten parented to the alert: %s; escalation rotations on the alert: %u\n",
              quarantine_spans.size(), chain ? "yes" : "NO",
              tightens_on_alert == 1 ? "yes" : "NO", rotations_on_alert);

  bool traced = false;
  {
    std::ofstream out("TRACE_fleet_httpd.json");
    if (out) {
      out << obs::to_chrome_trace(*recorder);
      traced = static_cast<bool>(out);
    }
  }
  std::printf("  wrote TRACE_fleet_httpd.json (%llu events, %llu dropped) — load it at\n"
              "  ui.perfetto.dev to see the campaign chain as flow arrows\n",
              static_cast<unsigned long long>(recorder->recorded()),
              static_cast<unsigned long long>(recorder->dropped()));
  std::printf("\n=> the attacker burned 3 sessions and the fleet called it what it is: ONE\n"
              "   coordinated campaign. The live policy tightened while the campaign ran\n"
              "   and relaxed once it stopped; every replacement AND every survivor is now\n"
              "   diversified differently from anything the campaign observed, and the\n"
              "   fleet drained without abandoning a benign stream.\n");
  return (normal_ok == 9 && detected == 3 && one_campaign && tightened && decayed &&
          drain.clean && chain && traced)
             ? 0
             : 1;
}

// mini-ftpd under attack: the wu-ftpd SITE-overrun / REIN-escalation pattern
// from Chen et al. — silent root on the unprotected daemon, immediate alarm
// under the 2-variant UID variation.
//
//   $ ./examples/ftp_demo
#include <cstdio>
#include <thread>

#include "core/nvariant_system.h"
#include "guest/runners.h"
#include "httpd/mini_ftpd.h"
#include "util/strings.h"
#include "variants/registry.h"

using namespace nv;  // NOLINT

namespace {

constexpr std::uint16_t kPort = 2121;

void session(vkernel::SocketHub& hub, const char* label,
             const std::vector<std::string>& commands) {
  auto conn = hub.connect(kPort);
  if (!conn) {
    std::printf("[%s] connection refused (system already halted)\n", label);
    return;
  }
  auto greeting = conn->recv_until("\r\n");
  if (greeting) std::printf("[%s] S: %s\n", label, std::string(util::trim(*greeting)).c_str());
  for (const auto& command : commands) {
    const std::string shown =
        command.size() > 40 ? command.substr(0, 37) + "..." : command;
    std::printf("[%s] C: %s\n", label, shown.c_str());
    if (!conn->send(command + "\r\n")) break;
    auto reply = conn->recv_until("\r\n");
    if (!reply || reply->empty()) {
      std::printf("[%s] S: (connection severed)\n", label);
      break;
    }
    std::printf("[%s] S: %s\n", label, std::string(util::trim(*reply)).c_str());
  }
  conn->close();
}

std::vector<std::string> attack_script() {
  std::string overrun(128, 'A');
  overrun += std::string(4, '\0');  // overwrite session UID with 0 (root)
  return {"USER alice", "PASS wonderland", "SITE " + overrun,
          "REIN",       "WHOAMI",          "RETR /etc/master.key"};
}

}  // namespace

int main() {
  std::printf("=== mini-ftpd: the wu-ftpd non-control-data attack (Chen et al.) ===\n\n");

  std::printf("--- unprotected daemon ---\n");
  {
    vfs::FileSystem fs;
    vkernel::SocketHub hub;
    vkernel::KernelContext ctx(fs, hub);
    httpd::FtpdConfig config;
    config.uid_ops_mode = guest::UidOpsMode::kPlain;
    config.max_sessions = 1;
    httpd::install_ftpd_site(fs, config);
    httpd::MiniFtpd server(config);
    std::thread thread([&] { (void)guest::run_plain(ctx, server); });
    while (!hub.is_bound(kPort)) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    session(hub, "plain", attack_script());
    hub.shutdown();
    thread.join();
    std::printf("=> WHOAMI says root and the root-only key leaked: silent compromise.\n\n");
  }

  std::printf("--- 2-variant UID variation ---\n");
  {
    const auto system = core::NVariantSystem::Builder()
                            .variation(variants::make_builtin("uid-xor"))
                            .build();
    httpd::FtpdConfig config;
    config.max_sessions = 2;
    httpd::install_ftpd_site(system->fs(), config);
    httpd::MiniFtpd server(config);
    guest::launch_nvariant(*system, server);
    while (!system->hub().is_bound(kPort)) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    session(system->hub(), "nvar ", attack_script());
    const auto report = system->stop();
    std::printf("=> monitor verdict: %s\n",
                report.alarm ? report.alarm->describe().c_str() : "no alarm");
    return report.attack_detected ? 0 : 1;
  }
}

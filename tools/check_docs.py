#!/usr/bin/env python3
"""Documentation consistency checks, run by the CI docs job.

1. Markdown link check: every relative link in README.md and docs/*.md must
   point at a file (or directory) that exists in the repo. External links
   (http/https/mailto) are not fetched.
2. Telemetry coverage: every field of fleet::FleetSnapshot declared in
   src/fleet/telemetry.h — and of cluster::ClusterSnapshot declared in
   src/cluster/telemetry.h — must appear (as `backtick-quoted` code) in
   docs/TELEMETRY.md — a counter or gauge without documented semantics is a
   CI failure, per the docs contract.
3. Trace coverage: every obs::TraceEventKind enumerator declared in
   src/obs/trace.h must have a `backtick-quoted` entry in docs/TRACING.md
   under its stable lower_snake name (kSessionDraw -> `session_draw`) — an
   event kind without documented span/parent/operand semantics is a CI
   failure, same contract.
4. Lint-rule coverage: every rule id tools/nvlint.py enforces (its RULE_IDS
   tuple) must have a `backtick-quoted` glossary entry in
   docs/STATIC_ANALYSIS.md — a lint failure whose rule has no documented
   rationale is not actionable.

Usage: check_docs.py [repo_root]     (default: the tools/ parent)
Exit code 0 on success, 1 with messages on any violation.
"""
import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Field declarations inside the FleetSnapshot struct, e.g.
#   std::uint64_t jobs_submitted = 0;   double latency_mean_us = 0.0;
FIELD_RE = re.compile(r"^\s*(?:std::uint64_t|std::size_t|double)\s+(\w+)\s*=", re.MULTILINE)


def check_links(root: pathlib.Path, errors: list) -> int:
    checked = 0
    for md in [root / "README.md", *sorted((root / "docs").glob("*.md"))]:
        if not md.exists():
            errors.append(f"{md}: expected markdown file is missing")
            continue
        in_code_block = False
        for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_code_block = not in_code_block
            if in_code_block:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                checked += 1
                if not (md.parent / path).exists():
                    errors.append(f"{md.relative_to(root)}:{lineno}: broken link -> {target}")
    return checked


SNAPSHOT_STRUCTS = [
    (("src", "fleet", "telemetry.h"), "FleetSnapshot"),
    (("src", "cluster", "telemetry.h"), "ClusterSnapshot"),
]


def check_telemetry_coverage(root: pathlib.Path, errors: list) -> int:
    glossary = root / "docs" / "TELEMETRY.md"
    documented = glossary.read_text(encoding="utf-8") if glossary.exists() else ""
    total = 0
    for parts, struct in SNAPSHOT_STRUCTS:
        header = root.joinpath(*parts)
        text = header.read_text(encoding="utf-8")
        match = re.search(rf"struct {struct} \{{(.*?)\n\}};", text, re.DOTALL)
        if not match:
            errors.append(f"{header}: cannot locate struct {struct}")
            continue
        fields = FIELD_RE.findall(match.group(1))
        if not fields:
            errors.append(f"{header}: found no {struct} fields to check")
        for field in fields:
            if f"`{field}`" not in documented:
                errors.append(
                    f"{struct} field '{field}' has no entry in docs/TELEMETRY.md")
        total += len(fields)
    return total


# Enumerators inside the TraceEventKind enum, e.g. "kSessionDraw," — the
# trailing comment is ignored.
ENUMERATOR_RE = re.compile(r"^\s*k(\w+)\s*,", re.MULTILINE)


def snake_case(camel: str) -> str:
    """kSessionDraw's payload 'SessionDraw' -> 'session_draw'."""
    return re.sub(r"(?<!^)([A-Z])", r"_\1", camel).lower()


def check_trace_coverage(root: pathlib.Path, errors: list) -> int:
    header = root / "src" / "obs" / "trace.h"
    glossary = root / "docs" / "TRACING.md"
    documented = glossary.read_text(encoding="utf-8") if glossary.exists() else ""
    text = header.read_text(encoding="utf-8")
    match = re.search(r"enum class TraceEventKind[^{]*\{(.*?)\n\};", text, re.DOTALL)
    if not match:
        errors.append(f"{header}: cannot locate enum TraceEventKind")
        return 0
    kinds = ENUMERATOR_RE.findall(match.group(1))
    if not kinds:
        errors.append(f"{header}: found no TraceEventKind enumerators to check")
    for kind in kinds:
        name = snake_case(kind)
        if f"`{name}`" not in documented:
            errors.append(
                f"TraceEventKind::k{kind} ('{name}') has no entry in docs/TRACING.md")
    return len(kinds)


NVLINT_RULE_RE = re.compile(r'RULE_IDS\s*=\s*\(([^)]*)\)', re.DOTALL)


def check_nvlint_rule_coverage(root: pathlib.Path, errors: list) -> int:
    linter = root / "tools" / "nvlint.py"
    glossary = root / "docs" / "STATIC_ANALYSIS.md"
    documented = glossary.read_text(encoding="utf-8") if glossary.exists() else ""
    match = NVLINT_RULE_RE.search(linter.read_text(encoding="utf-8"))
    if not match:
        errors.append(f"{linter}: cannot locate the RULE_IDS tuple")
        return 0
    rules = re.findall(r'"(NV-[A-Z-]+)"', match.group(1))
    if not rules:
        errors.append(f"{linter}: found no rule ids to check")
    for rule in rules:
        if f"`{rule}`" not in documented:
            errors.append(
                f"nvlint rule '{rule}' has no glossary entry in docs/STATIC_ANALYSIS.md")
    return len(rules)


def main() -> None:
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else \
        pathlib.Path(__file__).resolve().parent.parent
    errors: list = []
    links = check_links(root, errors)
    fields = check_telemetry_coverage(root, errors)
    kinds = check_trace_coverage(root, errors)
    rules = check_nvlint_rule_coverage(root, errors)
    if errors:
        for error in errors:
            print(f"check_docs: FAIL: {error}", file=sys.stderr)
        sys.exit(1)
    print(f"check_docs: OK ({links} relative links, "
          f"{fields} telemetry fields documented, "
          f"{kinds} trace event kinds documented, "
          f"{rules} nvlint rules documented)")


if __name__ == "__main__":
    main()

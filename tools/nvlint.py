#!/usr/bin/env python3
"""nvlint — project-invariant linter for the N-variant codebase.

Compile-time tools (clang -Wthread-safety, clang-tidy) catch generic bug
classes; nvlint enforces the invariants that are specific to THIS project and
invisible to a generic checker. Rules (glossary with rationale in
docs/STATIC_ANALYSIS.md):

  NV-RAW-CLOCK     No std::chrono::*_clock::now() / sleep_for / sleep_until
                   in src/ outside the blessed ClockFn implementations.
                   Determinism rests on injected clocks; a raw clock read is
                   a hidden source of run-to-run divergence. Enforced on
                   src/ only — tests and benches measure real time by design.
  NV-RAW-RANDOM    No rand()/srand()/std::random_device in src/ outside the
                   SessionFactory seed plumbing. All randomness must flow
                   from the seeded util::Rng so runs are reproducible.
  NV-SYS-BATCH     Every vkernel::Sys enumerator must have a descriptor-table
                   row with an EXPLICIT BatchPolicy token. A row that relies
                   on the row() default silently pins a syscall to the full
                   barrier — the pipelining decision must be visible and
                   reviewable at the table.
  NV-MEMORY-ORDER  Every atomic load/store/RMW spells std::memory_order
                   explicitly (including ++/--/+= on atomics, which are
                   hidden seq_cst RMWs). Defaulted seq_cst hides the cost and
                   the intent; the codebase's convention is relaxed counters
                   with mutex-serialized writers, so every site must say so.
  NV-MUTEX-GUARD   Every std::mutex / util::Mutex member must be consumed by
                   at least one NV_GUARDED_BY / NV_PT_GUARDED_BY /
                   NV_REQUIRES / NV_ACQUIRE / NV_EXCLUDES annotation naming
                   it. A mutex no annotation mentions protects nothing the
                   analysis can check — either annotate what it guards or
                   allowlist it with a reason (e.g. ordering-only mutexes).

Analysis engine: libclang when importable (AST-accurate call resolution for
the clock/random rules, driven by the compilation database), with a
token-level fallback that works on a bare python3 — comments and string
literals are stripped before matching, call argument spans are extracted with
balanced-paren scanning, so the fallback is far stricter than a grep. The
remaining rules are inherently lexical/tabular and always run token-level.

Allowlist: tools/nvlint_allowlist.txt. Each non-comment line is
    RULE-ID <path> [line-substring]
A finding is suppressed when its rule and repo-relative path match and, if a
substring is given, the substring occurs in the flagged line. Entries without
a substring suppress the whole file for that rule. Keep entries commented
with WHY. Unused entries are reported as warnings so the list stays tight.

Usage:
    tools/nvlint.py [--root DIR] [--compdb build/compile_commands.json]
                    [--allowlist tools/nvlint_allowlist.txt] [paths...]
Exit 0 when clean, 1 with one finding per line otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from dataclasses import dataclass

RULE_IDS = (
    "NV-RAW-CLOCK",
    "NV-RAW-RANDOM",
    "NV-SYS-BATCH",
    "NV-MEMORY-ORDER",
    "NV-MUTEX-GUARD",
)

SOURCE_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}
DEFAULT_ROOTS = ("src", "tests", "bench", "examples")
# NV-RAW-CLOCK / NV-RAW-RANDOM only police production code: tests, benches
# and demos measure wall time and shuffle inputs by design.
DETERMINISM_DIRS = ("src",)

SYS_ENUM_HEADER = pathlib.Path("src") / "vkernel" / "syscalls.h"
DESCRIPTOR_TABLE = pathlib.Path("src") / "vkernel" / "syscall_descriptors.cpp"


@dataclass
class Finding:
    rule: str
    path: pathlib.Path  # repo-relative
    line: int  # 1-based
    message: str
    line_text: str


# --------------------------------------------------------------------------
# Lexing helpers
# --------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving offsets.

    Every replaced character becomes a space (newlines survive), so byte
    offsets and line numbers in the stripped text match the original.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def line_text(raw_lines: list[str], line: int) -> str:
    if 1 <= line <= len(raw_lines):
        return raw_lines[line - 1].strip()
    return ""


def call_span(text: str, open_paren: int) -> int:
    """Return the offset one past the ')' matching text[open_paren] == '('."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# --------------------------------------------------------------------------
# NV-RAW-CLOCK / NV-RAW-RANDOM (token-level)
# --------------------------------------------------------------------------

CLOCK_RE = re.compile(
    r"(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
    r"|std\s*::\s*this_thread\s*::\s*sleep_(?:for|until)\s*\("
)
RANDOM_RE = re.compile(r"\bstd\s*::\s*random_device\b|(?<![\w:])s?rand\s*\(")


def check_pattern_rule(rule: str, pattern: re.Pattern, message: str,
                       path: pathlib.Path, stripped: str,
                       raw_lines: list[str]) -> list[Finding]:
    findings = []
    for m in pattern.finditer(stripped):
        line = line_of(stripped, m.start())
        findings.append(Finding(rule, path, line, message, line_text(raw_lines, line)))
    return findings


# --------------------------------------------------------------------------
# NV-MEMORY-ORDER
# --------------------------------------------------------------------------

# Atomic member ops whose receiver we do not need to type-resolve: these
# method names are atomic-specific in this codebase.
ATOMIC_CALL_RE = re.compile(
    r"\.\s*(load|store|fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor"
    r"|compare_exchange_weak|compare_exchange_strong)\s*\("
)
# exchange() also names SyscallRendezvous::exchange(); only flag it when the
# receiver is a known atomic variable from this file or its paired header.
EXCHANGE_CALL_RE = re.compile(r"(\w+)\s*\.\s*exchange\s*\(")
ATOMIC_DECL_RE = re.compile(r"\bstd\s*::\s*atomic(?:_bool|_int|_uint)?\s*(?:<[^;{}()]*?>)?\s+(\w+)")


def atomic_names_in(stripped: str) -> set:
    return {m.group(1) for m in ATOMIC_DECL_RE.finditer(stripped)}


def check_memory_order(path: pathlib.Path, stripped: str, raw_lines: list[str],
                       paired_stripped: str) -> list[Finding]:
    findings = []
    names = atomic_names_in(stripped) | atomic_names_in(paired_stripped)

    def flag_call(match_start: int, open_paren: int, what: str):
        args = stripped[open_paren:call_span(stripped, open_paren)]
        if "memory_order" not in args:
            line = line_of(stripped, match_start)
            findings.append(Finding(
                "NV-MEMORY-ORDER", path, line,
                f"atomic {what} without an explicit std::memory_order",
                line_text(raw_lines, line)))

    for m in ATOMIC_CALL_RE.finditer(stripped):
        flag_call(m.start(), m.end() - 1, f"{m.group(1)}()")
    for m in EXCHANGE_CALL_RE.finditer(stripped):
        if m.group(1) in names:
            flag_call(m.start(), m.end() - 1, "exchange()")

    # ++x / x++ / --x / x-- / x op= on declared atomics: hidden seq_cst RMWs.
    for name in names:
        implicit = re.compile(
            r"(?:\+\+|--)\s*" + re.escape(name) + r"\b"
            r"|\b" + re.escape(name) + r"\s*(?:\+\+|--|[-+|&^]=)"
        )
        for m in implicit.finditer(stripped):
            line = line_of(stripped, m.start())
            findings.append(Finding(
                "NV-MEMORY-ORDER", path, line,
                f"implicit seq_cst read-modify-write on atomic '{name}' "
                "(use fetch_add/fetch_sub with an explicit order)",
                line_text(raw_lines, line)))
    return findings


# --------------------------------------------------------------------------
# NV-MUTEX-GUARD
# --------------------------------------------------------------------------

MUTEX_DECL_RE = re.compile(
    r"(?:mutable\s+)?(?:std\s*::\s*mutex|(?:nv\s*::\s*)?util\s*::\s*Mutex|\bMutex)\s+(\w+)\s*;"
)
CONSUMER_MACROS = ("NV_GUARDED_BY", "NV_PT_GUARDED_BY", "NV_REQUIRES",
                   "NV_ACQUIRE", "NV_RELEASE", "NV_EXCLUDES", "NV_TRY_ACQUIRE")


def check_mutex_guard(path: pathlib.Path, stripped: str,
                      raw_lines: list[str], paired_stripped: str) -> list[Finding]:
    findings = []
    both = stripped + "\n" + paired_stripped
    for m in MUTEX_DECL_RE.finditer(stripped):
        name = m.group(1)
        consumed = any(
            re.search(re.escape(macro) + r"\s*\(\s*[\w.>*-]*" + re.escape(name) + r"\b", both)
            for macro in CONSUMER_MACROS)
        if not consumed:
            line = line_of(stripped, m.start())
            findings.append(Finding(
                "NV-MUTEX-GUARD", path, line,
                f"mutex member '{name}' has no NV_GUARDED_BY/NV_REQUIRES consumer "
                "— annotate what it guards or allowlist it with a reason",
                line_text(raw_lines, line)))
    return findings


# --------------------------------------------------------------------------
# NV-SYS-BATCH
# --------------------------------------------------------------------------

BATCH_TOKEN_RE = re.compile(r"\bkBarrier\b|\bkCoalesce\b|\bkCompletion\b|\bBatchPolicy\s*::")


def check_sys_batch(root: pathlib.Path) -> list[Finding]:
    findings = []
    enum_path = root / SYS_ENUM_HEADER
    table_path = root / DESCRIPTOR_TABLE
    if not enum_path.exists() or not table_path.exists():
        return findings  # scanning a partial tree (e.g. lint fixtures)

    enum_text = strip_comments_and_strings(enum_path.read_text(encoding="utf-8"))
    enum_match = re.search(r"enum\s+class\s+Sys\b[^{]*\{", enum_text)
    if not enum_match:
        findings.append(Finding("NV-SYS-BATCH", SYS_ENUM_HEADER, 1,
                                "could not locate 'enum class Sys'", ""))
        return findings
    body = enum_text[enum_match.end():enum_text.index("}", enum_match.end())]
    enumerators = re.findall(r"\b(k\w+)\b", body)

    table_raw = table_path.read_text(encoding="utf-8")
    table = strip_comments_and_strings(table_raw)
    table_lines = table_raw.splitlines()
    # Map enumerator -> list of (line, has_batch_token) over row(Sys::kX, ...)
    rows: dict = {}
    for m in re.finditer(r"\brow\s*\(\s*Sys\s*::\s*(k\w+)", table):
        open_paren = table.index("(", m.start())
        span = table[open_paren:call_span(table, open_paren)]
        rows.setdefault(m.group(1), []).append(
            (line_of(table, m.start()), bool(BATCH_TOKEN_RE.search(span))))
    for enumerator in enumerators:
        entries = rows.get(enumerator, [])
        if not entries:
            findings.append(Finding(
                "NV-SYS-BATCH", DESCRIPTOR_TABLE, 1,
                f"Sys::{enumerator} has no descriptor-table row",
                ""))
        elif not any(has_token for _, has_token in entries):
            line = entries[0][0]
            findings.append(Finding(
                "NV-SYS-BATCH", DESCRIPTOR_TABLE, line,
                f"Sys::{enumerator} row relies on the default BatchPolicy "
                "— spell the batch token explicitly",
                line_text(table_lines, line)))
    return findings


# --------------------------------------------------------------------------
# Optional libclang refinement (clock/random rules only)
# --------------------------------------------------------------------------

def libclang_clock_random(root: pathlib.Path, compdb_path: pathlib.Path,
                          files: list[pathlib.Path]):
    """AST-accurate NV-RAW-CLOCK / NV-RAW-RANDOM findings, or None on any
    failure (missing libclang, unparsable TU) — caller falls back to tokens."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    try:
        compdb = cindex.CompilationDatabase.fromDirectory(str(compdb_path.parent))
        index = cindex.Index.create()
        wanted = {str((root / f).resolve()) for f in files}
        findings: list[Finding] = []
        seen = set()
        for cmd in compdb.getAllCompileCommands():
            src = str(pathlib.Path(cmd.directory, cmd.filename).resolve())
            if src in seen:
                continue
            seen.add(src)
            args = [a for a in list(cmd.arguments)[1:] if a != cmd.filename]
            tu = index.parse(src, args=args)
            for cursor in tu.cursor.walk_preorder():
                loc = cursor.location
                if loc.file is None or str(pathlib.Path(str(loc.file)).resolve()) not in wanted:
                    continue
                if cursor.kind != cindex.CursorKind.CALL_EXPR:
                    continue
                ref = cursor.referenced
                if ref is None:
                    continue
                qual = ref.spelling
                parent = ref.semantic_parent.spelling if ref.semantic_parent else ""
                rel = pathlib.Path(str(loc.file)).resolve().relative_to(root.resolve())
                if qual == "now" and parent.endswith("_clock"):
                    findings.append(Finding("NV-RAW-CLOCK", rel, loc.line,
                                            f"raw {parent}::now() call", ""))
                elif qual in ("sleep_for", "sleep_until"):
                    findings.append(Finding("NV-RAW-CLOCK", rel, loc.line,
                                            f"raw std::this_thread::{qual}() call", ""))
                elif qual in ("rand", "srand") or parent == "random_device":
                    findings.append(Finding("NV-RAW-RANDOM", rel, loc.line,
                                            f"unseeded randomness via {qual}()", ""))
        return findings
    except Exception:
        return None


# --------------------------------------------------------------------------
# Allowlist
# --------------------------------------------------------------------------

def load_allowlist(path: pathlib.Path):
    entries = []  # (rule, path-str, substring-or-None, lineno)
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split(None, 2)
        if len(parts) < 2 or parts[0] not in RULE_IDS:
            print(f"{path}:{lineno}: malformed allowlist entry: {raw.strip()}",
                  file=sys.stderr)
            sys.exit(2)
        entries.append([parts[0], parts[1],
                        parts[2].strip() if len(parts) > 2 else None, lineno, False])
    return entries


def allowlisted(finding: Finding, entries) -> bool:
    for entry in entries:
        rule, epath, substring, _, _ = entry
        if rule != finding.rule or epath != finding.path.as_posix():
            continue
        if substring is None or substring in finding.line_text:
            entry[4] = True
            return True
    return False


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def collect_files(root: pathlib.Path, paths: list) -> list:
    files = []
    candidates = [root / p for p in paths] if paths else [root / d for d in DEFAULT_ROOTS]
    for candidate in candidates:
        if candidate.is_file():
            files.append(candidate)
        elif candidate.is_dir():
            # lint_fixtures are deliberate violations for the fixture runner;
            # they only lint when named explicitly.
            files.extend(p for p in sorted(candidate.rglob("*"))
                         if p.suffix in SOURCE_SUFFIXES
                         and "lint_fixtures" not in p.parts)
    return [f.relative_to(root) for f in files]


def paired_header_text(root: pathlib.Path, rel: pathlib.Path) -> str:
    if rel.suffix not in (".cpp", ".cc"):
        return ""
    for suffix in (".h", ".hpp"):
        pair = root / rel.with_suffix(suffix)
        if pair.exists():
            return strip_comments_and_strings(pair.read_text(encoding="utf-8"))
    return ""


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files/dirs relative to --root (default: "
                             + " ".join(DEFAULT_ROOTS) + ")")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json for the libclang path "
                             "(default: <root>/build/compile_commands.json)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: tools/nvlint_allowlist.txt; "
                             "'none' disables)")
    parser.add_argument("--no-libclang", action="store_true",
                        help="force the token-level engine even if libclang imports")
    args = parser.parse_args()

    root = pathlib.Path(args.root) if args.root else pathlib.Path(__file__).resolve().parent.parent
    compdb = pathlib.Path(args.compdb) if args.compdb else root / "build" / "compile_commands.json"
    if args.allowlist == "none":
        allowlist_path = None
    else:
        allowlist_path = pathlib.Path(args.allowlist) if args.allowlist \
            else root / "tools" / "nvlint_allowlist.txt"
    entries = load_allowlist(allowlist_path) if allowlist_path else []

    files = collect_files(root, args.paths)
    determinism_files = [f for f in files
                        if any(f.as_posix().startswith(d + "/") for d in DETERMINISM_DIRS)
                        or (len(f.parts) == 1 and not args.paths)]
    if args.paths:
        # Explicit paths (fixture mode): determinism rules apply to everything
        # the caller named — the caller opted in.
        determinism_files = files

    findings: list[Finding] = []

    clock_random = None
    if not args.no_libclang and compdb.exists():
        clock_random = libclang_clock_random(root, compdb, determinism_files)
    if clock_random is not None:
        findings.extend(clock_random)

    for rel in files:
        raw = (root / rel).read_text(encoding="utf-8", errors="replace")
        raw_lines = raw.splitlines()
        stripped = strip_comments_and_strings(raw)
        paired = paired_header_text(root, rel)
        if clock_random is None and rel in determinism_files:
            findings.extend(check_pattern_rule(
                "NV-RAW-CLOCK", CLOCK_RE,
                "raw clock read / sleep — route time through the injected ClockFn",
                rel, stripped, raw_lines))
            findings.extend(check_pattern_rule(
                "NV-RAW-RANDOM", RANDOM_RE,
                "unseeded randomness — draw from the seeded util::Rng",
                rel, stripped, raw_lines))
        findings.extend(check_memory_order(rel, stripped, raw_lines, paired))
        findings.extend(check_mutex_guard(rel, stripped, raw_lines, paired))

    findings.extend(check_sys_batch(root))

    kept = [f for f in findings if not allowlisted(f, entries)]
    for f in sorted(kept, key=lambda f: (f.path.as_posix(), f.line, f.rule)):
        snippet = f" [{f.line_text}]" if f.line_text else ""
        print(f"{f.path.as_posix()}:{f.line}: {f.rule}: {f.message}{snippet}")

    for rule, epath, substring, lineno, used in entries:
        if not used and not args.paths:
            print(f"warning: unused allowlist entry at "
                  f"{allowlist_path}:{lineno} ({rule} {epath})", file=sys.stderr)

    if kept:
        print(f"nvlint: {len(kept)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Schema + invariant check for BENCH_load_curves.json.

CI runs this on the document bench_load_curves just wrote, so future PRs can
diff fleet load behaviour knowing the shape is stable and the claims hold.
The written contract for this document lives in docs/BENCH_SCHEMAS.md.

  - schema is "load_curves/v1" with the documented keys;
  - the curve is sorted by rho and each point's arithmetic is internally
    consistent (offered == admitted + shed, shed_fraction == shed/offered,
    goodput_per_sec == completed/duration_s, within rounding);
  - benign p99 is non-decreasing in offered load (within claims.p99_tolerance
    slack for quantization) and saturates: the heaviest point's p99 exceeds
    the lightest's;
  - shed fraction is monotone non-decreasing along the curve, zero before the
    knee never following non-zero;
  - knee_index matches a recomputation from claims.shed_threshold /
    claims.latency_knee_factor and lands strictly inside the curve;
  - the campaign pair detected the attack (campaign_alerts >=
    claims.campaign_alerts_min, quarantines at least that many) and benign
    goodput held: goodput_ratio >= claims.goodput_floor and equals
    attacked.goodput / baseline.goodput.

Usage: check_load_curves.py BENCH_load_curves.json
Exit code 0 on success, 1 with a message on any violation.
"""
import json
import sys

POINT_KEYS = {
    "rho", "offered", "offered_per_sec", "admitted", "shed", "shed_fraction",
    "deadline_dropped", "completed", "errors", "goodput_per_sec",
    "latency_count", "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
    "queue_high_watermark", "quarantined", "campaign_alerts", "duration_s",
}
CONFIG_KEYS = {
    "pool_size", "queue_capacity", "admission", "quantum_ms", "horizon_ms",
    "seed", "mean_service_ms", "attacker_fraction",
}
CLAIM_KEYS = {
    "p99_tolerance", "shed_threshold", "latency_knee_factor", "goodput_floor",
    "campaign_alerts_min",
}


def fail(message: str) -> None:
    print(f"check_load_curves: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_point(point: dict, where: str) -> None:
    missing = POINT_KEYS - point.keys()
    if missing:
        fail(f"{where}: missing keys {sorted(missing)}")
    if point["offered"] <= 0:
        fail(f"{where}: no offered load recorded")
    if point["offered"] != point["admitted"] + point["shed"]:
        fail(f"{where}: offered {point['offered']} != admitted "
             f"{point['admitted']} + shed {point['shed']}")
    expected_fraction = point["shed"] / point["offered"]
    if abs(point["shed_fraction"] - expected_fraction) > 1e-4:
        fail(f"{where}: shed_fraction {point['shed_fraction']} != "
             f"shed/offered = {expected_fraction:.6f}")
    if point["duration_s"] <= 0:
        fail(f"{where}: non-positive duration {point['duration_s']}")
    expected_goodput = point["completed"] / point["duration_s"]
    if abs(point["goodput_per_sec"] - expected_goodput) > max(0.1, expected_goodput * 0.01):
        fail(f"{where}: goodput_per_sec {point['goodput_per_sec']} inconsistent "
             f"with {point['completed']} completions in {point['duration_s']} s")
    if point["latency_count"] != point["completed"]:
        fail(f"{where}: latency_count {point['latency_count']} != completed "
             f"{point['completed']} (benign completions are the latency population)")
    if point["completed"] > 0 and not (
            0 < point["latency_p50_ms"] <= point["latency_p95_ms"] <= point["latency_p99_ms"]):
        fail(f"{where}: latency percentiles not ordered: "
             f"p50 {point['latency_p50_ms']} p95 {point['latency_p95_ms']} "
             f"p99 {point['latency_p99_ms']}")


def recompute_knee(curve: list, latency_factor: float, shed_threshold: float) -> int:
    base = curve[0]["latency_p99_ms"]
    for i, point in enumerate(curve):
        if point["shed_fraction"] > shed_threshold:
            return i
        if base > 0 and point["latency_p99_ms"] > base * latency_factor:
            return i
    return len(curve)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_load_curves.py BENCH_load_curves.json")
    with open(sys.argv[1], encoding="utf-8") as handle:
        doc = json.load(handle)

    if doc.get("schema") != "load_curves/v1":
        fail(f"unexpected schema {doc.get('schema')!r}")
    config = doc.get("config", {})
    if not CONFIG_KEYS <= config.keys():
        fail(f"config missing keys {sorted(CONFIG_KEYS - config.keys())}")
    claims = doc.get("claims", {})
    if not CLAIM_KEYS <= claims.keys():
        fail(f"claims missing keys {sorted(CLAIM_KEYS - claims.keys())}")
    if not 0 < claims["p99_tolerance"] <= 1.0:
        fail(f"claims.p99_tolerance nonsensical: {claims['p99_tolerance']!r}")
    if not 0 < claims["goodput_floor"] <= 1.0:
        fail(f"claims.goodput_floor nonsensical: {claims['goodput_floor']!r}")

    curve = doc.get("curve", [])
    if len(curve) < 3:
        fail("need at least three curve points to locate a knee")
    for i, point in enumerate(curve):
        check_point(point, f"curve[{i}]")
    rhos = [point["rho"] for point in curve]
    if rhos != sorted(rhos) or len(set(rhos)) != len(rhos):
        fail(f"curve not sorted by strictly increasing rho: {rhos}")

    # Latency rises with load (quantization slack via p99_tolerance) and the
    # heaviest point is strictly worse than the lightest: the knee is real.
    tolerance = claims["p99_tolerance"]
    for prev, point in zip(curve, curve[1:]):
        if point["latency_p99_ms"] < prev["latency_p99_ms"] * tolerance:
            fail(f"p99 fell with load: {prev['latency_p99_ms']} ms at rho "
                 f"{prev['rho']} -> {point['latency_p99_ms']} ms at rho {point['rho']}")
    if curve[-1]["latency_p99_ms"] <= curve[0]["latency_p99_ms"]:
        fail("heaviest point's p99 does not exceed the lightest's")

    # Shedding is monotone along the curve and present at the heaviest point.
    for prev, point in zip(curve, curve[1:]):
        if point["shed_fraction"] < prev["shed_fraction"] - 1e-9:
            fail(f"shed fraction fell with load: {prev['shed_fraction']:.4f} at "
                 f"rho {prev['rho']} -> {point['shed_fraction']:.4f} at rho {point['rho']}")
    if curve[-1]["shed_fraction"] <= claims["shed_threshold"]:
        fail(f"heaviest point sheds {curve[-1]['shed_fraction']:.4f} <= "
             f"threshold {claims['shed_threshold']} — the sweep never saturated")

    knee = doc.get("knee_index")
    expected_knee = recompute_knee(curve, claims["latency_knee_factor"],
                                   claims["shed_threshold"])
    if knee != expected_knee:
        fail(f"knee_index {knee} != recomputed {expected_knee}")
    if not 0 < knee < len(curve):
        fail(f"knee_index {knee} not strictly inside the curve "
             f"(the sweep must span both sides of saturation)")

    campaign = doc.get("campaign", {})
    for side in ("baseline", "attacked"):
        if side not in campaign:
            fail(f"campaign missing {side!r}")
        check_point(campaign[side], f"campaign.{side}")
    baseline, attacked = campaign["baseline"], campaign["attacked"]
    if baseline["campaign_alerts"] != 0:
        fail(f"baseline raised {baseline['campaign_alerts']} campaign alerts")
    if attacked["campaign_alerts"] < claims["campaign_alerts_min"]:
        fail(f"attacked run raised {attacked['campaign_alerts']} campaign alerts "
             f"(claim: >= {claims['campaign_alerts_min']})")
    if attacked["quarantined"] < claims["campaign_alerts_min"]:
        fail(f"attacked run quarantined {attacked['quarantined']} sessions — "
             f"an alert without quarantines is incoherent")
    expected_ratio = (attacked["goodput_per_sec"] / baseline["goodput_per_sec"]
                      if baseline["goodput_per_sec"] > 0 else 0.0)
    ratio = campaign.get("goodput_ratio")
    if not isinstance(ratio, (int, float)) or abs(ratio - expected_ratio) > 0.01:
        fail(f"goodput_ratio {ratio!r} != attacked/baseline = {expected_ratio:.4f}")
    if ratio < claims["goodput_floor"]:
        fail(f"benign goodput under campaign {ratio:.3f} below the "
             f"{claims['goodput_floor']} floor")

    print(f"check_load_curves: OK ({len(curve)} points, knee at rho "
          f"{curve[knee]['rho']}, heaviest sheds "
          f"{curve[-1]['shed_fraction'] * 100:.1f}%, campaign goodput "
          f"{ratio * 100:.1f}% >= {claims['goodput_floor'] * 100:.0f}%)")


if __name__ == "__main__":
    main()

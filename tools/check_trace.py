#!/usr/bin/env python3
"""Validate a Chrome-trace JSON exported by nv::obs::to_chrome_trace().

Checks, in order:
  1. Schema: a JSON object with a `traceEvents` list and an `otherData`
     object carrying integer `recorded`/`dropped`; every event has the
     required keys for its phase, and phases are limited to the set the
     exporter emits (M, X, s, t).
  2. Per-track monotone timestamps: within one (pid, tid) pair, slice
     timestamps never decrease (the recorder stamps each track's events
     under that track's lock, so a violation means exporter corruption).
  3. Span-reference closure: every non-zero `args.parent` must name a span
     some event in the trace DEFINES (carries as `args.span`). Strict when
     `otherData.dropped` is 0; with drops, broken references are expected
     (the defining event may have been overwritten) and only warned about.

Usage: check_trace.py TRACE.json [TRACE2.json ...]
Exit status: 0 all traces pass, 1 any check failed, 2 usage/IO error.
"""

import json
import sys

ALLOWED_PHASES = {"M", "X", "s", "t"}
REQUIRED_SLICE_KEYS = {"name", "ph", "ts", "pid", "tid", "args"}
REQUIRED_FLOW_KEYS = {"name", "ph", "ts", "pid", "tid", "id"}


def fail(path, message):
    print(f"FAIL {path}: {message}")
    return False


def check_trace(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return fail(path, f"unreadable or invalid JSON: {err}")

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return fail(path, "top level must be an object with a traceEvents list")
    other = doc.get("otherData")
    if not isinstance(other, dict):
        return fail(path, "missing otherData object")
    recorded, dropped = other.get("recorded"), other.get("dropped")
    if not isinstance(recorded, int) or not isinstance(dropped, int):
        return fail(path, "otherData.recorded/.dropped must be integers")

    events = doc["traceEvents"]
    last_ts = {}       # (pid, tid) -> last slice timestamp
    defined = set()    # spans some event carries as args.span
    referenced = []    # (index, parent) pairs to close over `defined`
    slices = 0

    for index, event in enumerate(events):
        if not isinstance(event, dict):
            return fail(path, f"event {index} is not an object")
        phase = event.get("ph")
        if phase not in ALLOWED_PHASES:
            return fail(path, f"event {index}: unexpected phase {phase!r}")
        if phase == "M":
            if event.get("name") != "thread_name":
                return fail(path, f"event {index}: metadata must be thread_name")
            continue
        required = REQUIRED_SLICE_KEYS if phase == "X" else REQUIRED_FLOW_KEYS
        missing = required - event.keys()
        if missing:
            return fail(path, f"event {index}: missing keys {sorted(missing)}")
        if phase != "X":
            continue

        slices += 1
        key = (event["pid"], event["tid"])
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            return fail(path, f"event {index}: non-numeric ts")
        if key in last_ts and ts < last_ts[key]:
            return fail(
                path,
                f"event {index}: ts {ts} < {last_ts[key]} on track {key} "
                "(per-track timestamps must be monotone)",
            )
        last_ts[key] = ts

        args = event["args"]
        if not isinstance(args, dict):
            return fail(path, f"event {index}: args is not an object")
        span, parent = args.get("span", 0), args.get("parent", 0)
        if span:
            defined.add(span)
        if parent:
            referenced.append((index, parent))

    broken = [(index, parent) for index, parent in referenced if parent not in defined]
    if broken:
        detail = ", ".join(f"event {i} -> span {p}" for i, p in broken[:5])
        if dropped == 0:
            return fail(
                path,
                f"{len(broken)} parent reference(s) to spans no event defines "
                f"({detail}) with zero drops — the causal chain is broken",
            )
        print(
            f"WARN {path}: {len(broken)} dangling parent reference(s) "
            f"({detail}) — expected with {dropped} dropped events"
        )

    print(
        f"OK   {path}: {slices} slices on {len(last_ts)} tracks, "
        f"{len(defined)} spans, {len(referenced)} parent links, "
        f"{recorded} recorded / {dropped} dropped"
    )
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    ok = True
    for path in argv[1:]:
        ok = check_trace(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

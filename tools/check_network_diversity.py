#!/usr/bin/env python3
"""Schema + invariant check for BENCH_network_diversity.json.

CI runs this on the document bench_network_diversity just wrote, so future
PRs can diff the fleet-of-fleets curves knowing the shape is stable and the
core claim holds. The written contract lives in docs/BENCH_SCHEMAS.md.

  - schema is "network_diversity/v1" with the documented keys;
  - the grid is ordered by ascending shard count at FIXED total lanes
    (shards x lanes_per_shard == config.total_lanes everywhere);
  - attacker cost rises STRICTLY MONOTONICALLY with the shard count;
  - the attacker's ledger is internally consistent: probes split exactly
    into payload + endpoint spend, endpoint spend is discoveries times the
    per-scan cost 2^(network_bits - 1), and every failed payload probe cost
    one quarantine;
  - gossip pre-warns: any multi-shard run that raised a campaign also
    tightened at least one shard before that shard's first quarantine;
  - keyspace ledgers and timelines are sane (remaining <= total, timelines
    non-empty, time-ordered, cumulative columns non-decreasing).

Usage: check_network_diversity.py BENCH_network_diversity.json
Exit code 0 on success, 1 with a message on any violation.
"""
import json
import sys

CURVE_KEYS = {
    "shards", "lanes_per_shard", "probed_variation", "payload_bits",
    "payload_keys", "network_bits", "endpoint_discovery_cost",
    "endpoint_discoveries", "endpoint_probes", "payload_probes", "probes",
    "silent_compromises", "compromised_lane_ticks", "mean_compromised_fraction",
    "attacker_cost", "quarantines", "rotations", "network_rotations",
    "campaign_alerts", "remote_campaigns", "policy_tightened",
    "pre_warned_shards", "gossip_published", "gossip_delivered",
    "keys_total", "keys_remaining", "timeline",
}
CONFIG_KEYS = {"total_lanes", "variations", "probed_variation",
               "network_variations", "probes_per_tick", "tick_ms", "ticks",
               "defender_rotate_ticks", "global_key_budget", "seed"}


def fail(message: str) -> None:
    print(f"check_network_diversity: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_curve(curve: dict, total_lanes: int, where: str) -> None:
    missing = CURVE_KEYS - curve.keys()
    if missing:
        fail(f"{where}: missing keys {sorted(missing)}")
    if curve["shards"] < 1:
        fail(f"{where}: shards < 1")
    if curve["shards"] * curve["lanes_per_shard"] != total_lanes:
        fail(f"{where}: shards x lanes_per_shard != total_lanes "
             f"({curve['shards']} x {curve['lanes_per_shard']} != {total_lanes})")
    # Payload keyspace must be real entropy units: keys is the realized 2^bits.
    if curve["payload_keys"] < 2:
        fail(f"{where}: payload_keys < 2 is not a guessing game")
    if abs(curve["payload_keys"] - 2 ** curve["payload_bits"]) > 0.5:
        fail(f"{where}: payload_keys {curve['payload_keys']} "
             f"!= 2^{curve['payload_bits']}")
    if not curve["probed_variation"]:
        fail(f"{where}: empty probed_variation")
    # The attacker's ledger must balance exactly.
    if curve["probes"] != curve["payload_probes"] + curve["endpoint_probes"]:
        fail(f"{where}: probes != payload_probes + endpoint_probes")
    if curve["endpoint_probes"] != (curve["endpoint_discoveries"]
                                    * curve["endpoint_discovery_cost"]):
        fail(f"{where}: endpoint_probes != discoveries x discovery cost")
    if curve["network_bits"] > 0:
        expected = 2 ** (curve["network_bits"] - 1)
        if abs(curve["endpoint_discovery_cost"] - expected) > 0.5:
            fail(f"{where}: endpoint_discovery_cost "
                 f"{curve['endpoint_discovery_cost']} != 2^(network_bits-1)")
        # Every shard was contacted at least once.
        if curve["endpoint_discoveries"] < curve["shards"]:
            fail(f"{where}: fewer endpoint discoveries than shards")
    # Every failed payload probe cost one quarantine (successes ran silent).
    if curve["quarantines"] != curve["payload_probes"] - curve["silent_compromises"]:
        fail(f"{where}: quarantines != payload_probes - silent_compromises")
    if curve["attacker_cost"] < 0:
        fail(f"{where}: negative attacker cost")
    if curve["pre_warned_shards"] > max(0, curve["shards"] - 1):
        fail(f"{where}: pre-warned more shards than have neighbours")
    if curve["keys_remaining"] > curve["keys_total"]:
        fail(f"{where}: keys_remaining > keys_total")
    if not 0.0 <= curve["mean_compromised_fraction"] <= 1.0:
        fail(f"{where}: mean_compromised_fraction out of [0,1]")
    if not curve["timeline"]:
        fail(f"{where}: empty timeline")
    times = [point["t_ms"] for point in curve["timeline"]]
    if times != sorted(times):
        fail(f"{where}: timeline is not time-ordered")
    for column in ("probes", "endpoint_discoveries", "rotations"):
        values = [point[column] for point in curve["timeline"]]
        if values != sorted(values):
            fail(f"{where}: timeline column {column!r} is not cumulative")
    for point in curve["timeline"]:
        if not 0.0 <= point["compromised_fraction"] <= 1.0:
            fail(f"{where}: compromised_fraction out of [0,1]")


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_network_diversity.py BENCH_network_diversity.json")
    with open(sys.argv[1], encoding="utf-8") as handle:
        doc = json.load(handle)

    if doc.get("schema") != "network_diversity/v1":
        fail(f"unexpected schema {doc.get('schema')!r}")
    config = doc.get("config", {})
    if not CONFIG_KEYS <= config.keys():
        fail(f"config missing keys {sorted(CONFIG_KEYS - config.keys())}")

    grid = doc.get("grid", [])
    if len(grid) < 2:
        fail("grid needs at least two shard counts to be a curve")
    for i, curve in enumerate(grid):
        check_curve(curve, config["total_lanes"], f"grid[{i}]")

    shards = [curve["shards"] for curve in grid]
    if shards != sorted(shards) or len(set(shards)) != len(shards):
        fail("grid is not ordered by strictly ascending shard count")

    # THE claim: sharding the same capacity must cost the attacker strictly
    # more per lane-tick of control.
    costs = [curve["attacker_cost"] for curve in grid]
    for prev, cur in zip(grid, grid[1:]):
        if cur["attacker_cost"] <= prev["attacker_cost"]:
            fail(f"attacker cost not strictly monotone in shard count: "
                 f"{prev['shards']} shards cost {prev['attacker_cost']} vs "
                 f"{cur['shards']} shards cost {cur['attacker_cost']}")

    # Gossip pre-warning: once there is more than one shard and a campaign
    # was raised, at least one shard must have tightened before its own
    # first quarantine.
    for i, curve in enumerate(grid):
        if (curve["shards"] > 1 and curve["campaign_alerts"] > 0
                and curve["pre_warned_shards"] == 0):
            fail(f"grid[{i}]: {curve['shards']} shards raised "
                 f"{curve['campaign_alerts']} campaigns but pre-warned none")

    print(f"check_network_diversity: OK ({len(grid)} shard counts "
          f"[{shards[0]} -> {shards[-1]}], "
          f"cost {costs[0]:.3f} -> {costs[-1]:.3f}, "
          f"pre-warned {grid[-1]['pre_warned_shards']} of "
          f"{grid[-1]['shards']} shards at the widest point)")


if __name__ == "__main__":
    main()

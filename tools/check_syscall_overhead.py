#!/usr/bin/env python3
"""Schema + invariant check for BENCH_syscall_overhead.json.

CI runs this on the document bench_syscall_overhead just wrote, so future
PRs can diff pipeline throughput knowing the shape is stable and the core
claim holds. The written contract for this document lives in
docs/BENCH_SCHEMAS.md.

  - schema is "syscall_overhead/v1" with the documented keys;
  - each scenario's speedup equals baseline.us / fast.us (arithmetic is
    internally consistent, within rounding);
  - the fast side synchronized STRICTLY FEWER barrier rounds than the
    per-call baseline (the mechanism, not just the outcome);
  - every read_only scenario meets claims.readonly_speedup_min (the 3x
    acceptance claim the bench also enforces in-process).

Usage: check_syscall_overhead.py BENCH_syscall_overhead.json
Exit code 0 on success, 1 with a message on any violation.
"""
import json
import sys

SCENARIO_KEYS = {"name", "read_only", "calls", "baseline", "fast", "speedup"}
SIDE_KEYS = {"mode", "us", "calls_per_sec", "rounds", "batches", "async_completions"}
CONFIG_KEYS = {"variants", "calls", "batch_size", "repetitions"}


def fail(message: str) -> None:
    print(f"check_syscall_overhead: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_side(side: dict, where: str, calls: int) -> None:
    missing = SIDE_KEYS - side.keys()
    if missing:
        fail(f"{where}: missing keys {sorted(missing)}")
    if side["us"] <= 0:
        fail(f"{where}: non-positive wall time {side['us']}")
    if side["rounds"] <= 0:
        fail(f"{where}: no barrier rounds recorded")
    expected_rate = calls * 1e6 / side["us"]
    if abs(side["calls_per_sec"] - expected_rate) > max(1.0, expected_rate * 0.01):
        fail(f"{where}: calls_per_sec {side['calls_per_sec']} inconsistent with "
             f"{calls} calls in {side['us']} us")


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_syscall_overhead.py BENCH_syscall_overhead.json")
    with open(sys.argv[1], encoding="utf-8") as handle:
        doc = json.load(handle)

    if doc.get("schema") != "syscall_overhead/v1":
        fail(f"unexpected schema {doc.get('schema')!r}")
    config = doc.get("config", {})
    if not CONFIG_KEYS <= config.keys():
        fail(f"config missing keys {sorted(CONFIG_KEYS - config.keys())}")
    claims = doc.get("claims", {})
    speedup_min = claims.get("readonly_speedup_min")
    if not isinstance(speedup_min, (int, float)) or speedup_min < 1.0:
        fail(f"claims.readonly_speedup_min missing or nonsensical: {speedup_min!r}")

    scenarios = doc.get("scenarios", [])
    if len(scenarios) < 2:
        fail("need at least two scenarios (completion + batching)")
    readonly = 0
    for i, scenario in enumerate(scenarios):
        where = f"scenarios[{i}]"
        missing = SCENARIO_KEYS - scenario.keys()
        if missing:
            fail(f"{where}: missing keys {sorted(missing)}")
        where = f"scenarios[{i}] ({scenario['name']})"
        calls = scenario["calls"]
        if calls <= 0:
            fail(f"{where}: no calls measured")
        check_side(scenario["baseline"], f"{where}.baseline", calls)
        check_side(scenario["fast"], f"{where}.fast", calls)
        expected = scenario["baseline"]["us"] / scenario["fast"]["us"]
        if abs(scenario["speedup"] - expected) > max(0.01, expected * 0.01):
            fail(f"{where}: speedup {scenario['speedup']} != "
                 f"baseline.us/fast.us = {expected:.3f}")
        # The mechanism: the fast side must have synchronized fewer barriers.
        if scenario["fast"]["rounds"] >= scenario["baseline"]["rounds"]:
            fail(f"{where}: fast rounds {scenario['fast']['rounds']} >= "
                 f"baseline rounds {scenario['baseline']['rounds']}")
        if scenario["read_only"]:
            readonly += 1
            if scenario["speedup"] < speedup_min:
                fail(f"{where}: read-only speedup {scenario['speedup']:.2f}x "
                     f"below the {speedup_min}x claim")
    if readonly == 0:
        fail("no read_only scenario carries the acceptance claim")

    summary = ", ".join(f"{s['name']} {s['speedup']:.2f}x" for s in scenarios)
    print(f"check_syscall_overhead: OK ({len(scenarios)} scenarios, {summary}, "
          f"read-only claim >= {speedup_min}x)")


if __name__ == "__main__":
    main()

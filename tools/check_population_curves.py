#!/usr/bin/env python3
"""Schema + invariant check for BENCH_population_curves.json.

CI runs this on the document bench_population_curves just wrote, so future
PRs can diff curves knowing the shape is stable and the core claims hold.
The written contract for this document lives in docs/BENCH_SCHEMAS.md.

  - schema is "population_curves/v2" with the documented keys;
  - every curve carries the probed variation's registry-reported keyspace
    (probed_variation / keyspace_bits / keyspace_keys, with
    keyspace_keys ~= 2^keyspace_bits);
  - the grid is ordered by ascending re-diversification rate;
  - attacker cost rises STRICTLY MONOTONICALLY along the grid;
  - the variation A/B grid is ordered by ascending keyspace_bits and
    attacker cost rises strictly monotonically with the probed entropy;
  - ledgers are internally consistent (every failed probe cost one
    quarantine; timelines are non-empty and time-ordered).

Usage: check_population_curves.py BENCH_population_curves.json
Exit code 0 on success, 1 with a message on any violation.
"""
import json
import sys

CURVE_KEYS = {
    "rediversify_interval_ms", "rediversify_rate_hz", "probed_variation",
    "keyspace_bits", "keyspace_keys", "probes",
    "silent_compromises", "compromised_lane_ticks", "mean_compromised_fraction",
    "attacker_cost", "quarantines", "rotations", "rotations_failed",
    "campaign_alerts", "policy_tightened", "policy_decayed", "timeline",
}
CONFIG_KEYS = {"pool_size", "variations", "probed_variation", "probes_per_tick",
               "tick_ms", "ticks", "seed"}


def fail(message: str) -> None:
    print(f"check_population_curves: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_curve(curve: dict, where: str) -> None:
    missing = CURVE_KEYS - curve.keys()
    if missing:
        fail(f"{where}: missing keys {sorted(missing)}")
    if not curve["timeline"]:
        fail(f"{where}: empty timeline")
    times = [point["t_ms"] for point in curve["timeline"]]
    if times != sorted(times):
        fail(f"{where}: timeline is not time-ordered")
    for point in curve["timeline"]:
        if not 0.0 <= point["compromised_fraction"] <= 1.0:
            fail(f"{where}: compromised_fraction out of [0,1]")
    # Every failed probe cost exactly one quarantine (the successes ran clean).
    if curve["quarantines"] != curve["probes"] - curve["silent_compromises"]:
        fail(f"{where}: quarantines != probes - silent_compromises")
    if curve["attacker_cost"] < 0:
        fail(f"{where}: negative attacker cost")
    # The keyspace must be real entropy units: keys is the realized 2^bits.
    if curve["keyspace_keys"] < 2:
        fail(f"{where}: keyspace_keys < 2 is not a guessing game")
    if abs(curve["keyspace_keys"] - 2 ** curve["keyspace_bits"]) > 0.5:
        fail(f"{where}: keyspace_keys {curve['keyspace_keys']} "
             f"!= 2^{curve['keyspace_bits']}")
    if not curve["probed_variation"]:
        fail(f"{where}: empty probed_variation")


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_population_curves.py BENCH_population_curves.json")
    with open(sys.argv[1], encoding="utf-8") as handle:
        doc = json.load(handle)

    if doc.get("schema") != "population_curves/v2":
        fail(f"unexpected schema {doc.get('schema')!r}")
    config = doc.get("config", {})
    if not CONFIG_KEYS <= config.keys():
        fail(f"config missing keys {sorted(CONFIG_KEYS - config.keys())}")

    grid = doc.get("grid", [])
    if len(grid) < 2:
        fail("grid needs at least two re-diversification rates to be a curve")
    for i, curve in enumerate(grid):
        check_curve(curve, f"grid[{i}]")

    rates = [curve["rediversify_rate_hz"] for curve in grid]
    if rates != sorted(rates):
        fail("grid is not ordered by ascending re-diversification rate")
    costs = [curve["attacker_cost"] for curve in grid]
    for prev, cur in zip(costs, costs[1:]):
        if cur <= prev:
            fail(f"attacker cost not strictly monotone: {prev} -> {cur}")

    comparison = doc.get("adaptive_comparison", [])
    for i, curve in enumerate(comparison):
        check_curve(curve, f"adaptive_comparison[{i}]")
    if len(comparison) == 2:
        static_cost, adaptive_cost = (c["attacker_cost"] for c in comparison)
        if adaptive_cost <= static_cost:
            fail(f"adaptive posture did not raise attacker cost "
                 f"({adaptive_cost} <= {static_cost})")

    variation_grid = doc.get("variation_grid", [])
    if len(variation_grid) < 2:
        fail("variation_grid needs at least two probed variations to be an A/B")
    for i, curve in enumerate(variation_grid):
        check_curve(curve, f"variation_grid[{i}]")
    bits = [curve["keyspace_bits"] for curve in variation_grid]
    if bits != sorted(bits):
        fail("variation_grid is not ordered by ascending keyspace_bits")
    for prev, cur in zip(variation_grid, variation_grid[1:]):
        if cur["attacker_cost"] <= prev["attacker_cost"]:
            fail(f"attacker cost not monotone in probed entropy: "
                 f"{prev['probed_variation']} ({prev['keyspace_bits']:.1f} bits) "
                 f"cost {prev['attacker_cost']} vs {cur['probed_variation']} "
                 f"({cur['keyspace_bits']:.1f} bits) cost {cur['attacker_cost']}")

    print(f"check_population_curves: OK ({len(grid)} grid points, "
          f"cost {costs[0]:.3f} -> {costs[-1]:.3f}, "
          f"{len(comparison)} comparison runs, "
          f"{len(variation_grid)} probed variations "
          f"[{bits[0]:.1f} -> {bits[-1]:.1f} bits])")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Schema + invariant check for BENCH_population_curves.json.

CI runs this on the document bench_population_curves just wrote, so future
PRs can diff curves knowing the shape is stable and the core claim holds:

  - schema is "population_curves/v1" with the documented keys;
  - the grid is ordered by ascending re-diversification rate;
  - attacker cost rises STRICTLY MONOTONICALLY along the grid;
  - ledgers are internally consistent (every failed probe cost one
    quarantine; timelines are non-empty and time-ordered).

Usage: check_population_curves.py BENCH_population_curves.json
Exit code 0 on success, 1 with a message on any violation.
"""
import json
import sys

CURVE_KEYS = {
    "rediversify_interval_ms", "rediversify_rate_hz", "probes",
    "silent_compromises", "compromised_lane_ticks", "mean_compromised_fraction",
    "attacker_cost", "quarantines", "rotations", "rotations_failed",
    "campaign_alerts", "policy_tightened", "policy_decayed", "timeline",
}
CONFIG_KEYS = {"pool_size", "keyspace", "probes_per_tick", "tick_ms", "ticks", "seed"}


def fail(message: str) -> None:
    print(f"check_population_curves: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_curve(curve: dict, where: str) -> None:
    missing = CURVE_KEYS - curve.keys()
    if missing:
        fail(f"{where}: missing keys {sorted(missing)}")
    if not curve["timeline"]:
        fail(f"{where}: empty timeline")
    times = [point["t_ms"] for point in curve["timeline"]]
    if times != sorted(times):
        fail(f"{where}: timeline is not time-ordered")
    for point in curve["timeline"]:
        if not 0.0 <= point["compromised_fraction"] <= 1.0:
            fail(f"{where}: compromised_fraction out of [0,1]")
    # Every failed probe cost exactly one quarantine (the successes ran clean).
    if curve["quarantines"] != curve["probes"] - curve["silent_compromises"]:
        fail(f"{where}: quarantines != probes - silent_compromises")
    if curve["attacker_cost"] < 0:
        fail(f"{where}: negative attacker cost")


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_population_curves.py BENCH_population_curves.json")
    with open(sys.argv[1], encoding="utf-8") as handle:
        doc = json.load(handle)

    if doc.get("schema") != "population_curves/v1":
        fail(f"unexpected schema {doc.get('schema')!r}")
    config = doc.get("config", {})
    if not CONFIG_KEYS <= config.keys():
        fail(f"config missing keys {sorted(CONFIG_KEYS - config.keys())}")

    grid = doc.get("grid", [])
    if len(grid) < 2:
        fail("grid needs at least two re-diversification rates to be a curve")
    for i, curve in enumerate(grid):
        check_curve(curve, f"grid[{i}]")

    rates = [curve["rediversify_rate_hz"] for curve in grid]
    if rates != sorted(rates):
        fail("grid is not ordered by ascending re-diversification rate")
    costs = [curve["attacker_cost"] for curve in grid]
    for prev, cur in zip(costs, costs[1:]):
        if cur <= prev:
            fail(f"attacker cost not strictly monotone: {prev} -> {cur}")

    comparison = doc.get("adaptive_comparison", [])
    for i, curve in enumerate(comparison):
        check_curve(curve, f"adaptive_comparison[{i}]")
    if len(comparison) == 2:
        static_cost, adaptive_cost = (c["attacker_cost"] for c in comparison)
        if adaptive_cost <= static_cost:
            fail(f"adaptive posture did not raise attacker cost "
                 f"({adaptive_cost} <= {static_cost})")

    print(f"check_population_curves: OK ({len(grid)} grid points, "
          f"cost {costs[0]:.3f} -> {costs[-1]:.3f}, "
          f"{len(comparison)} comparison runs)")


if __name__ == "__main__":
    main()

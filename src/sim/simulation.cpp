#include "sim/simulation.h"

#include <stdexcept>

namespace nv::sim {

void Simulation::schedule_at(SimTime when, Action action) {
  if (when < now_) throw std::logic_error("cannot schedule an event in the past");
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the action must be moved out via const_cast
  // or copied. Copying a std::function is cheap enough here and keeps the
  // container's invariants intact.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.when;
  ++executed_;
  event.action();
  return true;
}

void Simulation::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

void Simulation::run_to_completion() {
  while (step()) {
  }
}

}  // namespace nv::sim

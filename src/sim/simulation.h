// Discrete-event simulation core used by the performance model (Table 3).
//
// Time is in integer nanoseconds. Events scheduled for the same instant fire
// in scheduling order (a monotonically increasing sequence number breaks
// ties), which keeps runs deterministic.
//
// The SimTime base (and its unit constants below) doubles as the time
// vocabulary of src/load's workload generator, whose schedules are served
// by a REAL fleet rather than this event loop.
#ifndef NV_SIM_SIMULATION_H
#define NV_SIM_SIMULATION_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace nv::sim {

using SimTime = std::uint64_t;  // nanoseconds

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

[[nodiscard]] constexpr double to_ms(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
[[nodiscard]] constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
[[nodiscard]] constexpr SimTime from_ms(double ms) noexcept {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}
[[nodiscard]] constexpr SimTime from_us(double us) noexcept {
  return static_cast<SimTime>(us * static_cast<double>(kMicrosecond));
}

/// Event-driven scheduler. Not thread-safe; a simulation runs on one thread.
class Simulation {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

  void schedule_at(SimTime when, Action action);
  void schedule_in(SimTime delay, Action action) { schedule_at(now_ + delay, std::move(action)); }

  /// Execute the next event; returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or the clock passes `deadline`.
  void run_until(SimTime deadline);

  /// Run until the queue drains completely.
  void run_to_completion();

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace nv::sim

#endif  // NV_SIM_SIMULATION_H

// Queueing resources for the DES: a k-server FIFO station (models CPUs and
// I/O devices in the performance experiments).
#ifndef NV_SIM_RESOURCE_H
#define NV_SIM_RESOURCE_H

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/simulation.h"
#include "util/stats.h"

namespace nv::sim {

/// FIFO service station with `servers` identical servers. Jobs are served in
/// submission order; when a server frees up, the head-of-line job starts.
/// Tracks utilization and waiting-time statistics.
class FifoStation {
 public:
  FifoStation(Simulation& sim, unsigned servers, std::string name = {});

  FifoStation(const FifoStation&) = delete;
  FifoStation& operator=(const FifoStation&) = delete;

  /// Enqueue a job requiring `service` time; `on_done` fires at completion.
  void submit(SimTime service, std::function<void()> on_done);

  [[nodiscard]] unsigned servers() const noexcept { return servers_; }
  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] const util::RunningStats& wait_stats() const noexcept { return wait_; }
  [[nodiscard]] const util::RunningStats& service_stats() const noexcept { return service_; }

  /// Fraction of server-time busy over [0, sim.now()].
  [[nodiscard]] double utilization() const noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  struct Job {
    SimTime service;
    SimTime enqueued_at;
    std::function<void()> on_done;
  };

  void try_dispatch();
  void finish(SimTime service, std::function<void()> on_done);

  Simulation& sim_;
  unsigned servers_;
  unsigned busy_ = 0;
  std::string name_;
  std::deque<Job> queue_;
  std::uint64_t completed_ = 0;
  SimTime busy_time_ = 0;
  util::RunningStats wait_;
  util::RunningStats service_;
};

}  // namespace nv::sim

#endif  // NV_SIM_RESOURCE_H

#include "sim/resource.h"

#include <stdexcept>
#include <utility>

namespace nv::sim {

FifoStation::FifoStation(Simulation& sim, unsigned servers, std::string name)
    : sim_(sim), servers_(servers), name_(std::move(name)) {
  if (servers == 0) throw std::invalid_argument("FifoStation requires at least one server");
}

void FifoStation::submit(SimTime service, std::function<void()> on_done) {
  queue_.push_back(Job{service, sim_.now(), std::move(on_done)});
  try_dispatch();
}

void FifoStation::try_dispatch() {
  while (busy_ < servers_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    wait_.add(to_ms(sim_.now() - job.enqueued_at));
    service_.add(to_ms(job.service));
    busy_time_ += job.service;
    sim_.schedule_in(job.service,
                     [this, service = job.service, done = std::move(job.on_done)]() mutable {
                       finish(service, std::move(done));
                     });
  }
}

void FifoStation::finish(SimTime /*service*/, std::function<void()> on_done) {
  --busy_;
  ++completed_;
  // Dispatch the next waiting job before running the completion so queue
  // statistics reflect back-to-back service.
  try_dispatch();
  if (on_done) on_done();
}

double FifoStation::utilization() const noexcept {
  const SimTime elapsed = sim_.now();
  if (elapsed == 0) return 0.0;
  return static_cast<double>(busy_time_) /
         (static_cast<double>(elapsed) * static_cast<double>(servers_));
}

}  // namespace nv::sim

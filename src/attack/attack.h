// Attack corpus and defense configurations for the security-evaluation
// matrix (the executable version of Figures 1-2 and the §2.3/§3.2 detection
// arguments).
//
// Every attack is expressed as bytes delivered over the shared input channel
// (a spec file replicated to all variants / the single victim), exactly the
// attacker's position in the paper's threat model: one concrete input, the
// same for every variant.
#ifndef NV_ATTACK_ATTACK_H
#define NV_ATTACK_ATTACK_H

#include <string>
#include <string_view>

namespace nv::attack {

enum class AttackKind {
  kUidFullWord,       // overwrite the stored UID with 0x00000000 (root)
  kUidLowByte,        // overwrite only the low byte of the stored UID
  kUidHighBitFlip,    // flip only bit 31 of the stored UID (§3.2 weakness)
  kAddressInjection,  // inject an absolute pointer and dereference it
  kPointerLowBytes,   // overwrite the 3 low-order bytes of a stored pointer
  kCodeInjection,     // inject machine code and redirect execution into it
  kLinearOverrun,     // sequential buffer overrun into an adjacent UID
};

enum class DefenseKind {
  kSingleProcess,         // configuration-1 baseline: no redundancy
  kDualIdentical,         // 2 variants, NO variation (redundancy alone)
  kAddressPartitioning,   // Table 1 row 1
  kExtendedPartitioning,  // Table 1 row 2 (Bruschi offset)
  kInstructionTagging,    // Table 1 row 3
  kUidVariation,          // Table 1 row 4 (this paper)
  kUidPlusAddress,        // composition of rows 1 and 4 (§4's "combining variations")
  kStackReversal,         // Franz [20], the §1 "other variations" extension
};

enum class Outcome {
  kSucceeded,  // attacker goal reached, no alarm
  kDetected,   // monitor raised an alarm before the goal mattered
  kCrashed,    // victim faulted with no monitor (single process): DoS, not compromise
  kNoEffect,   // attack ran, goal not reached, no alarm
};

[[nodiscard]] std::string_view to_string(AttackKind kind) noexcept;
[[nodiscard]] std::string_view to_string(DefenseKind kind) noexcept;
[[nodiscard]] std::string_view to_string(Outcome outcome) noexcept;

/// Execute one attack against one defense configuration; deterministic.
[[nodiscard]] Outcome run_attack(AttackKind attack, DefenseKind defense);

/// What the paper's arguments predict for each cell (used by tests to pin the
/// whole matrix, and by the bench to annotate agreement).
[[nodiscard]] Outcome expected_outcome(AttackKind attack, DefenseKind defense);

}  // namespace nv::attack

#endif  // NV_ATTACK_ATTACK_H

// Victim guest programs for the attack matrix. Each carries one of the
// vulnerability patterns the paper's variations target, parameterized by an
// attack-spec file that reaches every variant through the shared input
// channel (so the attacker's bytes are identical across variants, per the
// threat model).
#ifndef NV_ATTACK_VICTIMS_H
#define NV_ATTACK_VICTIMS_H

#include "guest/guest_program.h"

namespace nv::attack {

constexpr int kCompromisedExit = 42;
constexpr char kSpecPath[] = "/attack.spec";

/// Drops privileges, lets the spec corrupt the stored worker UID in simulated
/// memory, then restores privileges from the (possibly corrupted) value.
/// Exits kCompromisedExit when the process ends up with effective root.
/// Spec lines: "uid-word <hex>", "uid-byte <hex>", "uid-bitflip <hex>", or
/// "none".
class UidVictim final : public guest::GuestProgram {
 public:
  [[nodiscard]] std::string_view name() const override { return "uid-victim"; }
  void run(guest::GuestContext& ctx) override;
};

/// Holds a pointer to a secret in simulated memory; the spec can replace the
/// pointer ("ptr-abs <hex>") or its three low bytes ("ptr-low <hex>"), after
/// which the victim dereferences it. Exits kCompromisedExit when the
/// dereference leaks a secret value.
class AddressVictim final : public guest::GuestProgram {
 public:
  static constexpr std::uint32_t kSecretA = 0xC0FFEE01;
  static constexpr std::uint32_t kSecretB = 0x5EC2E7B2;
  static constexpr std::uint64_t kSecretAOffset = 0x100;
  static constexpr std::uint64_t kSecretBOffset = 0x200;

  [[nodiscard]] std::string_view name() const override { return "address-victim"; }
  void run(guest::GuestContext& ctx) override;
};

/// Loads trusted (tagged) code, drops privileges, then executes bytes from
/// the spec ("code <hex bytes>") — modelling a hijacked control transfer
/// into injected code. Exits kCompromisedExit if the injected code regains
/// root.
class CodeVictim final : public guest::GuestProgram {
 public:
  [[nodiscard]] std::string_view name() const override { return "code-victim"; }
  void run(guest::GuestContext& ctx) override;
};

/// Keeps a fixed-size buffer and the worker UID on a simulated stack whose
/// growth direction follows VariantConfig::reverse_stack (Franz [20]). The
/// spec ("overrun <len>") writes `len` zero bytes sequentially from the
/// buffer start — a classic linear overflow. In the reversed variant the UID
/// sits on the other side of the buffer, so the same overrun corrupts
/// different state across variants.
class StackVictim final : public guest::GuestProgram {
 public:
  static constexpr std::uint32_t kBufferSize = 64;

  [[nodiscard]] std::string_view name() const override { return "stack-victim"; }
  void run(guest::GuestContext& ctx) override;
};

}  // namespace nv::attack

#endif  // NV_ATTACK_VICTIMS_H

#include "attack/victims.h"

#include "util/strings.h"
#include "vkernel/vm.h"

namespace nv::attack {

namespace {

struct Spec {
  std::string op = "none";
  std::uint64_t value = 0;
};

Spec read_spec(guest::GuestContext& ctx) {
  Spec spec;
  auto content = ctx.read_file(kSpecPath);
  if (!content) return spec;
  const auto fields = util::split_ws(*content);
  if (!fields.empty()) spec.op = fields[0];
  if (fields.size() > 1) spec.value = util::parse_u64(fields[1]).value_or(0);
  return spec;
}

}  // namespace

void UidVictim::run(guest::GuestContext& ctx) {
  const os::uid_t worker = ctx.uid_const(33);

  // Worker identity lives in simulated memory (what the overflow corrupts).
  const std::uint64_t uid_addr = ctx.alloc(4);
  ctx.memory().store_u32(uid_addr, worker);

  // Drop effective privileges, keeping saved-root for the restore path.
  if (ctx.seteuid(worker) != os::Errno::kOk) ctx.exit(2);

  // The "vulnerability": the attacker's spec corrupts the stored UID with
  // identical raw bytes in every variant.
  const Spec spec = read_spec(ctx);
  if (spec.op == "uid-word") {
    ctx.memory().store_u32(uid_addr, static_cast<std::uint32_t>(spec.value));
  } else if (spec.op == "uid-byte") {
    ctx.memory().store_u8(uid_addr, static_cast<std::uint8_t>(spec.value));
  } else if (spec.op == "uid-bitflip") {
    ctx.memory().store_u32(uid_addr,
                           ctx.memory().load_u32(uid_addr) ^ static_cast<std::uint32_t>(spec.value));
  }

  // Privilege restore from the (possibly corrupted) stored value. uid_value
  // is the §3.5 exposure point; the seteuid syscall itself is the fallback
  // detection boundary.
  os::uid_t restore = ctx.memory().load_u32(uid_addr);
  restore = ctx.uid_value(restore);
  (void)ctx.seteuid(restore);

  // Equality comparison is representation-independent, so checking for root
  // locally behaves identically in every variant.
  const bool compromised = ctx.geteuid() == ctx.uid_const(os::kRootUid);
  ctx.exit(compromised ? kCompromisedExit : 0);
}

void AddressVictim::run(guest::GuestContext& ctx) {
  // A 64 KiB data region at the variant's (variation-chosen) base.
  const std::uint64_t base = ctx.alloc(0x10000);
  ctx.memory().store_u32(base + kSecretAOffset, kSecretA);
  ctx.memory().store_u32(base + kSecretBOffset, kSecretB);

  const std::uint64_t ptr_slot = ctx.alloc(8);
  ctx.memory().store_u64(ptr_slot, base + kSecretAOffset);

  const Spec spec = read_spec(ctx);
  if (spec.op == "ptr-abs") {
    ctx.memory().store_u64(ptr_slot, spec.value);  // injected absolute pointer
  } else if (spec.op == "ptr-low") {
    // Partial overwrite: replace only the 3 low-order bytes (§2.3's partial
    // value injection).
    const std::uint64_t original = ctx.memory().load_u64(ptr_slot);
    ctx.memory().store_u64(ptr_slot, (original & ~0xFFFFFFULL) | (spec.value & 0xFFFFFF));
  }

  // Dereference: faults (and alarms) when the pointer leaves this variant's
  // partition.
  const std::uint64_t pointer = ctx.memory().load_u64(ptr_slot);
  const std::uint32_t leaked = ctx.memory().load_u32(pointer);

  const bool attacker_win =
      (spec.op != "none") && (leaked == kSecretA || leaked == kSecretB);
  ctx.exit(attacker_win ? kCompromisedExit : 0);
}

void CodeVictim::run(guest::GuestContext& ctx) {
  // Load and run a benign tagged program (the trusted code path).
  vkernel::VmProgram trusted;
  trusted.load_imm(0, 7).emit().halt();
  const auto trusted_image = trusted.assemble(ctx.config().code_tag);
  const std::uint64_t code_base = ctx.alloc(trusted_image.size() + 64);
  ctx.memory().store_bytes(code_base, trusted_image);
  (void)ctx.execute_code(code_base);

  if (ctx.seteuid(ctx.uid_const(33)) != os::Errno::kOk) ctx.exit(2);

  const Spec spec = read_spec(ctx);
  if (spec.op == "code") {
    // The spec value is unused; injected bytes follow as hex pairs after the
    // op token. Re-read raw to keep the spec format simple.
    auto content = ctx.read_file(kSpecPath);
    std::vector<std::uint8_t> injected;
    if (content) {
      const auto fields = util::split_ws(*content);
      for (std::size_t i = 1; i < fields.size(); ++i) {
        if (auto byte = util::parse_u64("0x" + fields[i])) {
          injected.push_back(static_cast<std::uint8_t>(*byte));
        }
      }
    }
    const std::uint64_t inject_base = ctx.alloc(injected.size() + 8);
    ctx.memory().store_bytes(inject_base, injected);
    // The hijacked control transfer: execution lands in attacker bytes. The
    // VM checks this variant's tag on every instruction.
    (void)ctx.execute_code(inject_base);
  }

  const bool compromised = ctx.geteuid() == ctx.uid_const(os::kRootUid);
  ctx.exit(compromised ? kCompromisedExit : 0);
}

void StackVictim::run(guest::GuestContext& ctx) {
  const os::uid_t worker = ctx.uid_const(33);

  // Simulated stack frame: buffer and saved UID adjacent, with the order
  // depending on the variant's stack growth direction. Padding on the far
  // side keeps the overrun inside mapped memory either way.
  const std::uint64_t frame = ctx.alloc(kBufferSize + 4 + kBufferSize);
  std::uint64_t buffer_addr = 0;
  std::uint64_t uid_addr = 0;
  if (ctx.config().reverse_stack) {
    uid_addr = frame;                  // UID below the buffer: overrun misses it
    buffer_addr = frame + 4;
  } else {
    buffer_addr = frame;               // UID right after the buffer: classic layout
    uid_addr = frame + kBufferSize;
  }
  ctx.memory().store_u32(uid_addr, worker);

  if (ctx.seteuid(worker) != os::Errno::kOk) ctx.exit(2);

  auto spec = ctx.read_file(kSpecPath);
  if (spec) {
    const auto fields = util::split_ws(*spec);
    if (fields.size() >= 2 && fields[0] == "overrun") {
      const auto len = util::parse_u64(fields[1]).value_or(0);
      for (std::uint64_t i = 0; i < len; ++i) ctx.memory().store_u8(buffer_addr + i, 0);
    }
  }

  os::uid_t restore = ctx.memory().load_u32(uid_addr);
  restore = ctx.uid_value(restore);
  (void)ctx.seteuid(restore);
  const bool compromised = ctx.geteuid() == ctx.uid_const(os::kRootUid);
  ctx.exit(compromised ? kCompromisedExit : 0);
}

}  // namespace nv::attack

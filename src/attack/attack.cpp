#include "attack/attack.h"

#include <memory>
#include <stdexcept>

#include "attack/victims.h"
#include "guest/runners.h"
#include "util/strings.h"
#include "variants/registry.h"
#include "vkernel/vm.h"

namespace nv::attack {

std::string_view to_string(AttackKind kind) noexcept {
  switch (kind) {
    case AttackKind::kUidFullWord: return "uid-full-word";
    case AttackKind::kUidLowByte: return "uid-low-byte";
    case AttackKind::kUidHighBitFlip: return "uid-high-bit-flip";
    case AttackKind::kAddressInjection: return "absolute-address-injection";
    case AttackKind::kPointerLowBytes: return "pointer-low-bytes";
    case AttackKind::kCodeInjection: return "code-injection";
    case AttackKind::kLinearOverrun: return "linear-buffer-overrun";
  }
  return "?";
}

std::string_view to_string(DefenseKind kind) noexcept {
  switch (kind) {
    case DefenseKind::kSingleProcess: return "single-process";
    case DefenseKind::kDualIdentical: return "2-variant-identical";
    case DefenseKind::kAddressPartitioning: return "address-partitioning";
    case DefenseKind::kExtendedPartitioning: return "extended-partitioning";
    case DefenseKind::kInstructionTagging: return "instruction-tagging";
    case DefenseKind::kUidVariation: return "uid-variation";
    case DefenseKind::kUidPlusAddress: return "uid+address";
    case DefenseKind::kStackReversal: return "stack-reversal";
  }
  return "?";
}

std::string_view to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kSucceeded: return "SUCCEEDED";
    case Outcome::kDetected: return "detected";
    case Outcome::kCrashed: return "crashed";
    case Outcome::kNoEffect: return "no-effect";
  }
  return "?";
}

namespace {

std::unique_ptr<guest::GuestProgram> victim_for(AttackKind attack) {
  switch (attack) {
    case AttackKind::kUidFullWord:
    case AttackKind::kUidLowByte:
    case AttackKind::kUidHighBitFlip:
      return std::make_unique<UidVictim>();
    case AttackKind::kAddressInjection:
    case AttackKind::kPointerLowBytes:
      return std::make_unique<AddressVictim>();
    case AttackKind::kCodeInjection:
      return std::make_unique<CodeVictim>();
    case AttackKind::kLinearOverrun:
      return std::make_unique<StackVictim>();
  }
  return nullptr;
}

/// The attacker's one concrete input. Keys are public (no secrets!), so the
/// payload is built with full knowledge of variant 0's parameters.
std::string spec_for(AttackKind attack, DefenseKind defense) {
  switch (attack) {
    case AttackKind::kUidFullWord:
      return "uid-word 0x0";
    case AttackKind::kUidLowByte:
      return "uid-byte 0x0";
    case AttackKind::kUidHighBitFlip:
      return "uid-bitflip 0x80000000";
    case AttackKind::kAddressInjection:
      // Variant 0's data region base + the secret offset.
      return util::format("ptr-abs 0x%llx", static_cast<unsigned long long>(
                                                0x10000000ULL + AddressVictim::kSecretAOffset));
    case AttackKind::kPointerLowBytes:
      return util::format("ptr-low 0x%llx",
                          static_cast<unsigned long long>(AddressVictim::kSecretBOffset));
    case AttackKind::kCodeInjection: {
      // setuid(0); halt — tagged for variant 0 (tag is public knowledge).
      const std::uint8_t tag =
          defense == DefenseKind::kInstructionTagging ? std::uint8_t{0xA0} : std::uint8_t{0x00};
      vkernel::VmProgram payload;
      payload.load_imm(0, 0).sys_setuid().halt();
      std::string spec = "code";
      for (std::uint8_t byte : payload.assemble(tag)) {
        spec += util::format(" %02x", byte);
      }
      return spec;
    }
    case AttackKind::kLinearOverrun:
      // Run four bytes past the buffer end, zeroing whatever lives there.
      return util::format("overrun %u", StackVictim::kBufferSize + 4);
  }
  return "none";
}

void seed_trusted_files(vfs::FileSystem& fs) {
  const auto root = os::Credentials::root();
  (void)fs.mkdir_p("/etc", root);
  (void)fs.write_file("/etc/passwd",
                      "root:x:0:0:root:/root:/bin/sh\nwww:x:33:33:w:/var/www:/bin/f\n", root);
  (void)fs.write_file("/etc/group", "root:x:0:\nwww:x:33:\n", root);
}

/// Defense configurations expressed as registry policies: each defense is a
/// named-variation list, exactly the open-ended-catalog framing of Table 1.
std::vector<core::VariationPtr> defense_variations(DefenseKind defense) {
  const auto& registry = variants::builtin_registry();
  const auto make = [&registry](std::string_view name,
                                const core::VariationParams& params = {}) {
    auto variation = registry.make(name, params);
    if (!variation) throw std::logic_error("defense setup: " + variation.error());
    return *variation;
  };
  switch (defense) {
    case DefenseKind::kSingleProcess:
    case DefenseKind::kDualIdentical:
      return {};
    case DefenseKind::kAddressPartitioning:
      return {make("address-partitioning")};
    case DefenseKind::kExtendedPartitioning:
      return {make("extended-address-partitioning",
                   core::VariationParams{{"seed", std::uint64_t{1234}}})};
    case DefenseKind::kInstructionTagging:
      return {make("instruction-tagging")};
    case DefenseKind::kUidVariation:
      return {make("uid-xor")};
    case DefenseKind::kUidPlusAddress:
      return {make("uid-xor"), make("address-partitioning")};
    case DefenseKind::kStackReversal:
      return {make("stack-reversal")};
  }
  return {};
}

Outcome classify_plain(const guest::PlainRunResult& result) {
  if (result.faulted) return Outcome::kCrashed;
  if (result.exit_code == kCompromisedExit) return Outcome::kSucceeded;
  return Outcome::kNoEffect;
}

Outcome classify_mvee(const core::RunReport& report) {
  if (report.attack_detected) return Outcome::kDetected;
  bool all_compromised = !report.exit_codes.empty();
  for (int code : report.exit_codes) all_compromised = all_compromised && code == kCompromisedExit;
  if (all_compromised) return Outcome::kSucceeded;
  return Outcome::kNoEffect;
}

}  // namespace

Outcome run_attack(AttackKind attack, DefenseKind defense) {
  const auto victim = victim_for(attack);
  const std::string spec = spec_for(attack, defense);
  const auto root = os::Credentials::root();

  if (defense == DefenseKind::kSingleProcess) {
    vfs::FileSystem fs;
    vkernel::SocketHub hub;
    vkernel::KernelContext ctx(fs, hub);
    seed_trusted_files(fs);  // same fixture as the MVEE runs, for comparability
    (void)fs.write_file(kSpecPath, spec, root);
    return classify_plain(guest::run_plain(ctx, *victim));
  }

  core::NVariantSystem::Builder builder;
  builder.rendezvous_timeout(std::chrono::milliseconds(1000));
  for (auto& variation : defense_variations(defense)) builder.variation(std::move(variation));
  const auto system = builder.build();
  seed_trusted_files(system->fs());
  (void)system->fs().write_file(kSpecPath, spec, root);
  return classify_mvee(guest::run_nvariant(*system, *victim));
}

Outcome expected_outcome(AttackKind attack, DefenseKind defense) {
  using A = AttackKind;
  using D = DefenseKind;
  using O = Outcome;
  switch (attack) {
    case A::kUidFullWord:
    case A::kUidLowByte:
      // Only the UID variation's disjoint reexpression catches data-only UID
      // corruption; redundancy and address/instruction diversity do not.
      return (defense == D::kUidVariation || defense == D::kUidPlusAddress) ? O::kDetected
                                                                            : O::kSucceeded;
    case A::kUidHighBitFlip:
      // The §3.2 gap: the unflipped high bit escapes detection everywhere —
      // but the flipped value is not a usable identity, so the attacker
      // gains nothing either.
      return O::kNoEffect;
    case A::kAddressInjection:
      return (defense == D::kAddressPartitioning || defense == D::kExtendedPartitioning ||
              defense == D::kUidPlusAddress)
                 ? O::kDetected
                 : O::kSucceeded;
    case A::kPointerLowBytes:
      // §2.3: plain partitioning is vulnerable to partial pointer overwrites;
      // only the extended variant's per-variant offset breaks them.
      return defense == D::kExtendedPartitioning ? O::kDetected : O::kSucceeded;
    case A::kCodeInjection:
      // Tagging traps the tag mismatch; the UID variation catches THIS
      // payload (it attacks the UID interface) at the setuid boundary.
      return (defense == D::kInstructionTagging || defense == D::kUidVariation ||
              defense == D::kUidPlusAddress)
                 ? O::kDetected
                 : O::kSucceeded;
    case A::kLinearOverrun:
      // Caught by data diversity (different UID meanings) and by stack
      // reversal (different data corrupted per variant, Franz [20]).
      return (defense == D::kUidVariation || defense == D::kUidPlusAddress ||
              defense == D::kStackReversal)
                 ? O::kDetected
                 : O::kSucceeded;
  }
  return O::kNoEffect;
}

}  // namespace nv::attack

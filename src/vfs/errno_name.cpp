#include "vkernel/types.h"

namespace nv::os {

std::string_view errno_name(Errno e) noexcept {
  switch (e) {
    case Errno::kOk: return "OK";
    case Errno::kEPERM: return "EPERM";
    case Errno::kENOENT: return "ENOENT";
    case Errno::kEINTR: return "EINTR";
    case Errno::kEBADF: return "EBADF";
    case Errno::kEACCES: return "EACCES";
    case Errno::kEFAULT: return "EFAULT";
    case Errno::kEEXIST: return "EEXIST";
    case Errno::kENOTDIR: return "ENOTDIR";
    case Errno::kEISDIR: return "EISDIR";
    case Errno::kEINVAL: return "EINVAL";
    case Errno::kEMFILE: return "EMFILE";
    case Errno::kENOSYS: return "ENOSYS";
    case Errno::kEAGAIN: return "EAGAIN";
    case Errno::kEPIPE: return "EPIPE";
    case Errno::kENOTCONN: return "ENOTCONN";
    case Errno::kECONNREFUSED: return "ECONNREFUSED";
    case Errno::kEADDRINUSE: return "EADDRINUSE";
    case Errno::kENOTSOCK: return "ENOTSOCK";
    case Errno::kERANGE: return "ERANGE";
  }
  return "E?";
}

}  // namespace nv::os

#include "vfs/passwd.h"

#include "util/strings.h"

namespace nv::vfs {

std::vector<PasswdEntry> parse_passwd(std::string_view content) {
  std::vector<PasswdEntry> entries;
  for (const auto& line : util::split(content, '\n')) {
    if (line.empty() || line[0] == '#') continue;
    const auto fields = util::split(line, ':');
    if (fields.size() < 7) continue;
    const auto uid = util::parse_u64(fields[2]);
    const auto gid = util::parse_u64(fields[3]);
    if (!uid || !gid) continue;
    PasswdEntry entry;
    entry.name = fields[0];
    entry.uid = static_cast<os::uid_t>(*uid);
    entry.gid = static_cast<os::gid_t>(*gid);
    entry.gecos = fields[4];
    entry.home = fields[5];
    entry.shell = fields[6];
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string format_passwd(const std::vector<PasswdEntry>& entries) {
  std::string out;
  for (const auto& e : entries) {
    out += e.name + ":x:" + std::to_string(e.uid) + ":" + std::to_string(e.gid) + ":" +
           e.gecos + ":" + e.home + ":" + e.shell + "\n";
  }
  return out;
}

std::vector<GroupEntry> parse_group(std::string_view content) {
  std::vector<GroupEntry> entries;
  for (const auto& line : util::split(content, '\n')) {
    if (line.empty() || line[0] == '#') continue;
    const auto fields = util::split(line, ':');
    if (fields.size() < 4) continue;
    const auto gid = util::parse_u64(fields[2]);
    if (!gid) continue;
    GroupEntry entry;
    entry.name = fields[0];
    entry.gid = static_cast<os::gid_t>(*gid);
    for (const auto& member : util::split(fields[3], ',')) {
      if (!member.empty()) entry.members.push_back(member);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string format_group(const std::vector<GroupEntry>& entries) {
  std::string out;
  for (const auto& e : entries) {
    out += e.name + ":x:" + std::to_string(e.gid) + ":" + util::join(e.members, ",") + "\n";
  }
  return out;
}

std::optional<PasswdEntry> find_user(const std::vector<PasswdEntry>& entries,
                                     std::string_view name) {
  for (const auto& e : entries) {
    if (e.name == name) return e;
  }
  return std::nullopt;
}

std::optional<PasswdEntry> find_uid(const std::vector<PasswdEntry>& entries, os::uid_t uid) {
  for (const auto& e : entries) {
    if (e.uid == uid) return e;
  }
  return std::nullopt;
}

std::string diversify_passwd(std::string_view content,
                             const std::function<os::uid_t(os::uid_t)>& uid_fn,
                             const std::function<os::gid_t(os::gid_t)>& gid_fn) {
  auto entries = parse_passwd(content);
  for (auto& e : entries) {
    e.uid = uid_fn(e.uid);
    e.gid = gid_fn(e.gid);
  }
  return format_passwd(entries);
}

std::string diversify_group(std::string_view content,
                            const std::function<os::gid_t(os::gid_t)>& gid_fn) {
  auto entries = parse_group(content);
  for (auto& e : entries) e.gid = gid_fn(e.gid);
  return format_group(entries);
}

}  // namespace nv::vfs

#include "vfs/path.h"

#include "util/strings.h"

namespace nv::vfs {

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> components;
  for (const auto& part : util::split(path, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == "..") {
      if (!components.empty()) components.pop_back();
      continue;
    }
    components.push_back(part);
  }
  return components;
}

std::string normalize_path(std::string_view path) {
  const auto components = split_path(path);
  if (components.empty()) return "/";
  std::string out;
  for (const auto& part : components) {
    out += '/';
    out += part;
  }
  return out;
}

std::string parent_path(std::string_view path) {
  auto components = split_path(path);
  if (components.empty()) return "/";
  components.pop_back();
  if (components.empty()) return "/";
  std::string out;
  for (const auto& part : components) {
    out += '/';
    out += part;
  }
  return out;
}

std::string basename(std::string_view path) {
  const auto components = split_path(path);
  return components.empty() ? std::string{} : components.back();
}

std::string variant_path(std::string_view path, unsigned variant_index) {
  return normalize_path(path) + "-" + std::to_string(variant_index);
}

}  // namespace nv::vfs

#include "vfs/filesystem.h"

#include <atomic>

#include "vfs/path.h"

namespace nv::vfs {

namespace {
std::uint64_t next_ino() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Inode::Inode(bool is_dir, os::mode_t mode, os::uid_t uid, os::gid_t gid)
    : is_dir_(is_dir), mode_(mode), uid_(uid), gid_(gid), ino_(next_ino()) {}

InodePtr Inode::make_file(os::mode_t mode, os::uid_t uid, os::gid_t gid, std::string content) {
  auto node = InodePtr(new Inode(false, mode, uid, gid));
  node->data_ = std::move(content);
  return node;
}

InodePtr Inode::make_dir(os::mode_t mode, os::uid_t uid, os::gid_t gid) {
  return InodePtr(new Inode(true, mode, uid, gid));
}

bool can_access(const Inode& node, const os::Credentials& creds, Access want) {
  if (creds.is_superuser()) {
    if (want != Access::kExec) return true;
    // Root still needs at least one exec bit set anywhere.
    return (node.mode() & (os::kModeOwnerExec | os::kModeGroupExec | os::kModeOtherExec)) != 0;
  }
  os::mode_t shift = 0;  // "other" bits
  if (node.uid() == creds.euid) shift = 6;
  else if (creds.in_group(node.gid())) shift = 3;
  os::mode_t bit = 0;
  switch (want) {
    case Access::kRead: bit = 04; break;
    case Access::kWrite: bit = 02; break;
    case Access::kExec: bit = 01; break;
  }
  return (node.mode() >> shift & bit) != 0;
}

OpenFile::OpenFile(InodePtr inode, os::OpenFlags flags, std::string path)
    : inode_(std::move(inode)), flags_(flags), path_(std::move(path)) {}

Result<std::string> OpenFile::read(std::size_t count) {
  if (!has_flag(flags_, os::OpenFlags::kRead)) return fail(os::Errno::kEBADF);
  const std::string& data = inode_->data();
  if (offset_ >= data.size()) return std::string{};
  const std::size_t take = std::min(count, data.size() - static_cast<std::size_t>(offset_));
  std::string out = data.substr(static_cast<std::size_t>(offset_), take);
  offset_ += take;
  return out;
}

Result<std::size_t> OpenFile::write(std::string_view bytes) {
  if (!has_flag(flags_, os::OpenFlags::kWrite)) return fail(os::Errno::kEBADF);
  std::string& data = inode_->data();
  if (has_flag(flags_, os::OpenFlags::kAppend)) offset_ = data.size();
  if (offset_ > data.size()) data.resize(static_cast<std::size_t>(offset_), '\0');
  data.replace(static_cast<std::size_t>(offset_),
               std::min(bytes.size(), data.size() - static_cast<std::size_t>(offset_)),
               bytes);
  offset_ += bytes.size();
  return bytes.size();
}

Result<std::uint64_t> OpenFile::seek(std::uint64_t offset) {
  offset_ = offset;
  return offset_;
}

FileSystem::FileSystem() : root_(Inode::make_dir(0755, os::kRootUid, os::kRootGid)) {}

Result<InodePtr> FileSystem::lookup(std::string_view path) const {
  InodePtr node = root_;
  for (const auto& part : split_path(path)) {
    if (!node->is_dir()) return fail(os::Errno::kENOTDIR);
    const auto it = node->entries().find(part);
    if (it == node->entries().end()) return fail(os::Errno::kENOENT);
    node = it->second;
  }
  return node;
}

Result<InodePtr> FileSystem::resolve_parent(std::string_view path,
                                            const os::Credentials& creds) const {
  auto parent = lookup(parent_path(path));
  if (!parent) return parent;
  if (!(*parent)->is_dir()) return fail(os::Errno::kENOTDIR);
  // Traversal requires exec on the parent; we check only the final directory
  // (intermediate checks omitted for simplicity; the kernel layer never
  // relies on them).
  if (!can_access(**parent, creds, Access::kExec)) return fail(os::Errno::kEACCES);
  return parent;
}

Status FileSystem::mkdir(std::string_view path, const os::Credentials& creds, os::mode_t mode) {
  const std::string name = basename(path);
  if (name.empty()) return fail(os::Errno::kEEXIST);  // mkdir("/")
  auto parent = resolve_parent(path, creds);
  if (!parent) return fail(parent.error());
  if ((*parent)->entries().contains(name)) return fail(os::Errno::kEEXIST);
  if (!can_access(**parent, creds, Access::kWrite)) return fail(os::Errno::kEACCES);
  (*parent)->entries()[name] = Inode::make_dir(mode, creds.euid, creds.egid);
  return Ok{};
}

Status FileSystem::mkdir_p(std::string_view path, const os::Credentials& creds,
                           os::mode_t mode) {
  std::string prefix;
  for (const auto& part : split_path(path)) {
    prefix += '/';
    prefix += part;
    if (exists(prefix)) {
      auto node = lookup(prefix);
      if (node && !(*node)->is_dir()) return fail(os::Errno::kENOTDIR);
      continue;
    }
    if (auto made = mkdir(prefix, creds, mode); !made) return made;
  }
  return Ok{};
}

Result<OpenFilePtr> FileSystem::open(std::string_view path, os::OpenFlags flags,
                                     const os::Credentials& creds, os::mode_t create_mode) {
  const std::string normalized = normalize_path(path);
  auto found = lookup(normalized);
  InodePtr node;
  if (found) {
    node = *found;
  } else {
    if (found.error() != os::Errno::kENOENT || !has_flag(flags, os::OpenFlags::kCreate)) {
      return fail(found.error());
    }
    auto parent = resolve_parent(normalized, creds);
    if (!parent) return fail(parent.error());
    if (!can_access(**parent, creds, Access::kWrite)) return fail(os::Errno::kEACCES);
    node = Inode::make_file(create_mode, creds.euid, creds.egid);
    (*parent)->entries()[basename(normalized)] = node;
  }
  if (node->is_dir() && has_flag(flags, os::OpenFlags::kWrite)) return fail(os::Errno::kEISDIR);
  if (has_flag(flags, os::OpenFlags::kRead) && !can_access(*node, creds, Access::kRead)) {
    return fail(os::Errno::kEACCES);
  }
  if (has_flag(flags, os::OpenFlags::kWrite) && !can_access(*node, creds, Access::kWrite)) {
    return fail(os::Errno::kEACCES);
  }
  if (has_flag(flags, os::OpenFlags::kTruncate) && !node->is_dir()) node->data().clear();
  return std::make_shared<OpenFile>(node, flags, normalized);
}

Result<Stat> FileSystem::stat(std::string_view path) const {
  auto node = lookup(path);
  if (!node) return fail(node.error());
  Stat s;
  s.ino = (*node)->ino();
  s.is_dir = (*node)->is_dir();
  s.mode = (*node)->mode();
  s.uid = (*node)->uid();
  s.gid = (*node)->gid();
  s.size = (*node)->size();
  return s;
}

Status FileSystem::unlink(std::string_view path, const os::Credentials& creds) {
  const std::string name = basename(path);
  if (name.empty()) return fail(os::Errno::kEISDIR);
  auto parent = resolve_parent(path, creds);
  if (!parent) return fail(parent.error());
  const auto it = (*parent)->entries().find(name);
  if (it == (*parent)->entries().end()) return fail(os::Errno::kENOENT);
  if (it->second->is_dir() && !it->second->entries().empty()) return fail(os::Errno::kEEXIST);
  if (!can_access(**parent, creds, Access::kWrite)) return fail(os::Errno::kEACCES);
  (*parent)->entries().erase(it);
  return Ok{};
}

Status FileSystem::chmod(std::string_view path, os::mode_t mode, const os::Credentials& creds) {
  auto node = lookup(path);
  if (!node) return fail(node.error());
  if (!creds.is_superuser() && (*node)->uid() != creds.euid) return fail(os::Errno::kEPERM);
  (*node)->set_mode(mode);
  return Ok{};
}

Status FileSystem::chown(std::string_view path, os::uid_t uid, os::gid_t gid,
                         const os::Credentials& creds) {
  auto node = lookup(path);
  if (!node) return fail(node.error());
  if (!creds.is_superuser()) return fail(os::Errno::kEPERM);
  (*node)->set_owner(uid, gid);
  return Ok{};
}

Status FileSystem::rename(std::string_view from, std::string_view to,
                          const os::Credentials& creds) {
  auto node = lookup(from);
  if (!node) return fail(node.error());
  auto from_parent = resolve_parent(from, creds);
  if (!from_parent) return fail(from_parent.error());
  auto to_parent = resolve_parent(to, creds);
  if (!to_parent) return fail(to_parent.error());
  if (!can_access(**from_parent, creds, Access::kWrite) ||
      !can_access(**to_parent, creds, Access::kWrite)) {
    return fail(os::Errno::kEACCES);
  }
  (*from_parent)->entries().erase(basename(from));
  (*to_parent)->entries()[basename(to)] = *node;
  return Ok{};
}

Status FileSystem::write_file(std::string_view path, std::string_view content,
                              const os::Credentials& creds, os::mode_t mode) {
  auto file = open(path, os::OpenFlags::kWrite | os::OpenFlags::kCreate | os::OpenFlags::kTruncate,
                   creds, mode);
  if (!file) return fail(file.error());
  auto written = (*file)->write(content);
  if (!written) return fail(written.error());
  return Ok{};
}

Result<std::string> FileSystem::read_file(std::string_view path,
                                          const os::Credentials& creds) const {
  auto self = const_cast<FileSystem*>(this);  // open() does not mutate without kCreate
  auto file = self->open(path, os::OpenFlags::kRead, creds);
  if (!file) return fail(file.error());
  return (*file)->read((*file)->inode()->size());
}

bool FileSystem::exists(std::string_view path) const { return lookup(path).has_value(); }

Result<std::vector<std::string>> FileSystem::list_dir(std::string_view path) const {
  auto node = lookup(path);
  if (!node) return fail(node.error());
  if (!(*node)->is_dir()) return fail(os::Errno::kENOTDIR);
  std::vector<std::string> names;
  names.reserve((*node)->entries().size());
  for (const auto& [name, child] : (*node)->entries()) names.push_back(name);
  return names;
}

}  // namespace nv::vfs

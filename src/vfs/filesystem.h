// In-memory simulated filesystem with POSIX-style permissions.
//
// This is the substrate behind the simulated kernel's file syscalls and the
// unshared-files mechanism (§3.4 of the paper): variant-specific trusted
// files like /etc/passwd-0 and /etc/passwd-1 live side by side in one tree.
#ifndef NV_VFS_FILESYSTEM_H
#define NV_VFS_FILESYSTEM_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.h"
#include "vkernel/types.h"

namespace nv::vfs {

struct Ok {};
template <typename T>
using Result = util::Expected<T, os::Errno>;
using Status = util::Expected<Ok, os::Errno>;

[[nodiscard]] inline util::Unexpected<os::Errno> fail(os::Errno e) {
  return util::Unexpected<os::Errno>{e};
}

class Inode;
using InodePtr = std::shared_ptr<Inode>;

/// A file or directory node. Files hold a byte buffer; directories hold a
/// name -> inode map.
class Inode {
 public:
  static InodePtr make_file(os::mode_t mode, os::uid_t uid, os::gid_t gid,
                            std::string content = {});
  static InodePtr make_dir(os::mode_t mode, os::uid_t uid, os::gid_t gid);

  [[nodiscard]] bool is_dir() const noexcept { return is_dir_; }
  [[nodiscard]] os::mode_t mode() const noexcept { return mode_; }
  [[nodiscard]] os::uid_t uid() const noexcept { return uid_; }
  [[nodiscard]] os::gid_t gid() const noexcept { return gid_; }
  [[nodiscard]] std::uint64_t ino() const noexcept { return ino_; }

  void set_mode(os::mode_t mode) noexcept { mode_ = mode; }
  void set_owner(os::uid_t uid, os::gid_t gid) noexcept {
    uid_ = uid;
    gid_ = gid;
  }

  // File payload (valid only when !is_dir()).
  [[nodiscard]] const std::string& data() const noexcept { return data_; }
  [[nodiscard]] std::string& data() noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  // Directory entries (valid only when is_dir()).
  [[nodiscard]] const std::map<std::string, InodePtr>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::map<std::string, InodePtr>& entries() noexcept { return entries_; }

 private:
  Inode(bool is_dir, os::mode_t mode, os::uid_t uid, os::gid_t gid);

  bool is_dir_;
  os::mode_t mode_;
  os::uid_t uid_;
  os::gid_t gid_;
  std::uint64_t ino_;
  std::string data_;
  std::map<std::string, InodePtr> entries_;
};

/// Metadata snapshot returned by stat().
struct Stat {
  std::uint64_t ino = 0;
  bool is_dir = false;
  os::mode_t mode = 0;
  os::uid_t uid = 0;
  os::gid_t gid = 0;
  std::uint64_t size = 0;
};

enum class Access : std::uint8_t { kRead, kWrite, kExec };

/// Standard owner/group/other permission check; euid 0 bypasses read/write
/// checks and needs any exec bit for exec (Linux behaviour).
[[nodiscard]] bool can_access(const Inode& node, const os::Credentials& creds, Access want);

/// An open-file description: inode + cursor + access mode. Shared between
/// fd-table slots on dup, exactly like the kernel's struct file.
class OpenFile {
 public:
  OpenFile(InodePtr inode, os::OpenFlags flags, std::string path);

  /// Read up to `count` bytes from the cursor; advances the cursor.
  [[nodiscard]] Result<std::string> read(std::size_t count);
  /// Write at the cursor (or end when O_APPEND); advances the cursor.
  [[nodiscard]] Result<std::size_t> write(std::string_view bytes);
  /// Absolute seek; returns the new offset.
  [[nodiscard]] Result<std::uint64_t> seek(std::uint64_t offset);

  [[nodiscard]] const InodePtr& inode() const noexcept { return inode_; }
  [[nodiscard]] os::OpenFlags flags() const noexcept { return flags_; }
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  InodePtr inode_;
  os::OpenFlags flags_;
  std::uint64_t offset_ = 0;
  std::string path_;  // normalized path used at open (for diagnostics)
};

using OpenFilePtr = std::shared_ptr<OpenFile>;

/// The filesystem tree. All paths are normalized on entry; all mutating and
/// permission-sensitive operations take the caller's credentials.
class FileSystem {
 public:
  FileSystem();

  [[nodiscard]] Status mkdir(std::string_view path, const os::Credentials& creds,
                             os::mode_t mode = 0755);
  /// mkdir -p; existing directories along the way are fine.
  [[nodiscard]] Status mkdir_p(std::string_view path, const os::Credentials& creds,
                               os::mode_t mode = 0755);

  [[nodiscard]] Result<OpenFilePtr> open(std::string_view path, os::OpenFlags flags,
                                         const os::Credentials& creds,
                                         os::mode_t create_mode = 0644);

  [[nodiscard]] Result<Stat> stat(std::string_view path) const;
  [[nodiscard]] Status unlink(std::string_view path, const os::Credentials& creds);
  [[nodiscard]] Status chmod(std::string_view path, os::mode_t mode,
                             const os::Credentials& creds);
  [[nodiscard]] Status chown(std::string_view path, os::uid_t uid, os::gid_t gid,
                             const os::Credentials& creds);
  [[nodiscard]] Status rename(std::string_view from, std::string_view to,
                              const os::Credentials& creds);

  /// Convenience: create-or-replace a whole file (root-like maintenance used
  /// by test fixtures and variant-file generation).
  [[nodiscard]] Status write_file(std::string_view path, std::string_view content,
                                  const os::Credentials& creds, os::mode_t mode = 0644);
  [[nodiscard]] Result<std::string> read_file(std::string_view path,
                                              const os::Credentials& creds) const;

  [[nodiscard]] bool exists(std::string_view path) const;
  [[nodiscard]] Result<std::vector<std::string>> list_dir(std::string_view path) const;
  [[nodiscard]] Result<InodePtr> lookup(std::string_view path) const;

 private:
  [[nodiscard]] Result<InodePtr> resolve_parent(std::string_view path,
                                                const os::Credentials& creds) const;

  InodePtr root_;
};

}  // namespace nv::vfs

#endif  // NV_VFS_FILESYSTEM_H

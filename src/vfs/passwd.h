// /etc/passwd and /etc/group parsing, formatting, and per-variant
// diversification (the data half of the unshared-files mechanism, §3.4).
#ifndef NV_VFS_PASSWD_H
#define NV_VFS_PASSWD_H

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.h"
#include "vkernel/types.h"

namespace nv::vfs {

struct PasswdEntry {
  std::string name;
  os::uid_t uid = 0;
  os::gid_t gid = 0;
  std::string gecos;
  std::string home;
  std::string shell;
  [[nodiscard]] bool operator==(const PasswdEntry&) const = default;
};

struct GroupEntry {
  std::string name;
  os::gid_t gid = 0;
  std::vector<std::string> members;
  [[nodiscard]] bool operator==(const GroupEntry&) const = default;
};

/// Parse passwd-format content; malformed lines are skipped (as glibc does).
[[nodiscard]] std::vector<PasswdEntry> parse_passwd(std::string_view content);
[[nodiscard]] std::string format_passwd(const std::vector<PasswdEntry>& entries);

[[nodiscard]] std::vector<GroupEntry> parse_group(std::string_view content);
[[nodiscard]] std::string format_group(const std::vector<GroupEntry>& entries);

[[nodiscard]] std::optional<PasswdEntry> find_user(const std::vector<PasswdEntry>& entries,
                                                   std::string_view name);
[[nodiscard]] std::optional<PasswdEntry> find_uid(const std::vector<PasswdEntry>& entries,
                                                  os::uid_t uid);

/// Rewrite every UID/GID field through the given reexpression functions,
/// producing the variant-i copy of a trusted file. Everything except the
/// numeric identity fields is preserved byte-for-byte.
[[nodiscard]] std::string diversify_passwd(std::string_view content,
                                           const std::function<os::uid_t(os::uid_t)>& uid_fn,
                                           const std::function<os::gid_t(os::gid_t)>& gid_fn);
[[nodiscard]] std::string diversify_group(std::string_view content,
                                          const std::function<os::gid_t(os::gid_t)>& gid_fn);

}  // namespace nv::vfs

#endif  // NV_VFS_PASSWD_H

// Absolute path normalization for the simulated filesystem.
#ifndef NV_VFS_PATH_H
#define NV_VFS_PATH_H

#include <string>
#include <string_view>
#include <vector>

namespace nv::vfs {

/// Split an absolute path into components, resolving "." and "..".
/// "/etc//passwd/." -> {"etc", "passwd"}. Leading ".." at root is dropped.
[[nodiscard]] std::vector<std::string> split_path(std::string_view path);

/// Canonical form: "/" + components joined by "/".
[[nodiscard]] std::string normalize_path(std::string_view path);

/// Parent of a normalized path ("/etc/passwd" -> "/etc"; "/" -> "/").
[[nodiscard]] std::string parent_path(std::string_view path);

/// Final component ("/etc/passwd" -> "passwd"; "/" -> "").
[[nodiscard]] std::string basename(std::string_view path);

/// The per-variant name used by the unshared-files mechanism (§3.4):
/// variant_path("/etc/passwd", 1) == "/etc/passwd-1".
[[nodiscard]] std::string variant_path(std::string_view path, unsigned variant_index);

}  // namespace nv::vfs

#endif  // NV_VFS_PATH_H

#include "cluster/gossip.h"

namespace nv::cluster {

GossipBus::GossipBus(GossipConfig config, fleet::ClockFn clock)
    : config_(config), clock_(fleet::resolve_clock(std::move(clock))) {}

unsigned GossipBus::subscribe(Handler handler) {
  const util::MutexLock lock(mutex_);
  handlers_.push_back(std::move(handler));
  return static_cast<unsigned>(handlers_.size() - 1);
}

void GossipBus::publish(unsigned origin, const fleet::CampaignAlert& alert) {
  QueuedAlert queued{origin, alert, {}};
  std::vector<Handler> handlers;
  {
    const util::MutexLock lock(mutex_);
    ++published_;
    if (config_.propagation_delay > std::chrono::milliseconds::zero()) {
      queued.deliver_at = clock_() + config_.propagation_delay;
      queue_.push_back(std::move(queued));
      return;
    }
    handlers = handlers_;  // copy so handlers run outside the bus mutex
  }
  const std::size_t count = fan_out(queued, handlers);
  const util::MutexLock lock(mutex_);
  delivered_ += count;
}

std::size_t GossipBus::pump() {
  std::vector<QueuedAlert> due;
  std::vector<Handler> handlers;
  {
    const util::MutexLock lock(mutex_);
    const auto now = clock_();
    // The queue is in publish order and delays are uniform, so due messages
    // form a prefix — delivery order is exactly publish order.
    while (!queue_.empty() && queue_.front().deliver_at <= now) {
      due.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (due.empty()) return 0;
    handlers = handlers_;
  }
  std::size_t count = 0;
  for (const auto& queued : due) count += fan_out(queued, handlers);
  const util::MutexLock lock(mutex_);
  delivered_ += count;
  return count;
}

std::size_t GossipBus::fan_out(const QueuedAlert& queued, const std::vector<Handler>& handlers) {
  std::size_t count = 0;
  for (unsigned index = 0; index < handlers.size(); ++index) {
    if (index == queued.origin || !handlers[index]) continue;
    handlers[index](queued.origin, queued.alert);
    ++count;
  }
  return count;
}

std::uint64_t GossipBus::published() const {
  const util::MutexLock lock(mutex_);
  return published_;
}

std::uint64_t GossipBus::delivered() const {
  const util::MutexLock lock(mutex_);
  return delivered_;
}

std::uint64_t GossipBus::pending() const {
  const util::MutexLock lock(mutex_);
  return queue_.size();
}

}  // namespace nv::cluster

// GossipBus: cross-shard campaign-alert propagation on the injected clock.
//
// When shard A's CampaignCorrelator raises an alert, the cluster publishes
// it here; every OTHER shard receives it (apply_remote_campaign) so its
// AdaptivePolicyController tightens BEFORE the attacker's probes arrive —
// the network-diversity literature's "defenders share what one node paid to
// learn" loop, made deterministic:
//
//   - propagation_delay == 0 (default): publish() delivers synchronously on
//     the publishing thread, subscribers in ascending index order.
//   - propagation_delay > 0: publish() enqueues; pump() delivers everything
//     whose deliver-at time (measured on the injected ClockFn) has passed,
//     in publish order. Under ManualClock the whole propagation schedule is
//     reproducible tick for tick.
//
// The bus carries only locally-raised alerts (receivers never re-publish),
// so gossip cannot loop or amplify.
#ifndef NV_CLUSTER_GOSSIP_H
#define NV_CLUSTER_GOSSIP_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "fleet/ops.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nv::cluster {

struct GossipConfig {
  /// How long a published alert takes to reach the other shards, on the
  /// injected clock. 0 = synchronous delivery inside publish().
  std::chrono::milliseconds propagation_delay{0};
};

class GossipBus {
 public:
  /// Receives (origin shard, the alert). Invoked OUTSIDE the bus mutex, on
  /// the publishing thread (delay 0) or the pumping thread (delay > 0).
  using Handler = std::function<void(unsigned origin, const fleet::CampaignAlert& alert)>;

  explicit GossipBus(GossipConfig config = {}, fleet::ClockFn clock = {});

  /// Register a shard's receiver; returns its subscriber index. The cluster
  /// subscribes shards in index order at construction, so "ascending
  /// subscriber order" is "ascending shard order". Not thread-safe against
  /// concurrent publish — subscribe everything first.
  unsigned subscribe(Handler handler);

  /// Broadcast `alert` from `origin` to every subscriber EXCEPT origin.
  void publish(unsigned origin, const fleet::CampaignAlert& alert);

  /// Deliver every queued message whose propagation delay has elapsed, in
  /// publish order. Returns deliveries made (messages x receiving shards).
  /// No-op at delay 0 (publish already delivered).
  std::size_t pump();

  [[nodiscard]] std::uint64_t published() const;
  [[nodiscard]] std::uint64_t delivered() const;
  /// Messages queued and not yet due (always 0 at delay 0).
  [[nodiscard]] std::uint64_t pending() const;

 private:
  struct QueuedAlert {
    unsigned origin = 0;
    fleet::CampaignAlert alert;
    std::chrono::steady_clock::time_point deliver_at{};
  };

  /// Deliver one alert to every subscriber except origin; called without
  /// holding mutex_ (handlers take shard locks of their own).
  std::size_t fan_out(const QueuedAlert& queued, const std::vector<Handler>& handlers)
      NV_EXCLUDES(mutex_);

  GossipConfig config_;
  fleet::ClockFn clock_;
  mutable util::Mutex mutex_;
  std::vector<Handler> handlers_ NV_GUARDED_BY(mutex_);
  std::deque<QueuedAlert> queue_ NV_GUARDED_BY(mutex_);
  std::uint64_t published_ NV_GUARDED_BY(mutex_) = 0;
  std::uint64_t delivered_ NV_GUARDED_BY(mutex_) = 0;
};

}  // namespace nv::cluster

#endif  // NV_CLUSTER_GOSSIP_H

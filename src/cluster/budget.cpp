#include "cluster/budget.h"

#include <stdexcept>

#include "util/strings.h"

namespace nv::cluster {

ClusterKeyspaceBudget::ClusterKeyspaceBudget(std::uint64_t global_keys, unsigned shards)
    : global_keys_(global_keys), shards_(shards) {
  if (shards_ == 0) throw std::invalid_argument("keyspace budget needs at least one shard");
  if (global_keys_ != 0 && global_keys_ < shards_) {
    throw std::invalid_argument(
        "global keyspace budget smaller than the shard count: some shard would "
        "be allocated zero keys and could never build its initial sessions");
  }
}

std::uint64_t ClusterKeyspaceBudget::allocation(unsigned shard) const {
  if (shard >= shards_) throw std::out_of_range("allocation: no such shard");
  if (unlimited()) return 0;
  const std::uint64_t base = global_keys_ / shards_;
  const std::uint64_t remainder = global_keys_ % shards_;
  return base + (shard < remainder ? 1 : 0);
}

std::string ClusterKeyspaceBudget::describe() const {
  if (unlimited()) {
    return util::format("global keyspace budget: unlimited over %u shards", shards_);
  }
  return util::format("global keyspace budget: %llu keys over %u shards (%llu + remainder %llu)",
                      static_cast<unsigned long long>(global_keys_), shards_,
                      static_cast<unsigned long long>(global_keys_ / shards_),
                      static_cast<unsigned long long>(global_keys_ % shards_));
}

}  // namespace nv::cluster

// ClusterKeyspaceBudget: one global unique-key budget, split across shards.
//
// PR 5 made per-fleet keyspace accounting honest; the cluster problem (Zhang
// et al.'s diversity-by-design budgeting) is the next layer up: the whole
// deployment owns ONE finite pool of distinct re-expressions, and a single
// noisy shard — one drawing replacements through a quarantine storm — must
// not be able to drain the space every other shard needs. The budget is
// enforced mechanically: each shard's SessionFactory gets its allocation as
// SessionSpec::max_unique_keys, so overdraw is refused at the draw site (and
// surfaces through the shard's ordinary exhaustion posture), not policed
// after the fact.
#ifndef NV_CLUSTER_BUDGET_H
#define NV_CLUSTER_BUDGET_H

#include <cstdint>
#include <string>
#include <vector>

namespace nv::cluster {

class ClusterKeyspaceBudget {
 public:
  /// `global_keys` == 0 means unlimited (every allocation reads 0 = uncapped).
  ClusterKeyspaceBudget(std::uint64_t global_keys, unsigned shards);

  /// The slice shard `shard` may issue: an even split, with the remainder
  /// handed to the low indexes so the whole budget is always allocated
  /// (sum over shards == global_keys). 0 when the budget is unlimited.
  [[nodiscard]] std::uint64_t allocation(unsigned shard) const;

  [[nodiscard]] std::uint64_t global_keys() const noexcept { return global_keys_; }
  [[nodiscard]] unsigned shards() const noexcept { return shards_; }
  [[nodiscard]] bool unlimited() const noexcept { return global_keys_ == 0; }

  /// "global keyspace budget: 100 keys over 4 shards (25 + remainder 0)".
  [[nodiscard]] std::string describe() const;

 private:
  std::uint64_t global_keys_;
  unsigned shards_;
};

}  // namespace nv::cluster

#endif  // NV_CLUSTER_BUDGET_H

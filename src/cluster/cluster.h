// FleetCluster: the fleet-of-fleets.
//
// Many VariantFleet shards, each with its OWN SessionFactory and therefore
// its own diversity draw space, behind a diversity-aware ShardRouter. The
// paper's per-host entropy argument compounds across the deployment (Chen et
// al., PAPERS.md): an attacker who burned probes mapping shard A's
// re-expressions has learned nothing about shard B's, must re-discover every
// shard's network endpoint (the drawn network-variation identity), and —
// because shard A's campaign alert gossips to every other shard — meets the
// rest of the cluster already tightened.
//
// Wiring per shard i:
//   - FleetConfig stamped from the shard template: seed base + 2i, the
//     cluster clock, and SessionSpec::max_unique_keys set to the
//     ClusterKeyspaceBudget allocation (one noisy shard cannot overdraw the
//     global space — its factory refuses at its slice boundary).
//   - on_campaign chains: locally-raised alerts publish on the GossipBus;
//     every other shard's apply_remote_campaign() tightens its adaptive
//     posture without rotating or re-publishing (no gossip loops).
//   - A network identity drawn from its own SessionFactory over
//     ClusterConfig::network_variations (seed base + 2i + 1):
//     network_fingerprint(i) names it, rotate_shard_network(i) redraws it,
//     and its keyspace_bits flow into the composed cluster entropy gauge.
//
// Everything is deterministic under ManualClock + a fixed seed: shard draw
// sequences, gossip delivery order (ascending shard index), and routing
// tie-breaks (round-robin).
#ifndef NV_CLUSTER_CLUSTER_H
#define NV_CLUSTER_CLUSTER_H

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/budget.h"
#include "cluster/gossip.h"
#include "cluster/router.h"
#include "cluster/telemetry.h"
#include "fleet/fleet.h"
#include "obs/trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nv::cluster {

struct ClusterConfig {
  unsigned shards = 2;
  /// Template for every shard's FleetConfig. `seed` is the cluster base seed
  /// (unset draws one from std::random_device); each shard's fleet gets
  /// base + 2i and its network factory base + 2i + 1, so shard draw spaces
  /// are disjoint but the whole cluster reproduces from one number. `clock`
  /// and the campaign/adaptive posture are shared by every shard; a set
  /// `on_campaign` hook still fires (after the gossip publish).
  fleet::FleetConfig shard;
  /// Registry variations forming each shard's drawn NETWORK identity
  /// (endpoint/port-space diversification). Empty = static network (no
  /// endpoint entropy, network_fingerprint reads "static").
  std::vector<std::string> network_variations = {"port-hopping"};
  /// Global unique-key budget split across shards via ClusterKeyspaceBudget;
  /// 0 = unlimited. Must be >= shards (every shard needs at least one key),
  /// and in practice >= shards * pool_size so initial sessions can build.
  std::uint64_t global_key_budget = 0;
  GossipConfig gossip;
  RouterPolicy router;
  /// Housekeeping sweep period for tick(), measured on the injected clock:
  /// each due sweep re-diversifies (sessions + network identity) every shard
  /// whose adaptive posture is currently TIGHTENED. 0 disables sweeping —
  /// tick() still pumps gossip and enforces rotation deadlines.
  std::chrono::milliseconds sweep_interval{0};
  /// Structured tracing (obs/trace.h): each shard's fleet records under
  /// trace_scope "shard<i>", and the cluster adds "cluster.router" (route
  /// decisions), "cluster.gossip" (publish/deliver), and "cluster.tick"
  /// tracks. Null = untraced. Overrides any ClusterConfig::shard.trace.
  std::shared_ptr<obs::TraceRecorder> trace;
};

/// One tightened shard's share of a tick() housekeeping sweep. The sweep only
/// FLAGS session rotations (they resolve on the shard's worker threads);
/// lanes_flagged + rotations_before let a deterministic driver await
/// sessions_rotated + rotations_failed reaching rotations_before +
/// lanes_flagged before reading fingerprints.
struct ShardSweep {
  unsigned shard = 0;
  /// Lanes rotate_fleet() flagged for re-diversification this sweep.
  std::size_t lanes_flagged = 0;
  /// The shard's sessions_rotated + rotations_failed when the sweep started.
  std::uint64_t rotations_before = 0;
  /// Network identity redrawn (false when static or endpoint space exhausted).
  bool network_rotated = false;
};

/// What one FleetCluster::tick() did.
struct TickReport {
  std::uint64_t tick = 0;              // ordinal of this tick, 1-based
  std::size_t gossip_delivered = 0;    // due deliveries pumped this tick
  std::size_t forced_rotations = 0;    // rotation-deadline swaps across shards
  bool swept = false;                  // the sweep interval elapsed this tick
  std::vector<ShardSweep> sweeps;      // tightened shards swept (empty unless swept)
};

class FleetCluster {
 public:
  /// Builds every shard (spawning their worker pools) and draws the initial
  /// network identities. Throws std::invalid_argument on a config the shards
  /// or budget reject.
  explicit FleetCluster(ClusterConfig config);
  ~FleetCluster();

  FleetCluster(const FleetCluster&) = delete;
  FleetCluster& operator=(const FleetCluster&) = delete;

  /// Route one job through the ShardRouter and submit it (blocking on the
  /// chosen shard's backpressure). Throws std::runtime_error when no shard
  /// is accepting (every refusal counted as jobs_unroutable).
  [[nodiscard]] std::future<fleet::JobOutcome> submit(fleet::FleetJob job);

  /// Non-blocking: walk shards best-score-first until one admits the job;
  /// nullopt (counted jobs_unroutable) when none does.
  [[nodiscard]] std::optional<std::future<fleet::JobOutcome>> try_submit(fleet::FleetJob job);

  /// Bypass the router (tests / experiments that target shards directly —
  /// not counted as jobs_routed).
  [[nodiscard]] std::future<fleet::JobOutcome> submit_to(unsigned shard, fleet::FleetJob job);

  [[nodiscard]] fleet::VariantFleet& shard(unsigned index) { return *fleets_.at(index); }
  [[nodiscard]] const fleet::VariantFleet& shard(unsigned index) const {
    return *fleets_.at(index);
  }
  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(fleets_.size());
  }

  /// Drain ONE shard gracefully; the router stops placing work there the
  /// moment it stops accepting (the cluster degrades instead of failing).
  fleet::DrainReport drain_shard(unsigned index, std::chrono::milliseconds deadline);

  /// Drain every shard (idempotent; called by the destructor).
  void shutdown();

  /// The shard's current drawn network identity, e.g.
  /// "port-hopping{mask=0x9c3a}" — or "static" when network_variations is
  /// empty. An off-cluster attacker must rediscover this after every
  /// rotate_shard_network().
  [[nodiscard]] std::string network_fingerprint(unsigned index) const;

  /// Redraw the shard's network identity (counted as network_rotations).
  /// False when the network keyspace cannot yield a fresh identity.
  bool rotate_shard_network(unsigned index);

  [[nodiscard]] ClusterSnapshot snapshot() const;

  [[nodiscard]] GossipBus& gossip() noexcept { return gossip_; }
  [[nodiscard]] const ClusterKeyspaceBudget& budget() const noexcept { return budget_; }

  /// One cluster housekeeping step, meant to run once per driver tick (after
  /// the injected clock advances): pumps due gossip deliveries, tells every
  /// shard the clock moved (enforcing rotation deadlines), and — when
  /// ClusterConfig::sweep_interval has elapsed since the last sweep — flags a
  /// fleet-wide re-diversification plus a network-identity redraw on every
  /// shard whose adaptive posture is tightened. Deterministic under
  /// ManualClock; records kClusterTick (and per-shard rotation events) when
  /// tracing. Thread-safe, though one driver thread is the intended caller.
  TickReport tick();

 private:
  [[nodiscard]] std::vector<ShardHealth> sample_health() const;

  ClusterConfig config_;
  fleet::ClockFn clock_;
  ClusterKeyspaceBudget budget_;
  /// mutable: sample_health() is const but counts its cache misses.
  mutable ClusterTelemetry telemetry_;
  GossipBus gossip_;  // declared before fleets_: handlers reference the fleets
  ShardRouter router_;
  std::vector<std::unique_ptr<fleet::VariantFleet>> fleets_;

  /// Router health cache (satellite of the fleets' health_epoch()): the slow
  /// per-shard fields (accepting, keyspace ledger) are re-sampled only when a
  /// shard's epoch moved; queue_depth is refreshed every call from the
  /// lock-free hint. Guarded by health_mutex_.
  mutable util::Mutex health_mutex_;
  mutable std::vector<ShardHealth> health_cache_ NV_GUARDED_BY(health_mutex_);
  mutable std::vector<std::uint64_t> health_epoch_seen_ NV_GUARDED_BY(health_mutex_);

  /// tick() state.
  util::Mutex tick_mutex_;
  std::uint64_t tick_count_ NV_GUARDED_BY(tick_mutex_) = 0;
  std::chrono::steady_clock::time_point last_sweep_ NV_GUARDED_BY(tick_mutex_){};

  /// Cluster-level trace tracks (0 when untraced).
  std::shared_ptr<obs::TraceRecorder> trace_;
  std::uint32_t router_track_ = 0;
  std::uint32_t gossip_track_ = 0;
  std::uint32_t tick_track_ = 0;

  /// Per-shard network identity machinery (guarded by network_mutex_: the
  /// factories serialize internally, but identity swap + fingerprint read
  /// must be atomic).
  mutable util::Mutex network_mutex_;
  std::vector<std::unique_ptr<fleet::SessionFactory>> network_factories_
      NV_GUARDED_BY(network_mutex_);
  std::vector<std::string> network_identities_ NV_GUARDED_BY(network_mutex_);
  double network_bits_ = 0.0;  // one shard's network entropy; set once at construction

  util::Mutex shutdown_mutex_;
  bool shut_down_ NV_GUARDED_BY(shutdown_mutex_) = false;
};

}  // namespace nv::cluster

#endif  // NV_CLUSTER_CLUSTER_H

// ShardRouter: diversity-aware job placement across fleet shards.
//
// A plain least-loaded balancer would happily pile work — and therefore
// quarantine-driven key draws — onto whichever shard answers fastest. The
// cluster's router scores shards on BOTH load and remaining diversity:
//
//   score = queue_depth * queue_weight
//         - keyspace_fraction * keyspace_weight      (fraction remaining)
//         + recent_sheds * shed_weight               (sheds since last sample)
//         + exhausted_penalty (if the shard's keyspace is exhausted)
//
// recent_sheds is the growth of the shard's cumulative jobs_shed counter
// since the router last scored it: a shard actively refusing work at the
// door is overloaded in a way queue depth understates (its queue is pinned
// at capacity — the overflow never shows up there). The penalty decays to
// zero one route() after the shedding stops, so a recovered shard is
// forgiven instead of repelled forever.
//
// Lowest score wins; ties break round-robin so equal shards share work
// deterministically. Non-accepting shards (draining / shut down) are
// skipped entirely; exhausted shards stay routable as a last resort — they
// can still serve, they just cannot re-diversify — which is the graceful-
// degradation half of the cluster story.
#ifndef NV_CLUSTER_ROUTER_H
#define NV_CLUSTER_ROUTER_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nv::cluster {

/// One shard's routing inputs, sampled by the cluster right before route().
struct ShardHealth {
  bool accepting = true;
  bool exhausted = false;
  std::size_t queue_depth = 0;
  std::uint64_t keys_remaining = 0;
  /// 0 when the shard's keyspace is untracked (keyspace_fraction reads 1:
  /// an untracked shard never repels work on diversity grounds).
  std::uint64_t keys_total = 0;
  /// CUMULATIVE admission refusals (VariantFleet::jobs_shed_hint). The
  /// router scores on the delta since it last sampled this shard, not the
  /// lifetime total.
  std::uint64_t jobs_shed = 0;
};

struct RouterPolicy {
  /// Cost per queued job.
  double queue_weight = 1.0;
  /// Bonus (in queued-job units) for a full keyspace vs an empty one: at the
  /// default, a shard with all keys left beats an equally-loaded shard with
  /// none by 4 queued jobs' worth of score.
  double keyspace_weight = 4.0;
  /// Additive penalty for exhausted shards — large enough that any
  /// non-exhausted shard wins, small enough to stay finite (exhausted shards
  /// remain a last resort, not unroutable).
  double exhausted_penalty = 1e6;
  /// Cost (in queued-job units) per job the shard shed since the router last
  /// sampled it: shedding is stronger evidence of overload than one queued
  /// job, so it defaults above queue_weight. 0 restores shed-blind routing.
  double shed_weight = 2.0;
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterPolicy policy = {});

  /// Pick the shard for the next job, or nullopt when no shard is accepting.
  /// Thread-safe; the round-robin tie-break cursor is the only state.
  [[nodiscard]] std::optional<unsigned> route(const std::vector<ShardHealth>& shards);

  /// Every accepting shard, best score first — for try-submit fallback
  /// (start at the winner, walk down on refusal). Ties keep ascending shard
  /// order. Empty when no shard is accepting.
  [[nodiscard]] std::vector<unsigned> ranked(const std::vector<ShardHealth>& shards) const;

  [[nodiscard]] const RouterPolicy& policy() const noexcept { return policy_; }

 private:
  [[nodiscard]] double score_locked(const ShardHealth& shard, unsigned index) const
      NV_REQUIRES(mutex_);

  RouterPolicy policy_;
  mutable util::Mutex mutex_;
  // Rotates on every route() for the tie-break.
  unsigned cursor_ NV_GUARDED_BY(mutex_) = 0;
  /// Per-shard cumulative jobs_shed as of the last route() that scored it;
  /// the shed penalty is the growth since then. ranked() reads it without
  /// advancing it (a const preview must not eat the next route's signal).
  mutable std::vector<std::uint64_t> sheds_seen_ NV_GUARDED_BY(mutex_);
};

}  // namespace nv::cluster

#endif  // NV_CLUSTER_ROUTER_H

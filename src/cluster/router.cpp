#include "cluster/router.h"

#include <algorithm>

namespace nv::cluster {

ShardRouter::ShardRouter(RouterPolicy policy) : policy_(policy) {}

double ShardRouter::score(const ShardHealth& shard) const {
  const double fraction =
      shard.keys_total == 0
          ? 1.0  // untracked: never repelled on diversity grounds
          : static_cast<double>(shard.keys_remaining) / static_cast<double>(shard.keys_total);
  double value = static_cast<double>(shard.queue_depth) * policy_.queue_weight -
                 fraction * policy_.keyspace_weight;
  if (shard.exhausted) value += policy_.exhausted_penalty;
  return value;
}

std::optional<unsigned> ShardRouter::route(const std::vector<ShardHealth>& shards) {
  const util::MutexLock lock(mutex_);
  std::optional<unsigned> best;
  double best_score = 0.0;
  const unsigned n = static_cast<unsigned>(shards.size());
  // Scan in rotated order so exact ties hand successive jobs to successive
  // shards instead of pinning the lowest index.
  for (unsigned step = 0; step < n; ++step) {
    const unsigned index = (cursor_ + step) % n;
    if (!shards[index].accepting) continue;
    const double value = score(shards[index]);
    if (!best.has_value() || value < best_score) {
      best = index;
      best_score = value;
    }
  }
  if (best.has_value()) cursor_ = (*best + 1) % n;
  return best;
}

std::vector<unsigned> ShardRouter::ranked(const std::vector<ShardHealth>& shards) const {
  std::vector<unsigned> order;
  for (unsigned index = 0; index < shards.size(); ++index) {
    if (shards[index].accepting) order.push_back(index);
  }
  std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return score(shards[a]) < score(shards[b]);
  });
  return order;
}

}  // namespace nv::cluster

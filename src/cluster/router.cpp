#include "cluster/router.h"

#include <algorithm>

namespace nv::cluster {

ShardRouter::ShardRouter(RouterPolicy policy) : policy_(policy) {}

double ShardRouter::score_locked(const ShardHealth& shard, unsigned index) const {
  const double fraction =
      shard.keys_total == 0
          ? 1.0  // untracked: never repelled on diversity grounds
          : static_cast<double>(shard.keys_remaining) / static_cast<double>(shard.keys_total);
  double value = static_cast<double>(shard.queue_depth) * policy_.queue_weight -
                 fraction * policy_.keyspace_weight;
  // Sheds since this shard was last scored. The counter is cumulative and
  // monotone, so the delta is well-defined; a shard never seen before is
  // charged its full history once, then tracked incrementally.
  const std::uint64_t seen = index < sheds_seen_.size() ? sheds_seen_[index] : 0;
  if (shard.jobs_shed > seen) {
    value += static_cast<double>(shard.jobs_shed - seen) * policy_.shed_weight;
  }
  if (shard.exhausted) value += policy_.exhausted_penalty;
  return value;
}

std::optional<unsigned> ShardRouter::route(const std::vector<ShardHealth>& shards) {
  const util::MutexLock lock(mutex_);
  std::optional<unsigned> best;
  double best_score = 0.0;
  const unsigned n = static_cast<unsigned>(shards.size());
  // Scan in rotated order so exact ties hand successive jobs to successive
  // shards instead of pinning the lowest index.
  for (unsigned step = 0; step < n; ++step) {
    const unsigned index = (cursor_ + step) % n;
    if (!shards[index].accepting) continue;
    const double value = score_locked(shards[index], index);
    if (!best.has_value() || value < best_score) {
      best = index;
      best_score = value;
    }
  }
  if (best.has_value()) cursor_ = (*best + 1) % n;
  // Consume the shed signal AFTER scoring the whole field: every shard's
  // penalty this round was its growth since the previous route(), and a
  // shard that stops shedding scores clean next time.
  if (sheds_seen_.size() < shards.size()) sheds_seen_.resize(shards.size(), 0);
  for (unsigned index = 0; index < n; ++index) {
    sheds_seen_[index] = std::max(sheds_seen_[index], shards[index].jobs_shed);
  }
  return best;
}

std::vector<unsigned> ShardRouter::ranked(const std::vector<ShardHealth>& shards) const {
  std::vector<unsigned> order;
  std::vector<double> scores(shards.size(), 0.0);
  {
    // Scores are computed under the lock (they read sheds_seen_); the sort
    // below runs on the copied-out values so the comparator stays
    // annotation-free for the thread-safety analysis.
    const util::MutexLock lock(mutex_);
    for (unsigned index = 0; index < shards.size(); ++index) {
      if (!shards[index].accepting) continue;
      order.push_back(index);
      scores[index] = score_locked(shards[index], index);
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&scores](unsigned a, unsigned b) { return scores[a] < scores[b]; });
  return order;
}

}  // namespace nv::cluster

#include "cluster/cluster.h"

#include <random>
#include <stdexcept>
#include <utility>

#include "util/strings.h"
#include "variants/registry.h"

namespace nv::cluster {

namespace {

std::uint64_t resolve_base_seed(std::optional<std::uint64_t> requested) {
  if (requested.has_value()) return *requested;
  std::random_device entropy;
  return (static_cast<std::uint64_t>(entropy()) << 32) | entropy();
}

}  // namespace

FleetCluster::FleetCluster(ClusterConfig config)
    : config_(std::move(config)),
      clock_(fleet::resolve_clock(config_.shard.clock)),
      budget_(config_.global_key_budget, config_.shards == 0 ? 1 : config_.shards),
      gossip_(config_.gossip, config_.shard.clock),
      router_(config_.router) {
  if (config_.shards == 0) throw std::invalid_argument("cluster needs at least one shard");
  const std::uint64_t base_seed = resolve_base_seed(config_.shard.seed);
  last_sweep_ = clock_();

  trace_ = config_.trace;
  if (trace_) {
    router_track_ = trace_->track("cluster.router");
    gossip_track_ = trace_->track("cluster.gossip");
    tick_track_ = trace_->track("cluster.tick");
  }

  fleets_.reserve(config_.shards);
  network_factories_.reserve(config_.shards);
  network_identities_.reserve(config_.shards);
  for (unsigned index = 0; index < config_.shards; ++index) {
    fleet::FleetConfig shard_config = config_.shard;
    shard_config.seed = base_seed + 2ULL * index;
    shard_config.spec.max_unique_keys = budget_.allocation(index);
    shard_config.trace = trace_;
    shard_config.trace_scope = util::format("shard%u", index);
    // Locally-raised alerts gossip out; receivers apply without re-publishing
    // (see VariantFleet::apply_remote_campaign), so the bus cannot loop.
    shard_config.on_campaign = [this, index,
                                user = config_.shard.on_campaign](const fleet::CampaignAlert& alert) {
      if (trace_) {
        // Carries the origin shard's alert span: the publish is a hop on the
        // alert's causal chain, not a new root.
        trace_->record(gossip_track_, obs::TraceEventKind::kGossipPublish, 0,
                       alert.trace_span, index, alert.id);
      }
      gossip_.publish(index, alert);
      if (user) user(alert);
    };
    fleets_.push_back(std::make_unique<fleet::VariantFleet>(std::move(shard_config)));

    // The shard's network identity is a session over the network variations,
    // drawn from the shard's own factory: the uniqueness ledger guarantees a
    // rotation never re-presents an endpoint this shard already exposed, and
    // keyspace_bits() composes through the same DiversitySuite path as every
    // other variation.
    fleet::SessionSpec network_spec;
    network_spec.n_variants = config_.shard.spec.n_variants;
    network_spec.variations = config_.network_variations;
    network_spec.randomize = true;
    auto factory = std::make_unique<fleet::SessionFactory>(
        network_spec, base_seed + 2ULL * index + 1, variants::builtin_registry());
    if (config_.network_variations.empty()) {
      network_identities_.push_back("static");
    } else {
      auto identity = factory->make_session();
      if (!identity) {
        throw std::invalid_argument("cluster network identity: " + identity.error());
      }
      network_bits_ = factory->keyspace().bits;
      network_identities_.push_back(identity->diversity_key);
    }
    network_factories_.push_back(std::move(factory));
  }

  // Subscribe in shard order AFTER every fleet exists: subscriber index ==
  // shard index, and gossip delivery order is ascending shard order.
  for (unsigned index = 0; index < config_.shards; ++index) {
    gossip_.subscribe([this, index](unsigned origin, const fleet::CampaignAlert& alert) {
      if (trace_) {
        trace_->record(gossip_track_, obs::TraceEventKind::kGossipDeliver, 0,
                       alert.trace_span, origin, index);
      }
      fleets_[index]->apply_remote_campaign(alert);
    });
  }

  // Router health cache: sentinel epochs force a full first sample.
  health_cache_.resize(config_.shards);
  health_epoch_seen_.assign(config_.shards, std::numeric_limits<std::uint64_t>::max());
}

FleetCluster::~FleetCluster() { shutdown(); }

void FleetCluster::shutdown() {
  {
    const util::MutexLock lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Shard workers publish gossip; they must all be joined before this object
  // starts tearing anything else down.
  for (auto& fleet : fleets_) fleet->shutdown();
}

std::vector<ShardHealth> FleetCluster::sample_health() const {
  // Per-submission cost is O(shards) ATOMIC READS, not O(shards) mutexed
  // walks: the slow fields (accepting bit, keyspace ledger — each behind its
  // fleet's mutexes) are re-sampled only when that shard's health_epoch()
  // moved; queue_depth, the one field that changes per job, always comes
  // from the lock-free hint.
  const util::MutexLock lock(health_mutex_);
  for (unsigned index = 0; index < fleets_.size(); ++index) {
    const std::uint64_t epoch = fleets_[index]->health_epoch();
    if (health_epoch_seen_[index] != epoch) {
      health_epoch_seen_[index] = epoch;
      const fleet::KeyspaceAccount account = fleets_[index]->keyspace();
      health_cache_[index].accepting = fleets_[index]->accepting();
      health_cache_[index].exhausted = account.exhausted();
      health_cache_[index].keys_remaining = account.keys_remaining;
      health_cache_[index].keys_total = account.keys_total;
      telemetry_.note_health_resample();
    }
    health_cache_[index].queue_depth = fleets_[index]->queue_depth_hint();
    // Like queue depth, shedding moves per-job: always refresh from the
    // lock-free hint rather than waiting for an epoch bump.
    health_cache_[index].jobs_shed = fleets_[index]->jobs_shed_hint();
  }
  return health_cache_;
}

std::future<fleet::JobOutcome> FleetCluster::submit(fleet::FleetJob job) {
  const auto health = sample_health();
  const auto target = router_.route(health);
  if (!target.has_value()) {
    telemetry_.note_unroutable();
    if (trace_) {
      trace_->record(router_track_, obs::TraceEventKind::kRouteDecision, 0, 0,
                     fleets_.size(), 0, "unroutable");
    }
    throw std::runtime_error("cluster has no accepting shard");
  }
  if (trace_) {
    trace_->record(router_track_, obs::TraceEventKind::kRouteDecision, 0, 0, *target,
                   health[*target].queue_depth);
  }
  auto future = fleets_[*target]->submit(std::move(job));
  telemetry_.note_routed();
  return future;
}

std::optional<std::future<fleet::JobOutcome>> FleetCluster::try_submit(fleet::FleetJob job) {
  // Graceful degradation: walk the ranking so a refusal (full queue, raced a
  // drain) falls through to the next-best shard instead of failing the job.
  const auto health = sample_health();
  for (const unsigned index : router_.ranked(health)) {
    if (auto future = fleets_[index]->try_submit(job)) {
      if (trace_) {
        trace_->record(router_track_, obs::TraceEventKind::kRouteDecision, 0, 0, index,
                       health[index].queue_depth);
      }
      telemetry_.note_routed();
      return future;
    }
  }
  telemetry_.note_unroutable();
  if (trace_) {
    trace_->record(router_track_, obs::TraceEventKind::kRouteDecision, 0, 0, fleets_.size(),
                   0, "unroutable");
  }
  return std::nullopt;
}

std::future<fleet::JobOutcome> FleetCluster::submit_to(unsigned shard, fleet::FleetJob job) {
  return fleets_.at(shard)->submit(std::move(job));
}

fleet::DrainReport FleetCluster::drain_shard(unsigned index,
                                             std::chrono::milliseconds deadline) {
  return fleets_.at(index)->shutdown(deadline);
}

std::string FleetCluster::network_fingerprint(unsigned index) const {
  const util::MutexLock lock(network_mutex_);
  return network_identities_.at(index);
}

bool FleetCluster::rotate_shard_network(unsigned index) {
  const util::MutexLock lock(network_mutex_);
  if (config_.network_variations.empty()) return false;  // static network: nothing to rotate
  auto identity = network_factories_.at(index)->make_session();
  if (!identity) return false;  // endpoint space exhausted for this shard
  network_identities_[index] = identity->diversity_key;
  telemetry_.note_network_rotation();
  return true;
}

TickReport FleetCluster::tick() {
  const util::MutexLock lock(tick_mutex_);
  TickReport report;
  report.tick = ++tick_count_;
  report.gossip_delivered = gossip_.pump();
  // Tell every shard the clock moved: wakes deadline-bounded drains and
  // enforces each fleet's rotation deadline even when no jobs are flowing.
  for (auto& member : fleets_) report.forced_rotations += member->notify_time_advanced();

  if (config_.sweep_interval > std::chrono::milliseconds::zero()) {
    const auto now = clock_();
    if (now - last_sweep_ >= config_.sweep_interval) {
      last_sweep_ = now;
      report.swept = true;
      for (unsigned index = 0; index < fleets_.size(); ++index) {
        // Sweep only shards under a TIGHTENED posture: re-diversifying a
        // quiet shard burns finite keyspace for nothing.
        const auto* adaptive = fleets_[index]->adaptive();
        if (adaptive == nullptr || !adaptive->tightened()) continue;
        ShardSweep sweep;
        sweep.shard = index;
        const auto before = fleets_[index]->telemetry().snapshot();
        sweep.rotations_before = before.sessions_rotated + before.rotations_failed;
        sweep.lanes_flagged = fleets_[index]->rotate_fleet();
        sweep.network_rotated = rotate_shard_network(index);
        report.sweeps.push_back(sweep);
      }
    }
  }
  if (trace_) {
    trace_->record(tick_track_, obs::TraceEventKind::kClusterTick, 0, 0, report.tick,
                   report.gossip_delivered,
                   report.swept ? util::format("swept %zu shards", report.sweeps.size())
                                : std::string{});
  }
  return report;
}

ClusterSnapshot FleetCluster::snapshot() const {
  ClusterSnapshot snap;
  snap.shards = fleets_.size();
  snap.jobs_routed = telemetry_.jobs_routed();
  snap.jobs_unroutable = telemetry_.jobs_unroutable();
  snap.network_rotations = telemetry_.network_rotations();
  snap.health_resamples = telemetry_.health_resamples();
  snap.gossip_published = gossip_.published();
  snap.gossip_delivered = gossip_.delivered();
  snap.gossip_pending = gossip_.pending();
  snap.network_bits = network_bits_;

  // Specs past ~63 bits saturate their shard ledger at uint64 max; the sums
  // must saturate too rather than wrap.
  const auto saturating_add = [](std::uint64_t a, std::uint64_t b) {
    return a > std::numeric_limits<std::uint64_t>::max() - b
               ? std::numeric_limits<std::uint64_t>::max()
               : a + b;
  };
  for (unsigned index = 0; index < fleets_.size(); ++index) {
    const auto& member = *fleets_[index];
    const fleet::KeyspaceAccount account = member.keyspace();
    ShardSnapshot view;
    view.shard = index;
    view.accepting = member.accepting();
    view.exhausted = account.exhausted();
    view.network_fingerprint = network_fingerprint(index);
    view.shard_keys_total = account.keys_total;
    view.shard_keys_remaining = account.keys_remaining;
    view.fleet = member.telemetry().snapshot();

    snap.shards_accepting += view.accepting ? 1 : 0;
    snap.shards_exhausted += view.exhausted ? 1 : 0;
    snap.remote_campaigns_applied += view.fleet.remote_campaigns;
    snap.keys_total = saturating_add(snap.keys_total, view.shard_keys_total);
    snap.keys_remaining = saturating_add(snap.keys_remaining, view.shard_keys_remaining);
    if (index == 0) snap.shard_spec_bits = account.bits;
    snap.shard_views.push_back(std::move(view));
  }
  snap.cluster_bits =
      static_cast<double>(snap.shards) * (snap.shard_spec_bits + snap.network_bits);
  return snap;
}

}  // namespace nv::cluster

// Cluster-level observability: ClusterTelemetry holds the cluster's own
// counters (routing, network rotations); FleetCluster::snapshot() folds them
// together with every shard's FleetSnapshot, the gossip bus counters, and
// the keyspace ledgers into one ClusterSnapshot.
//
// Every ClusterSnapshot field is documented in docs/TELEMETRY.md —
// tools/check_docs.py parses this struct and fails CI on an undocumented
// counter, the same contract FleetSnapshot lives under.
#ifndef NV_CLUSTER_TELEMETRY_H
#define NV_CLUSTER_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/telemetry.h"

namespace nv::cluster {

/// One shard's slice of the cluster view: identity + health bits + its full
/// fleet snapshot. (Not FIELD_RE-parsed: per-shard semantics are the fleet
/// glossary's; only the cluster-level aggregates below need their own docs.)
struct ShardSnapshot {
  unsigned shard = 0;
  bool accepting = true;
  bool exhausted = false;
  std::string network_fingerprint;
  std::uint64_t shard_keys_total = 0;
  std::uint64_t shard_keys_remaining = 0;
  fleet::FleetSnapshot fleet;
};

/// One coherent view of the whole cluster.
struct ClusterSnapshot {
  std::uint64_t shards = 0;
  std::uint64_t shards_accepting = 0;
  std::uint64_t shards_exhausted = 0;
  std::uint64_t jobs_routed = 0;      // jobs placed through the ShardRouter
  std::uint64_t jobs_unroutable = 0;  // router found no accepting shard
  std::uint64_t gossip_published = 0;
  std::uint64_t gossip_delivered = 0;
  std::uint64_t gossip_pending = 0;
  std::uint64_t remote_campaigns_applied = 0;  // sum of shard remote_campaigns
  std::uint64_t network_rotations = 0;         // shard network identities redrawn
  std::uint64_t health_resamples = 0;          // slow shard-health reads the router cache missed

  // Composed entropy gauges (bits add across independent draws).
  double shard_spec_bits = 0.0;     // one shard's session-spec entropy
  double network_bits = 0.0;        // one shard's network-variation entropy
  double cluster_bits = 0.0;        // shards x (spec + network) bits
  std::uint64_t keys_total = 0;     // summed budget-capped shard totals
  std::uint64_t keys_remaining = 0; // summed shard remainders

  std::vector<ShardSnapshot> shard_views;

  [[nodiscard]] std::string describe() const;
};

/// The cluster's own counters (shard fleets keep theirs in FleetTelemetry).
class ClusterTelemetry {
 public:
  void note_routed() noexcept { jobs_routed_.fetch_add(1, std::memory_order_relaxed); }
  void note_unroutable() noexcept { jobs_unroutable_.fetch_add(1, std::memory_order_relaxed); }
  void note_network_rotation() noexcept {
    network_rotations_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_health_resample() noexcept {
    health_resamples_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t jobs_routed() const noexcept {
    return jobs_routed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t jobs_unroutable() const noexcept {
    return jobs_unroutable_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t network_rotations() const noexcept {
    return network_rotations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t health_resamples() const noexcept {
    return health_resamples_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> jobs_routed_{0};
  std::atomic<std::uint64_t> jobs_unroutable_{0};
  std::atomic<std::uint64_t> network_rotations_{0};
  std::atomic<std::uint64_t> health_resamples_{0};
};

}  // namespace nv::cluster

#endif  // NV_CLUSTER_TELEMETRY_H

#include "cluster/telemetry.h"

#include "util/strings.h"

namespace nv::cluster {

std::string ClusterSnapshot::describe() const {
  return util::format(
      "cluster: %llu shards (%llu accepting, %llu exhausted) | "
      "routing: %llu routed, %llu unroutable | "
      "gossip: %llu published, %llu delivered, %llu pending, %llu applied | "
      "diversity: %.1f bits/shard spec + %.1f bits/shard network = %.1f bits cluster, "
      "%llu of %llu keys remaining | %llu network rotations",
      static_cast<unsigned long long>(shards),
      static_cast<unsigned long long>(shards_accepting),
      static_cast<unsigned long long>(shards_exhausted),
      static_cast<unsigned long long>(jobs_routed),
      static_cast<unsigned long long>(jobs_unroutable),
      static_cast<unsigned long long>(gossip_published),
      static_cast<unsigned long long>(gossip_delivered),
      static_cast<unsigned long long>(gossip_pending),
      static_cast<unsigned long long>(remote_campaigns_applied), shard_spec_bits,
      network_bits, cluster_bits, static_cast<unsigned long long>(keys_remaining),
      static_cast<unsigned long long>(keys_total),
      static_cast<unsigned long long>(network_rotations));
}

}  // namespace nv::cluster

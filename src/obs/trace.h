// Deterministic structured tracing for the fleet-of-fleets.
//
// The telemetry snapshots (fleet/telemetry.h, cluster/telemetry.h) answer
// "how much happened"; this layer answers "what happened, in what order, and
// what caused what" — the per-event attack/defense timeline the diversity-
// effectiveness literature asks for (Chen et al., PAPERS.md) and the
// instrument every future hot-path optimization needs to localize where time
// goes.
//
//   TraceRecorder   bounded per-track ring buffers of typed TraceEvents,
//                   timestamped on the INJECTED ClockFn — under a ManualClock
//                   two identical runs produce byte-identical traces. Tracks
//                   are cheap named timelines (one per worker lane, one per
//                   shard ops stream, one for the router, ...).
//   TraceEvent      kind enum + small fixed payload (span/parent causality
//                   ids + two uint64 operands + a short detail string).
//   Spans           new_span() issues process-unique causality ids. An event
//                   DEFINES the span it carries and POINTS AT the span that
//                   caused it (parent), so a campaign reads as a provable
//                   chain: session draw -> job admission -> quarantine ->
//                   CampaignAlert -> gossip publish -> cross-shard delivery
//                   -> remote tighten -> rotation sweep.
//   Histograms      lock-free fixed-bucket histograms for trace-derived
//                   timing distributions (per-syscall-class lead() latency).
//   TraceConfig     sampling knobs: master enable, per-kind mask, ring
//                   capacity, syscall-round sampling stride. Overflow keeps
//                   the NEWEST events and counts drops (surfaced through
//                   FleetSnapshot::trace_drops).
//
// Exporters live in obs/exporters.h (Chrome-trace JSON + Prometheus text).
// Event-kind semantics and the span model are documented in docs/TRACING.md;
// tools/check_docs.py fails CI when an enumerator lacks an entry there.
//
// This header deliberately depends only on the standard library so core/ can
// record into it without a dependency on fleet/.
#ifndef NV_OBS_TRACE_H
#define NV_OBS_TRACE_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nv::obs {

/// Injectable time source; structurally identical to fleet::ClockFn so one
/// ManualClock::fn() drives the fleet AND its trace timestamps. Empty = real
/// steady clock.
using ClockFn = std::function<std::chrono::steady_clock::time_point()>;

/// What kind of thing happened. One enumerator per instrumented decision
/// point across core/, fleet/, and cluster/ — docs/TRACING.md is the
/// glossary (CI-enforced), keep both in sync.
enum class TraceEventKind : std::uint8_t {
  kSessionDraw,        // factory issued a freshly diversified session
  kDrawRefused,        // factory could not produce one (redraws exhausted)
  kBudgetRefusal,      // factory refused at the cluster budget allocation cap
  kJobAdmitted,        // job accepted into a lane queue
  kJobRejected,        // try_submit refused (backpressure / draining)
  kJobStarted,         // worker picked the job up against a session
  kJobFinished,        // job resolved (payload: rounds, verdict)
  kJobStolen,          // idle lane took the job from a peer's queue
  kJobAbandoned,       // drain deadline dropped the queued job
  kSyscallRound,       // sampled rendezvous round (core; see sampling stride)
  kQuarantine,         // alarmed/errored job poisoned its session
  kRespawn,            // quarantined lane reseeded with a fresh draw
  kLaneRetired,        // respawn failed; lane left service
  kRotation,           // lane swapped to a fresh re-expression
  kRotationFailed,     // rotation kept a burned re-expression in service
  kCampaignAlert,      // correlator raised a fleet-level campaign
  kPolicyTightened,    // adaptive step away from the baseline policy
  kPolicyDecayed,      // adaptive step back toward the baseline
  kKeyspaceLow,        // account first observed at/below the low watermark
  kKeyspaceExhausted,  // account reached 0 unique keys remaining
  kRemoteTighten,      // gossip-applied alert tightened THIS fleet
  kRouteDecision,      // router chose a shard for a submission
  kGossipPublish,      // locally-raised alert entered the bus
  kGossipDeliver,      // bus handed the alert to a subscriber shard
  kClusterTick,        // FleetCluster::tick() housekeeping pass
  kSyscallBatch,       // sampled multi-call rendezvous round (b = batch size)
  kJobShed,            // submit refused at capacity (503-style, AdmissionPolicy)
  kJobDeadlineDropped, // admitted job expired in queue; dropped unserved at pop
};

inline constexpr std::size_t kTraceEventKindCount =
    static_cast<std::size_t>(TraceEventKind::kJobDeadlineDropped) + 1;

/// Stable lower_snake name ("job_admitted") for exporters and logs.
[[nodiscard]] std::string_view to_string(TraceEventKind kind) noexcept;

/// Sampling and capacity knobs. `enabled` and `ring_capacity` are immutable
/// once handed to a TraceRecorder; `kind_mask` and `syscall_round_sample`
/// are INITIAL values — the recorder mirrors them into atomics that can be
/// re-armed on a live fleet (set_kind_mask() / set_syscall_round_sample(),
/// e.g. dropping the round stride to 1 when a campaign alert fires).
struct TraceConfig {
  /// Master switch. False turns every record() into an immediate return —
  /// the cheapest compiled-in path (bench_fleet_throughput A/Bs this).
  bool enabled = true;
  /// Events retained per track. A full ring keeps the NEWEST events,
  /// overwrites the oldest, and counts the overwrite in dropped().
  std::uint32_t ring_capacity = 4096;
  /// Keep every Nth kSyscallRound per track (rendezvous rounds are the one
  /// per-syscall-frequency kind; everything else is per-job or rarer).
  /// Enforced by sample_round(), which call sites consult BEFORE any
  /// per-round trace work. 0 disables the kind entirely.
  std::uint32_t syscall_round_sample = 16;
  /// Bit i enables kind i (see kind_bit). Default: everything.
  std::uint64_t kind_mask = ~0ULL;

  [[nodiscard]] static constexpr std::uint64_t kind_bit(TraceEventKind kind) noexcept {
    return 1ULL << static_cast<unsigned>(kind);
  }
  [[nodiscard]] bool kind_enabled(TraceEventKind kind) const noexcept {
    return enabled && (kind_mask & kind_bit(kind)) != 0;
  }
  /// A recorder that keeps nothing (for A/B baselines; a null recorder
  /// pointer is cheaper still and is the normal "untraced" state).
  [[nodiscard]] static TraceConfig disabled() {
    TraceConfig config;
    config.enabled = false;
    return config;
  }
};

/// One recorded event. `span` is the causality id this event defines (0 =
/// defines none); `parent` is the span that caused it (0 = root). `a`/`b`
/// are kind-specific operands (docs/TRACING.md tabulates them); `detail` is
/// a short human string (fingerprint, signature key, refusal reason).
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kSessionDraw;
  std::uint32_t track = 0;
  /// Microseconds since the recorder's construction, on the injected clock.
  /// Monotone non-decreasing within a track (the clock is read under the
  /// track lock); 0-width ticks under ManualClock are normal.
  std::int64_t at_us = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string detail;
};

/// Fixed histogram bucket upper bounds (microseconds; the last implicit
/// bucket is +Inf). Shared by every histogram so exporters stay simple.
inline constexpr std::array<double, 16> kHistogramBounds = {
    1,   2,   5,    10,   20,   50,   100,   200,
    500, 1000, 2000, 5000, 10000, 20000, 50000, 100000};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  /// kHistogramBounds.size() + 1 cumulative-free per-bucket counts (the last
  /// entry is the +Inf bucket).
  std::array<std::uint64_t, kHistogramBounds.size() + 1> buckets{};
};

/// Thread-safe bounded trace sink. Create one per fleet/cluster/experiment,
/// share it via shared_ptr through the configs; every subsystem records into
/// its own named tracks. All methods are safe for concurrent use; record()
/// takes only the one track's mutex (plus a clock read) on the enabled path
/// and returns immediately on the disabled one.
class TraceRecorder {
 public:
  /// Track 0 always exists (named "trace") and absorbs events recorded
  /// against out-of-range track ids, so a misrouted record is visible
  /// instead of lost.
  explicit TraceRecorder(TraceConfig config = {}, ClockFn clock = {});

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Find-or-create the track named `name`; returns its id. Track ids are
  /// dense and stable for the recorder's lifetime. Capped at kMaxTracks;
  /// past the cap every new name aliases track 0.
  [[nodiscard]] std::uint32_t track(const std::string& name);

  /// Fresh process-unique causality id (never 0).
  [[nodiscard]] std::uint64_t new_span() noexcept {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Cheap pre-check for call sites that would otherwise build payloads.
  /// Reads the LIVE (re-armable) kind mask.
  [[nodiscard]] bool enabled(TraceEventKind kind) const noexcept {
    return config_.enabled &&
           (kind_mask_.load(std::memory_order_relaxed) & TraceConfig::kind_bit(kind)) != 0;
  }

  // ---- Runtime re-arming (atomic stores; safe on a live recorder) --------
  /// Replace the per-kind enable mask. Takes effect on the next record().
  void set_kind_mask(std::uint64_t mask) noexcept {
    kind_mask_.store(mask, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t kind_mask() const noexcept {
    return kind_mask_.load(std::memory_order_relaxed);
  }
  /// Replace the kSyscallRound/kSyscallBatch sampling stride (1 = keep every
  /// round, 0 = drop all). The fleet drops this to 1 on a campaign alert so
  /// the attacked shard's traces go fine-grained exactly when the
  /// investigation needs them.
  void set_syscall_round_sample(std::uint32_t stride) noexcept {
    round_sample_.store(stride, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t syscall_round_sample() const noexcept {
    return round_sample_.load(std::memory_order_relaxed);
  }

  /// Append one event to `track` (timestamped now, on the injected clock).
  /// No-op when the kind is disabled. kSyscallRound call sites gate on
  /// sample_round() FIRST — record() itself applies no stride.
  void record(std::uint32_t track, TraceEventKind kind, std::uint64_t span = 0,
              std::uint64_t parent = 0, std::uint64_t a = 0, std::uint64_t b = 0,
              std::string detail = {});

  /// Advance `track`'s rendezvous-round sampling counter and report whether
  /// THIS round is the 1-in-`syscall_round_sample`th to keep. The syscall hot
  /// path calls this before doing ANY per-round trace work (clock reads,
  /// histogram observation, record()) so an unsampled round costs one relaxed
  /// fetch_add. False when tracing/the kind is off or the stride is 0.
  [[nodiscard]] bool sample_round(std::uint32_t track) noexcept;

  /// Find-or-create a histogram; same capping rule as track().
  [[nodiscard]] std::uint32_t histogram(const std::string& name);
  /// Add one observation (lock-free). No-op when tracing is disabled.
  void observe(std::uint32_t histogram, double value) noexcept;

  /// Injected-clock read for callers measuring durations they will observe()
  /// — core/ has no clock of its own, it borrows the recorder's.
  [[nodiscard]] std::chrono::steady_clock::time_point now() const { return clock_(); }

  // ---- Read side (any thread; each track copied under its own lock) ------
  [[nodiscard]] std::vector<std::string> track_names() const;
  /// Events of one track, oldest retained first.
  [[nodiscard]] std::vector<TraceEvent> events(std::uint32_t track) const;
  /// Every track's retained events, grouped by track id, oldest first.
  [[nodiscard]] std::vector<TraceEvent> all_events() const;
  [[nodiscard]] std::vector<HistogramSnapshot> histograms() const;

  /// Events overwritten by ring overflow across all tracks (telemetry
  /// surfaces this as FleetSnapshot::trace_drops).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Events accepted (recorded into a ring) across all tracks.
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const TraceConfig& config() const noexcept { return config_; }

  static constexpr std::uint32_t kMaxTracks = 256;
  static constexpr std::uint32_t kMaxHistograms = 64;

 private:
  struct Track {
    std::string name;  // immutable after the slot is published
    mutable util::Mutex mutex;
    std::vector<TraceEvent> ring NV_GUARDED_BY(mutex);  // grows to ring_capacity, then wraps
    std::size_t head NV_GUARDED_BY(mutex) = 0;          // next overwrite slot once wrapped
    std::atomic<std::uint64_t> sample_counter{0};  // kSyscallRound stride
  };
  struct Histogram {
    std::string name;  // immutable after the slot is published
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_nanos{0};  // fixed-point sum (ns) so the
                                              // add stays a single fetch_add
    std::array<std::atomic<std::uint64_t>, kHistogramBounds.size() + 1> buckets{};
  };

  /// Lock-free slot lookup. The two slot arrays are formally guarded by their
  /// creation mutexes, but the READ side deliberately takes no lock: track()/
  /// histogram() publish a slot by storing count+1 with release order AFTER
  /// the unique_ptr is in place, so an acquire load of the count makes every
  /// slot below it visible and immutable-forever (slots are never reassigned
  /// or freed before the recorder dies). These two accessors are the ONLY
  /// unlocked readers; everything else goes through them, keeping the escape
  /// hatch at two auditable functions (see docs/STATIC_ANALYSIS.md).
  [[nodiscard]] Track* track_at(std::uint32_t id) const noexcept NV_NO_THREAD_SAFETY_ANALYSIS;
  /// Same contract as track_at(); returns nullptr before any histogram
  /// exists, aliases out-of-range ids onto slot 0.
  [[nodiscard]] Histogram* histogram_at(std::uint32_t id) const noexcept
      NV_NO_THREAD_SAFETY_ANALYSIS;

  TraceConfig config_;
  /// Live twins of config_.kind_mask / config_.syscall_round_sample (the
  /// config keeps the construction-time values; these are what the hot path
  /// reads and what re-arming stores into).
  std::atomic<std::uint64_t> kind_mask_;
  std::atomic<std::uint32_t> round_sample_;
  ClockFn clock_;
  std::chrono::steady_clock::time_point epoch_;

  /// Fixed slot arrays + release/acquire counts: record()/observe() index
  /// without any global lock (via track_at()/histogram_at() above); creation
  /// (rare) serializes on the mutexes.
  mutable util::Mutex tracks_mutex_;
  std::array<std::unique_ptr<Track>, kMaxTracks> tracks_ NV_GUARDED_BY(tracks_mutex_);
  std::atomic<std::uint32_t> track_count_{0};
  mutable util::Mutex histograms_mutex_;
  std::array<std::unique_ptr<Histogram>, kMaxHistograms> histograms_ NV_GUARDED_BY(histograms_mutex_);
  std::atomic<std::uint32_t> histogram_count_{0};

  std::atomic<std::uint64_t> next_span_{1};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace nv::obs

#endif  // NV_OBS_TRACE_H

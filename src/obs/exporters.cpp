#include "obs/exporters.h"

#include <set>
#include <unordered_set>

#include "util/strings.h"

namespace nv::obs {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One Prometheus series line, emitting the # TYPE header the first time a
/// metric name appears (per-shard series share one header).
void series(std::string& out, std::set<std::string>& typed, const std::string& name,
            const char* type, const std::string& labels, const std::string& value) {
  if (typed.insert(name).second) {
    out += "# TYPE " + name + " " + type + "\n";
  }
  out += name + labels + " " + value + "\n";
}

void counter(std::string& out, std::set<std::string>& typed, const std::string& name,
             const std::string& labels, std::uint64_t value) {
  series(out, typed, name, "counter", labels,
         util::format("%llu", static_cast<unsigned long long>(value)));
}

void gauge(std::string& out, std::set<std::string>& typed, const std::string& name,
           const std::string& labels, double value) {
  series(out, typed, name, "gauge", labels, util::format("%.6g", value));
}

/// Every documented FleetSnapshot field (docs/TELEMETRY.md glossary); the
/// docs CI contract keeps this list honest — a new field lands in the
/// glossary, and this exporter is the glossary's machine-readable twin.
void expose_fleet(std::string& out, std::set<std::string>& typed,
                  const fleet::FleetSnapshot& snap, const std::string& prefix,
                  const std::string& labels) {
  const auto c = [&](const char* field, std::uint64_t value) {
    counter(out, typed, prefix + "_" + field, labels, value);
  };
  const auto g = [&](const char* field, double value) {
    gauge(out, typed, prefix + "_" + field, labels, value);
  };
  c("jobs_submitted", snap.jobs_submitted);
  c("jobs_rejected", snap.jobs_rejected);
  c("jobs_completed", snap.jobs_completed);
  c("jobs_alarmed", snap.jobs_alarmed);
  c("job_errors", snap.job_errors);
  c("jobs_stolen", snap.jobs_stolen);
  c("jobs_abandoned", snap.jobs_abandoned);
  c("jobs_shed", snap.jobs_shed);
  c("jobs_deadline_dropped", snap.jobs_deadline_dropped);
  c("admission_blocked_us", snap.admission_blocked_us);
  g("queue_high_watermark", static_cast<double>(snap.queue_high_watermark));
  c("sessions_quarantined", snap.sessions_quarantined);
  c("sessions_respawned", snap.sessions_respawned);
  c("sessions_rotated", snap.sessions_rotated);
  c("rotations_failed", snap.rotations_failed);
  c("campaign_alerts", snap.campaign_alerts);
  c("remote_campaigns", snap.remote_campaigns);
  c("policy_tightened", snap.policy_tightened);
  c("policy_decayed", snap.policy_decayed);
  c("syscall_rounds", snap.syscall_rounds);
  c("syscall_batches", snap.syscall_batches);
  c("async_completions", snap.async_completions);
  c("trace_drops", snap.trace_drops);
  g("keys_total", static_cast<double>(snap.keys_total));
  g("keys_remaining", static_cast<double>(snap.keys_remaining));
  g("latency_count", static_cast<double>(snap.latency_count));
  g("latency_mean_us", snap.latency_mean_us);
  g("latency_p50_us", snap.latency_p50_us);
  g("latency_p95_us", snap.latency_p95_us);
  g("latency_p99_us", snap.latency_p99_us);
}

std::string sanitize_metric(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void expose_histograms(std::string& out, std::set<std::string>& typed,
                       const TraceRecorder& recorder) {
  for (const auto& hist : recorder.histograms()) {
    const std::string name = "nv_trace_" + sanitize_metric(hist.name);
    if (typed.insert(name).second) out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kHistogramBounds.size(); ++i) {
      cumulative += hist.buckets[i];
      out += util::format("%s_bucket{le=\"%g\"} %llu\n", name.c_str(), kHistogramBounds[i],
                          static_cast<unsigned long long>(cumulative));
    }
    cumulative += hist.buckets[kHistogramBounds.size()];
    out += util::format("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                        static_cast<unsigned long long>(cumulative));
    out += util::format("%s_sum %.6g\n", name.c_str(), hist.sum);
    out += util::format("%s_count %llu\n", name.c_str(),
                        static_cast<unsigned long long>(hist.count));
  }
}

/// Build a `{name="value"}` label set with the value escaped.
std::string label_set(const char* name, std::string_view value) {
  return std::string("{") + name + "=\"" + prometheus_label_escape(value) + "\"}";
}

}  // namespace

std::string prometheus_label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string to_chrome_trace(const TraceRecorder& recorder) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  out += util::format("\"recorded\":%llu,\"dropped\":%llu",
                      static_cast<unsigned long long>(recorder.recorded()),
                      static_cast<unsigned long long>(recorder.dropped()));
  out += "},\"traceEvents\":[";

  bool first = true;
  const auto append = [&](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += "\n" + event;
  };

  const auto names = recorder.track_names();
  for (std::uint32_t tid = 0; tid < names.size(); ++tid) {
    append(util::format(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"%s\"}}",
        tid, json_escape(names[tid]).c_str()));
  }

  // A span's FIRST retained carrier starts its causality flow ("s"); every
  // event caused by a span steps it ("t") — Perfetto draws the arrows.
  std::unordered_set<std::uint64_t> started;
  for (std::uint32_t tid = 0; tid < names.size(); ++tid) {
    for (const auto& event : recorder.events(tid)) {
      const auto ts = static_cast<long long>(event.at_us);
      std::string slice = util::format(
          "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%lld,\"dur\":1,\"name\":\"%s\","
          "\"args\":{\"span\":%llu,\"parent\":%llu,\"a\":%llu,\"b\":%llu",
          tid, ts, std::string(to_string(event.kind)).c_str(),
          static_cast<unsigned long long>(event.span),
          static_cast<unsigned long long>(event.parent),
          static_cast<unsigned long long>(event.a),
          static_cast<unsigned long long>(event.b));
      if (!event.detail.empty()) {
        slice += ",\"detail\":\"" + json_escape(event.detail) + "\"";
      }
      slice += "}}";
      append(slice);
      if (event.parent != 0) {
        append(util::format("{\"ph\":\"t\",\"pid\":1,\"tid\":%u,\"ts\":%lld,"
                            "\"cat\":\"causality\",\"name\":\"span\",\"id\":%llu}",
                            tid, ts, static_cast<unsigned long long>(event.parent)));
      }
      if (event.span != 0 && started.insert(event.span).second) {
        append(util::format("{\"ph\":\"s\",\"pid\":1,\"tid\":%u,\"ts\":%lld,"
                            "\"cat\":\"causality\",\"name\":\"span\",\"id\":%llu}",
                            tid, ts, static_cast<unsigned long long>(event.span)));
      }
    }
  }
  out += "\n]}\n";
  return out;
}

std::string expose_metrics(const fleet::FleetSnapshot& snapshot,
                           const TraceRecorder* recorder, const std::string& prefix,
                           const std::string& instance) {
  std::string out;
  std::set<std::string> typed;
  const std::string labels = instance.empty() ? std::string() : label_set("instance", instance);
  expose_fleet(out, typed, snapshot, prefix, labels);
  if (recorder != nullptr) expose_histograms(out, typed, *recorder);
  return out;
}

std::string expose_metrics(const cluster::ClusterSnapshot& snapshot,
                           const TraceRecorder* recorder) {
  std::string out;
  std::set<std::string> typed;
  const auto c = [&](const char* field, std::uint64_t value) {
    counter(out, typed, std::string("nv_cluster_") + field, "", value);
  };
  const auto g = [&](const char* field, double value) {
    gauge(out, typed, std::string("nv_cluster_") + field, "", value);
  };
  // Every documented ClusterSnapshot field (docs/TELEMETRY.md glossary).
  g("shards", static_cast<double>(snapshot.shards));
  g("shards_accepting", static_cast<double>(snapshot.shards_accepting));
  g("shards_exhausted", static_cast<double>(snapshot.shards_exhausted));
  c("jobs_routed", snapshot.jobs_routed);
  c("jobs_unroutable", snapshot.jobs_unroutable);
  c("gossip_published", snapshot.gossip_published);
  c("gossip_delivered", snapshot.gossip_delivered);
  g("gossip_pending", static_cast<double>(snapshot.gossip_pending));
  c("remote_campaigns_applied", snapshot.remote_campaigns_applied);
  c("network_rotations", snapshot.network_rotations);
  c("health_resamples", snapshot.health_resamples);
  g("shard_spec_bits", snapshot.shard_spec_bits);
  g("network_bits", snapshot.network_bits);
  g("cluster_bits", snapshot.cluster_bits);
  g("keys_total", static_cast<double>(snapshot.keys_total));
  g("keys_remaining", static_cast<double>(snapshot.keys_remaining));

  for (const auto& view : snapshot.shard_views) {
    expose_fleet(out, typed, view.fleet, "nv_fleet",
                 label_set("shard", util::format("%u", view.shard)));
  }
  if (recorder != nullptr) expose_histograms(out, typed, *recorder);
  return out;
}

}  // namespace nv::obs

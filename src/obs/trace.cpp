#include "obs/trace.h"

#include <algorithm>

namespace nv::obs {

namespace {

ClockFn resolve(ClockFn clock) {
  if (clock) return clock;
  return [] { return std::chrono::steady_clock::now(); };
}

}  // namespace

std::string_view to_string(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kSessionDraw: return "session_draw";
    case TraceEventKind::kDrawRefused: return "draw_refused";
    case TraceEventKind::kBudgetRefusal: return "budget_refusal";
    case TraceEventKind::kJobAdmitted: return "job_admitted";
    case TraceEventKind::kJobRejected: return "job_rejected";
    case TraceEventKind::kJobStarted: return "job_started";
    case TraceEventKind::kJobFinished: return "job_finished";
    case TraceEventKind::kJobStolen: return "job_stolen";
    case TraceEventKind::kJobAbandoned: return "job_abandoned";
    case TraceEventKind::kSyscallRound: return "syscall_round";
    case TraceEventKind::kQuarantine: return "quarantine";
    case TraceEventKind::kRespawn: return "respawn";
    case TraceEventKind::kLaneRetired: return "lane_retired";
    case TraceEventKind::kRotation: return "rotation";
    case TraceEventKind::kRotationFailed: return "rotation_failed";
    case TraceEventKind::kCampaignAlert: return "campaign_alert";
    case TraceEventKind::kPolicyTightened: return "policy_tightened";
    case TraceEventKind::kPolicyDecayed: return "policy_decayed";
    case TraceEventKind::kKeyspaceLow: return "keyspace_low";
    case TraceEventKind::kKeyspaceExhausted: return "keyspace_exhausted";
    case TraceEventKind::kRemoteTighten: return "remote_tighten";
    case TraceEventKind::kRouteDecision: return "route_decision";
    case TraceEventKind::kGossipPublish: return "gossip_publish";
    case TraceEventKind::kGossipDeliver: return "gossip_deliver";
    case TraceEventKind::kClusterTick: return "cluster_tick";
    case TraceEventKind::kSyscallBatch: return "syscall_batch";
    case TraceEventKind::kJobShed: return "job_shed";
    case TraceEventKind::kJobDeadlineDropped: return "job_deadline_dropped";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(TraceConfig config, ClockFn clock)
    : config_(config),
      kind_mask_(config.kind_mask),
      round_sample_(config.syscall_round_sample),
      clock_(resolve(std::move(clock))),
      epoch_(clock_()) {
  // Track 0 ("trace") always exists: the overflow alias for out-of-range ids
  // and the home for recorder-level events.
  (void)track("trace");
}

TraceRecorder::Track* TraceRecorder::track_at(std::uint32_t id) const noexcept {
  const std::uint32_t count = track_count_.load(std::memory_order_acquire);
  if (count == 0) return nullptr;          // construction not finished yet
  if (id >= count) id = 0;                 // alias misroutes to the overflow track
  return tracks_[id].get();
}

TraceRecorder::Histogram* TraceRecorder::histogram_at(std::uint32_t id) const noexcept {
  const std::uint32_t count = histogram_count_.load(std::memory_order_acquire);
  if (count == 0) return nullptr;
  if (id >= count) id = 0;  // alias misroutes onto slot 0
  return histograms_[id].get();
}

std::uint32_t TraceRecorder::track(const std::string& name) {
  const util::MutexLock lock(tracks_mutex_);
  const std::uint32_t count = track_count_.load(std::memory_order_relaxed);
  for (std::uint32_t id = 0; id < count; ++id) {
    if (tracks_[id]->name == name) return id;
  }
  if (count >= kMaxTracks) return 0;  // capped: alias onto the overflow track
  auto fresh = std::make_unique<Track>();
  fresh->name = name;
  tracks_[count] = std::move(fresh);
  track_count_.store(count + 1, std::memory_order_release);
  return count;
}

void TraceRecorder::record(std::uint32_t track, TraceEventKind kind, std::uint64_t span,
                           std::uint64_t parent, std::uint64_t a, std::uint64_t b,
                           std::string detail) {
  if (!enabled(kind)) return;
  Track* sink = track_at(track);
  if (sink == nullptr) return;

  TraceEvent event;
  event.kind = kind;
  event.track = track;
  event.span = span;
  event.parent = parent;
  event.a = a;
  event.b = b;
  event.detail = std::move(detail);
  {
    const util::MutexLock lock(sink->mutex);
    // Clock read under the track lock: timestamps are monotone PER TRACK by
    // construction, which is exactly what the exporters and check_trace.py
    // assert.
    event.at_us = std::chrono::duration_cast<std::chrono::microseconds>(clock_() - epoch_)
                      .count();
    if (sink->ring.size() < config_.ring_capacity) {
      sink->ring.push_back(std::move(event));
    } else if (!sink->ring.empty()) {
      sink->ring[sink->head] = std::move(event);
      sink->head = (sink->head + 1) % sink->ring.size();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      return;  // ring_capacity == 0: keep nothing, count nothing as recorded
    }
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

bool TraceRecorder::sample_round(std::uint32_t track) noexcept {
  if (!enabled(TraceEventKind::kSyscallRound)) return false;
  const std::uint32_t stride = round_sample_.load(std::memory_order_relaxed);
  if (stride == 0) return false;
  Track* sink = track_at(track);
  if (sink == nullptr) return false;
  return sink->sample_counter.fetch_add(1, std::memory_order_relaxed) % stride == 0;
}

std::uint32_t TraceRecorder::histogram(const std::string& name) {
  const util::MutexLock lock(histograms_mutex_);
  const std::uint32_t count = histogram_count_.load(std::memory_order_relaxed);
  for (std::uint32_t id = 0; id < count; ++id) {
    if (histograms_[id]->name == name) return id;
  }
  if (count >= kMaxHistograms) return 0;
  auto fresh = std::make_unique<Histogram>();
  fresh->name = name;
  histograms_[count] = std::move(fresh);
  histogram_count_.store(count + 1, std::memory_order_release);
  return count;
}

void TraceRecorder::observe(std::uint32_t histogram, double value) noexcept {
  if (!config_.enabled) return;
  Histogram* slot = histogram_at(histogram);
  if (slot == nullptr) return;
  Histogram& hist = *slot;
  hist.count.fetch_add(1, std::memory_order_relaxed);
  // Fixed-point nanosecond sum: one fetch_add instead of a CAS loop on a
  // floating sum. Values are microseconds, so the uint64 holds ~584 years.
  const double nanos = value * 1e3;
  hist.sum_nanos.fetch_add(
      nanos <= 0.0 ? 0 : static_cast<std::uint64_t>(nanos), std::memory_order_relaxed);
  const auto bound =
      std::lower_bound(kHistogramBounds.begin(), kHistogramBounds.end(), value);
  const auto bucket = static_cast<std::size_t>(bound - kHistogramBounds.begin());
  hist.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::string> TraceRecorder::track_names() const {
  const std::uint32_t count = track_count_.load(std::memory_order_acquire);
  std::vector<std::string> names;
  names.reserve(count);
  // track_at() never aliases here: every id is < count.
  for (std::uint32_t id = 0; id < count; ++id) names.push_back(track_at(id)->name);
  return names;
}

std::vector<TraceEvent> TraceRecorder::events(std::uint32_t track) const {
  const std::uint32_t count = track_count_.load(std::memory_order_acquire);
  if (track >= count) return {};
  const Track& sink = *track_at(track);  // in-range: no aliasing
  const util::MutexLock lock(sink.mutex);
  std::vector<TraceEvent> out;
  out.reserve(sink.ring.size());
  // Oldest retained first: from head to the end, then the wrapped prefix.
  for (std::size_t i = 0; i < sink.ring.size(); ++i) {
    out.push_back(sink.ring[(sink.head + i) % sink.ring.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::all_events() const {
  const std::uint32_t count = track_count_.load(std::memory_order_acquire);
  std::vector<TraceEvent> out;
  for (std::uint32_t id = 0; id < count; ++id) {
    auto track_events = events(id);
    out.insert(out.end(), std::make_move_iterator(track_events.begin()),
               std::make_move_iterator(track_events.end()));
  }
  return out;
}

std::vector<HistogramSnapshot> TraceRecorder::histograms() const {
  const std::uint32_t count = histogram_count_.load(std::memory_order_acquire);
  std::vector<HistogramSnapshot> out;
  out.reserve(count);
  for (std::uint32_t id = 0; id < count; ++id) {
    const Histogram& hist = *histogram_at(id);  // in-range: no aliasing
    HistogramSnapshot snap;
    snap.name = hist.name;
    snap.count = hist.count.load(std::memory_order_relaxed);
    snap.sum = static_cast<double>(hist.sum_nanos.load(std::memory_order_relaxed)) / 1e3;
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      snap.buckets[i] = hist.buckets[i].load(std::memory_order_relaxed);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace nv::obs

// Exporters: turn a TraceRecorder (and the telemetry snapshots) into the two
// formats operators actually consume.
//
//   to_chrome_trace()   Chrome-trace/Perfetto JSON ("traceEvents"): one tid
//                       per recorder track (named via thread_name metadata),
//                       one "X" slice per TraceEvent with the span/parent/
//                       operand payload in args, plus flow events ("s"/"t")
//                       so Perfetto draws the causal arrows between a span's
//                       defining event and everything it caused. Load the
//                       file at https://ui.perfetto.dev. Validated by
//                       tools/check_trace.py in CI.
//   expose_metrics()    Prometheus text exposition: every documented
//                       FleetSnapshot / ClusterSnapshot field as a counter or
//                       gauge (per-shard series labeled {shard="i"}), plus
//                       the recorder's trace-derived histograms (cumulative
//                       buckets over obs::kHistogramBounds).
//
// Formats are documented in docs/TRACING.md.
#ifndef NV_OBS_EXPORTERS_H
#define NV_OBS_EXPORTERS_H

#include <string>
#include <string_view>

#include "cluster/telemetry.h"
#include "fleet/telemetry.h"
#include "obs/trace.h"

namespace nv::obs {

/// Serialize the recorder's retained events as Chrome-trace JSON (see file
/// header). Deterministic for a deterministic recorder: byte-identical
/// ManualClock runs serialize byte-identically.
[[nodiscard]] std::string to_chrome_trace(const TraceRecorder& recorder);

/// Escape a Prometheus label VALUE per the text exposition format: backslash,
/// double-quote, and newline must be written as \\, \", and \n inside the
/// quoted label value. Every label value the exporters emit goes through
/// this — an operator-supplied instance name containing a quote must not be
/// able to break the series syntax (or smuggle in extra labels).
[[nodiscard]] std::string prometheus_label_escape(std::string_view value);

/// Prometheus text exposition of one fleet snapshot under `prefix`
/// (default "nv_fleet"); appends the recorder's histograms when non-null.
/// A non-empty `instance` stamps every series with {instance="..."} (the
/// value is escaped via prometheus_label_escape).
[[nodiscard]] std::string expose_metrics(const fleet::FleetSnapshot& snapshot,
                                         const TraceRecorder* recorder = nullptr,
                                         const std::string& prefix = "nv_fleet",
                                         const std::string& instance = "");

/// Prometheus text exposition of a whole cluster: the cluster aggregates
/// under "nv_cluster", every shard's fleet snapshot as {shard="i"}-labeled
/// "nv_fleet" series, and the recorder's histograms when non-null.
[[nodiscard]] std::string expose_metrics(const cluster::ClusterSnapshot& snapshot,
                                         const TraceRecorder* recorder = nullptr);

}  // namespace nv::obs

#endif  // NV_OBS_EXPORTERS_H

#include "fleet/jobs.h"

#include <chrono>
#include <thread>
#include <utility>

#include "guest/runners.h"
#include "httpd/client.h"
#include "httpd/mini_httpd.h"

namespace nv::fleet::jobs {

namespace {

/// Block until the session's server binds its port, the monitor trips, or a
/// deadline passes (a launch that alarms before bind must not hang the lane).
void wait_for_bind(core::NVariantSystem& system, std::uint16_t port) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!system.hub().is_bound(port) && !system.monitor().triggered() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// The privilege-churn guest: repeated drop / detection-check / restore.
class UidChurnGuest final : public guest::GuestProgram {
 public:
  explicit UidChurnGuest(unsigned rounds) : rounds_(rounds) {}

  [[nodiscard]] std::string_view name() const override { return "uid-churn"; }

  void run(guest::GuestContext& ctx) override {
    for (unsigned i = 0; i < rounds_; ++i) {
      const os::uid_t worker = ctx.uid_const(1000 + (i % 7));
      if (ctx.seteuid(worker) != os::Errno::kOk) ctx.exit(1);
      // The detection pair rides ONE coalesced rendezvous round: both checks
      // are detection-class calls, so the pipeline compares and executes
      // them in a single cross-variant barrier instead of two.
      const os::uid_t euid = ctx.geteuid();
      vkernel::SyscallBatch checks;
      vkernel::SyscallArgs uid_value;
      uid_value.no = vkernel::Sys::kUidValue;
      uid_value.ints = {euid};
      checks.calls.push_back(std::move(uid_value));
      vkernel::SyscallArgs not_root;
      not_root.no = vkernel::Sys::kCcCmp;
      not_root.ints = {static_cast<std::uint64_t>(vkernel::CcOp::kNeq), euid,
                       ctx.uid_const(0)};
      checks.calls.push_back(std::move(not_root));
      const auto verdicts = ctx.raw_syscall_batch(checks);
      if (verdicts.size() != 2 || verdicts[1].value == 0) ctx.exit(2);
      if (ctx.seteuid(ctx.uid_const(0)) != os::Errno::kOk) ctx.exit(3);
    }
    ctx.exit(0);
  }

 private:
  unsigned rounds_;
};

}  // namespace

std::vector<HttpPlay> normal_browse(unsigned requests) {
  static const char* const kPages[] = {"/", "/page1.html", "/page2.html", "/whoami",
                                       "/secret/key.txt"};
  std::vector<HttpPlay> plays;
  plays.reserve(requests);
  for (unsigned i = 0; i < requests; ++i) {
    plays.push_back({kPages[i % (sizeof(kPages) / sizeof(kPages[0]))], {}});
  }
  return plays;
}

std::vector<HttpPlay> uid_smash_attack(std::uint32_t header_buffer_size) {
  std::string agent(header_buffer_size, 'A');  // fill the header buffer...
  agent += std::string(4, '\0');  // ...and smash the adjacent worker UID to 0
  return {
      {"/", {{"User-Agent", agent}}},  // plant the corrupted UID
      {"/secret/key.txt", {}},         // escalate, then restore the corrupted UID
      {"/whoami", {}},                 // would answer "root" on an undefended server
  };
}

FleetJob httpd_request_stream(httpd::ServerConfig config, std::vector<HttpPlay> plays) {
  return [config, plays = std::move(plays)](core::NVariantSystem& system) {
    httpd::install_default_site(system.fs(), config);
    httpd::MiniHttpd server;
    guest::launch_nvariant(system, server);
    // The variant threads reference `server`; every exit path below must
    // stop() (join) before this frame unwinds.
    try {
      wait_for_bind(system, config.listen_port);
      for (const auto& play : plays) {
        if (system.monitor().triggered()) break;
        (void)httpd::http_get(system.hub(), config.listen_port, play.path, play.headers);
      }
    } catch (...) {
      (void)system.stop();
      throw;
    }
    return system.stop();
  };
}

std::vector<std::string> ftp_normal_session() {
  return {"USER alice", "PASS wonderland", "RETR /home/alice/notes.txt", "WHOAMI", "QUIT"};
}

std::vector<std::string> ftp_site_attack(std::uint32_t command_buffer_size) {
  std::string overrun(command_buffer_size, 'A');
  overrun += std::string(4, '\0');  // stored session UID <- canonical root
  return {"USER alice", "PASS wonderland", "SITE " + overrun, "REIN",
          "RETR /etc/master.key", "QUIT"};
}

FleetJob ftpd_command_stream(httpd::FtpdConfig config, std::vector<std::string> commands) {
  return [config, commands = std::move(commands)](core::NVariantSystem& system) {
    httpd::install_ftpd_site(system.fs(), config);
    httpd::MiniFtpd server(config);
    guest::launch_nvariant(system, server);
    // The variant threads reference `server`; every exit path below must
    // stop() (join) before this frame unwinds.
    try {
      wait_for_bind(system, config.listen_port);
      auto conn = system.hub().connect(config.listen_port);
      if (conn) {
        (void)conn->recv_until("\r\n");  // greeting
        for (const auto& command : commands) {
          if (system.monitor().triggered()) break;
          if (!conn->send(command + "\r\n")) break;
          auto reply = conn->recv_until("\r\n");
          if (!reply || reply->empty()) break;
        }
        conn->close();
      }
    } catch (...) {
      (void)system.stop();
      throw;
    }
    return system.stop();
  };
}

FleetJob uid_churn(unsigned rounds) {
  return [rounds](core::NVariantSystem& system) {
    UidChurnGuest guest(rounds);
    return guest::run_nvariant(system, guest);
  };
}

}  // namespace nv::fleet::jobs

#include "fleet/session_factory.h"

#include <cmath>
#include <limits>
#include <utility>

#include "core/diversity_suite.h"
#include "util/strings.h"

namespace nv::fleet {

namespace {

/// A randomized parameter set for one variation kind, plus its record.
struct Draw {
  core::VariationParams params;
  std::map<std::string, std::uint64_t> recorded;  // param name -> value
};

Draw draw_params(const std::string& name, unsigned n_variants, util::Rng& rng) {
  Draw draw;
  if (name == "uid-xor" || name == "uid-variation") {
    // Bit 30 set keeps every shifted per-variant mask (mask >> (i-1))
    // non-zero and pairwise distinct; the high bit stays clear so sentinel
    // UIDs ((uid_t)-1) keep their special meaning (§3.2).
    const std::uint64_t mask = 0x40000000ULL | (rng.next_u64() & 0x3FFFFFFFULL);
    draw.params.set("mask", mask);
    draw.recorded["mask"] = mask;
  } else if (name == "extended-address-partitioning") {
    const std::uint64_t seed = rng.next_u64();
    draw.params.set("seed", seed);
    draw.recorded["seed"] = seed;
  } else if (name == "address-partitioning") {
    // Random multiple of 256 MiB in [1 GiB, 5 GiB): far larger than any
    // variant's data segment, so partitions never overlap.
    const std::uint64_t stride = (4 + rng.below(16)) * 0x10000000ULL;
    draw.params.set("stride", stride);
    draw.recorded["stride"] = stride;
  } else if (name == "instruction-tagging") {
    // tag_for(variant) = base + variant must stay within one byte: draw the
    // base so the highest variant's tag cannot wrap.
    const std::uint64_t ceiling = 0xFFULL - (n_variants - 1);
    const std::uint64_t base_tag = 1 + rng.below(ceiling);
    draw.params.set("base-tag", base_tag);
    draw.recorded["base-tag"] = base_tag;
  } else if (name == "port-hopping") {
    // Bit 15 set keeps every shifted per-variant mask (mask >> (i-1))
    // non-zero and pairwise distinct over the 16-bit port space.
    const std::uint64_t mask = 0x8000ULL | (rng.next_u64() & 0x7FFFULL);
    draw.params.set("mask", mask);
    draw.recorded["mask"] = mask;
  } else if (name == "endpoint-rotation") {
    // Bit 31 set so the drawn token never collides with the variation's
    // "unset" zero state; the realized space is the 31 low bits.
    const std::uint64_t endpoint = 0x80000000ULL | (rng.next_u64() & 0x7FFFFFFFULL);
    draw.params.set("endpoint", endpoint);
    draw.recorded["endpoint"] = endpoint;
  }
  // Unknown / parameterless variations (stack-reversal, downstream
  // registrations): registry defaults.
  return draw;
}

}  // namespace

std::string KeyspaceAccount::describe() const {
  if (!tracked) return "keyspace: untracked (registry defaults, one shared key)";
  return util::format("keyspace: %llu of %llu keys remaining (%.1f bits)",
                      static_cast<unsigned long long>(keys_remaining),
                      static_cast<unsigned long long>(keys_total), bits);
}

SessionFactory::SessionFactory(SessionSpec spec, std::uint64_t seed,
                               const core::VariationRegistry& registry)
    : spec_(std::move(spec)), registry_(registry), rng_(seed) {
  // Composed entropy of the spec: ask each variation (constructed with
  // registry defaults — keyspace_bits describes the DRAW space, not the one
  // drawn point) for its estimate. Names the registry does not know
  // contribute 0 bits here; make_session reports them as the real error.
  for (const auto& name : spec_.variations) {
    auto variation = registry_.make(name);
    if (variation) keyspace_bits_ += (*variation)->keyspace_bits(spec_.n_variants);
  }
  if (spec_.trace) {
    factory_track_ = spec_.trace->track(spec_.trace_scope + ".factory");
    core_track_ = spec_.trace->track(spec_.trace_scope + ".core");
  }
}

KeyspaceAccount SessionFactory::keyspace() const {
  KeyspaceAccount account;
  account.tracked = spec_.randomize;
  account.bits = keyspace_bits_;
  if (!account.tracked) return account;
  // Saturate well below 2^64: llround overflows past 2^63, and a space that
  // large never exhausts in practice anyway.
  account.keys_total = keyspace_bits_ >= 63.0
                           ? std::numeric_limits<std::uint64_t>::max()
                           : static_cast<std::uint64_t>(std::llround(std::exp2(keyspace_bits_)));
  // A cluster budget allocation caps the natural space: the fleet's
  // exhaustion posture then fires at the allocation boundary.
  if (spec_.max_unique_keys > 0 && spec_.max_unique_keys < account.keys_total) {
    account.keys_total = spec_.max_unique_keys;
  }
  account.keys_issued = unique_keys_issued();
  account.keys_remaining =
      account.keys_total > account.keys_issued ? account.keys_total - account.keys_issued : 0;
  return account;
}

std::uint64_t SessionFactory::sessions_created() const {
  const util::MutexLock lock(mutex_);
  return next_id_;
}

std::uint64_t SessionFactory::unique_keys_issued() const {
  const util::MutexLock lock(mutex_);
  return issued_keys_.size();
}

util::Expected<Session, std::string> SessionFactory::make_session() {
  auto session = [this]() -> util::Expected<Session, std::string> {
    const util::MutexLock lock(mutex_);
    // Random draws can collide — into a disjointedness violation (two
    // variations landing on the same reexpression) or into a diversity key some
    // EARLIER session already drew (a quarantine-heavy burst must never respawn
    // the reexpression the attacker just probed). Both are luck, not policy:
    // re-draw a bounded number of times before giving up. Every other error
    // (unknown name, parameter rejection, builder validation) is systematic —
    // redrawing cannot help and would only advance the RNG.
    std::string last_error;
    for (int attempt = 0; attempt < 32; ++attempt) {
      auto made = try_make_locked();
      if (made) return made;
      last_error = made.error();
      if (!spec_.randomize ||
          (last_error.find("disjointedness") == std::string::npos &&
           last_error.find("duplicate diversity draw") == std::string::npos)) {
        return util::Unexpected{std::move(last_error)};
      }
    }
    return util::Unexpected{"session factory exhausted redraws: " + last_error};
  }();
  if (spec_.trace) {
    if (session) {
      // The draw event DEFINES the session's span — the root every later
      // event about this session (jobs, quarantine, rounds) parents to.
      spec_.trace->record(factory_track_, obs::TraceEventKind::kSessionDraw,
                          session->trace_span, 0, session->id, 0, session->fingerprint);
    } else {
      const bool budget = session.error().find("keyspace budget exhausted") != std::string::npos;
      spec_.trace->record(factory_track_,
                          budget ? obs::TraceEventKind::kBudgetRefusal
                                 : obs::TraceEventKind::kDrawRefused,
                          0, 0, 0, 0, session.error());
    }
  }
  return session;
}

util::Expected<Session, std::string> SessionFactory::try_make_locked() {
  // Cluster budget cap: a systematic refusal, not a redraw — once the
  // allocation is spent, every further draw would overdraw the global space.
  if (spec_.randomize && spec_.max_unique_keys > 0 &&
      issued_keys_.size() >= spec_.max_unique_keys) {
    return util::Unexpected{
        util::format("keyspace budget exhausted: %llu of %llu allocated keys issued",
                     static_cast<unsigned long long>(issued_keys_.size()),
                     static_cast<unsigned long long>(spec_.max_unique_keys))};
  }

  Session session;
  std::vector<core::VariationPtr> variations;
  std::string fingerprint;
  std::string observable;  // collision-aware ledger key (derived layouts)
  for (const auto& name : spec_.variations) {
    Draw draw = spec_.randomize ? draw_params(name, spec_.n_variants, rng_)
                                : Draw{};
    auto variation = registry_.make(name, draw.params);
    if (!variation) return util::Unexpected{variation.error()};

    std::string fragment = name;
    if (!draw.recorded.empty()) {
      fragment += "{";
      bool first = true;
      for (const auto& [param, value] : draw.recorded) {
        if (!first) fragment += ",";
        first = false;
        fragment += util::format("%s=0x%llx", param.c_str(),
                                 static_cast<unsigned long long>(value));
        session.drawn_params[name + "." + param] = value;
      }
      fragment += "}";
    }
    if (!fingerprint.empty()) fingerprint += " + ";
    fingerprint += fragment;

    // The ledger counts what attackers can OBSERVE: variations whose drawn
    // parameters are a seed over a smaller derived space substitute the
    // derived layout here, so two seeds colliding onto one layout are one
    // key — keys_remaining stays strictly honest.
    const auto derived = (*variation)->observable_key(spec_.n_variants);
    if (!observable.empty()) observable += " + ";
    observable += derived ? name + "{" + *derived + "}" : fragment;

    variations.push_back(std::move(*variation));
  }
  if (fingerprint.empty()) fingerprint = "identical";
  if (observable.empty()) observable = "identical";

  // Observable-key uniqueness per factory lifetime: reject the draw BEFORE
  // the expensive system build when its diversity key was already issued.
  // Only meaningful under randomize — registry defaults repeat by design.
  if (spec_.randomize && issued_keys_.contains(observable)) {
    return util::Unexpected{"duplicate diversity draw: " + observable};
  }

  auto suite = core::DiversitySuite::compose(spec_.n_variants, std::move(variations));
  if (!suite) return util::Unexpected{suite.error()};

  core::NVariantSystem::Builder builder;
  builder.suite(std::move(*suite)).rendezvous_timeout(spec_.rendezvous_timeout);
  for (const auto& path : spec_.unshared) builder.unshared(path);
  if (spec_.trace) {
    session.trace_span = spec_.trace->new_span();
    builder.trace(spec_.trace, core_track_, session.trace_span);
  }
  auto system = builder.try_build();
  if (!system) return util::Unexpected{system.error()};

  session.id = next_id_++;
  session.system = std::move(*system);
  session.diversity_key = observable;
  session.fingerprint = util::format("session-%llu[%s]",
                                     static_cast<unsigned long long>(session.id),
                                     fingerprint.c_str());
  issued_keys_.insert(std::move(observable));
  return session;
}

}  // namespace nv::fleet

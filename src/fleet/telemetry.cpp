#include "fleet/telemetry.h"

#include "util/strings.h"

namespace nv::fleet {

FleetTelemetry::FleetTelemetry(unsigned lanes) {
  lanes_.reserve(lanes == 0 ? 1 : lanes);
  for (unsigned i = 0; i < (lanes == 0 ? 1 : lanes); ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

void FleetTelemetry::record_latency(unsigned lane, double latency_us) {
  Lane& target = *lanes_[lane % lanes_.size()];
  const util::MutexLock lock(target.mutex);
  target.latencies_us.add(latency_us);
}

FleetSnapshot FleetTelemetry::snapshot() const {
  FleetSnapshot snap;
  snap.jobs_submitted = jobs_submitted_.load(std::memory_order_relaxed);
  snap.jobs_rejected = jobs_rejected_.load(std::memory_order_relaxed);
  snap.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  snap.jobs_alarmed = jobs_alarmed_.load(std::memory_order_relaxed);
  snap.job_errors = job_errors_.load(std::memory_order_relaxed);
  snap.jobs_stolen = jobs_stolen_.load(std::memory_order_relaxed);
  snap.jobs_abandoned = jobs_abandoned_.load(std::memory_order_relaxed);
  snap.jobs_shed = jobs_shed_.load(std::memory_order_relaxed);
  snap.jobs_deadline_dropped = jobs_deadline_dropped_.load(std::memory_order_relaxed);
  snap.admission_blocked_us = admission_blocked_us_.load(std::memory_order_relaxed);
  snap.queue_high_watermark = queue_high_watermark_.load(std::memory_order_relaxed);
  snap.sessions_quarantined = sessions_quarantined_.load(std::memory_order_relaxed);
  snap.sessions_respawned = sessions_respawned_.load(std::memory_order_relaxed);
  snap.sessions_rotated = sessions_rotated_.load(std::memory_order_relaxed);
  snap.rotations_failed = rotations_failed_.load(std::memory_order_relaxed);
  snap.campaign_alerts = campaign_alerts_.load(std::memory_order_relaxed);
  snap.remote_campaigns = remote_campaigns_.load(std::memory_order_relaxed);
  snap.policy_tightened = policy_tightened_.load(std::memory_order_relaxed);
  snap.policy_decayed = policy_decayed_.load(std::memory_order_relaxed);
  snap.syscall_rounds = syscall_rounds_.load(std::memory_order_relaxed);
  snap.syscall_batches = syscall_batches_.load(std::memory_order_relaxed);
  snap.async_completions = async_completions_.load(std::memory_order_relaxed);
  snap.keys_total = keys_total_.load(std::memory_order_relaxed);
  snap.keys_remaining = keys_remaining_.load(std::memory_order_relaxed);
  {
    const util::MutexLock lock(trace_mutex_);
    if (trace_) snap.trace_drops = trace_->dropped();
  }

  util::Samples merged;
  for (const auto& lane : lanes_) {
    const util::MutexLock lock(lane->mutex);
    merged.merge(lane->latencies_us);
  }
  snap.latency_count = merged.count();
  snap.latency_mean_us = merged.mean();
  snap.latency_p50_us = merged.percentile(50.0);
  snap.latency_p95_us = merged.percentile(95.0);
  snap.latency_p99_us = merged.percentile(99.0);
  return snap;
}

std::string FleetSnapshot::describe() const {
  const std::string keyspace =
      keys_total == 0 ? std::string("untracked")
                      : util::format("%llu of %llu keys remaining",
                                     static_cast<unsigned long long>(keys_remaining),
                                     static_cast<unsigned long long>(keys_total));
  return util::format(
      "jobs: %llu submitted, %llu completed, %llu alarmed, %llu errored, %llu rejected, "
      "%llu stolen, %llu abandoned | "
      "admission: %llu shed, %llu deadline-dropped, %llu us blocked, watermark %llu | "
      "sessions: %llu quarantined, %llu respawned, %llu rotated (%llu rotations failed) | "
      "keyspace: %s | "
      "%llu campaign alerts (%llu remote) | adaptive: %llu tightened, %llu decayed | "
      "%llu syscall rounds (%llu batched, %llu async) | "
      "latency us: p50 %.0f, p95 %.0f, p99 %.0f (n=%zu)",
      static_cast<unsigned long long>(jobs_submitted),
      static_cast<unsigned long long>(jobs_completed),
      static_cast<unsigned long long>(jobs_alarmed),
      static_cast<unsigned long long>(job_errors),
      static_cast<unsigned long long>(jobs_rejected),
      static_cast<unsigned long long>(jobs_stolen),
      static_cast<unsigned long long>(jobs_abandoned),
      static_cast<unsigned long long>(jobs_shed),
      static_cast<unsigned long long>(jobs_deadline_dropped),
      static_cast<unsigned long long>(admission_blocked_us),
      static_cast<unsigned long long>(queue_high_watermark),
      static_cast<unsigned long long>(sessions_quarantined),
      static_cast<unsigned long long>(sessions_respawned),
      static_cast<unsigned long long>(sessions_rotated),
      static_cast<unsigned long long>(rotations_failed), keyspace.c_str(),
      static_cast<unsigned long long>(campaign_alerts),
      static_cast<unsigned long long>(remote_campaigns),
      static_cast<unsigned long long>(policy_tightened),
      static_cast<unsigned long long>(policy_decayed),
      static_cast<unsigned long long>(syscall_rounds),
      static_cast<unsigned long long>(syscall_batches),
      static_cast<unsigned long long>(async_completions), latency_p50_us, latency_p95_us,
      latency_p99_us, latency_count);
}

}  // namespace nv::fleet

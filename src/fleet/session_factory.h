// Stamps out sealed NVariantSystems for the fleet, drawing FRESH random
// diversity parameters for every session from a seeded generator — the
// dynamic re-diversification the diversity surveys call for (Zhang et al.):
// no two sessions share a reexpression, and a quarantined session's
// replacement is diversified differently from the instance the attacker just
// probed.
//
// Parameter draws are per-variation-kind:
//   uid-xor / uid-variation         mask: bit 30 set, high bit clear, so the
//                                   per-variant shifted masks stay pairwise
//                                   distinct and non-zero for any N <= 31
//   extended-address-partitioning   seed: full 64-bit draw (page-aligned
//                                   per-variant offsets follow from it)
//   address-partitioning            stride: random multiple of 256 MiB
//   instruction-tagging             base-tag: uniform in [1, 0xFF-(N-1)] so
//                                   tag_for(variant) never wraps
//   port-hopping                    mask: bit 15 set, 15 low bits random, so
//                                   the per-variant shifted masks stay
//                                   pairwise distinct and non-zero
//   endpoint-rotation               endpoint: bit 31 set, 31 low bits random
//   anything else                   registry defaults (no parameters drawn)
//
// Every draw is recorded in the session's fingerprint so forensics can tie a
// quarantine record to the concrete reexpression the attacker faced, and so
// tests can prove a respawned session differs from its predecessor.
#ifndef NV_FLEET_SESSION_FACTORY_H
#define NV_FLEET_SESSION_FACTORY_H

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/nvariant_system.h"
#include "core/variation_registry.h"
#include "obs/trace.h"
#include "util/expected.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace nv::fleet {

/// What every session in the fleet is made of: the DiversitySuite recipe by
/// registry name plus the MVEE options shared across sessions.
struct SessionSpec {
  unsigned n_variants = 2;
  std::vector<std::string> variations = {"uid-xor"};
  std::chrono::milliseconds rendezvous_timeout{2000};
  std::vector<std::string> unshared;
  /// Draw fresh random parameters per session (the fleet posture). When
  /// false every session uses the registry defaults — useful for
  /// deterministic benches and for measuring the value of re-diversification.
  bool randomize = true;
  /// Cluster budgeting: hard cap on the unique diversity keys this factory
  /// may issue over its lifetime, 0 = uncapped. A ClusterKeyspaceBudget
  /// allocates slices of a global budget through this; keyspace() reports
  /// keys_total = min(2^bits, cap) so the fleet's exhaustion posture (low
  /// watermark, rotation refusal, on_keyspace_low) applies to the allocation
  /// exactly as it does to the natural space. Ignored when randomize is off.
  std::uint64_t max_unique_keys = 0;
  /// Structured tracing (obs/trace.h): every draw records kSessionDraw (and
  /// refusals kDrawRefused / kBudgetRefusal) on "<trace_scope>.factory", and
  /// each built system emits sampled rendezvous events on "<trace_scope>.core"
  /// parented to its session's draw span. Null = untraced (the default).
  /// VariantFleet propagates its FleetConfig::trace/trace_scope here.
  std::shared_ptr<obs::TraceRecorder> trace;
  std::string trace_scope = "fleet";
};

/// The factory's view of its finite re-expression keyspace: how big the
/// composed draw space is (in real entropy units — the sum of every
/// variation's keyspace_bits), how much of it has already been issued, and
/// how much is left before every further session would repeat a reexpression
/// some earlier session already exposed to attackers.
struct KeyspaceAccount {
  /// True when the spec randomizes: uniqueness is enforced and the gauge is
  /// meaningful. Registry-default (randomize=false) fleets repeat one key by
  /// design — keys_total reads 0 and nothing here signals exhaustion.
  bool tracked = false;
  /// Composed fingerprint entropy of the spec's variations (bits add across
  /// independently drawn variations).
  double bits = 0.0;
  /// 2^bits, saturated at uint64 max; 0 when untracked.
  std::uint64_t keys_total = 0;
  /// Distinct diversity keys issued so far (== SessionFactory::unique_keys_issued).
  std::uint64_t keys_issued = 0;
  /// keys_total - keys_issued, floored at 0.
  std::uint64_t keys_remaining = 0;

  /// No unique re-expression left: every further draw repeats an issued key.
  [[nodiscard]] bool exhausted() const noexcept { return tracked && keys_remaining == 0; }
  /// "keyspace: 14 of 16 keys remaining (4.0 bits)" / "keyspace: untracked".
  [[nodiscard]] std::string describe() const;
};

/// One stamped-out session: a sealed system plus the record of which
/// diversity parameters it drew.
struct Session {
  std::uint64_t id = 0;
  std::unique_ptr<core::NVariantSystem> system;
  /// "session-0[uid-xor{mask=0x5f3a91c2} + instruction-tagging{base-tag=0x4e}]"
  /// — the concrete reexpression identity of this session, for logs and
  /// forensics.
  std::string fingerprint;
  /// The ATTACKER-OBSERVABLE diversity identity: per variation, either the
  /// drawn parameters or — when the variation overrides observable_key() —
  /// the derived layout those parameters map onto (extended-address-
  /// partitioning: the page-offset vector, not the 64-bit seed). When
  /// randomize is on, the factory guarantees this is unique across its
  /// lifetime: no two sessions (in particular, no quarantined session and its
  /// replacement in a quarantine-heavy burst) ever share an observable
  /// reexpression, even via seed collisions onto one layout.
  std::string diversity_key;
  /// Raw draws, keyed "variation.param" (e.g. "uid-xor.mask").
  std::map<std::string, std::uint64_t> drawn_params;
  /// Jobs this session has served so far (maintained by the fleet).
  std::uint64_t jobs_served = 0;
  /// Causality id of this session's kSessionDraw trace event (0 = untraced):
  /// the ROOT of the session's causal chain — jobs started against it, its
  /// quarantine, and its sampled rendezvous rounds all parent here.
  std::uint64_t trace_span = 0;
};

class SessionFactory {
 public:
  /// `registry` must outlive the factory (the builtin registry does).
  SessionFactory(SessionSpec spec, std::uint64_t seed,
                 const core::VariationRegistry& registry);

  /// Build one freshly diversified, sealed session. Thread-safe. Errors are
  /// expected failure paths: unknown variation names, parameter rejections, a
  /// disjointedness violation the (bounded) re-draw loop cannot escape, or a
  /// diversity-key collision it cannot escape (the parameter space is
  /// exhausted — every further session would repeat a reexpression some
  /// earlier session already exposed to attackers).
  [[nodiscard]] util::Expected<Session, std::string> make_session();

  [[nodiscard]] const SessionSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t sessions_created() const;
  /// Distinct diversity keys issued so far (== sessions created when
  /// randomize is on; uniqueness is not enforced for registry defaults).
  [[nodiscard]] std::uint64_t unique_keys_issued() const;

  /// Current keyspace ledger: composed entropy, keys issued, keys remaining.
  /// The entropy estimate comes from the variations' own keyspace_bits()
  /// (unknown variation names contribute 0 — make_session will reject them
  /// anyway). Thread-safe; cheap enough to poll per rotation decision.
  [[nodiscard]] KeyspaceAccount keyspace() const;

 private:
  [[nodiscard]] util::Expected<Session, std::string> try_make_locked() NV_REQUIRES(mutex_);

  SessionSpec spec_;
  const core::VariationRegistry& registry_;
  double keyspace_bits_ = 0.0;  // composed at construction from the spec
  std::uint32_t factory_track_ = 0;  // "<scope>.factory" (draws, refusals)
  std::uint32_t core_track_ = 0;     // "<scope>.core" (sampled rendezvous rounds)
  mutable util::Mutex mutex_;
  util::Rng rng_ NV_GUARDED_BY(mutex_);
  std::uint64_t next_id_ NV_GUARDED_BY(mutex_) = 0;
  std::set<std::string> issued_keys_ NV_GUARDED_BY(mutex_);
};

}  // namespace nv::fleet

#endif  // NV_FLEET_SESSION_FACTORY_H

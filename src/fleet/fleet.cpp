#include "fleet/fleet.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <utility>

#include "util/strings.h"
#include "variants/registry.h"

namespace nv::fleet {

namespace {

std::uint64_t resolve_seed(std::optional<std::uint64_t> requested) {
  if (requested.has_value()) return *requested;
  std::random_device entropy;
  return (static_cast<std::uint64_t>(entropy()) << 32) | entropy();
}

}  // namespace

unsigned VariantFleet::resolve_pool_size(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 2U, 8U);
}

VariantFleet::VariantFleet(FleetConfig config)
    : config_(std::move(config)),
      pool_size_(resolve_pool_size(config_.pool_size)),
      factory_(config_.spec, resolve_seed(config_.seed), variants::builtin_registry()),
      telemetry_(pool_size_) {
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("fleet queue capacity must be positive");
  }
  sessions_.reserve(pool_size_);
  for (unsigned lane = 0; lane < pool_size_; ++lane) {
    auto session = factory_.make_session();
    if (!session) {
      throw std::invalid_argument("fleet spec cannot produce a session: " + session.error());
    }
    sessions_.push_back(std::move(*session));
  }
  lane_dead_.assign(pool_size_, false);
  workers_.reserve(pool_size_);
  for (unsigned lane = 0; lane < pool_size_; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

VariantFleet::~VariantFleet() { shutdown(); }

std::future<JobOutcome> VariantFleet::submit(FleetJob job) {
  std::unique_lock lock(queue_mutex_);
  queue_not_full_.wait(lock,
                       [this] { return queue_.size() < config_.queue_capacity || !accepting_; });
  if (!accepting_) throw std::runtime_error("fleet is shut down");
  PendingJob pending;
  pending.id = next_job_id_++;
  pending.fn = std::move(job);
  auto future = pending.promise.get_future();
  queue_.push_back(std::move(pending));
  telemetry_.note_submitted();
  queue_not_empty_.notify_one();
  return future;
}

std::optional<std::future<JobOutcome>> VariantFleet::try_submit(FleetJob job) {
  std::unique_lock lock(queue_mutex_);
  if (!accepting_ || queue_.size() >= config_.queue_capacity) {
    telemetry_.note_rejected();
    return std::nullopt;
  }
  PendingJob pending;
  pending.id = next_job_id_++;
  pending.fn = std::move(job);
  auto future = pending.promise.get_future();
  queue_.push_back(std::move(pending));
  telemetry_.note_submitted();
  queue_not_empty_.notify_one();
  return future;
}

void VariantFleet::shutdown() {
  {
    const std::scoped_lock lock(queue_mutex_);
    accepting_ = false;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  workers_.clear();  // jthread joins; workers drain the queue first
}

std::size_t VariantFleet::queue_depth() const {
  const std::scoped_lock lock(queue_mutex_);
  return queue_.size();
}

std::vector<std::string> VariantFleet::live_fingerprints() const {
  const std::scoped_lock lock(sessions_mutex_);
  std::vector<std::string> fingerprints;
  fingerprints.reserve(sessions_.size());
  for (const auto& session : sessions_) fingerprints.push_back(session.fingerprint);
  return fingerprints;
}

std::vector<QuarantineRecord> VariantFleet::quarantine_log() const {
  const std::scoped_lock lock(quarantine_mutex_);
  return quarantine_log_;
}

void VariantFleet::worker_loop(unsigned lane) {
  for (;;) {
    PendingJob job;
    {
      std::unique_lock lock(queue_mutex_);
      queue_not_empty_.wait(lock, [this] { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) return;  // shutdown and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_not_full_.notify_one();
    }
    run_job(lane, std::move(job));
    // A lane whose respawn failed must retire instead of racing healthy
    // lanes for queued jobs and insta-failing them.
    {
      const std::scoped_lock lock(sessions_mutex_);
      if (lane_dead_[lane]) return;
    }
  }
}

void VariantFleet::run_job(unsigned lane, PendingJob job) {
  JobOutcome outcome;
  outcome.job_id = job.id;

  core::NVariantSystem* system = nullptr;
  {
    const std::scoped_lock lock(sessions_mutex_);
    if (!lane_dead_[lane]) {
      outcome.session_id = sessions_[lane].id;
      system = sessions_[lane].system.get();
    }
  }
  if (system == nullptr) {
    outcome.error = "worker lane lost its session (respawn failed earlier)";
    telemetry_.note_job_error();
    job.promise.set_value(std::move(outcome));
    return;
  }

  const auto start = std::chrono::steady_clock::now();
  try {
    outcome.report = job.fn(*system);
  } catch (const std::exception& e) {
    outcome.error = e.what();
  } catch (...) {
    outcome.error = "job raised a non-standard exception";
  }
  // A job that threw between launch() and stop() leaves variant threads
  // live; harvest them before the session is reused or quarantined. Keep
  // the harvested report even alongside an error: if the monitor tripped
  // before the job threw, the quarantine record must retain the REAL alarm,
  // not a synthesized guest-error.
  if (system->running()) outcome.report = system->stop();
  const auto latency = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  outcome.latency = latency;

  telemetry_.record_latency(lane, static_cast<double>(latency.count()));
  telemetry_.add_syscall_rounds(outcome.report.syscall_rounds);
  if (!outcome.error.empty()) {
    telemetry_.note_job_error();
  } else if (outcome.report.attack_detected) {
    telemetry_.note_alarmed();
  } else {
    telemetry_.note_completed();
  }
  if (outcome.ok()) {
    const std::scoped_lock lock(sessions_mutex_);
    ++sessions_[lane].jobs_served;  // clean service only; see QuarantineRecord
  } else {
    respawn(lane, outcome);
  }
  job.promise.set_value(std::move(outcome));
}

void VariantFleet::respawn(unsigned lane, JobOutcome& outcome) {
  outcome.session_quarantined = true;
  telemetry_.note_quarantined();

  QuarantineRecord record;
  {
    const std::scoped_lock lock(sessions_mutex_);
    record.session_id = sessions_[lane].id;
    record.fingerprint = sessions_[lane].fingerprint;
    record.jobs_served = sessions_[lane].jobs_served;
  }
  record.report = outcome.report;
  if (outcome.report.alarm.has_value()) {
    record.alarm = *outcome.report.alarm;
  } else {
    record.alarm = core::Alarm{core::AlarmKind::kGuestError, core::Alarm::kAllVariants,
                               outcome.error.empty() ? "job failed without an alarm"
                                                     : outcome.error};
  }

  auto replacement = factory_.make_session();
  if (replacement) {
    record.replacement_id = replacement->id;
    record.replacement_fingerprint = replacement->fingerprint;
    const std::scoped_lock lock(sessions_mutex_);
    sessions_[lane] = std::move(*replacement);
    telemetry_.note_respawned();
  } else {
    // Keep the poisoned session out of service rather than serving through
    // a known-compromised reexpression; the lane reports errors from now on.
    record.replacement_fingerprint = "(respawn failed: " + replacement.error() + ")";
    const std::scoped_lock lock(sessions_mutex_);
    lane_dead_[lane] = true;
  }

  const std::scoped_lock lock(quarantine_mutex_);
  quarantine_log_.push_back(std::move(record));
}

}  // namespace nv::fleet

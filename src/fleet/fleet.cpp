#include "fleet/fleet.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <utility>

#include "util/mutex.h"
#include "util/strings.h"
#include "variants/registry.h"

namespace nv::fleet {

namespace {

constexpr const char* kDeadLaneError = "worker lane lost its session (respawn failed earlier)";

std::uint64_t resolve_seed(std::optional<std::uint64_t> requested) {
  if (requested.has_value()) return *requested;
  std::random_device entropy;
  return (static_cast<std::uint64_t>(entropy()) << 32) | entropy();
}

/// The factory inherits the fleet's recorder and scope so session draws and
/// sampled rendezvous rounds land on "<scope>.factory"/"<scope>.core".
SessionSpec traced_spec(const FleetConfig& config) {
  SessionSpec spec = config.spec;
  spec.trace = config.trace;
  spec.trace_scope = config.trace_scope;
  return spec;
}

}  // namespace

unsigned VariantFleet::resolve_pool_size(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 2U, 8U);
}

VariantFleet::VariantFleet(FleetConfig config)
    : config_(std::move(config)),
      pool_size_(resolve_pool_size(config_.pool_size)),
      clock_(resolve_clock(config_.clock)),
      factory_(traced_spec(config_), resolve_seed(config_.seed), variants::builtin_registry()),
      telemetry_(pool_size_),
      correlator_(config_.campaign, clock_) {
  if (config_.adaptive.enabled) {
    adaptive_.emplace(config_.adaptive, config_.campaign, clock_);
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("fleet queue capacity must be positive");
  }
  trace_ = config_.trace;
  if (trace_) {
    telemetry_.attach_trace(trace_);
    ops_track_ = trace_->track(config_.trace_scope + ".ops");
    lane_tracks_.reserve(pool_size_);
    for (unsigned lane = 0; lane < pool_size_; ++lane) {
      lane_tracks_.push_back(
          trace_->track(config_.trace_scope + util::format(".lane%u", lane)));
    }
  } else {
    lane_tracks_.assign(pool_size_, 0);
  }
  sessions_.reserve(pool_size_);
  for (unsigned lane = 0; lane < pool_size_; ++lane) {
    auto session = factory_.make_session();
    if (!session) {
      throw std::invalid_argument("fleet spec cannot produce a session: " + session.error());
    }
    sessions_.push_back(std::move(*session));
  }
  displaced_sessions_.resize(pool_size_);
  // Arm the backoff so the FIRST low-keyspace rotation is admitted; only the
  // spacing between subsequent ones is enforced.
  last_backoff_rotation_ = clock_() - config_.rotation_backoff;
  (void)refresh_keyspace_gauge();
  lane_queues_.resize(pool_size_);
  lane_flags_.assign(pool_size_, LaneFlags{});
  workers_.reserve(pool_size_);
  try {
    for (unsigned lane = 0; lane < pool_size_; ++lane) {
      workers_.emplace_back([this, lane] { worker_loop(lane); });
    }
  } catch (...) {
    // Thread spawning failed partway: the already-spawned workers are parked
    // in queue_not_empty_.wait and would never see the jthread stop request,
    // deadlocking the unwind's join. Tell them to exit first.
    {
      const util::MutexLock lock(queue_mutex_);
      accepting_ = false;
    }
    queue_not_empty_.notify_all();
    throw;
  }
}

VariantFleet::~VariantFleet() { shutdown(); }

unsigned VariantFleet::pick_lane_locked() {
  // Round-robin over lanes that can run work NOW; lanes mid-respawn are
  // second choice (their backlog only moves if peers steal it). A lane whose
  // worker already exited (shutdown path) can never drain its queue — jobs
  // parked there would strand as broken promises.
  for (unsigned i = 0; i < pool_size_; ++i) {
    const unsigned lane = (next_lane_ + i) % pool_size_;
    const LaneFlags& flags = lane_flags_[lane];
    if (!flags.dead && !flags.exited && !flags.respawning) {
      next_lane_ = (lane + 1) % pool_size_;
      return lane;
    }
  }
  for (unsigned i = 0; i < pool_size_; ++i) {
    const unsigned lane = (next_lane_ + i) % pool_size_;
    if (!lane_flags_[lane].dead && !lane_flags_[lane].exited) {
      next_lane_ = (lane + 1) % pool_size_;
      return lane;
    }
  }
  return pool_size_;  // no lane can take work
}

std::future<JobOutcome> VariantFleet::enqueue_locked(FleetJob job) {
  PendingJob pending;
  pending.id = next_job_id_++;
  pending.fn = std::move(job);
  auto future = pending.promise.get_future();
  const unsigned lane = pick_lane_locked();
  if (lane == pool_size_) {
    // No live lane will ever pop this; fail fast instead of queueing forever.
    JobOutcome outcome;
    outcome.job_id = pending.id;
    outcome.error = kDeadLaneError;
    telemetry_.note_submitted();
    telemetry_.note_job_error();
    if (trace_) {
      trace_->record(ops_track_, obs::TraceEventKind::kJobRejected, 0, 0, outcome.job_id, 0,
                     kDeadLaneError);
    }
    pending.promise.set_value(std::move(outcome));
    return future;
  }
  if (trace_) {
    // Admission DEFINES the job's span; start/finish/quarantine parent to it.
    pending.trace_span = trace_->new_span();
    trace_->record(ops_track_, obs::TraceEventKind::kJobAdmitted, pending.trace_span, 0,
                   pending.id, lane);
  }
  if (config_.admission == AdmissionPolicy::kDeadlineDrop &&
      config_.queue_deadline > std::chrono::milliseconds::zero()) {
    pending.admitted_at = clock_();
  }
  lane_queues_[lane].push_back(std::move(pending));
  const std::size_t depth = total_queued_.fetch_add(1, std::memory_order_relaxed) + 1;
  telemetry_.note_queue_depth(depth);
  telemetry_.note_submitted();
  // notify_all, not notify_one: with per-lane queues a notify_one could wake
  // a worker whose own queue is empty and (stealing off) cannot take the job.
  queue_not_empty_.notify_all();
  return future;
}

std::future<JobOutcome> VariantFleet::shed_locked() {
  JobOutcome outcome;
  outcome.job_id = next_job_id_++;
  outcome.error = kShedError;
  telemetry_.note_shed();
  if (trace_) {
    trace_->record(ops_track_, obs::TraceEventKind::kJobShed, 0, 0, outcome.job_id,
                   total_queued_.load(std::memory_order_relaxed));
  }
  std::promise<JobOutcome> promise;
  auto future = promise.get_future();
  promise.set_value(std::move(outcome));
  return future;
}

std::future<JobOutcome> VariantFleet::submit(FleetJob job) {
  // A submitter's thread is a guaranteed tick an otherwise idle fleet gets:
  // enforce the rotation deadline here so it never depends on a worker poll.
  if (config_.rotation_deadline > std::chrono::milliseconds::zero()) {
    (void)enforce_rotation_deadlines();
  }
  util::MutexLock lock(queue_mutex_);
  if (config_.admission == AdmissionPolicy::kBlock) {
    if (accepting_ &&
        total_queued_.load(std::memory_order_relaxed) >= config_.queue_capacity) {
      // Clock reads under queue_mutex_ are the established order (drain()
      // does the same); ManualClock::advance never calls back under its lock.
      const auto blocked_from = clock_();
      while (accepting_ &&
             total_queued_.load(std::memory_order_relaxed) >= config_.queue_capacity) {
        queue_not_full_.wait(lock.native());
      }
      const auto blocked =
          std::chrono::duration_cast<std::chrono::microseconds>(clock_() - blocked_from);
      if (blocked.count() > 0) {
        telemetry_.add_admission_blocked(static_cast<std::uint64_t>(blocked.count()));
      }
    }
  } else if (accepting_ &&
             total_queued_.load(std::memory_order_relaxed) >= config_.queue_capacity) {
    return shed_locked();
  }
  if (!accepting_) throw std::runtime_error("fleet is shut down");
  return enqueue_locked(std::move(job));
}

std::optional<std::future<JobOutcome>> VariantFleet::try_submit(FleetJob job) {
  if (config_.rotation_deadline > std::chrono::milliseconds::zero()) {
    (void)enforce_rotation_deadlines();
  }
  util::MutexLock lock(queue_mutex_);
  if (!accepting_ || total_queued_.load(std::memory_order_relaxed) >= config_.queue_capacity) {
    telemetry_.note_rejected();
    if (trace_) {
      trace_->record(ops_track_, obs::TraceEventKind::kJobRejected, 0, 0, 0,
                     total_queued_.load(std::memory_order_relaxed),
                     accepting_ ? "at capacity" : "not accepting");
    }
    return std::nullopt;
  }
  return enqueue_locked(std::move(job));
}

void VariantFleet::shutdown() { (void)drain(std::nullopt); }

DrainReport VariantFleet::shutdown(std::chrono::milliseconds deadline) {
  return drain(deadline);
}

DrainReport VariantFleet::drain(std::optional<std::chrono::milliseconds> deadline) {
  DrainReport report;
  {
    util::MutexLock lock(queue_mutex_);
    accepting_ = false;
    health_epoch_.fetch_add(1, std::memory_order_release);  // router-visible flip
    queue_not_empty_.notify_all();
    queue_not_full_.notify_all();
    if (deadline.has_value()) {
      // Give the lanes until the deadline (on the injected clock) to work
      // the queues down. Workers notify drain_progress_ on every pop and
      // lane retirement, so this wait is event-driven, not a busy-spin.
      const auto deadline_at = clock_() + *deadline;
      if (!config_.clock) {
        // Real steady clock: a timed wait fires exactly at the deadline.
        while (total_queued_.load(std::memory_order_relaxed) > 0 && clock_() < deadline_at) {
          drain_progress_.wait_until(lock.native(), deadline_at);
        }
      } else {
        // Injected clock: a real-time wait_until means nothing — the clock
        // only moves when its owner advances it. Re-check on worker progress
        // and on notify_time_advanced() (wire it up via
        // ManualClock::subscribe); the coarse slice below is only a safety
        // net for injected clocks nobody subscribed.
        while (total_queued_.load(std::memory_order_relaxed) > 0 && clock_() < deadline_at) {
          drain_progress_.wait_for(lock.native(), std::chrono::milliseconds(50));
        }
      }
      // Past the deadline: abandon everything still queued. In-flight jobs
      // are NOT abandoned — the join below waits for them.
      for (auto& queue : lane_queues_) {
        while (!queue.empty()) {
          PendingJob job = std::move(queue.front());
          queue.pop_front();
          total_queued_.fetch_sub(1, std::memory_order_relaxed);
          JobOutcome outcome;
          outcome.job_id = job.id;
          outcome.error = kAbandonedError;
          outcome.trace_span = job.trace_span;
          telemetry_.note_abandoned();
          report.abandoned_job_ids.push_back(outcome.job_id);
          if (trace_) {
            trace_->record(ops_track_, obs::TraceEventKind::kJobAbandoned, job.trace_span, 0,
                           job.id);
          }
          job.promise.set_value(std::move(outcome));
        }
      }
      queue_not_empty_.notify_all();
    }
  }
  workers_.clear();  // jthread joins; workers finish in-flight work and (in
                     // the no-deadline path) drain the remaining queues first
  report.jobs_abandoned = report.abandoned_job_ids.size();
  report.clean = report.jobs_abandoned == 0;
  return report;
}

std::size_t VariantFleet::queue_depth() const {
  const util::MutexLock lock(queue_mutex_);
  return total_queued_.load(std::memory_order_relaxed);
}

VariantFleet::IdleSnapshot VariantFleet::idle_snapshot() const {
  const util::MutexLock lock(queue_mutex_);
  IdleSnapshot snapshot;
  for (unsigned lane = 0; lane < pool_size_; ++lane) {
    const LaneFlags& flags = lane_flags_[lane];
    if (flags.waiting) {
      ++snapshot.idle_workers;
      if (!lane_queues_[lane].empty()) snapshot.idle_backlog = true;
    }
    if (flags.respawning || flags.force_rotating) ++snapshot.lanes_in_flux;
  }
  // Under global-FIFO pops (or stealing) ANY backlog is poppable by an idle
  // worker, not just its own lane's.
  if ((config_.fifo_pop || config_.work_stealing) && snapshot.idle_workers > 0 &&
      total_queued_.load(std::memory_order_relaxed) > 0) {
    snapshot.idle_backlog = true;
  }
  return snapshot;
}

std::vector<std::string> VariantFleet::live_fingerprints() const {
  const util::MutexLock lock(sessions_mutex_);
  std::vector<std::string> fingerprints;
  fingerprints.reserve(sessions_.size());
  for (const auto& session : sessions_) fingerprints.push_back(session.fingerprint);
  return fingerprints;
}

std::vector<QuarantineRecord> VariantFleet::quarantine_log() const {
  const util::MutexLock lock(quarantine_mutex_);
  return quarantine_log_;
}

std::vector<CampaignAlert> VariantFleet::campaign_alerts() const {
  return correlator_.alerts();
}

std::vector<CampaignAlert> VariantFleet::open_campaigns() const {
  return correlator_.open_campaigns();
}

CampaignPolicy VariantFleet::campaign_policy() const { return correlator_.policy(); }

std::size_t VariantFleet::notify_time_advanced() {
  // A truly idle fleet (no jobs, no operator poll) learns the clock moved
  // ONLY here, so the rotation deadline must be enforced before waking the
  // drain — otherwise a pinned lane keeps its stale re-expression forever.
  const std::size_t swapped = enforce_rotation_deadlines();
  drain_progress_.notify_all();
  return swapped;
}

bool VariantFleet::accepting() const {
  const util::MutexLock lock(queue_mutex_);
  return accepting_;
}

void VariantFleet::apply_remote_campaign(const CampaignAlert& alert) {
  telemetry_.note_remote_campaign();
  if (!adaptive_.has_value()) return;
  // Same install discipline as a local alert (respawn): the decision and its
  // installation into the correlator must be one atomic step.
  const util::MutexLock install_lock(adaptive_install_mutex_);
  if (auto next = adaptive_->on_alert(alert)) {
    correlator_.set_policy(*next);
    telemetry_.note_policy_tightened();
    if (trace_) {
      // Parented to the ORIGIN fleet's alert span: the cross-shard pre-warn
      // chain (alert on shard A -> tighten on shard B) is provable in the
      // exported trace, not just counted.
      trace_->record(ops_track_, obs::TraceEventKind::kRemoteTighten, 0, alert.trace_span,
                     alert.id, 0, alert.signature.key());
    }
  }
}

std::uint64_t VariantFleet::low_watermark() const noexcept {
  return config_.keyspace_low_watermark == 0 ? pool_size_ : config_.keyspace_low_watermark;
}

KeyspaceAccount VariantFleet::refresh_keyspace_gauge() {
  const KeyspaceAccount account = factory_.keyspace();
  telemetry_.set_keyspace(account.keys_total, account.keys_remaining);
  const bool was_exhausted =
      keyspace_exhausted_.exchange(account.exhausted(), std::memory_order_relaxed);
  health_epoch_.fetch_add(1, std::memory_order_release);  // keyspace is a health input
  if (trace_ && !was_exhausted && account.exhausted()) {
    trace_->record(ops_track_, obs::TraceEventKind::kKeyspaceExhausted, 0, 0,
                   account.keys_issued, account.keys_total);
  }
  if (account.tracked && account.keys_remaining <= low_watermark() &&
      !keyspace_low_fired_.exchange(true, std::memory_order_relaxed)) {
    if (trace_) {
      trace_->record(ops_track_, obs::TraceEventKind::kKeyspaceLow, 0, 0,
                     account.keys_remaining, account.keys_total);
    }
    if (config_.on_keyspace_low) config_.on_keyspace_low(account);
  }
  return account;
}

std::size_t VariantFleet::rotate_fleet() {
  const KeyspaceAccount account = refresh_keyspace_gauge();
  if (account.exhausted()) {
    // Every flag would resolve as a rotations_failed increment against a
    // factory that can never satisfy it. Stop re-flagging; the operator
    // already heard about it via on_keyspace_low and the gauges.
    return 0;
  }
  const auto now = clock_();
  const util::MutexLock lock(queue_mutex_);
  const bool low = account.tracked && account.keys_remaining <= low_watermark();
  // Low water: still rotate (a burned reexpression in service is worse than
  // a shorter runway), but no faster than one fleet sweep per backoff
  // interval — heightened-posture periodic rotation must not sprint through
  // the last few keys.
  if (low && now - last_backoff_rotation_ < config_.rotation_backoff) return 0;
  std::size_t flagged = 0;
  for (unsigned lane = 0; lane < pool_size_; ++lane) {
    LaneFlags& flags = lane_flags_[lane];
    // A lane mid-respawn is skipped for the same reason campaign escalation
    // skips it: it is about to install a fresh draw anyway, and the unique
    // reexpression space is finite.
    if (!flags.dead && !flags.exited && !flags.respawning && !flags.rotate) {
      flags.rotate = true;
      flags.rotate_since = now;
      flags.rotate_parent_span = 0;  // operator-initiated: no causing alert
      ++flagged;
    }
  }
  // Charge the backoff slot only for a sweep that flagged something: a call
  // that found every lane busy respawning (or already flagged) must not
  // block the retry that would actually rotate.
  if (low && flagged > 0) last_backoff_rotation_ = now;
  queue_not_empty_.notify_all();
  return flagged;
}

std::size_t VariantFleet::enforce_rotation_deadlines() {
  if (config_.rotation_deadline <= std::chrono::milliseconds::zero()) return 0;
  const auto now = clock_();
  std::vector<std::pair<unsigned, std::uint64_t>> overdue;  // lane, causing span
  {
    const util::MutexLock lock(queue_mutex_);
    for (unsigned lane = 0; lane < pool_size_; ++lane) {
      LaneFlags& flags = lane_flags_[lane];
      if (flags.rotate && !flags.force_rotating && !flags.dead && !flags.exited &&
          !flags.respawning && now - flags.rotate_since >= config_.rotation_deadline) {
        // Latch so the lane's own worker (and concurrent pollers) leave this
        // rotation to us.
        flags.force_rotating = true;
        overdue.emplace_back(lane, flags.rotate_parent_span);
      }
    }
  }
  std::size_t swapped = 0;
  for (const auto& [lane, parent_span] : overdue) {
    // The session this deadline is about, observed after the latch: if a
    // concurrent quarantine respawn replaces it while the factory below
    // works, the lane already holds a fresh never-exposed draw and this
    // swap must abort rather than displace it.
    std::uint64_t stale_id = 0;
    {
      const util::MutexLock lock(sessions_mutex_);
      stale_id = sessions_[lane].id;
    }
    auto replacement = factory_.make_session();
    (void)refresh_keyspace_gauge();
    if (!replacement) {
      telemetry_.note_rotation_failed();
      if (trace_) {
        trace_->record(lane_tracks_[lane], obs::TraceEventKind::kRotationFailed, 0,
                       parent_span, lane, 1, replacement.error());
      }
    } else {
      const std::uint64_t replacement_span = replacement->trace_span;
      const std::uint64_t replacement_id = replacement->id;
      bool installed = false;
      {
        const util::MutexLock lock(sessions_mutex_);
        if (sessions_[lane].id == stale_id) {
          // The lane may still be driving the old session; park it until its
          // worker finishes the in-flight job and reaps it (quarantine-style
          // swap: the stale reexpression leaves service NOW either way).
          displaced_sessions_[lane].push_back(std::move(sessions_[lane]));
          sessions_[lane] = std::move(*replacement);
          telemetry_.note_rotated();
          installed = true;
          ++swapped;
        }
        // else: raced a respawn; the surplus replacement is discarded (one
        // draw lost to the race, the fresh session in the lane is kept).
      }
      if (installed && trace_) {
        // b=1 marks a FORCED (deadline) rotation vs the lazy b=0 kind.
        trace_->record(lane_tracks_[lane], obs::TraceEventKind::kRotation, replacement_span,
                       parent_span, replacement_id, 1);
      }
    }
    const util::MutexLock lock(queue_mutex_);
    lane_flags_[lane].rotate = false;  // fulfilled (or given up on, counted)
    lane_flags_[lane].force_rotating = false;
    lane_flags_[lane].rotate_parent_span = 0;
  }
  return swapped;
}

std::size_t VariantFleet::poll_adaptive() {
  std::size_t moved = enforce_rotation_deadlines();
  if (!adaptive_.has_value()) return moved;
  {
    // Decay first: a posture that just relaxed to baseline owes no rotation.
    const util::MutexLock install_lock(adaptive_install_mutex_);
    if (auto next = adaptive_->poll()) {
      correlator_.set_policy(*next);
      telemetry_.note_policy_decayed();
      if (trace_) {
        trace_->record(ops_track_, obs::TraceEventKind::kPolicyDecayed, 0, 0,
                       next->threshold, next->window.count());
      }
    }
  }
  // Exhaustion-aware heightened posture: when no unique key remains, leave
  // the rotation debt unconsumed instead of burning a guaranteed failure —
  // the interval re-fires normally if the operator widens the space. The
  // cached bit keeps this post-every-job path off the factory mutex.
  if (keyspace_exhausted_.load(std::memory_order_relaxed)) return moved;
  if (adaptive_->rotation_due()) return moved + rotate_fleet();
  return moved;
}

void VariantFleet::worker_loop(unsigned lane) {
  for (;;) {
    bool rotate = false;
    std::uint64_t rotate_parent = 0;
    {
      const util::MutexLock lock(queue_mutex_);
      // A rotation pending at shutdown is moot: the replacement would never
      // serve a job, and building it would burn a draw from the finite
      // unique-key space. A lane mid-force-rotation (deadline enforcement)
      // leaves the swap to the enforcer.
      LaneFlags& flags = lane_flags_[lane];
      rotate = flags.rotate && !flags.force_rotating && accepting_;
      // Consume the flag unless a deadline enforcer owns it (force_rotating):
      // a rotation pending at shutdown is consumed as moot too.
      if (flags.rotate && !flags.force_rotating) {
        flags.rotate = false;
        rotate_parent = flags.rotate_parent_span;
        flags.rotate_parent_span = 0;
      }
    }
    if (rotate) rotate_lane(lane, rotate_parent);  // factory work outside the locks

    PendingJob job;
    bool stolen = false;
    unsigned steal_victim = pool_size_;
    {
      util::MutexLock lock(queue_mutex_);
      // Explicit wait loop (not a wait-with-predicate lambda): the analysis
      // must see the guarded reads happen with queue_mutex_ held.
      for (;;) {
        if (lane_flags_[lane].rotate && !lane_flags_[lane].force_rotating) break;
        if (!lane_queues_[lane].empty()) break;
        if ((config_.work_stealing || config_.fifo_pop) &&
            total_queued_.load(std::memory_order_relaxed) > 0) {
          break;
        }
        if (!accepting_) break;
        // The waiting flag is what idle_snapshot() reports: set strictly
        // inside the lock around the wait, so an observer holding
        // queue_mutex_ sees either "blocked in the condvar" or "will
        // re-examine the queues before sleeping" — never a stale idle.
        lane_flags_[lane].waiting = true;
        queue_not_empty_.wait(lock.native());
        lane_flags_[lane].waiting = false;
      }
      if (lane_flags_[lane].rotate && !lane_flags_[lane].force_rotating) {
        continue;  // rotate at the loop top
      }
      if (config_.fifo_pop && total_queued_.load(std::memory_order_relaxed) > 0) {
        // Global-FIFO discipline: take the oldest queued job anywhere, own
        // lane included. Lowest id wins — ids are minted in admission order.
        unsigned victim = pool_size_;
        std::uint64_t oldest = 0;
        for (unsigned peer = 0; peer < pool_size_; ++peer) {
          if (!lane_queues_[peer].empty() &&
              (victim == pool_size_ || lane_queues_[peer].front().id < oldest)) {
            oldest = lane_queues_[peer].front().id;
            victim = peer;
          }
        }
        if (victim == pool_size_) continue;  // raced: the backlog was drained
        job = std::move(lane_queues_[victim].front());
        lane_queues_[victim].pop_front();
        if (victim != lane) {
          stolen = true;
          steal_victim = victim;
        }
      } else if (!lane_queues_[lane].empty()) {
        job = std::move(lane_queues_[lane].front());
        lane_queues_[lane].pop_front();
      } else if (config_.work_stealing && total_queued_.load(std::memory_order_relaxed) > 0) {
        // Steal the oldest job from the most-backlogged peer — in particular
        // from a lane stuck mid-respawn, whose own worker cannot pop.
        unsigned victim = pool_size_;
        std::size_t deepest = 0;
        for (unsigned peer = 0; peer < pool_size_; ++peer) {
          if (peer != lane && lane_queues_[peer].size() > deepest) {
            deepest = lane_queues_[peer].size();
            victim = peer;
          }
        }
        if (victim == pool_size_) continue;  // raced: the backlog was ours/gone
        job = std::move(lane_queues_[victim].front());
        lane_queues_[victim].pop_front();
        stolen = true;
        steal_victim = victim;
      } else {
        // Nothing for this lane. With stealing, every queue is empty here;
        // without, peers drain their own backlogs.
        if (!accepting_) {
          lane_flags_[lane].exited = true;  // no reassignments here anymore
          return;
        }
        continue;  // spurious wakeup
      }
      total_queued_.fetch_sub(1, std::memory_order_relaxed);
      queue_not_full_.notify_one();
      if (!accepting_) drain_progress_.notify_all();
    }
    if (stolen) {
      telemetry_.note_stolen();
      if (trace_) {
        trace_->record(lane_tracks_[lane], obs::TraceEventKind::kJobStolen, job.trace_span, 0,
                       job.id, steal_victim);
      }
    }
    // In-queue freshness contract: a job that waited past queue_deadline is
    // dropped HERE, at pop time — lazily, so an idle queue costs nothing —
    // and never touches a session. The submitter already stopped waiting.
    if (config_.admission == AdmissionPolicy::kDeadlineDrop &&
        config_.queue_deadline > std::chrono::milliseconds::zero()) {
      const auto waited =
          std::chrono::duration_cast<std::chrono::microseconds>(clock_() - job.admitted_at);
      if (waited > config_.queue_deadline) {
        drop_expired_job(lane, std::move(job), waited);
        continue;
      }
    }
    run_job(lane, std::move(job));
    // The job this lane just finished was the last possible user of any
    // session a rotation deadline displaced from under it; reap them now.
    {
      const util::MutexLock lock(sessions_mutex_);
      displaced_sessions_[lane].clear();
    }
    // A lane whose respawn failed must retire instead of racing healthy
    // lanes for queued jobs and insta-failing them.
    {
      const util::MutexLock lock(queue_mutex_);
      if (lane_flags_[lane].dead) {
        lane_flags_[lane].exited = true;
        return;
      }
    }
  }
}

void VariantFleet::drop_expired_job(unsigned lane, PendingJob job,
                                    std::chrono::microseconds waited) {
  JobOutcome outcome;
  outcome.job_id = job.id;
  outcome.trace_span = job.trace_span;
  outcome.error = kDeadlineDropError;
  outcome.latency = waited;
  telemetry_.note_deadline_dropped();
  if (trace_) {
    trace_->record(lane_tracks_[lane], obs::TraceEventKind::kJobDeadlineDropped,
                   job.trace_span, 0, job.id, static_cast<std::uint64_t>(waited.count()));
  }
  job.promise.set_value(std::move(outcome));
}

void VariantFleet::run_job(unsigned lane, PendingJob job) {
  JobOutcome outcome;
  outcome.job_id = job.id;
  outcome.trace_span = job.trace_span;

  // The lane's session is always installed and valid here: a dead lane's
  // worker retires before its next run_job, and a failed respawn leaves the
  // (poisoned, never-reused) old session in the slot.
  core::NVariantSystem* system = nullptr;
  std::uint64_t session_span = 0;
  {
    const util::MutexLock lock(sessions_mutex_);
    outcome.session_id = sessions_[lane].id;
    session_span = sessions_[lane].trace_span;
    system = sessions_[lane].system.get();
  }
  if (trace_) {
    // The job's span, parented to the serving session's draw span: the
    // session draw -> job -> (quarantine -> alert -> ...) chain starts here.
    trace_->record(lane_tracks_[lane], obs::TraceEventKind::kJobStarted, job.trace_span,
                   session_span, job.id, outcome.session_id);
  }

  // Latency is measured on the INJECTED clock, like every other fleet
  // duration: under a ManualClock a sample is exactly the time the test (or
  // experiment) advanced during the job — not wall-clock noise that would
  // poison the population experiments' telemetry.
  const auto start = clock_();
  try {
    outcome.report = job.fn(*system);
  } catch (const std::exception& e) {
    outcome.error = e.what();
  } catch (...) {
    outcome.error = "job raised a non-standard exception";
  }
  // A job that threw between launch() and stop() leaves variant threads
  // live; harvest them before the session is reused or quarantined. Keep
  // the harvested report even alongside an error: if the monitor tripped
  // before the job threw, the quarantine record must retain the REAL alarm,
  // not a synthesized guest-error.
  if (system->running()) outcome.report = system->stop();
  const auto latency = std::chrono::duration_cast<std::chrono::microseconds>(clock_() - start);
  outcome.latency = latency;

  telemetry_.record_latency(lane, static_cast<double>(latency.count()));
  telemetry_.add_syscall_rounds(outcome.report.syscall_rounds);
  telemetry_.add_syscall_batches(outcome.report.syscall_batches);
  telemetry_.add_async_completions(outcome.report.async_completions);
  if (!outcome.error.empty()) {
    telemetry_.note_job_error();
  } else if (outcome.report.attack_detected) {
    telemetry_.note_alarmed();
  } else {
    telemetry_.note_completed();
  }
  if (trace_) {
    // b: 0 clean, 1 divergence alarm, 2 job error.
    const std::uint64_t verdict = !outcome.error.empty()            ? 2
                                  : outcome.report.attack_detected ? 1
                                                                   : 0;
    trace_->record(lane_tracks_[lane], obs::TraceEventKind::kJobFinished, job.trace_span, 0,
                   outcome.report.syscall_rounds, verdict);
  }
  if (outcome.ok()) {
    const util::MutexLock lock(sessions_mutex_);
    // Credit the session that actually served the job — a rotation deadline
    // may have swapped a fresh session into the lane mid-job.
    if (sessions_[lane].id == outcome.session_id) ++sessions_[lane].jobs_served;
  } else {
    // Flag the lane respawning FIRST so admission routes around it and
    // peers know its backlog is up for stealing while the factory works.
    {
      const util::MutexLock lock(queue_mutex_);
      lane_flags_[lane].respawning = true;
      queue_not_empty_.notify_all();
    }
    if (config_.respawn_hook) config_.respawn_hook(lane);
    respawn(lane, outcome);
    {
      const util::MutexLock lock(queue_mutex_);
      lane_flags_[lane].respawning = false;
    }
  }
  // Every finished job is a decay opportunity: a serving fleet relaxes a
  // tightened policy on its own once the quiet period passes.
  poll_adaptive();
  job.promise.set_value(std::move(outcome));
}

void VariantFleet::respawn(unsigned lane, JobOutcome& outcome) {
  outcome.session_quarantined = true;
  telemetry_.note_quarantined();

  QuarantineRecord record;
  bool already_replaced = false;
  std::uint64_t session_span = 0;  // the quarantined session's draw span
  {
    const util::MutexLock lock(sessions_mutex_);
    if (sessions_[lane].id == outcome.session_id) {
      record.session_id = sessions_[lane].id;
      record.fingerprint = sessions_[lane].fingerprint;
      record.jobs_served = sessions_[lane].jobs_served;
      session_span = sessions_[lane].trace_span;
    } else {
      // A rotation deadline already swapped the poisoned session out from
      // under this job: it sits among the lane's displaced sessions and the
      // lane ALREADY holds a fresh, never-exposed replacement. Record the
      // quarantine against the session the attacker actually faced and keep
      // the fresh one — burning another draw on it would waste keyspace.
      already_replaced = true;
      record.session_id = outcome.session_id;
      record.fingerprint = "(displaced by rotation deadline)";
      for (const auto& displaced : displaced_sessions_[lane]) {
        if (displaced.id == outcome.session_id) {
          record.fingerprint = displaced.fingerprint;
          record.jobs_served = displaced.jobs_served;
          session_span = displaced.trace_span;
        }
      }
      record.replacement_id = sessions_[lane].id;
      record.replacement_fingerprint = sessions_[lane].fingerprint;
    }
  }
  record.report = outcome.report;
  if (outcome.report.alarm.has_value()) {
    record.alarm = *outcome.report.alarm;
  } else {
    record.alarm = core::Alarm{core::AlarmKind::kGuestError, core::Alarm::kAllVariants,
                               outcome.error.empty() ? "job failed without an alarm"
                                                     : outcome.error};
  }
  if (trace_) {
    // The quarantine carries the JOB's span (the incident) and parents to
    // the burned session's draw span — one chain from draw to quarantine.
    trace_->record(lane_tracks_[lane], obs::TraceEventKind::kQuarantine, outcome.trace_span,
                   session_span, record.session_id, record.jobs_served, record.fingerprint);
  }

  if (!already_replaced) {
    auto replacement = factory_.make_session();
    (void)refresh_keyspace_gauge();
    if (replacement) {
      record.replacement_id = replacement->id;
      record.replacement_fingerprint = replacement->fingerprint;
      const std::uint64_t replacement_span = replacement->trace_span;
      {
        const util::MutexLock lock(sessions_mutex_);
        sessions_[lane] = std::move(*replacement);
      }
      telemetry_.note_respawned();
      if (trace_) {
        trace_->record(lane_tracks_[lane], obs::TraceEventKind::kRespawn, replacement_span,
                       outcome.trace_span, record.replacement_id, 0,
                       record.replacement_fingerprint);
      }
    } else {
      // Keep the poisoned session out of service rather than serving through
      // a known-compromised reexpression; the lane retires and donates its
      // backlog to the surviving lanes.
      record.replacement_fingerprint = "(respawn failed: " + replacement.error() + ")";
      if (trace_) {
        trace_->record(lane_tracks_[lane], obs::TraceEventKind::kLaneRetired, 0,
                       outcome.trace_span, lane, 0, replacement.error());
      }
      const util::MutexLock lock(queue_mutex_);
      lane_flags_[lane].dead = true;
      retire_lane_locked(lane);
    }
  }

  // Population-level detection: fold this incident into the correlator and
  // escalate when it crosses the campaign threshold. Observed BEFORE the log
  // push so the record (with its embedded RunReport) can be moved, not
  // copied, on the recovering worker's thread.
  auto alert = correlator_.observe(record.alarm, record.session_id, record.fingerprint);
  {
    const util::MutexLock lock(quarantine_mutex_);
    quarantine_log_.push_back(std::move(record));
  }
  // Every quarantine is attacker activity: an ongoing campaign whose later
  // incidents merely JOIN (no re-alert) must still defer the adaptive decay.
  if (adaptive_.has_value()) adaptive_->on_incident();
  if (alert.has_value()) {
    telemetry_.note_campaign();
    if (trace_) {
      // A NEW span for the fleet-level alert, parented to the K-th incident
      // (this job) that crossed the threshold. Stamped on the alert BEFORE
      // on_campaign so gossip subscribers can parent their remote tighten.
      alert->trace_span = trace_->new_span();
      trace_->record(ops_track_, obs::TraceEventKind::kCampaignAlert, alert->trace_span,
                     outcome.trace_span, alert->id, alert->session_ids.size(),
                     alert->signature.key());
      // Forensic escalation: drop the syscall-round sampling stride on the
      // LIVE recorder so every round around the active campaign is captured.
      if (config_.trace_campaign_round_sample != 0) {
        trace_->set_syscall_round_sample(config_.trace_campaign_round_sample);
      }
    }
    if (adaptive_.has_value()) {
      const util::MutexLock install_lock(adaptive_install_mutex_);
      if (auto next = adaptive_->on_alert(*alert)) {
        correlator_.set_policy(*next);
        telemetry_.note_policy_tightened();
        if (trace_) {
          trace_->record(ops_track_, obs::TraceEventKind::kPolicyTightened, 0,
                         alert->trace_span, next->threshold, next->window.count());
        }
      }
    }
    // Rotation escalation reads the LIVE policy: adaptation may have armed
    // rotate_fleet_on_alert for exactly this alert even though the baseline
    // posture leaves it off.
    if (correlator_.policy().rotate_fleet_on_alert) {
      request_rotation_except(lane, alert->trace_span);
    }
    if (config_.on_campaign) config_.on_campaign(*alert);
  }
}

void VariantFleet::request_rotation_except(unsigned lane, std::uint64_t parent_span) {
  // Campaign escalation outranks the low-keyspace backoff (an active attack
  // is exactly when a burned reexpression must leave service) but yields to
  // exhaustion: flagging an empty factory can only churn rotations_failed.
  if (refresh_keyspace_gauge().exhausted()) return;
  const auto now = clock_();
  const util::MutexLock lock(queue_mutex_);
  for (unsigned peer = 0; peer < pool_size_; ++peer) {
    // The quarantining lane just respawned fresh; every other live lane
    // rotates before its next job (a lane mid-job rotates right after it).
    // A peer that is itself mid-respawn is skipped for the same reason the
    // alerting lane is: it is about to install a fresh draw anyway, and the
    // unique-fingerprint space is finite — don't burn a draw rotating it.
    LaneFlags& flags = lane_flags_[peer];
    if (peer != lane && !flags.dead && !flags.exited && !flags.respawning) {
      if (!flags.rotate) flags.rotate_since = now;
      flags.rotate = true;
      flags.rotate_parent_span = parent_span;
    }
  }
  queue_not_empty_.notify_all();
}

// Runs on the lane's OWN worker between jobs: the lane holds no job, and a
// dead lane's worker retires before ever reaching here, so the swap is safe.
void VariantFleet::rotate_lane(unsigned lane, std::uint64_t parent_span) {
  auto replacement = factory_.make_session();
  (void)refresh_keyspace_gauge();
  if (!replacement) {
    // Rotation is best-effort — the lane keeps serving on its old session —
    // but a fleet that silently keeps burned reexpressions in service after
    // a rotation order is an operator hazard: count it so a key-space-
    // exhausted factory shows up in telemetry instead of nowhere.
    telemetry_.note_rotation_failed();
    if (trace_) {
      trace_->record(lane_tracks_[lane], obs::TraceEventKind::kRotationFailed, 0, parent_span,
                     lane, 0, replacement.error());
    }
    return;
  }
  const std::uint64_t replacement_span = replacement->trace_span;
  const std::uint64_t replacement_id = replacement->id;
  {
    const util::MutexLock lock(sessions_mutex_);
    sessions_[lane] = std::move(*replacement);
  }
  telemetry_.note_rotated();
  if (trace_) {
    // b=0: lazy (worker-initiated) rotation; parent is the causing alert's
    // span when campaign escalation flagged it, 0 for operator sweeps.
    trace_->record(lane_tracks_[lane], obs::TraceEventKind::kRotation, replacement_span,
                   parent_span, replacement_id, 0);
  }
}

void VariantFleet::retire_lane_locked(unsigned lane) {
  // Reassign the dying lane's backlog; only fail jobs when no lane survives.
  while (!lane_queues_[lane].empty()) {
    PendingJob job = std::move(lane_queues_[lane].front());
    lane_queues_[lane].pop_front();
    const unsigned target = pick_lane_locked();
    if (target != pool_size_) {
      lane_queues_[target].push_back(std::move(job));
    } else {
      total_queued_.fetch_sub(1, std::memory_order_relaxed);
      JobOutcome outcome;
      outcome.job_id = job.id;
      outcome.error = kDeadLaneError;
      telemetry_.note_job_error();
      job.promise.set_value(std::move(outcome));
    }
  }
  queue_not_empty_.notify_all();
  // Failed jobs freed capacity: submitters blocked on backpressure must
  // re-check (and hit enqueue's no-live-lane fast-fail instead of hanging).
  queue_not_full_.notify_all();
  // And they shrank total_queued_: a deadline drain waiting for the queues
  // to empty must re-check now, not on its fallback poll.
  drain_progress_.notify_all();
}

}  // namespace nv::fleet

#include "fleet/ops.h"

#include <utility>

#include "util/mutex.h"
#include "util/strings.h"

namespace nv::fleet {

ClockFn resolve_clock(ClockFn clock) {
  if (clock) return clock;
  return [] { return std::chrono::steady_clock::now(); };
}

CampaignCorrelator::CampaignCorrelator(CampaignPolicy policy, ClockFn clock)
    : clock_(resolve_clock(std::move(clock))), policy_(policy) {}

std::optional<CampaignAlert> CampaignCorrelator::observe(const core::Alarm& alarm,
                                                         std::uint64_t session_id,
                                                         const std::string& fingerprint) {
  const auto now = clock_();
  const core::AlarmSignature signature = core::signature_of(alarm);

  const util::MutexLock lock(mutex_);
  ++incidents_;
  prune_locked(now);

  Track& track = tracks_[signature.key()];
  track.window.push_back(Incident{now, session_id, fingerprint});

  if (track.open_alert.has_value()) {
    // Campaign already raised: fold this incident in, do not re-alert.
    CampaignAlert& alert = alerts_[*track.open_alert];
    alert.session_ids.push_back(session_id);
    alert.fingerprints.push_back(fingerprint);
    alert.last_seen = now;
    return std::nullopt;
  }
  if (track.window.size() < policy_.threshold) return std::nullopt;

  CampaignAlert alert;
  alert.id = static_cast<std::uint64_t>(alerts_.size());
  alert.signature = signature;
  alert.first_seen = track.window.front().at;
  alert.last_seen = now;
  for (const Incident& incident : track.window) {
    alert.session_ids.push_back(incident.session_id);
    alert.fingerprints.push_back(incident.fingerprint);
  }
  track.open_alert = alerts_.size();
  alerts_.push_back(alert);
  return alert;
}

// Slide EVERY track's window: incidents older than policy_.window age out,
// and a track whose window empties is erased outright — its campaign (if
// one was raised) is over, the raised alert lives on in alerts_, and a
// long-lived fleet seeing a stream of one-off signatures must not grow
// tracks_ without bound. The next burst of an erased signature starts
// fresh and may alert again. Reader APIs prune too: an IDLE fleet must not
// report a campaign as open forever just because nothing new quarantined.
void CampaignCorrelator::prune_locked(std::chrono::steady_clock::time_point now) const {
  for (auto it = tracks_.begin(); it != tracks_.end();) {
    std::deque<Incident>& window = it->second.window;
    while (!window.empty() && now - window.front().at > policy_.window) {
      window.pop_front();
    }
    it = window.empty() ? tracks_.erase(it) : std::next(it);
  }
}

std::vector<CampaignAlert> CampaignCorrelator::alerts() const {
  const auto now = clock_();
  const util::MutexLock lock(mutex_);
  prune_locked(now);
  return alerts_;
}

std::vector<CampaignAlert> CampaignCorrelator::open_campaigns() const {
  const auto now = clock_();
  const util::MutexLock lock(mutex_);
  prune_locked(now);
  std::vector<CampaignAlert> open;
  for (const auto& [key, track] : tracks_) {
    if (track.open_alert.has_value()) open.push_back(alerts_[*track.open_alert]);
  }
  return open;
}

std::uint64_t CampaignCorrelator::incidents_observed() const {
  const util::MutexLock lock(mutex_);
  return incidents_;
}

CampaignPolicy CampaignCorrelator::policy() const {
  const util::MutexLock lock(mutex_);
  return policy_;
}

void CampaignCorrelator::set_policy(CampaignPolicy policy) {
  const util::MutexLock lock(mutex_);
  policy_ = policy;
}

std::string CampaignAlert::describe() const {
  const auto span =
      std::chrono::duration_cast<std::chrono::milliseconds>(last_seen - first_seen);
  return util::format("campaign #%llu: %zu sessions share signature {%s} within %lld ms",
                      static_cast<unsigned long long>(id), session_ids.size(),
                      signature.describe().c_str(), static_cast<long long>(span.count()));
}

std::string DrainReport::describe() const {
  if (clean) return "drained cleanly: every queued job finished before the deadline";
  return util::format("deadline expired: %llu queued job(s) abandoned",
                      static_cast<unsigned long long>(jobs_abandoned));
}

}  // namespace nv::fleet

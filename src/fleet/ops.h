// Fleet operations: the pieces that turn the session pool into an operable
// service.
//
//   CampaignCorrelator  folds per-session quarantines into fleet-level
//                       CAMPAIGNS: K quarantines inside a sliding window that
//                       share one AlarmSignature are a coordinated attack on
//                       the population (Chen et al.'s fleet-scale view), not K
//                       independent incidents. One CampaignAlert per campaign;
//                       later same-signature quarantines JOIN it.
//   ManualClock         injectable time source so correlator windows and
//                       drain deadlines are testable without sleeps. Every
//                       ops component takes a ClockFn; the default reads
//                       std::chrono::steady_clock.
//   DrainReport         outcome of a deadline-bounded graceful shutdown:
//                       admission stopped, in-flight jobs finished, queued
//                       jobs past the deadline abandoned (and returned).
#ifndef NV_FLEET_OPS_H
#define NV_FLEET_OPS_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/alarm.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nv::fleet {

/// Injectable time source. Default-constructed (empty) means "read the real
/// steady clock"; tests install ManualClock::fn() instead.
using ClockFn = std::function<std::chrono::steady_clock::time_point()>;

/// Resolve an optional clock to a callable (real steady clock when empty).
[[nodiscard]] ClockFn resolve_clock(ClockFn clock);

/// Deterministic clock for tests: time moves only when advance() is called.
/// Thread-safe; hand ManualClock::fn() to FleetConfig/CampaignCorrelator.
class ManualClock {
 public:
  [[nodiscard]] std::chrono::steady_clock::time_point now() const {
    const util::MutexLock lock(mutex_);
    return now_;
  }

  void advance(std::chrono::milliseconds delta) {
    std::vector<std::function<void()>> wakers;
    {
      const util::MutexLock lock(mutex_);
      now_ += delta;
      wakers = wakers_;  // invoke outside the lock: a waker may read now()
    }
    for (const auto& waker : wakers) waker();
  }

  /// Register a callback invoked after every advance(). Components that block
  /// on a deadline measured against an injected clock (VariantFleet's drain)
  /// cannot see manual time move on their own; a subscribed waker (e.g.
  /// [&fleet] { fleet.notify_time_advanced(); }) turns advance() into an
  /// event instead of something to poll for. The subscriber must outlive the
  /// clock or the clock must stop advancing first.
  void subscribe(std::function<void()> waker) {
    const util::MutexLock lock(mutex_);
    wakers_.push_back(std::move(waker));
  }

  /// A ClockFn view of this clock; the clock must outlive it.
  [[nodiscard]] ClockFn fn() {
    return [this] { return now(); };
  }

 private:
  mutable util::Mutex mutex_;
  // Epoch; only deltas matter.
  std::chrono::steady_clock::time_point now_ NV_GUARDED_BY(mutex_){};
  std::vector<std::function<void()>> wakers_ NV_GUARDED_BY(mutex_);
};

/// When does a set of quarantines become a campaign, and what does the fleet
/// do about it.
struct CampaignPolicy {
  /// K: same-signature quarantines needed inside the window to raise an alert.
  unsigned threshold = 3;
  /// Sliding correlation window; quarantines older than this age out.
  std::chrono::milliseconds window{10'000};
  /// Escalation: on alert, proactively re-diversify every other live session
  /// (the attacker mapped one reexpression per burned session — rotating the
  /// survivors invalidates whatever fleet-wide knowledge the campaign bought).
  bool rotate_fleet_on_alert = false;
};

/// One fleet-level alert: a campaign, with every member incident folded in.
struct CampaignAlert {
  std::uint64_t id = 0;
  core::AlarmSignature signature;
  /// Quarantined sessions folded into this campaign (>= threshold at raise
  /// time; later same-signature quarantines are appended, not re-alerted).
  std::vector<std::uint64_t> session_ids;
  /// Diversity identities the attacker burned, one per member session.
  std::vector<std::string> fingerprints;
  std::chrono::steady_clock::time_point first_seen{};
  std::chrono::steady_clock::time_point last_seen{};
  /// Causality id of the raising fleet's kCampaignAlert trace event (0 =
  /// untraced). Set by VariantFleet on the alert it hands to on_campaign /
  /// gossip, so a remote shard's kRemoteTighten can point back at the origin
  /// shard's alert — the cross-shard pre-warn story as a provable chain.
  std::uint64_t trace_span = 0;

  [[nodiscard]] std::string describe() const;
};

/// Sliding-window correlator over quarantine signatures. Thread-safe:
/// observe() is called from worker threads mid-respawn, alerts() from anyone.
class CampaignCorrelator {
 public:
  explicit CampaignCorrelator(CampaignPolicy policy, ClockFn clock = {});

  /// Feed one quarantine. Returns the freshly-raised alert when this incident
  /// is the K-th of its signature inside the window; nullopt when it is below
  /// threshold or JOINS an already-raised campaign (exactly one alert per
  /// campaign). A campaign closes when all its incidents age out of the
  /// window; a later burst of the same signature is a NEW campaign.
  [[nodiscard]] std::optional<CampaignAlert> observe(const core::Alarm& alarm,
                                                     std::uint64_t session_id,
                                                     const std::string& fingerprint);

  /// Every alert raised so far, including members joined after the raise.
  /// Prunes expired tracks first, so a campaign whose window emptied while
  /// the fleet sat idle reads as CLOSED here — not open forever just because
  /// no further observe() happened to slide the window.
  [[nodiscard]] std::vector<CampaignAlert> alerts() const;
  /// The alerts whose campaigns are still LIVE right now (window non-empty on
  /// the injected clock). Empty on a fleet that has been quiet for a window.
  [[nodiscard]] std::vector<CampaignAlert> open_campaigns() const;
  [[nodiscard]] std::uint64_t incidents_observed() const;
  [[nodiscard]] CampaignPolicy policy() const;
  /// Replace the live policy fleet-wide (thread-safe; the adaptive controller
  /// tightens/decays through this). A lowered threshold applies from the next
  /// observe(); a widened window immediately keeps older incidents alive.
  void set_policy(CampaignPolicy policy);

 private:
  struct Incident {
    std::chrono::steady_clock::time_point at;
    std::uint64_t session_id = 0;
    std::string fingerprint;
  };
  struct Track {
    std::deque<Incident> window;             // incidents still inside the window
    std::optional<std::size_t> open_alert;   // index into alerts_ while live
  };

  /// Slide every track's window to `now`; erase emptied tracks (their
  /// campaigns close). Called under mutex_ from observe() and the read APIs —
  /// tracks_ is mutable so const readers can expire idle campaigns too.
  void prune_locked(std::chrono::steady_clock::time_point now) const NV_REQUIRES(mutex_);

  ClockFn clock_;
  mutable util::Mutex mutex_;
  CampaignPolicy policy_ NV_GUARDED_BY(mutex_);
  // AlarmSignature::key() -> live window; mutable so const readers can expire
  // idle campaigns via prune_locked().
  mutable std::map<std::string, Track> tracks_ NV_GUARDED_BY(mutex_);
  std::vector<CampaignAlert> alerts_ NV_GUARDED_BY(mutex_);
  std::uint64_t incidents_ NV_GUARDED_BY(mutex_) = 0;
};

/// Outcome of VariantFleet::shutdown(deadline).
struct DrainReport {
  /// True when every queued job finished before the deadline (nothing was
  /// abandoned). In-flight jobs are ALWAYS run to completion either way.
  bool clean = false;
  std::uint64_t jobs_abandoned = 0;
  /// Ids of the abandoned jobs, matching the JobOutcome.job_id their
  /// submitters' futures resolve with.
  std::vector<std::uint64_t> abandoned_job_ids;

  [[nodiscard]] std::string describe() const;
};

}  // namespace nv::fleet

#endif  // NV_FLEET_OPS_H

// Fleet-wide observability: every worker lane records into its own
// low-contention collector (counters are shared atomics; latency samples are
// per-lane under a per-lane lock), and snapshot() folds the lanes into one
// fleet view — counts, rates, and latency percentiles via
// util::Samples::merge().
//
// This is the population-level measurement the diversity literature asks for
// (Chen et al.: quantify effectiveness across many diversified instances,
// not one): attacks detected, sessions quarantined and re-diversified, and
// the latency the surviving sessions kept delivering while that happened.
#ifndef NV_FLEET_TELEMETRY_H
#define NV_FLEET_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/mutex.h"
#include "util/stats.h"
#include "util/thread_annotations.h"

namespace nv::fleet {

/// One coherent view of the fleet's counters and latency distribution.
struct FleetSnapshot {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_rejected = 0;   // backpressure refusals (try_submit on a full queue)
  std::uint64_t jobs_completed = 0;  // finished cleanly, no alarm
  std::uint64_t jobs_alarmed = 0;    // finished with a divergence alarm
  std::uint64_t job_errors = 0;      // the job callable itself threw
  std::uint64_t jobs_stolen = 0;     // jobs an idle lane took from a peer's queue
  std::uint64_t jobs_abandoned = 0;  // queued jobs dropped by a drain deadline
  std::uint64_t jobs_shed = 0;       // 503-style admission refusals (kShed/kDeadlineDrop)
  std::uint64_t jobs_deadline_dropped = 0;  // admitted but expired in queue (kDeadlineDrop)
  std::uint64_t admission_blocked_us = 0;   // cumulative time submit() blocked (kBlock)
  std::uint64_t sessions_quarantined = 0;
  std::uint64_t sessions_respawned = 0;
  std::uint64_t sessions_rotated = 0;  // proactive re-diversifications (campaign escalation)
  std::uint64_t rotations_failed = 0;  // rotation kept serving a burned reexpression
  std::uint64_t campaign_alerts = 0;   // fleet-level correlated-attack alerts
  std::uint64_t remote_campaigns = 0;  // gossip-applied alerts raised on OTHER fleets
  std::uint64_t policy_tightened = 0;  // adaptive steps away from the baseline policy
  std::uint64_t policy_decayed = 0;    // adaptive steps back toward the baseline
  std::uint64_t syscall_rounds = 0;  // rendezvous barrier rounds across all sessions
  std::uint64_t syscall_batches = 0;  // barrier rounds that carried >1 coalesced call
  std::uint64_t async_completions = 0;  // calls completed via the async ring (no barrier)
  std::uint64_t trace_drops = 0;  // trace events lost to ring overflow (obs/trace.h)

  // Backpressure gauge: the deepest total queue depth any submission ever
  // observed. Against queue_capacity this reads as headroom; pinned at the
  // capacity it means the admission policy (not the workload) set the ceiling.
  std::uint64_t queue_high_watermark = 0;

  // Keyspace gauges (not counters): the SessionFactory's finite unique-
  // reexpression budget. keys_total == 0 means the spec does not randomize —
  // uniqueness is untracked and keys_remaining carries no exhaustion signal.
  std::uint64_t keys_total = 0;
  std::uint64_t keys_remaining = 0;

  std::size_t latency_count = 0;  // completed-job latencies sampled
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;

  [[nodiscard]] std::string describe() const;
};

class FleetTelemetry {
 public:
  explicit FleetTelemetry(unsigned lanes);

  // Counter events (thread-safe, relaxed atomics).
  void note_submitted() noexcept { jobs_submitted_.fetch_add(1, std::memory_order_relaxed); }
  void note_rejected() noexcept { jobs_rejected_.fetch_add(1, std::memory_order_relaxed); }
  void note_completed() noexcept { jobs_completed_.fetch_add(1, std::memory_order_relaxed); }
  void note_alarmed() noexcept { jobs_alarmed_.fetch_add(1, std::memory_order_relaxed); }
  void note_job_error() noexcept { job_errors_.fetch_add(1, std::memory_order_relaxed); }
  void note_quarantined() noexcept {
    sessions_quarantined_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_respawned() noexcept { sessions_respawned_.fetch_add(1, std::memory_order_relaxed); }
  void note_stolen() noexcept { jobs_stolen_.fetch_add(1, std::memory_order_relaxed); }
  void note_abandoned() noexcept { jobs_abandoned_.fetch_add(1, std::memory_order_relaxed); }
  void note_shed() noexcept { jobs_shed_.fetch_add(1, std::memory_order_relaxed); }
  void note_deadline_dropped() noexcept {
    jobs_deadline_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_admission_blocked(std::uint64_t blocked_us) noexcept {
    admission_blocked_us_.fetch_add(blocked_us, std::memory_order_relaxed);
  }
  /// Gauge: raise the high watermark to `depth` if it is a new maximum.
  void note_queue_depth(std::uint64_t depth) noexcept {
    std::uint64_t seen = queue_high_watermark_.load(std::memory_order_relaxed);
    while (seen < depth && !queue_high_watermark_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed,
                               std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t jobs_shed_count() const noexcept {
    return jobs_shed_.load(std::memory_order_relaxed);
  }
  void note_rotated() noexcept { sessions_rotated_.fetch_add(1, std::memory_order_relaxed); }
  void note_rotation_failed() noexcept {
    rotations_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_campaign() noexcept { campaign_alerts_.fetch_add(1, std::memory_order_relaxed); }
  void note_remote_campaign() noexcept {
    remote_campaigns_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_policy_tightened() noexcept {
    policy_tightened_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_policy_decayed() noexcept {
    policy_decayed_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_syscall_rounds(std::uint64_t rounds) noexcept {
    syscall_rounds_.fetch_add(rounds, std::memory_order_relaxed);
  }
  void add_syscall_batches(std::uint64_t batches) noexcept {
    syscall_batches_.fetch_add(batches, std::memory_order_relaxed);
  }
  void add_async_completions(std::uint64_t completions) noexcept {
    async_completions_.fetch_add(completions, std::memory_order_relaxed);
  }
  /// Gauge update (thread-safe): the fleet refreshes this after every draw
  /// the SessionFactory makes, so operators watch the unique-key budget drain
  /// in the same snapshot as the counters that drain it.
  void set_keyspace(std::uint64_t total, std::uint64_t remaining) noexcept {
    keys_total_.store(total, std::memory_order_relaxed);
    keys_remaining_.store(remaining, std::memory_order_relaxed);
  }

  /// Record one job's end-to-end latency into `lane`'s collector.
  void record_latency(unsigned lane, double latency_us);

  /// Surface `recorder`'s drop counter as FleetSnapshot::trace_drops (read at
  /// snapshot time). Null detaches. The fleet wires its FleetConfig::trace
  /// recorder here so a saturated ring is an operator-visible signal, not a
  /// silently truncated trace.
  void attach_trace(std::shared_ptr<const obs::TraceRecorder> recorder) {
    const util::MutexLock lock(trace_mutex_);
    trace_ = std::move(recorder);
  }

  /// Fold every lane's samples (merge()) plus the counters into one view.
  [[nodiscard]] FleetSnapshot snapshot() const;

  [[nodiscard]] unsigned lanes() const noexcept { return static_cast<unsigned>(lanes_.size()); }

 private:
  struct Lane {
    mutable util::Mutex mutex;
    util::Samples latencies_us NV_GUARDED_BY(mutex);
  };

  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_rejected_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_alarmed_{0};
  std::atomic<std::uint64_t> job_errors_{0};
  std::atomic<std::uint64_t> jobs_stolen_{0};
  std::atomic<std::uint64_t> jobs_abandoned_{0};
  std::atomic<std::uint64_t> jobs_shed_{0};
  std::atomic<std::uint64_t> jobs_deadline_dropped_{0};
  std::atomic<std::uint64_t> admission_blocked_us_{0};
  std::atomic<std::uint64_t> queue_high_watermark_{0};
  std::atomic<std::uint64_t> sessions_quarantined_{0};
  std::atomic<std::uint64_t> sessions_respawned_{0};
  std::atomic<std::uint64_t> sessions_rotated_{0};
  std::atomic<std::uint64_t> rotations_failed_{0};
  std::atomic<std::uint64_t> campaign_alerts_{0};
  std::atomic<std::uint64_t> remote_campaigns_{0};
  std::atomic<std::uint64_t> policy_tightened_{0};
  std::atomic<std::uint64_t> policy_decayed_{0};
  std::atomic<std::uint64_t> syscall_rounds_{0};
  std::atomic<std::uint64_t> syscall_batches_{0};
  std::atomic<std::uint64_t> async_completions_{0};
  std::atomic<std::uint64_t> keys_total_{0};
  std::atomic<std::uint64_t> keys_remaining_{0};
  mutable util::Mutex trace_mutex_;
  std::shared_ptr<const obs::TraceRecorder> trace_ NV_GUARDED_BY(trace_mutex_);
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace nv::fleet

#endif  // NV_FLEET_TELEMETRY_H

// Ready-made FleetJobs: the guest workloads a fleet dispatches onto its
// pooled sessions.
//
//   httpd_request_stream()  launch mini-httpd in the session, replay a list
//                           of HTTP requests against its hub, stop, report.
//   ftpd_command_stream()   the same for mini-ftpd with a scripted control
//                           session (USER/PASS/RETR/SITE/...).
//   uid_churn()             a pure compute job — a guest that churns through
//                           privilege drop/restore cycles with uid_value
//                           checks; the bench workhorse (no sockets, so
//                           throughput measures the MVEE itself).
//
// Attack variants of the request builders reproduce the Chen-style
// non-control-data payloads (User-Agent overflow, SITE overrun) so the
// attack lab can poison a subset of fleet traffic.
#ifndef NV_FLEET_JOBS_H
#define NV_FLEET_JOBS_H

#include <map>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "httpd/config.h"
#include "httpd/mini_ftpd.h"

namespace nv::fleet::jobs {

/// One HTTP request in a stream.
struct HttpPlay {
  std::string path;
  std::map<std::string, std::string> headers;
};

/// `requests` GETs rotating across the default site's pages (all benign).
[[nodiscard]] std::vector<HttpPlay> normal_browse(unsigned requests);

/// The §4 attack stream: overflow the User-Agent header buffer (overwriting
/// the stored worker UID with canonical root), then trigger the privilege
/// restore via a protected request.
[[nodiscard]] std::vector<HttpPlay> uid_smash_attack(std::uint32_t header_buffer_size = 256);

/// Launch mini-httpd on the session, replay `plays`, stop, and report.
[[nodiscard]] FleetJob httpd_request_stream(httpd::ServerConfig config,
                                            std::vector<HttpPlay> plays);

/// A benign scripted FTP session (login, fetch a file, quit).
[[nodiscard]] std::vector<std::string> ftp_normal_session();

/// The wu-ftpd-style attack script: SITE overrun smashing the stored session
/// UID, then REIN to make the daemon re-install it.
[[nodiscard]] std::vector<std::string> ftp_site_attack(std::uint32_t command_buffer_size = 128);

/// Launch mini-ftpd on the session, run one scripted control session, stop.
[[nodiscard]] FleetJob ftpd_command_stream(httpd::FtpdConfig config,
                                           std::vector<std::string> commands);

/// Socket-free compute job: `rounds` privilege drop/check/restore cycles.
[[nodiscard]] FleetJob uid_churn(unsigned rounds);

}  // namespace nv::fleet::jobs

#endif  // NV_FLEET_JOBS_H

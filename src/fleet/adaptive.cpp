#include "fleet/adaptive.h"

#include "util/mutex.h"

#include <algorithm>
#include <utility>

#include "util/strings.h"

namespace nv::fleet {

AdaptivePolicyController::AdaptivePolicyController(AdaptivePolicyConfig config,
                                                   CampaignPolicy baseline, ClockFn clock)
    : config_(config),
      baseline_(baseline),
      clock_(resolve_clock(std::move(clock))),
      current_(baseline) {
  // A floor above the baseline (or a cap below it) would make "tighten" loosen
  // the policy; clamp the limits to the baseline so every step is monotone.
  config_.threshold_floor = std::min(config_.threshold_floor, baseline_.threshold);
  config_.threshold_floor = std::max(config_.threshold_floor, 1U);
  config_.window_cap = std::max(config_.window_cap, baseline_.window);
  quiet_since_ = clock_();
}

std::optional<CampaignPolicy> AdaptivePolicyController::on_alert(const CampaignAlert&) {
  const auto now = clock_();
  const util::MutexLock lock(mutex_);
  // Even a no-op tighten (already maximally tight) restarts the quiet timer:
  // the attacker is demonstrably still here, so decay must wait.
  quiet_since_ = now;
  if (at_baseline_locked()) last_rotation_ = now;  // heightened posture starts

  CampaignPolicy next = current_;
  next.threshold = std::max(config_.threshold_floor,
                            next.threshold - std::min(next.threshold, config_.threshold_step));
  next.window = std::min(config_.window_cap, next.window + config_.window_step);
  if (config_.arm_rotation) next.rotate_fleet_on_alert = true;

  if (next.threshold == current_.threshold && next.window == current_.window &&
      next.rotate_fleet_on_alert == current_.rotate_fleet_on_alert) {
    return std::nullopt;
  }
  current_ = next;
  ++tightened_count_;
  return current_;
}

void AdaptivePolicyController::on_incident() {
  const auto now = clock_();
  const util::MutexLock lock(mutex_);
  quiet_since_ = now;
}

bool AdaptivePolicyController::at_baseline_locked() const {
  return current_.threshold == baseline_.threshold && current_.window == baseline_.window &&
         current_.rotate_fleet_on_alert == baseline_.rotate_fleet_on_alert;
}

bool AdaptivePolicyController::decay_step_locked() {
  bool moved = false;
  if (current_.threshold < baseline_.threshold) {
    current_.threshold =
        std::min(baseline_.threshold, current_.threshold + config_.threshold_step);
    moved = true;
  }
  if (current_.window > baseline_.window) {
    current_.window = std::max(baseline_.window, current_.window - config_.window_step);
    moved = true;
  }
  // Rotation stays armed until the numeric knobs are fully relaxed: it is the
  // cheapest part of the posture to keep while any suspicion remains.
  if (current_.threshold == baseline_.threshold && current_.window == baseline_.window &&
      current_.rotate_fleet_on_alert != baseline_.rotate_fleet_on_alert) {
    current_.rotate_fleet_on_alert = baseline_.rotate_fleet_on_alert;
    moved = true;
  }
  return moved;
}

std::optional<CampaignPolicy> AdaptivePolicyController::poll() {
  const auto now = clock_();
  const util::MutexLock lock(mutex_);
  if (at_baseline_locked()) return std::nullopt;
  if (now - quiet_since_ < config_.quiet_period) return std::nullopt;
  if (!decay_step_locked()) return std::nullopt;
  ++decayed_count_;
  // Advance by one period, not to `now`: a fleet that idled through several
  // quiet periods owes several decay steps, and each subsequent poll takes
  // the next one immediately. One step per poll keeps every step visible as
  // its own telemetry policy_decayed increment.
  quiet_since_ += config_.quiet_period;
  return current_;
}

bool AdaptivePolicyController::rotation_due() {
  const auto now = clock_();
  const util::MutexLock lock(mutex_);
  if (config_.tightened_rotation_interval <= std::chrono::milliseconds::zero()) return false;
  if (at_baseline_locked()) return false;
  if (now - last_rotation_ < config_.tightened_rotation_interval) return false;
  last_rotation_ = now;
  return true;
}

CampaignPolicy AdaptivePolicyController::current() const {
  const util::MutexLock lock(mutex_);
  return current_;
}

bool AdaptivePolicyController::tightened() const {
  const util::MutexLock lock(mutex_);
  return !at_baseline_locked();
}

std::uint64_t AdaptivePolicyController::times_tightened() const {
  const util::MutexLock lock(mutex_);
  return tightened_count_;
}

std::uint64_t AdaptivePolicyController::times_decayed() const {
  const util::MutexLock lock(mutex_);
  return decayed_count_;
}

std::string AdaptivePolicyController::describe() const {
  const util::MutexLock lock(mutex_);
  return util::format(
      "adaptive policy: threshold %u (baseline %u), window %lld ms (baseline %lld), "
      "rotation %s; tightened %llux, decayed %llux",
      current_.threshold, baseline_.threshold,
      static_cast<long long>(current_.window.count()),
      static_cast<long long>(baseline_.window.count()),
      current_.rotate_fleet_on_alert ? "armed" : "disarmed",
      static_cast<unsigned long long>(tightened_count_),
      static_cast<unsigned long long>(decayed_count_));
}

}  // namespace nv::fleet

// Campaign-driven adaptive defense: the correlator's CampaignPolicy is no
// longer static — every CampaignAlert TIGHTENS it fleet-wide, and a quiet
// fleet DECAYS it back to the configured baseline.
//
// The population-level argument (Chen et al.): the defender's lever is how
// fast the fleet re-diversifies relative to the attacker's probing rate.
// Under active probing the fleet should (a) call smaller bursts a campaign
// (shrink `threshold` toward a floor), (b) remember probes for longer (widen
// `window` toward a cap), and (c) optionally arm rotate_fleet_on_alert so
// every subsequent alert re-diversifies the survivors. Once the attacker
// goes quiet the heightened posture costs real money — rotations burn draws
// from a finite reexpression space and a hair-trigger threshold false-alarms
// on unrelated crashes — so after `quiet_period` without a new alert the
// controller walks the policy back one step per elapsed quiet period until
// it is at baseline again.
//
// All time is read from the injected ClockFn, so the whole tighten/decay
// lifecycle is testable on a ManualClock without sleeps.
#ifndef NV_FLEET_ADAPTIVE_H
#define NV_FLEET_ADAPTIVE_H

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "fleet/ops.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nv::fleet {

/// How far and how fast the live CampaignPolicy moves away from its baseline
/// while campaigns fire, and how it relaxes once they stop.
struct AdaptivePolicyConfig {
  /// Master switch; a default FleetConfig keeps the static-policy behavior.
  bool enabled = false;
  /// Each alert shrinks the live threshold by `threshold_step`, never below
  /// `threshold_floor` (a floor of 1 means: while under attack, every single
  /// same-signature quarantine is campaign evidence).
  unsigned threshold_floor = 1;
  unsigned threshold_step = 1;
  /// Each alert widens the live window by `window_step`, never past
  /// `window_cap` — a probing attacker who slows down to dodge the window
  /// finds it has grown to meet them.
  std::chrono::milliseconds window_cap{120'000};
  std::chrono::milliseconds window_step{10'000};
  /// Tightening also arms CampaignPolicy::rotate_fleet_on_alert, so the next
  /// alert proactively re-diversifies the surviving sessions even when the
  /// baseline posture does not.
  bool arm_rotation = true;
  /// The strongest lever (Chen et al.: defense = defender's re-diversify
  /// rate vs. the attacker's probing rate): while tightened, the fleet
  /// re-diversifies EVERY interval — not just on alerts, which one long
  /// campaign raises only once (later incidents join silently). Zero
  /// disables; decaying back to baseline stops the rotations.
  std::chrono::milliseconds tightened_rotation_interval{0};
  /// A stretch this long with no new alert decays the policy ONE step back
  /// toward baseline (threshold up, window down; rotation disarms — unless
  /// the baseline itself armed it — once fully at baseline). Several elapsed
  /// quiet periods decay several steps in one poll.
  std::chrono::milliseconds quiet_period{30'000};
};

/// Thread-safe controller owning the tighten/decay state machine. The fleet
/// feeds it alerts (on_alert) and polls it for decay (poll); both return the
/// new policy when it changed so the caller can install it into the live
/// CampaignCorrelator via set_policy().
class AdaptivePolicyController {
 public:
  AdaptivePolicyController(AdaptivePolicyConfig config, CampaignPolicy baseline,
                           ClockFn clock = {});

  /// A campaign alert fired: tighten one step. Returns the new policy when
  /// anything moved (already at floor+cap with rotation armed => nullopt,
  /// but the quiet timer still restarts).
  [[nodiscard]] std::optional<CampaignPolicy> on_alert(const CampaignAlert& alert);

  /// Any quarantine — alerting or not — is attacker activity: restart the
  /// quiet timer. Without this an ongoing campaign whose later incidents
  /// merely JOIN the open alert (no re-alert) would decay the policy while
  /// the attack is still running.
  void on_incident();

  /// Decay check: walks the policy back ONE step once a quiet period has
  /// elapsed since the last alert/incident/decay (several elapsed periods
  /// catch up one step per subsequent poll). Returns the new policy when it
  /// moved. Cheap when at baseline (single mutex + compare).
  [[nodiscard]] std::optional<CampaignPolicy> poll();

  /// True when the heightened posture owes a periodic re-diversification:
  /// tightened, tightened_rotation_interval set, and an interval has elapsed
  /// since the last one. Consuming — the caller that gets `true` must
  /// perform the rotation (VariantFleet::poll_adaptive does).
  [[nodiscard]] bool rotation_due();

  [[nodiscard]] CampaignPolicy current() const;
  [[nodiscard]] const CampaignPolicy& baseline() const noexcept { return baseline_; }
  /// True while the live policy sits anywhere off baseline.
  [[nodiscard]] bool tightened() const;
  [[nodiscard]] std::uint64_t times_tightened() const;
  [[nodiscard]] std::uint64_t times_decayed() const;

  /// "adaptive policy: threshold 1 (baseline 3), window 30000 ms (baseline
  /// 10000), rotation armed; tightened 2x, decayed 0x"
  [[nodiscard]] std::string describe() const;

 private:
  [[nodiscard]] bool at_baseline_locked() const NV_REQUIRES(mutex_);
  /// One decay step toward baseline; true when anything moved.
  bool decay_step_locked() NV_REQUIRES(mutex_);

  AdaptivePolicyConfig config_;
  CampaignPolicy baseline_;
  ClockFn clock_;

  mutable util::Mutex mutex_;
  CampaignPolicy current_ NV_GUARDED_BY(mutex_);
  /// Start of the current quiet stretch: the last alert or decay step.
  std::chrono::steady_clock::time_point quiet_since_ NV_GUARDED_BY(mutex_){};
  /// Last heightened-posture rotation (or the tighten that started it).
  std::chrono::steady_clock::time_point last_rotation_ NV_GUARDED_BY(mutex_){};
  std::uint64_t tightened_count_ NV_GUARDED_BY(mutex_) = 0;
  std::uint64_t decayed_count_ NV_GUARDED_BY(mutex_) = 0;
};

}  // namespace nv::fleet

#endif  // NV_FLEET_ADAPTIVE_H

// VariantFleet: many independent N-variant sessions served concurrently by a
// fixed worker pool, kept alive through attacks — and operated like a
// service.
//
// Production posture the single-system runtime lacked:
//   - admission: a bounded job budget across per-lane queues; submit()
//     blocks for backpressure, try_submit() refuses instead (and the refusal
//     is counted);
//   - dispatch: each worker lane owns one session stamped out by the
//     SessionFactory and runs its queued jobs on it to completion;
//   - work stealing: an idle lane takes queued jobs from its peers, so a
//     lane stuck respawning a quarantined session donates its backlog
//     instead of stalling it behind the respawn;
//   - recovery: a job that ends in a divergence alarm (or throws) poisons
//     its session — the worker QUARANTINES it (retaining the Alarm, run
//     report, and diversity fingerprint for forensics) and respawns a
//     freshly re-diversified replacement from the factory, while every other
//     lane keeps serving;
//   - correlation: every quarantine feeds the CampaignCorrelator; K
//     quarantines sharing one attack signature inside a sliding window raise
//     ONE fleet-level CampaignAlert (not K incident records), optionally
//     escalating by rotating every surviving session to a fresh
//     reexpression;
//   - graceful drain: shutdown(deadline) stops admission, finishes in-flight
//     jobs, and returns the queued jobs it had to abandon;
//   - telemetry: FleetTelemetry aggregates per-lane counters and latency
//     samples into fleet-wide percentiles.
//
// A job receives a session's sealed NVariantSystem and drives it however it
// likes (run a guest to completion, or launch/drive/stop a server) and
// returns the RunReport the fleet inspects for the attack verdict.
#ifndef NV_FLEET_FLEET_H
#define NV_FLEET_FLEET_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/nvariant_system.h"
#include "fleet/adaptive.h"
#include "fleet/ops.h"
#include "fleet/session_factory.h"
#include "fleet/telemetry.h"
#include "obs/trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nv::fleet {

/// One unit of guest work: drive `system` to completion and report. Runs on
/// a worker thread; the system is exclusively owned for the duration.
using FleetJob = std::function<core::RunReport(core::NVariantSystem& system)>;

/// What the submitter's future resolves to.
struct JobOutcome {
  std::uint64_t job_id = 0;
  std::uint64_t session_id = 0;
  core::RunReport report;
  /// This job's alarm (or exception) sent its session to quarantine.
  bool session_quarantined = false;
  /// Non-empty when the job callable threw instead of reporting — or when a
  /// drain deadline abandoned the job before any session ran it (see
  /// kAbandonedError).
  std::string error;
  std::chrono::microseconds latency{0};
  /// Causality id of this job's trace events (0 = untraced): admission,
  /// start, finish, and — when the job poisoned its session — the quarantine
  /// all carry it, so a submitter can find its job in an exported trace.
  std::uint64_t trace_span = 0;

  [[nodiscard]] bool ok() const noexcept {
    return error.empty() && !report.attack_detected;
  }
};

/// Forensic record of one quarantined session.
struct QuarantineRecord {
  std::uint64_t session_id = 0;
  std::uint64_t replacement_id = 0;
  std::string fingerprint;              // diversity identity the attacker faced
  std::string replacement_fingerprint;  // what replaced it (re-diversified)
  core::Alarm alarm;                    // first alarm (or kGuestError for throws)
  core::RunReport report;               // the poisoned run's full report
  std::uint64_t jobs_served = 0;        // CLEAN jobs served before the fatal one
};

/// What submit() does when the fleet already holds queue_capacity jobs.
/// try_submit() is unaffected: it is the caller-side refusal path and always
/// returns nullopt at capacity (counted jobs_rejected).
enum class AdmissionPolicy {
  /// Classic closed-loop backpressure: submit() blocks until a worker frees
  /// a slot. The time spent blocked accumulates (injected clock) into the
  /// admission_blocked_us counter. Open workloads deadlock the submitting
  /// thread here — that is the point of the other two policies.
  kBlock,
  /// 503-style load shedding: submit() returns an already-resolved future
  /// whose outcome carries kShedError, counted as jobs_shed. The submitter
  /// gets an immediate, explicit refusal instead of unbounded queueing delay.
  kShed,
  /// kShed at the door, plus a freshness contract inside: an admitted job
  /// still queued after queue_deadline (injected clock) is dropped at pop
  /// time — its future resolves with kDeadlineDropError, counted as
  /// jobs_deadline_dropped. Models clients that time out and hang up: work
  /// past its deadline only burns a diversified session for a reply nobody
  /// is waiting for.
  kDeadlineDrop,
};

struct FleetConfig {
  SessionSpec spec;
  /// Concurrent sessions == worker lanes. 0 = hardware_concurrency, clamped
  /// to [2, 8] so a 1-core CI box still exercises concurrency.
  unsigned pool_size = 0;
  /// Bounded admission budget across all lane queues; what happens when it
  /// is reached is the admission policy's call (block / shed / deadline-drop).
  std::size_t queue_capacity = 64;
  /// Full-queue behavior for submit(); see AdmissionPolicy. The default keeps
  /// the original blocking-backpressure semantics.
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// kDeadlineDrop only: maximum time a job may sit queued (injected clock)
  /// before the popping worker drops it unserved. 0 disables the in-queue
  /// deadline (kDeadlineDrop then degenerates to kShed).
  std::chrono::milliseconds queue_deadline{0};
  /// Seed for the per-session diversity draws. Unset (the default) draws a
  /// fresh seed from std::random_device — a fixed default would make every
  /// deployment's "random" reexpressions predictable to anyone running the
  /// same binary. Set it explicitly only for reproducible tests/benches.
  std::optional<std::uint64_t> seed;
  /// Idle lanes take queued jobs from their peers (see file header). Off
  /// reverts to strict lane affinity — useful for measuring what stealing
  /// buys (bench_fleet_throughput does exactly that).
  bool work_stealing = true;
  /// Pop in global-FIFO order: a freed worker takes the OLDEST queued job
  /// across every lane (lowest job id), not its own queue's front. The pool
  /// then behaves as one shared M/G/k queue, and because every interleaving
  /// of concurrent pops removes the same jobs at the same instants, the pop
  /// schedule is a function of job ids and deadlines alone — independent of
  /// real-time worker wake order. src/load's deterministic harness needs
  /// exactly this; stealing's deepest-victim scan races concurrent pops.
  /// Takes precedence over work_stealing.
  bool fifo_pop = false;
  /// Campaign correlation policy: K, the sliding window, and whether an
  /// alert rotates the surviving sessions to fresh reexpressions. With
  /// adaptation enabled this is the BASELINE the live policy tightens away
  /// from and decays back to.
  CampaignPolicy campaign;
  /// Campaign-driven adaptive defense (see fleet/adaptive.h): every alert
  /// tightens the live policy fleet-wide, quiet periods decay it back.
  /// Disabled by default — the static-policy posture of earlier revisions.
  AdaptivePolicyConfig adaptive;
  /// Escalation hook: invoked on the quarantining worker's thread each time
  /// a NEW campaign alert is raised (joins do not re-fire). Keep it cheap.
  std::function<void(const CampaignAlert&)> on_campaign;
  /// --- Keyspace posture (see SessionFactory::keyspace()) -----------------
  /// Rotation becomes reluctant once keys_remaining drops to this watermark:
  /// fleet-wide rotations are throttled to one per `rotation_backoff`, and
  /// `on_keyspace_low` fires (exactly once per fleet lifetime) the first time
  /// the factory's account is observed at or below it. 0 = auto: the pool
  /// size, i.e. "one more fleet-wide rotation would drain the space".
  std::uint64_t keyspace_low_watermark = 0;
  /// Minimum spacing between fleet-wide rotations while the keyspace is low
  /// (measured on the injected clock). Exhaustion stops rotation flagging
  /// entirely — quarantine respawns, which MUST replace a burned session,
  /// are never throttled and surface their failures as retired lanes.
  std::chrono::milliseconds rotation_backoff{1'000};
  /// Operator hook for the low/exhausted keyspace transition: provision a new
  /// fleet, widen the spec, or accept reduced re-diversification. Invoked at
  /// most once, on whichever thread first observes the account at or below
  /// the watermark. Keep it cheap.
  std::function<void(const KeyspaceAccount&)> on_keyspace_low;
  /// Rotation deadline: a lane flagged for rotation normally swaps lazily
  /// before its next job, so a long-running job pins its stale (possibly
  /// campaign-burned) re-expression until it finishes. With a deadline set,
  /// poll_adaptive() force-rotates any lane still flagged after this long:
  /// the replacement session is installed immediately and the displaced
  /// session is parked (quarantine-style) until its in-flight job completes
  /// against it. 0 = lazy rotation only (previous behavior).
  std::chrono::milliseconds rotation_deadline{0};
  /// Injectable time source for correlator windows and drain deadlines;
  /// empty = real steady clock. Tests install ManualClock::fn().
  ClockFn clock;
  /// Structured tracing (obs/trace.h): the fleet records admission, steal,
  /// quarantine, respawn, rotation, keyspace, and adaptive events into this
  /// recorder (tracks "<trace_scope>.ops" and "<trace_scope>.lane<i>"), and
  /// propagates it into the SessionFactory and every built NVariantSystem.
  /// Null = untraced (the default; the record path is never entered).
  std::shared_ptr<obs::TraceRecorder> trace;
  /// Track-name prefix for this fleet's events; a cluster sets "shard<i>" so
  /// K shards share one recorder without colliding.
  std::string trace_scope = "fleet";
  /// Forensic escalation: when a campaign alert fires, re-arm the live trace
  /// recorder's syscall-round sampling stride to this value (via
  /// TraceRecorder::set_syscall_round_sample) so the rounds surrounding an
  /// active attack are captured at full (or configured) resolution instead
  /// of the steady-state stride. 0 = leave the recorder's stride alone.
  std::uint32_t trace_campaign_round_sample = 0;
  /// TEST SEAM: runs on the worker thread immediately after its lane enters
  /// the respawning state (before the replacement session is built), so a
  /// test can hold a lane mid-respawn and prove its queue drains via peers.
  std::function<void(unsigned lane)> respawn_hook;
};

class VariantFleet {
 public:
  /// JobOutcome::error of a job a drain deadline dropped before execution.
  static constexpr const char* kAbandonedError = "abandoned at fleet shutdown deadline";
  /// JobOutcome::error of a job refused at the door (AdmissionPolicy::kShed /
  /// kDeadlineDrop at capacity) — the fleet's 503.
  static constexpr const char* kShedError = "shed at admission: fleet at capacity";
  /// JobOutcome::error of an admitted job that outlived queue_deadline in the
  /// queue and was dropped unserved (AdmissionPolicy::kDeadlineDrop).
  static constexpr const char* kDeadlineDropError = "dropped: queue deadline exceeded";

  /// Spawns the worker pool and stamps out the initial sessions; throws
  /// std::invalid_argument when the spec cannot produce a valid session.
  explicit VariantFleet(FleetConfig config);
  /// Drains the queues fully and joins the pool (shutdown()).
  ~VariantFleet();

  VariantFleet(const VariantFleet&) = delete;
  VariantFleet& operator=(const VariantFleet&) = delete;

  /// Enqueue a job. At capacity the admission policy decides: kBlock waits
  /// for a slot (backpressure, time counted in admission_blocked_us), kShed /
  /// kDeadlineDrop return an immediately-resolved kShedError outcome
  /// (counted jobs_shed). Throws std::runtime_error after shutdown.
  [[nodiscard]] std::future<JobOutcome> submit(FleetJob job);

  /// Non-blocking admission: nullopt when the fleet is at capacity or
  /// shutting down (including mid-drain). Every refusal is counted exactly
  /// once as telemetry jobs_rejected.
  [[nodiscard]] std::optional<std::future<JobOutcome>> try_submit(FleetJob job);

  /// Stop admitting, run everything already queued, join the pool.
  /// Idempotent; called by the destructor. Must not race other shutdown
  /// calls.
  void shutdown();

  /// Deadline-bounded graceful drain: stop admitting, let the lanes work the
  /// queues down until `deadline` elapses (measured on the injected clock),
  /// then abandon whatever is still queued — each abandoned submitter's
  /// future resolves with kAbandonedError — and join the pool once in-flight
  /// jobs finish (in-flight work is never abandoned). The abandoned count is
  /// mirrored in telemetry jobs_abandoned.
  [[nodiscard]] DrainReport shutdown(std::chrono::milliseconds deadline);

  /// Operator-initiated fleet-wide re-diversification: flag every live lane
  /// to swap in a freshly-drawn session before its next job (the same
  /// mechanism campaign escalation uses, minus the alert). Returns how many
  /// lanes were flagged; each flag resolves asynchronously into exactly one
  /// telemetry sessions_rotated or rotations_failed increment. This is the
  /// defender's re-diversification-rate lever the population experiments
  /// sweep (experiments/population_curves.h).
  ///
  /// Exhaustion-aware: once the factory's keyspace account reads 0 keys
  /// remaining this flags NOTHING and returns 0 — re-flagging an empty
  /// factory only churns rotations_failed without buying diversity. While
  /// the account is merely LOW (<= keyspace_low_watermark) rotations are
  /// throttled to one per rotation_backoff.
  std::size_t rotate_fleet();

  /// Fleet housekeeping: enforce the rotation deadline (force-rotating lanes
  /// whose flag outlived FleetConfig::rotation_deadline), take a due adaptive
  /// decay step, and fire the heightened-posture periodic rotation when one
  /// is owed — unless the keyspace is exhausted, in which case the periodic
  /// rotation is suppressed (it could only fail). Returns how many lanes it
  /// flagged or force-rotated (usually 0). Workers poll after every job, so
  /// a serving fleet adapts on its own; an IDLE fleet needs this called (or
  /// a job submitted) once the injected clock moves past the quiet period /
  /// rotation interval / rotation deadline.
  std::size_t poll_adaptive();

  /// Live keyspace ledger (factory account; also mirrored into telemetry
  /// keys_total / keys_remaining gauges after every draw).
  [[nodiscard]] KeyspaceAccount keyspace() const { return factory_.keyspace(); }

  /// Tell the fleet the injected clock moved: wakes a deadline-bounded drain
  /// blocked on it AND enforces the rotation deadline (a truly idle fleet —
  /// no jobs, no operator poll — would otherwise never force-rotate a pinned
  /// lane past FleetConfig::rotation_deadline). Subscribe it to the clock —
  /// clock.subscribe([&fleet] { fleet.notify_time_advanced(); }) — or call it
  /// directly after advance(). Harmless no-op otherwise. Returns how many
  /// lanes the deadline enforcement force-rotated (usually 0) so a periodic
  /// caller (FleetCluster::tick) can report sweep work without re-polling.
  std::size_t notify_time_advanced();

  /// True while the fleet admits jobs (drain/shutdown flip it off). The
  /// cluster router's health bit; also useful for operator dashboards.
  [[nodiscard]] bool accepting() const;

  /// Cross-shard gossip entry point: apply a campaign alert RAISED ON
  /// ANOTHER FLEET to this fleet's adaptive posture. Tightens the live
  /// policy exactly as a local alert would (counted as telemetry
  /// remote_campaigns + policy_tightened) but does NOT rotate, does not feed
  /// the local correlator's signature window, and never re-publishes — the
  /// GossipBus only carries locally-raised alerts, so gossip cannot loop.
  /// The pre-warned shard meets the attacker already tightened.
  void apply_remote_campaign(const CampaignAlert& alert);

  /// The LIVE campaign policy (== FleetConfig::campaign until the adaptive
  /// controller moves it).
  [[nodiscard]] CampaignPolicy campaign_policy() const;
  /// Adaptive controller state, or nullptr when FleetConfig::adaptive is
  /// disabled. Safe for concurrent reads (the controller locks internally).
  [[nodiscard]] const AdaptivePolicyController* adaptive() const noexcept {
    return adaptive_.has_value() ? &*adaptive_ : nullptr;
  }

  [[nodiscard]] FleetTelemetry& telemetry() noexcept { return telemetry_; }
  [[nodiscard]] const FleetTelemetry& telemetry() const noexcept { return telemetry_; }
  [[nodiscard]] std::vector<QuarantineRecord> quarantine_log() const;
  /// Fleet-level campaign alerts raised so far (members folded in).
  [[nodiscard]] std::vector<CampaignAlert> campaign_alerts() const;
  /// Campaigns whose sliding window is still live right now.
  [[nodiscard]] std::vector<CampaignAlert> open_campaigns() const;
  [[nodiscard]] unsigned pool_size() const noexcept { return pool_size_; }
  /// Total jobs queued across every lane (excludes in-flight jobs).
  [[nodiscard]] std::size_t queue_depth() const;
  /// One consistent observation of worker-side progress, for drivers that
  /// single-step the fleet on an injected clock (src/load). The fleet is
  /// externally at rest when every worker is accounted for (idle_workers
  /// plus the driver's own count of in-flight job bodies equals pool_size),
  /// no idle worker has poppable backlog, and no lane is mid-swap — all
  /// remaining progress then needs the clock to move.
  struct IdleSnapshot {
    std::size_t idle_workers = 0;   ///< workers blocked on the queue condvar
    bool idle_backlog = false;      ///< an idle worker's own queue is nonempty
    std::size_t lanes_in_flux = 0;  ///< respawn / forced rotation in progress
  };
  [[nodiscard]] IdleSnapshot idle_snapshot() const;
  /// Diversity fingerprints of the sessions currently installed in each lane.
  [[nodiscard]] std::vector<std::string> live_fingerprints() const;

  /// Monotone counter bumped whenever the fleet's SLOW health inputs change:
  /// accepting flips, keyspace gauge refreshes (draws, rotations), lane
  /// retirement. A router that cached this fleet's health view may keep
  /// serving it until the epoch moves — queue depth is the one fast-moving
  /// field, and queue_depth_hint() reads it without the queue mutex.
  [[nodiscard]] std::uint64_t health_epoch() const noexcept {
    return health_epoch_.load(std::memory_order_acquire);
  }
  /// Lock-free approximation of queue_depth() for routing decisions: reads
  /// the same counter, but relaxed and without queue_mutex_ — may be one
  /// enqueue/dequeue stale, which load balancing tolerates by construction.
  [[nodiscard]] std::size_t queue_depth_hint() const noexcept {
    return total_queued_.load(std::memory_order_relaxed);
  }
  /// Lock-free cumulative shed count for routing decisions: a shard that is
  /// actively shedding is overloaded in a way queue depth alone understates
  /// (its queue is pinned at capacity; the overflow is invisible there).
  [[nodiscard]] std::uint64_t jobs_shed_hint() const noexcept {
    return telemetry_.jobs_shed_count();
  }

 private:
  struct PendingJob {
    std::uint64_t id = 0;
    FleetJob fn;
    std::promise<JobOutcome> promise;
    std::uint64_t trace_span = 0;  // allocated at admission (kJobAdmitted)
    /// Admission time on the injected clock; only stamped when a queue
    /// deadline is armed (kDeadlineDrop with queue_deadline > 0).
    std::chrono::steady_clock::time_point admitted_at{};
  };
  /// Lane state; every field is accessed under queue_mutex_ (the flags vector
  /// itself is NV_GUARDED_BY below).
  struct LaneFlags {
    bool dead = false;        // respawn failed; lane retired
    bool exited = false;      // worker thread returned; queue will never drain
    bool respawning = false;  // lane is mid-respawn; don't route new jobs here
    bool waiting = false;     // worker is blocked on the queue condvar
    bool rotate = false;      // campaign escalation: re-diversify before next job
    /// Deadline enforcement is force-rotating this lane right now; its own
    /// worker must not race it with a lazy rotation.
    bool force_rotating = false;
    /// When `rotate` was set (injected clock), for the rotation deadline.
    std::chrono::steady_clock::time_point rotate_since{};
    /// Trace span that CAUSED the pending rotation (the campaign alert's
    /// span, or 0 for operator rotate_fleet): the eventual kRotation event
    /// parents here, closing the alert -> rotation causal chain.
    std::uint64_t rotate_parent_span = 0;
  };

  void worker_loop(unsigned lane);
  void run_job(unsigned lane, PendingJob job);
  /// Replace lane's session after quarantine; on persistent factory failure
  /// the lane keeps the poisoned session out of service and retires.
  void respawn(unsigned lane, JobOutcome& outcome);
  /// Campaign escalation: flag every other live lane for re-diversification.
  /// `parent_span` threads the causing alert's trace span into the flags.
  void request_rotation_except(unsigned lane, std::uint64_t parent_span = 0);
  /// Swap a freshly-drawn session into an idle lane (rotation escalation).
  void rotate_lane(unsigned lane, std::uint64_t parent_span);
  /// Mirror the factory account into the telemetry gauges and fire
  /// on_keyspace_low on the first observation at/below the watermark.
  KeyspaceAccount refresh_keyspace_gauge();
  /// Resolved low watermark (config value, or the pool size when 0).
  [[nodiscard]] std::uint64_t low_watermark() const noexcept;
  /// Force-rotate lanes whose rotate flag outlived the rotation deadline:
  /// install the replacement NOW and park the displaced session until the
  /// lane's in-flight job finishes with it. Returns lanes swapped.
  std::size_t enforce_rotation_deadlines();
  /// Move a retiring lane's queued jobs to lanes that can still run them
  /// (or fail them when none can).
  void retire_lane_locked(unsigned lane) NV_REQUIRES(queue_mutex_);
  /// Round-robin over serviceable lanes (worker alive, not dead, preferring
  /// non-respawning). pool_size_ when no lane can take work.
  [[nodiscard]] unsigned pick_lane_locked() NV_REQUIRES(queue_mutex_);
  [[nodiscard]] std::future<JobOutcome> enqueue_locked(FleetJob job) NV_REQUIRES(queue_mutex_);
  /// 503 path: mint an already-resolved kShedError future (counted + traced).
  [[nodiscard]] std::future<JobOutcome> shed_locked() NV_REQUIRES(queue_mutex_);
  /// kDeadlineDrop: resolve an expired queued job as kDeadlineDropError.
  /// `waited` is how long it sat in the queue (injected clock).
  void drop_expired_job(unsigned lane, PendingJob job, std::chrono::microseconds waited);
  DrainReport drain(std::optional<std::chrono::milliseconds> deadline);

  [[nodiscard]] static unsigned resolve_pool_size(unsigned requested);

  FleetConfig config_;
  unsigned pool_size_;
  ClockFn clock_;
  SessionFactory factory_;
  FleetTelemetry telemetry_;
  CampaignCorrelator correlator_;
  std::optional<AdaptivePolicyController> adaptive_;
  /// Serializes {controller decision -> correlator set_policy()} so two
  /// workers cannot install steps out of order (a stale tighter policy would
  /// otherwise stick while the controller believes it is at baseline).
  /// Ordering-only: it guards no fields of its own (nvlint NV-MUTEX-GUARD
  /// allowlisted), the guarded state lives inside controller + correlator.
  util::Mutex adaptive_install_mutex_;

  mutable util::Mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::condition_variable drain_progress_;
  std::vector<std::deque<PendingJob>> lane_queues_ NV_GUARDED_BY(queue_mutex_);  // one per lane
  std::vector<LaneFlags> lane_flags_ NV_GUARDED_BY(queue_mutex_);
  /// Written only under queue_mutex_; atomic so queue_depth_hint() can read
  /// it lock-free from the router hot path.
  std::atomic<std::size_t> total_queued_{0};
  unsigned next_lane_ NV_GUARDED_BY(queue_mutex_) = 0;
  bool accepting_ NV_GUARDED_BY(queue_mutex_) = true;
  std::uint64_t next_job_id_ NV_GUARDED_BY(queue_mutex_) = 0;
  /// See health_epoch(): bumped on accepting flips, keyspace refreshes, and
  /// lane retirement.
  std::atomic<std::uint64_t> health_epoch_{0};

  /// Tracing (null = untraced). ops_track_ carries fleet-scope events
  /// (admission, alerts, keyspace); lane_tracks_[i] carries lane i's
  /// lifecycle (start/finish, steal, quarantine, respawn, rotation).
  std::shared_ptr<obs::TraceRecorder> trace_;
  std::uint32_t ops_track_ = 0;
  std::vector<std::uint32_t> lane_tracks_;

  /// One fleet-wide rotation per rotation_backoff while the keyspace is low.
  std::chrono::steady_clock::time_point last_backoff_rotation_ NV_GUARDED_BY(queue_mutex_){};
  /// on_keyspace_low fires at most once per fleet lifetime (the account only
  /// ever drains).
  std::atomic<bool> keyspace_low_fired_{false};
  /// Cached KeyspaceAccount::exhausted(), refreshed by
  /// refresh_keyspace_gauge(): poll_adaptive runs after EVERY job, and the
  /// hot path must not take the factory mutex just to read one bit.
  std::atomic<bool> keyspace_exhausted_{false};

  mutable util::Mutex sessions_mutex_;
  std::vector<Session> sessions_ NV_GUARDED_BY(sessions_mutex_);  // one per lane
  /// Sessions a rotation deadline displaced while a job was still driving
  /// them (per lane): the job holds a raw pointer into the old system, so it
  /// must stay alive until the lane's worker finishes the job and reaps them.
  std::vector<std::vector<Session>> displaced_sessions_ NV_GUARDED_BY(sessions_mutex_);

  mutable util::Mutex quarantine_mutex_;
  std::vector<QuarantineRecord> quarantine_log_ NV_GUARDED_BY(quarantine_mutex_);

  std::vector<std::jthread> workers_;
};

}  // namespace nv::fleet

#endif  // NV_FLEET_FLEET_H

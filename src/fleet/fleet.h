// VariantFleet: many independent N-variant sessions served concurrently by a
// fixed worker pool, kept alive through attacks.
//
// Production posture the single-system runtime lacked:
//   - admission: a bounded job queue; submit() blocks for backpressure,
//     try_submit() refuses instead (and the refusal is counted);
//   - dispatch: each worker lane owns one session stamped out by the
//     SessionFactory and runs queued jobs on it to completion;
//   - recovery: a job that ends in a divergence alarm (or throws) poisons
//     its session — the worker QUARANTINES it (retaining the Alarm, run
//     report, and diversity fingerprint for forensics) and respawns a
//     freshly re-diversified replacement from the factory, while every other
//     lane keeps serving;
//   - telemetry: FleetTelemetry aggregates per-lane counters and latency
//     samples into fleet-wide percentiles.
//
// A job receives a session's sealed NVariantSystem and drives it however it
// likes (run a guest to completion, or launch/drive/stop a server) and
// returns the RunReport the fleet inspects for the attack verdict.
#ifndef NV_FLEET_FLEET_H
#define NV_FLEET_FLEET_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/nvariant_system.h"
#include "fleet/session_factory.h"
#include "fleet/telemetry.h"

namespace nv::fleet {

/// One unit of guest work: drive `system` to completion and report. Runs on
/// a worker thread; the system is exclusively owned for the duration.
using FleetJob = std::function<core::RunReport(core::NVariantSystem& system)>;

/// What the submitter's future resolves to.
struct JobOutcome {
  std::uint64_t job_id = 0;
  std::uint64_t session_id = 0;
  core::RunReport report;
  /// This job's alarm (or exception) sent its session to quarantine.
  bool session_quarantined = false;
  /// Non-empty when the job callable threw instead of reporting.
  std::string error;
  std::chrono::microseconds latency{0};

  [[nodiscard]] bool ok() const noexcept {
    return error.empty() && !report.attack_detected;
  }
};

/// Forensic record of one quarantined session.
struct QuarantineRecord {
  std::uint64_t session_id = 0;
  std::uint64_t replacement_id = 0;
  std::string fingerprint;              // diversity identity the attacker faced
  std::string replacement_fingerprint;  // what replaced it (re-diversified)
  core::Alarm alarm;                    // first alarm (or kGuestError for throws)
  core::RunReport report;               // the poisoned run's full report
  std::uint64_t jobs_served = 0;        // CLEAN jobs served before the fatal one
};

struct FleetConfig {
  SessionSpec spec;
  /// Concurrent sessions == worker lanes. 0 = hardware_concurrency, clamped
  /// to [2, 8] so a 1-core CI box still exercises concurrency.
  unsigned pool_size = 0;
  /// Bounded admission queue; submit() blocks when full (backpressure).
  std::size_t queue_capacity = 64;
  /// Seed for the per-session diversity draws. Unset (the default) draws a
  /// fresh seed from std::random_device — a fixed default would make every
  /// deployment's "random" reexpressions predictable to anyone running the
  /// same binary. Set it explicitly only for reproducible tests/benches.
  std::optional<std::uint64_t> seed;
};

class VariantFleet {
 public:
  /// Spawns the worker pool and stamps out the initial sessions; throws
  /// std::invalid_argument when the spec cannot produce a valid session.
  explicit VariantFleet(FleetConfig config);
  /// Drains the queue and joins the pool (shutdown()).
  ~VariantFleet();

  VariantFleet(const VariantFleet&) = delete;
  VariantFleet& operator=(const VariantFleet&) = delete;

  /// Enqueue a job; BLOCKS while the queue is at capacity (backpressure).
  /// Throws std::runtime_error after shutdown().
  [[nodiscard]] std::future<JobOutcome> submit(FleetJob job);

  /// Non-blocking admission: nullopt when the queue is full or the fleet is
  /// shutting down. The refusal is counted as telemetry.jobs_rejected.
  [[nodiscard]] std::optional<std::future<JobOutcome>> try_submit(FleetJob job);

  /// Stop admitting, run everything already queued, join the pool.
  /// Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] FleetTelemetry& telemetry() noexcept { return telemetry_; }
  [[nodiscard]] const FleetTelemetry& telemetry() const noexcept { return telemetry_; }
  [[nodiscard]] std::vector<QuarantineRecord> quarantine_log() const;
  [[nodiscard]] unsigned pool_size() const noexcept { return pool_size_; }
  [[nodiscard]] std::size_t queue_depth() const;
  /// Diversity fingerprints of the sessions currently installed in each lane.
  [[nodiscard]] std::vector<std::string> live_fingerprints() const;

 private:
  struct PendingJob {
    std::uint64_t id = 0;
    FleetJob fn;
    std::promise<JobOutcome> promise;
  };

  void worker_loop(unsigned lane);
  void run_job(unsigned lane, PendingJob job);
  /// Replace lane's session after quarantine; on persistent factory failure
  /// the lane keeps the poisoned session out of service and reports errors.
  void respawn(unsigned lane, JobOutcome& outcome);

  [[nodiscard]] static unsigned resolve_pool_size(unsigned requested);

  FleetConfig config_;
  unsigned pool_size_;
  SessionFactory factory_;
  FleetTelemetry telemetry_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<PendingJob> queue_;
  bool accepting_ = true;
  std::uint64_t next_job_id_ = 0;

  mutable std::mutex sessions_mutex_;
  std::vector<Session> sessions_;  // one per lane
  std::vector<bool> lane_dead_;    // respawn failed; lane refuses jobs

  mutable std::mutex quarantine_mutex_;
  std::vector<QuarantineRecord> quarantine_log_;

  std::vector<std::jthread> workers_;
};

}  // namespace nv::fleet

#endif  // NV_FLEET_FLEET_H

// Network-level data diversity (cluster companion to the per-host rows of
// Table 1). Chen et al.'s dynamic-network-diversity result (PAPERS.md) is
// the motivation: the paper's per-host entropy argument compounds when the
// *network surface* each shard presents is itself drawn from a keyed space.
//
// Two variations, both first-class registry citizens so the composed cluster
// entropy is measurable through the existing DiversitySuite path:
//
//   port-hopping        R_i(p) = p XOR mask_i over the 16-bit port space.
//                       The transformed program embeds its listen-port
//                       constant reexpressed (GuestContext::bind applies the
//                       VariantConfig::port_coder, mirroring uid_const), and
//                       the monitor's kPort canonicalization inverts it — an
//                       attacker-injected absolute port diverges across
//                       variants and alarms, exactly like a forged UID.
//
//   endpoint-rotation   A drawn 32-bit endpoint token naming the network
//                       address a shard currently answers on. Like stack
//                       reversal it installs no value-domain reexpression
//                       (our simulated kernel has no cross-host network); its
//                       job is honest entropy accounting for the endpoint
//                       space an off-host attacker must rescan after every
//                       rotation, surfaced through keyspace_bits().
#ifndef NV_VARIANTS_NETWORK_DIVERSITY_H
#define NV_VARIANTS_NETWORK_DIVERSITY_H

#include <cstdint>

#include "core/variation.h"

namespace nv::variants {

/// R(p) = p XOR mask over 16-bit ports. Self-inverse, like XorMask for UIDs.
class PortXorMask final : public core::Reexpression<std::uint16_t> {
 public:
  explicit PortXorMask(std::uint16_t mask) noexcept : mask_(mask) {}
  [[nodiscard]] std::uint16_t reexpress(std::uint16_t value) const override {
    return static_cast<std::uint16_t>(value ^ mask_);
  }
  [[nodiscard]] std::uint16_t invert(std::uint16_t value) const override {
    return static_cast<std::uint16_t>(value ^ mask_);
  }
  [[nodiscard]] std::string describe() const override;

 private:
  std::uint16_t mask_;
};

class PortHopping final : public core::Variation {
 public:
  struct Options {
    /// Variant 1's port mask; variant i >= 1 uses mask >> (i-1). Bit 15 set
    /// keeps every shifted mask non-zero and pairwise distinct (same scheme
    /// as UidVariation, shrunk to the 16-bit port space).
    std::uint16_t variant1_mask = 0x8000;
  };

  PortHopping() : PortHopping(Options{}) {}
  explicit PortHopping(Options options) : options_(options) {}

  [[nodiscard]] std::string_view name() const override { return "port-hopping"; }

  [[nodiscard]] std::uint16_t mask_for(unsigned variant) const noexcept;
  [[nodiscard]] core::ReexpressionPtr<std::uint16_t> coder_for(unsigned variant) const;

  void configure_variant(core::VariantConfig& config) const override;

  /// Port-carrying slots get XOR'd; the descriptor table routes every
  /// kPort argument (today: bind) through this.
  [[nodiscard]] std::optional<core::RoleTransform> role_transform(
      vkernel::ArgRole role, unsigned variant) const override;

  /// The fleet draws variant-1 masks with bit 15 set and the 15 low bits
  /// random: 2^15 distinct mask draws regardless of N.
  [[nodiscard]] double keyspace_bits(unsigned /*n_variants*/) const override { return 15.0; }

  [[nodiscard]] std::optional<std::string> disjointedness_violation(
      unsigned vi, unsigned vj) const override;

 private:
  Options options_;
};

class EndpointRotation final : public core::Variation {
 public:
  struct Options {
    /// The drawn token naming this deployment's current network endpoint
    /// (address slot in a shuffled space). Bit 31 is pinned by the draw
    /// policy, so the realized space is the 31 low bits.
    std::uint32_t endpoint = 0x80000000u;
  };

  EndpointRotation() : EndpointRotation(Options{}) {}
  explicit EndpointRotation(Options options) : options_(options) {}

  [[nodiscard]] std::string_view name() const override { return "endpoint-rotation"; }

  [[nodiscard]] std::uint32_t endpoint() const noexcept { return options_.endpoint; }

  /// 31 drawn bits (bit 31 pinned): the endpoint space a blind off-host
  /// scanner must sweep to find where a shard answers.
  [[nodiscard]] double keyspace_bits(unsigned /*n_variants*/) const override { return 31.0; }

  // No configure_variant / role_transform: like stack reversal, this is a
  // layout-style variation with no value-domain reexpression to check, so
  // the default nullopt disjointedness is the honest answer.

 private:
  Options options_;
};

}  // namespace nv::variants

#endif  // NV_VARIANTS_NETWORK_DIVERSITY_H

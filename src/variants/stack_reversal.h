// Reverse-stack-ordering variation (Franz [20]; mentioned in §1 as providing
// probabilistic protection against relative memory-corruption attacks).
//
// Guests that maintain a simulated stack consult VariantConfig::reverse_stack
// and grow it in opposite directions per variant, so a linear overrun that
// corrupts the saved datum in one variant corrupts dead space in the other.
// Included as the paper's "other variations" extension point.
#ifndef NV_VARIANTS_STACK_REVERSAL_H
#define NV_VARIANTS_STACK_REVERSAL_H

#include "core/variation.h"

namespace nv::variants {

class StackReversal final : public core::Variation {
 public:
  [[nodiscard]] std::string_view name() const override { return "stack-reversal"; }

  void configure_variant(core::VariantConfig& config) const override {
    config.reverse_stack = (config.index % 2) == 1;
  }
};

}  // namespace nv::variants

#endif  // NV_VARIANTS_STACK_REVERSAL_H

#include "variants/address_partitioning.h"

// Header-only logic; this translation unit anchors the vtable.
namespace nv::variants {}

#include "variants/network_diversity.h"

#include "util/strings.h"

namespace nv::variants {

std::string PortXorMask::describe() const {
  return util::format("R(p) = p XOR 0x%04x", static_cast<unsigned>(mask_));
}

std::uint16_t PortHopping::mask_for(unsigned variant) const noexcept {
  if (variant == 0) return 0;
  return static_cast<std::uint16_t>(options_.variant1_mask >> (variant - 1));
}

core::ReexpressionPtr<std::uint16_t> PortHopping::coder_for(unsigned variant) const {
  if (variant == 0) return core::identity_port_coder();
  return std::make_shared<PortXorMask>(mask_for(variant));
}

void PortHopping::configure_variant(core::VariantConfig& config) const {
  config.port_coder = coder_for(config.index);
}

std::optional<core::RoleTransform> PortHopping::role_transform(vkernel::ArgRole role,
                                                               unsigned variant) const {
  if (role != vkernel::ArgRole::kPort) return std::nullopt;
  const std::uint16_t mask = mask_for(variant);
  if (mask == 0) return std::nullopt;
  // XOR is self-inverse: R⁻¹_i is the same mask, applied to the low 16 bits.
  const auto recode = [mask](std::uint64_t value) -> std::uint64_t {
    return static_cast<std::uint16_t>(value) ^ mask;
  };
  return core::RoleTransform{recode, recode};
}

std::optional<std::string> PortHopping::disjointedness_violation(unsigned vi,
                                                                 unsigned vj) const {
  const std::uint16_t mask_i = mask_for(vi);
  const std::uint16_t mask_j = mask_for(vj);
  // Same closed form as xor_masks_disjoint: R⁻¹_vi == R⁻¹_vj iff masks agree.
  if (mask_i != mask_j) return std::nullopt;
  return util::format("port masks collide for variants %u and %u (mask 0x%04x)", vi, vj,
                      static_cast<unsigned>(mask_i));
}

}  // namespace nv::variants

#include "variants/instruction_tagging.h"

namespace nv::variants {

std::uint64_t InstructionTagging::load_program(vkernel::AddressSpace& memory, std::uint64_t base,
                                               const vkernel::VmProgram& program,
                                               unsigned variant) const {
  const auto image = program.assemble(tag_for(variant));
  memory.map(base, image.size());
  memory.store_bytes(base, image);
  return image.size();
}

}  // namespace nv::variants

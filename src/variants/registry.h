// The builtin Table-1 catalog, registered by name.
//
//   name                            parameters (all optional)
//   ------------------------------  -----------------------------------------
//   address-partitioning            stride (u64, default 0x80000000)
//   extended-address-partitioning   stride, max-offset (u64, 1<<20), seed
//   instruction-tagging             base-tag (u64, default 0xA0)
//   uid-xor (alias: uid-variation)  mask (u64, 0x7FFFFFFF), files (str list)
//   stack-reversal                  —
//   port-hopping                    mask (u64, default 0x8000; 16-bit)
//   endpoint-rotation               endpoint (u64, default 0x80000000; 32-bit)
//
// Adding a Table-1-style variation is: implement core::Variation (usually
// just role_transform + disjointedness_violation), then register a factory
// here — no monitor, kernel, or call-site changes.
#ifndef NV_VARIANTS_REGISTRY_H
#define NV_VARIANTS_REGISTRY_H

#include "core/variation_registry.h"

namespace nv::variants {

/// Register the builtin variations into `registry` (idempotent per name).
void register_builtin_variations(core::VariationRegistry& registry);

/// The shared process-wide registry, pre-seeded with the builtins.
[[nodiscard]] const core::VariationRegistry& builtin_registry();

/// builtin_registry().make() that throws std::runtime_error carrying the
/// registry's diagnostic ("unknown variation ... (known: ...)") on failure —
/// for call sites with no better error channel (demos, benches, tests).
/// Policy code that can surface errors should call make() directly.
[[nodiscard]] core::VariationPtr make_builtin(std::string_view name,
                                              const core::VariationParams& params = {});

}  // namespace nv::variants

#endif  // NV_VARIANTS_REGISTRY_H

#include "variants/registry.h"

#include <memory>
#include <stdexcept>

#include "variants/address_partitioning.h"
#include "variants/instruction_tagging.h"
#include "variants/network_diversity.h"
#include "variants/stack_reversal.h"
#include "variants/uid_variation.h"

namespace nv::variants {

namespace {

using core::VariationParams;
using core::VariationPtr;
using util::Unexpected;

util::Expected<VariationPtr, std::string> make_address_partitioning(
    const VariationParams& params) {
  const auto stride = params.get_u64("stride", 0x80000000ULL);
  if (!stride) return Unexpected{stride.error()};
  if (*stride == 0) return Unexpected{std::string("stride must be non-zero")};
  return VariationPtr{std::make_shared<AddressPartitioning>(*stride)};
}

util::Expected<VariationPtr, std::string> make_extended_partitioning(
    const VariationParams& params) {
  const auto stride = params.get_u64("stride", 0x80000000ULL);
  const auto max_offset = params.get_u64("max-offset", 1ULL << 20);
  const auto seed = params.get_u64("seed", 1234);
  if (!stride) return Unexpected{stride.error()};
  if (!max_offset) return Unexpected{max_offset.error()};
  if (!seed) return Unexpected{seed.error()};
  if (*stride == 0) return Unexpected{std::string("stride must be non-zero")};
  if (*max_offset < 2 * 4096) {
    return Unexpected{std::string("max-offset must allow at least one 4KiB page of jitter")};
  }
  return VariationPtr{
      std::make_shared<ExtendedAddressPartitioning>(*stride, *max_offset, *seed)};
}

util::Expected<VariationPtr, std::string> make_instruction_tagging(
    const VariationParams& params) {
  const auto base_tag = params.get_u64("base-tag", 0xA0);
  if (!base_tag) return Unexpected{base_tag.error()};
  if (*base_tag > 0xFF) return Unexpected{std::string("base-tag must fit in one byte")};
  return VariationPtr{
      std::make_shared<InstructionTagging>(static_cast<std::uint8_t>(*base_tag))};
}

util::Expected<VariationPtr, std::string> make_uid_xor(const VariationParams& params) {
  UidVariation::Options options;
  const auto mask = params.get_u64("mask", options.variant1_mask);
  const auto files = params.get_strings("files", options.diversified_files);
  if (!mask) return Unexpected{mask.error()};
  if (!files) return Unexpected{files.error()};
  if (*mask > 0xFFFFFFFFULL) return Unexpected{std::string("mask must fit in 32 bits")};
  options.variant1_mask = static_cast<os::uid_t>(*mask);
  options.diversified_files = *files;
  return VariationPtr{std::make_shared<UidVariation>(options)};
}

util::Expected<VariationPtr, std::string> make_stack_reversal(const VariationParams&) {
  return VariationPtr{std::make_shared<StackReversal>()};
}

util::Expected<VariationPtr, std::string> make_port_hopping(const VariationParams& params) {
  PortHopping::Options options;
  const auto mask = params.get_u64("mask", options.variant1_mask);
  if (!mask) return Unexpected{mask.error()};
  if (*mask == 0 || *mask > 0xFFFFULL) {
    return Unexpected{std::string("mask must be a non-zero 16-bit port mask")};
  }
  options.variant1_mask = static_cast<std::uint16_t>(*mask);
  return VariationPtr{std::make_shared<PortHopping>(options)};
}

util::Expected<VariationPtr, std::string> make_endpoint_rotation(const VariationParams& params) {
  EndpointRotation::Options options;
  const auto endpoint = params.get_u64("endpoint", options.endpoint);
  if (!endpoint) return Unexpected{endpoint.error()};
  if (*endpoint > 0xFFFFFFFFULL) {
    return Unexpected{std::string("endpoint must fit in 32 bits")};
  }
  options.endpoint = static_cast<std::uint32_t>(*endpoint);
  return VariationPtr{std::make_shared<EndpointRotation>(options)};
}

}  // namespace

void register_builtin_variations(core::VariationRegistry& registry) {
  registry.add("address-partitioning",
               "disjoint data-segment bases per variant (Table 1 row 1)",
               make_address_partitioning);
  registry.add("extended-address-partitioning",
               "partitioning plus per-variant page-aligned offset (Bruschi, row 2)",
               make_extended_partitioning);
  registry.add("instruction-tagging",
               "per-variant instruction tags checked by the VM (row 3)",
               make_instruction_tagging);
  registry.add("uid-xor", "UID data diversity via per-variant XOR masks (§3, row 4)",
               make_uid_xor, {"uid-variation"});
  registry.add("stack-reversal",
               "opposite stack growth directions per variant (Franz [20])",
               make_stack_reversal);
  registry.add("port-hopping",
               "per-variant XOR masks over the 16-bit port space (network diversity)",
               make_port_hopping);
  registry.add("endpoint-rotation",
               "drawn endpoint token for shard-level network-address shuffling",
               make_endpoint_rotation);
}

const core::VariationRegistry& builtin_registry() {
  static const core::VariationRegistry registry = [] {
    core::VariationRegistry seeded;
    register_builtin_variations(seeded);
    return seeded;
  }();
  return registry;
}

core::VariationPtr make_builtin(std::string_view name, const core::VariationParams& params) {
  auto variation = builtin_registry().make(name, params);
  if (!variation) throw std::runtime_error(variation.error());
  return std::move(variation).value();
}

}  // namespace nv::variants

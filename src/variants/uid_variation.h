// The paper's contribution (§3): UID data diversity.
//
//   R_0(u) = u                      (variant 0 runs the original program)
//   R_1(u) = u XOR 0x7FFFFFFF      (variant 1's root is 0x7FFFFFFF)
//
// The mask deliberately leaves the high bit unflipped because the kernel
// treats high-bit-set UIDs ((uid_t)-1 and friends) as special sentinels
// (§3.2). The paper accepts — and we reproduce — the resulting weakness:
// an attack that flips ONLY the high bit of a stored UID escapes detection,
// while any full-word or byte-granular corruption is caught.
//
// For N > 2 variants, variant i (i >= 1) uses mask 0x7FFFFFFF >> (i-1),
// which keeps all masks pairwise distinct, non-zero, and high-bit-clear, so
// pairwise disjointedness holds.
#ifndef NV_VARIANTS_UID_VARIATION_H
#define NV_VARIANTS_UID_VARIATION_H

#include <string>
#include <vector>

#include "core/variation.h"

namespace nv::variants {

class UidVariation final : public core::Variation {
 public:
  struct Options {
    os::uid_t variant1_mask = 0x7FFFFFFF;
    /// Trusted UID-bearing files to diversify into unshared per-variant
    /// copies (§3.4). Files whose basename contains "group" are treated as
    /// group-format; everything else as passwd-format.
    std::vector<std::string> diversified_files = {"/etc/passwd", "/etc/group"};
  };

  UidVariation() : UidVariation(Options{}) {}
  explicit UidVariation(Options options);

  [[nodiscard]] std::string_view name() const override { return "uid-variation"; }

  [[nodiscard]] os::uid_t mask_for(unsigned variant) const noexcept;
  [[nodiscard]] core::ReexpressionPtr<os::uid_t> coder_for(unsigned variant) const;

  void configure_variant(core::VariantConfig& config) const override;
  void prepare_filesystem(vfs::FileSystem& fs, unsigned n_variants) const override;
  [[nodiscard]] std::vector<std::string> unshared_paths() const override;

  /// The whole syscall-boundary story: UID-carrying slots get XOR'd. The
  /// descriptor table routes every uid-role argument and result through this.
  [[nodiscard]] std::optional<core::RoleTransform> role_transform(vkernel::ArgRole role,
                                                                  unsigned variant) const override;

  /// The fleet draws variant-1 masks with bit 30 set and the 30 low bits
  /// random (high bit clear so sentinel UIDs keep their meaning, §3.2):
  /// 2^30 distinct mask draws regardless of N (the per-variant shifts follow
  /// deterministically from the one drawn mask).
  [[nodiscard]] double keyspace_bits(unsigned /*n_variants*/) const override { return 30.0; }

  /// §2.3 for XOR masks: R⁻¹_vi == R⁻¹_vj exactly when the masks collide
  /// (e.g. variant1_mask = 0, or N large enough that `mask >> (i-1)` hits 0).
  [[nodiscard]] std::optional<std::string> disjointedness_violation(unsigned vi,
                                                                    unsigned vj) const override;

 private:
  Options options_;
};

}  // namespace nv::variants

#endif  // NV_VARIANTS_UID_VARIATION_H

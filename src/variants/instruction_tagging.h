// Instruction-set tagging (Table 1 row 3; Cox et al. [16]).
//
// Trusted code is loaded with a per-variant tag prepended to every
// instruction (R_i(inst) = tag_i || inst); the VM checks and strips the tag
// before execution. Injected code carries one concrete byte sequence, so its
// tags can match at most one variant's expectation.
#ifndef NV_VARIANTS_INSTRUCTION_TAGGING_H
#define NV_VARIANTS_INSTRUCTION_TAGGING_H

#include <cmath>

#include "core/variation.h"
#include "vkernel/vm.h"

namespace nv::variants {

class InstructionTagging final : public core::Variation {
 public:
  explicit InstructionTagging(std::uint8_t base_tag = 0xA0) : base_tag_(base_tag) {}

  [[nodiscard]] std::string_view name() const override { return "instruction-tagging"; }

  void configure_variant(core::VariantConfig& config) const override {
    config.code_tag = tag_for(config.index);
  }

  [[nodiscard]] std::uint8_t tag_for(unsigned variant) const noexcept {
    return static_cast<std::uint8_t>(base_tag_ + variant);
  }

  /// Load `program` into `memory` at `base`, tagged for `variant`; returns
  /// the image size. This is the "loader applies R_i" step.
  std::uint64_t load_program(vkernel::AddressSpace& memory, std::uint64_t base,
                             const vkernel::VmProgram& program, unsigned variant) const;

  [[nodiscard]] core::InstructionTag reexpression(unsigned variant) const {
    return core::InstructionTag{tag_for(variant)};
  }

  /// The fleet draws the base tag uniformly from [1, 0xFF-(N-1)] so the
  /// highest variant's tag never wraps: 255-(N-1) distinct draws.
  [[nodiscard]] double keyspace_bits(unsigned n_variants) const override {
    const unsigned draws = n_variants < 255 ? 255U - (n_variants - 1) : 1U;
    return std::log2(static_cast<double>(draws));
  }

  /// Tags are disjoint when they differ; base_tag + variant wraps at 256, so
  /// composing 256+ variants would silently reuse a tag — caught here.
  [[nodiscard]] std::optional<std::string> disjointedness_violation(unsigned vi,
                                                                    unsigned vj) const override {
    if (tag_for(vi) != tag_for(vj)) return std::nullopt;
    return std::string(name()) + ": variants " + std::to_string(vi) + " and " +
           std::to_string(vj) + " share instruction tag";
  }

 private:
  std::uint8_t base_tag_;
};

}  // namespace nv::variants

#endif  // NV_VARIANTS_INSTRUCTION_TAGGING_H

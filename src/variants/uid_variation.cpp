#include "variants/uid_variation.h"

#include "vfs/passwd.h"
#include "vfs/path.h"

namespace nv::variants {

UidVariation::UidVariation(Options options) : options_(std::move(options)) {}

os::uid_t UidVariation::mask_for(unsigned variant) const noexcept {
  if (variant == 0) return 0;
  return options_.variant1_mask >> (variant - 1);
}

core::ReexpressionPtr<os::uid_t> UidVariation::coder_for(unsigned variant) const {
  if (variant == 0) return std::make_shared<core::Identity<os::uid_t>>();
  return std::make_shared<core::XorMask>(mask_for(variant));
}

void UidVariation::configure_variant(core::VariantConfig& config) const {
  config.uid_coder = coder_for(config.index);
}

void UidVariation::prepare_filesystem(vfs::FileSystem& fs, unsigned n_variants) const {
  const os::Credentials root = os::Credentials::root();
  for (const auto& path : options_.diversified_files) {
    auto original = fs.read_file(path, root);
    if (!original) continue;  // file absent in this deployment: nothing to diversify
    const bool is_group = vfs::basename(path).find("group") != std::string::npos;
    for (unsigned v = 0; v < n_variants; ++v) {
      const os::uid_t mask = mask_for(v);
      auto recode = [mask](os::uid_t u) { return u ^ mask; };
      const std::string content = is_group
                                      ? vfs::diversify_group(*original, recode)
                                      : vfs::diversify_passwd(*original, recode, recode);
      auto stat = fs.stat(path);
      const os::mode_t mode = stat ? stat->mode : 0644;
      if (!fs.write_file(vfs::variant_path(path, v), content, root, mode)) {
        continue;  // leave the copy absent; opens will fail loudly at runtime
      }
    }
  }
}

std::vector<std::string> UidVariation::unshared_paths() const {
  return options_.diversified_files;
}

void UidVariation::canonicalize_args(unsigned variant, vkernel::SyscallArgs& args) const {
  const os::uid_t mask = mask_for(variant);
  if (mask == 0) return;
  for (const std::size_t index : vkernel::uid_arg_indices(args)) {
    if (index < args.ints.size()) {
      args.ints[index] =
          static_cast<os::uid_t>(args.ints[index]) ^ mask;  // R⁻¹_i is the same XOR
    }
  }
}

void UidVariation::reexpress_result(unsigned variant, const vkernel::SyscallArgs& canonical,
                                    vkernel::SyscallResult& result) const {
  const os::uid_t mask = mask_for(variant);
  if (mask == 0) return;
  if (vkernel::returns_uid(canonical.no) && result.ok()) {
    result.value = static_cast<os::uid_t>(result.value) ^ mask;
  }
}

}  // namespace nv::variants

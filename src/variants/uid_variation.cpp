#include "variants/uid_variation.h"

#include "util/strings.h"
#include "vfs/passwd.h"
#include "vfs/path.h"

namespace nv::variants {

UidVariation::UidVariation(Options options) : options_(std::move(options)) {}

os::uid_t UidVariation::mask_for(unsigned variant) const noexcept {
  if (variant == 0) return 0;
  return options_.variant1_mask >> (variant - 1);
}

core::ReexpressionPtr<os::uid_t> UidVariation::coder_for(unsigned variant) const {
  if (variant == 0) return std::make_shared<core::Identity<os::uid_t>>();
  return std::make_shared<core::XorMask>(mask_for(variant));
}

void UidVariation::configure_variant(core::VariantConfig& config) const {
  config.uid_coder = coder_for(config.index);
}

void UidVariation::prepare_filesystem(vfs::FileSystem& fs, unsigned n_variants) const {
  const os::Credentials root = os::Credentials::root();
  for (const auto& path : options_.diversified_files) {
    auto original = fs.read_file(path, root);
    if (!original) continue;  // file absent in this deployment: nothing to diversify
    const bool is_group = vfs::basename(path).find("group") != std::string::npos;
    for (unsigned v = 0; v < n_variants; ++v) {
      const os::uid_t mask = mask_for(v);
      auto recode = [mask](os::uid_t u) { return u ^ mask; };
      const std::string content = is_group
                                      ? vfs::diversify_group(*original, recode)
                                      : vfs::diversify_passwd(*original, recode, recode);
      auto stat = fs.stat(path);
      const os::mode_t mode = stat ? stat->mode : 0644;
      if (!fs.write_file(vfs::variant_path(path, v), content, root, mode)) {
        continue;  // leave the copy absent; opens will fail loudly at runtime
      }
    }
  }
}

std::vector<std::string> UidVariation::unshared_paths() const {
  return options_.diversified_files;
}

std::optional<core::RoleTransform> UidVariation::role_transform(vkernel::ArgRole role,
                                                                unsigned variant) const {
  if (role != vkernel::ArgRole::kUid) return std::nullopt;
  const os::uid_t mask = mask_for(variant);
  if (mask == 0) return std::nullopt;
  // XOR is self-inverse: R⁻¹_i is the same mask.
  const auto recode = [mask](std::uint64_t value) -> std::uint64_t {
    return static_cast<os::uid_t>(value) ^ mask;
  };
  return core::RoleTransform{recode, recode};
}

std::optional<std::string> UidVariation::disjointedness_violation(unsigned vi, unsigned vj) const {
  const os::uid_t mask_i = mask_for(vi);
  const os::uid_t mask_j = mask_for(vj);
  if (core::xor_masks_disjoint(mask_i, mask_j)) return std::nullopt;
  // Equal masks: every sampled value is a violation; quote the first as proof.
  const auto samples = core::uid_property_samples(16);
  const auto violations = core::disjointedness_violations(
      core::XorMask(mask_i), core::XorMask(mask_j), samples);
  return util::format("uid masks collide for variants %u and %u (mask %s, e.g. R⁻¹(%s) agrees)",
                      vi, vj, util::hex32(mask_i).c_str(),
                      util::hex32(violations.empty() ? 0 : violations.front()).c_str());
}

}  // namespace nv::variants

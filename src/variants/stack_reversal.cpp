#include "variants/stack_reversal.h"

// Header-only logic; this translation unit anchors the vtable.
namespace nv::variants {}

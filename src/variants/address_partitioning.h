// Address-space partitioning (Table 1 rows 1-2; Cox et al. [16], Bruschi et
// al. [9]).
//
// Variant i's data segment is placed at disjoint bases: an attacker-injected
// absolute address can be mapped in at most one variant, so the other takes a
// memory fault the monitor observes (Figure 1). The extended variant adds a
// per-variant extra offset so that even partial (low-byte) pointer overwrites
// land at different relative targets across variants.
#ifndef NV_VARIANTS_ADDRESS_PARTITIONING_H
#define NV_VARIANTS_ADDRESS_PARTITIONING_H

#include <cmath>

#include "core/variation.h"
#include "util/rng.h"
#include "util/strings.h"

namespace nv::variants {

class AddressPartitioning : public core::Variation {
 public:
  explicit AddressPartitioning(std::uint64_t partition_stride = 0x80000000ULL)
      : stride_(partition_stride) {}

  [[nodiscard]] std::string_view name() const override { return "address-partitioning"; }

  void configure_variant(core::VariantConfig& config) const override {
    config.memory_base += stride_ * config.index + extra_offset(config.index);
  }

  /// R_i over addresses, for property checks and Table 1 rendering.
  [[nodiscard]] core::AddressOffset reexpression(unsigned variant) const {
    return core::AddressOffset{stride_ * variant + extra_offset(variant)};
  }

  /// Address offsets are disjoint (§2.3) exactly when they differ: equal
  /// offsets (stride 0, or an extended offset collision) invert identically
  /// on every address. Sampled via the shared disjointedness verifier.
  [[nodiscard]] std::optional<std::string> disjointedness_violation(unsigned vi,
                                                                    unsigned vj) const override {
    const auto violations = core::disjointedness_violations(
        reexpression(vi), reexpression(vj), core::address_property_samples(16));
    if (violations.empty()) return std::nullopt;
    return std::string(name()) + ": variants " + std::to_string(vi) + " and " +
           std::to_string(vj) + " share an address offset";
  }

  /// The fleet draws the stride as one of 16 multiples of 256 MiB: a 4-bit
  /// re-expression keyspace. Small by design — and exactly why the exhaustion
  /// accounting exists: 17 unique sessions are one more than this space holds.
  [[nodiscard]] double keyspace_bits(unsigned /*n_variants*/) const override { return 4.0; }

  [[nodiscard]] std::uint64_t stride() const noexcept { return stride_; }

 protected:
  [[nodiscard]] virtual std::uint64_t extra_offset(unsigned /*variant*/) const { return 0; }

 private:
  std::uint64_t stride_;
};

/// Bruschi et al.'s extension: R_1(a) = a + 0x80000000 + offset, with the
/// per-variant offset page-aligned and drawn from a seeded generator.
class ExtendedAddressPartitioning final : public AddressPartitioning {
 public:
  ExtendedAddressPartitioning(std::uint64_t partition_stride, std::uint64_t max_offset,
                              std::uint64_t seed)
      : AddressPartitioning(partition_stride), max_offset_(max_offset), seed_(seed) {}

  [[nodiscard]] std::string_view name() const override {
    return "extended-address-partitioning";
  }

  /// The fleet draws a full 64-bit seed, but the seed is NOT what an attacker
  /// probes: the OBSERVABLE layout is the derived page-offset vector, with
  /// (max_offset/4096 - 1) choices per offset-carrying variant (variant 0 is
  /// pinned at offset 0). Different seeds can collide on one layout, so the
  /// honest keyspace — the space SessionFactory's collision-aware ledger
  /// enforces via observable_key() — is (n-1)·log2(max_offset/4096 - 1) bits.
  [[nodiscard]] double keyspace_bits(unsigned n_variants) const override {
    const double layouts_per_variant = static_cast<double>(max_offset_ / 4096 - 1);
    const unsigned offset_variants = n_variants > 0 ? n_variants - 1 : 0;
    if (layouts_per_variant < 2.0) return 0.0;  // single possible layout: no entropy
    return static_cast<double>(offset_variants) * std::log2(layouts_per_variant);
  }

  /// The derived layout the attacker actually observes: one page offset per
  /// offset-carrying variant. Seeds that collide onto the same offsets are
  /// the SAME diversity key — the factory ledger counts this, not the seed.
  [[nodiscard]] std::optional<std::string> observable_key(unsigned n_variants) const override {
    std::string key = "offsets=";
    for (unsigned v = 1; v < n_variants; ++v) {
      if (v > 1) key += ",";
      key += util::format("0x%llx", static_cast<unsigned long long>(extra_offset(v)));
    }
    return key;
  }

 protected:
  [[nodiscard]] std::uint64_t extra_offset(unsigned variant) const override {
    if (variant == 0) return 0;
    util::Rng rng{seed_ + variant};
    // Always at least one page so the variant layouts genuinely differ.
    return (rng.below(max_offset_ / 4096 - 1) + 1) * 4096;
  }

 private:
  std::uint64_t max_offset_;
  std::uint64_t seed_;
};

}  // namespace nv::variants

#endif  // NV_VARIANTS_ADDRESS_PARTITIONING_H

// Address-space partitioning (Table 1 rows 1-2; Cox et al. [16], Bruschi et
// al. [9]).
//
// Variant i's data segment is placed at disjoint bases: an attacker-injected
// absolute address can be mapped in at most one variant, so the other takes a
// memory fault the monitor observes (Figure 1). The extended variant adds a
// per-variant extra offset so that even partial (low-byte) pointer overwrites
// land at different relative targets across variants.
#ifndef NV_VARIANTS_ADDRESS_PARTITIONING_H
#define NV_VARIANTS_ADDRESS_PARTITIONING_H

#include "core/variation.h"
#include "util/rng.h"

namespace nv::variants {

class AddressPartitioning : public core::Variation {
 public:
  explicit AddressPartitioning(std::uint64_t partition_stride = 0x80000000ULL)
      : stride_(partition_stride) {}

  [[nodiscard]] std::string_view name() const override { return "address-partitioning"; }

  void configure_variant(core::VariantConfig& config) const override {
    config.memory_base += stride_ * config.index + extra_offset(config.index);
  }

  /// R_i over addresses, for property checks and Table 1 rendering.
  [[nodiscard]] core::AddressOffset reexpression(unsigned variant) const {
    return core::AddressOffset{stride_ * variant + extra_offset(variant)};
  }

  /// Address offsets are disjoint (§2.3) exactly when they differ: equal
  /// offsets (stride 0, or an extended offset collision) invert identically
  /// on every address. Sampled via the shared disjointedness verifier.
  [[nodiscard]] std::optional<std::string> disjointedness_violation(unsigned vi,
                                                                    unsigned vj) const override {
    const auto violations = core::disjointedness_violations(
        reexpression(vi), reexpression(vj), core::address_property_samples(16));
    if (violations.empty()) return std::nullopt;
    return std::string(name()) + ": variants " + std::to_string(vi) + " and " +
           std::to_string(vj) + " share an address offset";
  }

  /// The fleet draws the stride as one of 16 multiples of 256 MiB: a 4-bit
  /// re-expression keyspace. Small by design — and exactly why the exhaustion
  /// accounting exists: 17 unique sessions are one more than this space holds.
  [[nodiscard]] double keyspace_bits(unsigned /*n_variants*/) const override { return 4.0; }

  [[nodiscard]] std::uint64_t stride() const noexcept { return stride_; }

 protected:
  [[nodiscard]] virtual std::uint64_t extra_offset(unsigned /*variant*/) const { return 0; }

 private:
  std::uint64_t stride_;
};

/// Bruschi et al.'s extension: R_1(a) = a + 0x80000000 + offset, with the
/// per-variant offset page-aligned and drawn from a seeded generator.
class ExtendedAddressPartitioning final : public AddressPartitioning {
 public:
  ExtendedAddressPartitioning(std::uint64_t partition_stride, std::uint64_t max_offset,
                              std::uint64_t seed)
      : AddressPartitioning(partition_stride), max_offset_(max_offset), seed_(seed) {}

  [[nodiscard]] std::string_view name() const override {
    return "extended-address-partitioning";
  }

  /// The fleet draws a full 64-bit seed, and that seed IS the diversity key
  /// the SessionFactory's uniqueness ledger counts — so the draw space is 64
  /// bits. The OBSERVABLE layout space can be smaller ((max_offset/4096 - 1)
  /// page offsets per offset-carrying variant; different seeds can collide
  /// on a layout); a collision-aware ledger is a named ROADMAP follow-on.
  /// Reporting the seed space here keeps exhaustion accounting aligned with
  /// what the factory actually enforces: claiming ~2^8 keys while the
  /// factory can issue 2^64 unique fingerprints would spuriously trip the
  /// fleet's exhaustion posture and disable rotation against a factory that
  /// still works.
  [[nodiscard]] double keyspace_bits(unsigned /*n_variants*/) const override { return 64.0; }

 protected:
  [[nodiscard]] std::uint64_t extra_offset(unsigned variant) const override {
    if (variant == 0) return 0;
    util::Rng rng{seed_ + variant};
    // Always at least one page so the variant layouts genuinely differ.
    return (rng.below(max_offset_ / 4096 - 1) + 1) * 4096;
  }

 private:
  std::uint64_t max_offset_;
  std::uint64_t seed_;
};

}  // namespace nv::variants

#endif  // NV_VARIANTS_ADDRESS_PARTITIONING_H

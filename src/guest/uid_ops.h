// UidOps: the §3.3 program transformation, reified.
//
// A transformed program must (a) use reexpressed UID constants and (b) have
// every instruction that operates on UID values rewritten to preserve
// semantics. UidOps is that rewrite as a library: guests route ALL UID
// comparisons and checks through it. Three modes capture the design space the
// paper discusses:
//
//   kPlain            — untransformed operations, no detection calls. This is
//                       what an unprotected program does; under the UID
//                       variation it still works on normal inputs (equality
//                       compares are representation-independent) but exposes
//                       the §5 trade-off: corruption is only caught later, at
//                       the next UID-carrying syscall.
//   kSyscallChecked   — comparisons become cc_* detection syscalls and single
//                       UID uses become uid_value() (the paper's deployed
//                       design: identical instruction streams, immediate
//                       detection).
//   kUserSpaceReversed— comparisons stay in user space; on reexpressed
//                       variants inequality operators are logically reversed
//                       (§3.3), and outcomes are exposed via cond_chk. This
//                       is the alternative §3.5 mentions, with divergent
//                       instruction streams as its drawback.
#ifndef NV_GUEST_UID_OPS_H
#define NV_GUEST_UID_OPS_H

#include "guest/guest_program.h"

namespace nv::guest {

enum class UidOpsMode { kPlain, kSyscallChecked, kUserSpaceReversed };

[[nodiscard]] std::string_view to_string(UidOpsMode mode) noexcept;

class UidOps {
 public:
  UidOps(GuestContext& ctx, UidOpsMode mode);

  [[nodiscard]] UidOpsMode mode() const noexcept { return mode_; }

  // All operands are in the variant's representation.
  [[nodiscard]] bool eq(os::uid_t a, os::uid_t b);
  [[nodiscard]] bool neq(os::uid_t a, os::uid_t b);
  [[nodiscard]] bool lt(os::uid_t a, os::uid_t b);
  [[nodiscard]] bool leq(os::uid_t a, os::uid_t b);
  [[nodiscard]] bool gt(os::uid_t a, os::uid_t b);
  [[nodiscard]] bool geq(os::uid_t a, os::uid_t b);

  /// if (!getuid()) — the implicit-constant pattern §3.3 rewrites into an
  /// explicit comparison with the (transformed) constant 0.
  [[nodiscard]] bool is_root(os::uid_t uid);

  /// Expose a single UID use to the monitor (uid_value in checked modes).
  [[nodiscard]] os::uid_t check_value(os::uid_t uid);

  /// Expose a UID-influenced branch outcome to the monitor (cond_chk).
  [[nodiscard]] bool check_cond(bool condition);

 private:
  [[nodiscard]] bool compare(vkernel::CcOp op, os::uid_t a, os::uid_t b);
  /// Whether this variant's representation reverses the UID order (true when
  /// the coder is a non-trivial mask over the low bits).
  [[nodiscard]] bool order_reversed() const;

  GuestContext& ctx_;
  UidOpsMode mode_;
};

}  // namespace nv::guest

#endif  // NV_GUEST_UID_OPS_H

#include "guest/guest_program.h"

namespace nv::guest {

using vkernel::Sys;
using vkernel::SyscallArgs;
using vkernel::SyscallResult;

namespace {
util::Unexpected<os::Errno> sys_fail(os::Errno e) { return util::Unexpected<os::Errno>{e}; }
}  // namespace

SysResult<os::fd_t> GuestContext::open(std::string_view path, os::OpenFlags flags,
                                       os::mode_t mode) {
  SyscallArgs args;
  args.no = Sys::kOpen;
  args.ints = {static_cast<std::uint64_t>(flags), mode};
  args.strs = {std::string(path)};
  const SyscallResult r = raw_syscall(std::move(args));
  if (!r.ok()) return sys_fail(r.err);
  return static_cast<os::fd_t>(r.value);
}

os::Errno GuestContext::close(os::fd_t fd) {
  SyscallArgs args;
  args.no = Sys::kClose;
  args.ints = {static_cast<std::uint64_t>(fd)};
  return raw_syscall(std::move(args)).err;
}

SysResult<std::string> GuestContext::read(os::fd_t fd, std::size_t count) {
  SyscallArgs args;
  args.no = Sys::kRead;
  args.ints = {static_cast<std::uint64_t>(fd), count};
  SyscallResult r = raw_syscall(std::move(args));
  if (!r.ok()) return sys_fail(r.err);
  return std::move(r.data);
}

SysResult<std::size_t> GuestContext::write(os::fd_t fd, std::string_view data) {
  SyscallArgs args;
  args.no = Sys::kWrite;
  args.ints = {static_cast<std::uint64_t>(fd)};
  args.strs = {std::string(data)};
  const SyscallResult r = raw_syscall(std::move(args));
  if (!r.ok()) return sys_fail(r.err);
  return static_cast<std::size_t>(r.value);
}

SysResult<std::size_t> GuestContext::write_batch(os::fd_t fd,
                                                 const std::vector<std::string_view>& chunks) {
  vkernel::SyscallBatch batch;
  batch.calls.reserve(chunks.size());
  for (const auto chunk : chunks) {
    SyscallArgs args;
    args.no = Sys::kWrite;
    args.ints = {static_cast<std::uint64_t>(fd)};
    args.strs = {std::string(chunk)};
    batch.calls.push_back(std::move(args));
  }
  std::size_t total = 0;
  for (const SyscallResult& r : raw_syscall_batch(batch)) {
    if (!r.ok()) return sys_fail(r.err);
    total += static_cast<std::size_t>(r.value);
  }
  return total;
}

SysResult<std::uint64_t> GuestContext::seek(os::fd_t fd, std::uint64_t offset) {
  SyscallArgs args;
  args.no = Sys::kSeek;
  args.ints = {static_cast<std::uint64_t>(fd), offset};
  const SyscallResult r = raw_syscall(std::move(args));
  if (!r.ok()) return sys_fail(r.err);
  return r.value;
}

SysResult<vfs::Stat> GuestContext::stat(std::string_view path) {
  SyscallArgs args;
  args.no = Sys::kStat;
  args.strs = {std::string(path)};
  const SyscallResult r = raw_syscall(std::move(args));
  if (!r.ok()) return sys_fail(r.err);
  vfs::Stat s;
  if (r.out_ints.size() >= 6) {
    s.ino = r.out_ints[0];
    s.is_dir = r.out_ints[1] != 0;
    s.mode = static_cast<os::mode_t>(r.out_ints[2]);
    s.uid = static_cast<os::uid_t>(r.out_ints[3]);
    s.gid = static_cast<os::gid_t>(r.out_ints[4]);
    s.size = r.out_ints[5];
  }
  return s;
}

os::Errno GuestContext::unlink(std::string_view path) {
  SyscallArgs args;
  args.no = Sys::kUnlink;
  args.strs = {std::string(path)};
  return raw_syscall(std::move(args)).err;
}

os::Errno GuestContext::mkdir(std::string_view path, os::mode_t mode) {
  SyscallArgs args;
  args.no = Sys::kMkdir;
  args.ints = {mode};
  args.strs = {std::string(path)};
  return raw_syscall(std::move(args)).err;
}

SysResult<std::string> GuestContext::read_file(std::string_view path) {
  auto fd = open(path, os::OpenFlags::kRead);
  if (!fd) return sys_fail(fd.error());
  std::string content;
  while (true) {
    auto chunk = read(*fd, 4096);
    if (!chunk) {
      (void)close(*fd);
      return sys_fail(chunk.error());
    }
    if (chunk->empty()) break;
    content += *chunk;
  }
  (void)close(*fd);
  return content;
}

namespace {
SyscallArgs no_arg_call(Sys sys) {
  SyscallArgs args;
  args.no = sys;
  return args;
}
SyscallArgs one_arg_call(Sys sys, std::uint64_t a) {
  SyscallArgs args;
  args.no = sys;
  args.ints = {a};
  return args;
}
}  // namespace

os::uid_t GuestContext::getuid() {
  return static_cast<os::uid_t>(raw_syscall(no_arg_call(Sys::kGetuid)).value);
}
os::uid_t GuestContext::geteuid() {
  return static_cast<os::uid_t>(raw_syscall(no_arg_call(Sys::kGeteuid)).value);
}
os::gid_t GuestContext::getgid() {
  return static_cast<os::gid_t>(raw_syscall(no_arg_call(Sys::kGetgid)).value);
}
os::gid_t GuestContext::getegid() {
  return static_cast<os::gid_t>(raw_syscall(no_arg_call(Sys::kGetegid)).value);
}
os::Errno GuestContext::setuid(os::uid_t uid) {
  return raw_syscall(one_arg_call(Sys::kSetuid, uid)).err;
}
os::Errno GuestContext::seteuid(os::uid_t uid) {
  return raw_syscall(one_arg_call(Sys::kSeteuid, uid)).err;
}
os::Errno GuestContext::setreuid(os::uid_t ruid, os::uid_t euid) {
  SyscallArgs args;
  args.no = Sys::kSetreuid;
  args.ints = {ruid, euid};
  return raw_syscall(std::move(args)).err;
}
os::Errno GuestContext::setresuid(os::uid_t ruid, os::uid_t euid, os::uid_t suid) {
  SyscallArgs args;
  args.no = Sys::kSetresuid;
  args.ints = {ruid, euid, suid};
  return raw_syscall(std::move(args)).err;
}
os::Errno GuestContext::setgid(os::gid_t gid) {
  return raw_syscall(one_arg_call(Sys::kSetgid, gid)).err;
}
os::Errno GuestContext::setegid(os::gid_t gid) {
  return raw_syscall(one_arg_call(Sys::kSetegid, gid)).err;
}
os::Errno GuestContext::setgroups(const std::vector<os::gid_t>& groups) {
  SyscallArgs args;
  args.no = Sys::kSetgroups;
  for (os::gid_t g : groups) args.ints.push_back(g);
  return raw_syscall(std::move(args)).err;
}

SysResult<os::fd_t> GuestContext::socket() {
  const SyscallResult r = raw_syscall(no_arg_call(Sys::kSocket));
  if (!r.ok()) return sys_fail(r.err);
  return static_cast<os::fd_t>(r.value);
}
os::Errno GuestContext::bind(os::fd_t fd, std::uint16_t port) {
  SyscallArgs args;
  args.no = Sys::kBind;
  // The transformed program embeds its listen-port constant reexpressed
  // (R_i), exactly like uid_const(): the monitor's kPort canonicalization
  // inverts it, so benign binds agree while an injected raw port diverges.
  args.ints = {static_cast<std::uint64_t>(fd), config_.port_coder->reexpress(port)};
  return raw_syscall(std::move(args)).err;
}
os::Errno GuestContext::listen(os::fd_t fd) {
  return raw_syscall(one_arg_call(Sys::kListen, static_cast<std::uint64_t>(fd))).err;
}
SysResult<os::fd_t> GuestContext::accept(os::fd_t fd) {
  const SyscallResult r = raw_syscall(one_arg_call(Sys::kAccept, static_cast<std::uint64_t>(fd)));
  if (!r.ok()) return sys_fail(r.err);
  return static_cast<os::fd_t>(r.value);
}

os::pid_t GuestContext::getpid() {
  return static_cast<os::pid_t>(raw_syscall(no_arg_call(Sys::kGetpid)).value);
}
std::uint64_t GuestContext::gettime() { return raw_syscall(no_arg_call(Sys::kGettime)).value; }

void GuestContext::exit(int code) {
  (void)raw_syscall(one_arg_call(Sys::kExit, static_cast<std::uint64_t>(code)));
  throw GuestExit{code};
}

std::optional<std::string> GuestContext::poll_event() {
  SyscallResult r = raw_syscall(no_arg_call(Sys::kPollEvent));
  if (r.value == 0) return std::nullopt;
  return std::move(r.data);
}

os::uid_t GuestContext::uid_value(os::uid_t uid) {
  return static_cast<os::uid_t>(raw_syscall(one_arg_call(Sys::kUidValue, uid)).value);
}

bool GuestContext::cond_chk(bool condition) {
  return raw_syscall(one_arg_call(Sys::kCondChk, condition ? 1 : 0)).value != 0;
}

bool GuestContext::cc(vkernel::CcOp op, os::uid_t a, os::uid_t b) {
  SyscallArgs args;
  args.no = Sys::kCcCmp;
  args.ints = {static_cast<std::uint64_t>(op), a, b};
  return raw_syscall(std::move(args)).value != 0;
}

vkernel::VmResult GuestContext::execute_code(std::uint64_t entry, std::uint64_t max_steps) {
  return vkernel::vm_run(process_.memory(), entry, config_.code_tag, port_, max_steps);
}

std::optional<vfs::PasswdEntry> GuestContext::getpwnam(std::string_view name) {
  auto content = read_file("/etc/passwd");
  if (!content) return std::nullopt;
  return vfs::find_user(vfs::parse_passwd(*content), name);
}

std::optional<vfs::GroupEntry> GuestContext::getgrnam(std::string_view name) {
  auto content = read_file("/etc/group");
  if (!content) return std::nullopt;
  for (const auto& entry : vfs::parse_group(*content)) {
    if (entry.name == name) return entry;
  }
  return std::nullopt;
}

}  // namespace nv::guest

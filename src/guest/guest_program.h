// Guest programming model.
//
// A GuestProgram is the "program P" of the paper: deterministic code written
// against the simulated kernel's syscall interface. The SAME program object
// runs once per variant (on separate threads under the MVEE), each run
// receiving a GuestContext bound to that variant's syscall port, process, and
// construction parameters (the VariantConfig produced by the variations).
//
// Programs must keep per-run state in locals or in simulated memory — never
// in member variables — because variant runs execute concurrently.
#ifndef NV_GUEST_GUEST_PROGRAM_H
#define NV_GUEST_GUEST_PROGRAM_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/variation.h"
#include "util/expected.h"
#include "vfs/passwd.h"
#include "vkernel/process.h"
#include "vkernel/syscalls.h"
#include "vkernel/vm.h"

namespace nv::guest {

/// Thrown by GuestContext::exit to unwind the guest after the exit syscall.
struct GuestExit {
  int code = 0;
};

template <typename T>
using SysResult = util::Expected<T, os::Errno>;

/// The guest's view of the system: syscalls, simulated memory, and its
/// variant-specific build parameters.
class GuestContext {
 public:
  GuestContext(vkernel::SyscallPort& port, vkernel::Process& process,
               core::VariantConfig config)
      : port_(port), process_(process), config_(std::move(config)) {}

  // --- identity of this variant ------------------------------------------
  [[nodiscard]] unsigned variant() const noexcept { return config_.index; }
  [[nodiscard]] const core::VariantConfig& config() const noexcept { return config_; }

  /// A UID constant as the source-to-source transformation embedded it
  /// (§3.3: "identify all UID constants ... and replace these values with the
  /// result of applying R1 to them"). Guests must never write a literal UID;
  /// they write uid_const(literal).
  [[nodiscard]] os::uid_t uid_const(os::uid_t canonical) const {
    return config_.uid_coder->reexpress(canonical);
  }

  // --- raw syscall --------------------------------------------------------
  [[nodiscard]] vkernel::SyscallResult raw_syscall(vkernel::SyscallArgs args) {
    return port_.syscall(std::move(args));
  }
  /// Issue several calls as one batch. Under the MVEE, consecutive calls of
  /// the same class share a single rendezvous barrier (the descriptor
  /// table's BatchPolicy decides eligibility); results are positional and
  /// identical to issuing the calls one by one.
  [[nodiscard]] std::vector<vkernel::SyscallResult> raw_syscall_batch(
      const vkernel::SyscallBatch& batch) {
    return port_.syscall_batch(batch);
  }

  // --- files ---------------------------------------------------------------
  [[nodiscard]] SysResult<os::fd_t> open(std::string_view path, os::OpenFlags flags,
                                         os::mode_t mode = 0644);
  [[nodiscard]] os::Errno close(os::fd_t fd);
  [[nodiscard]] SysResult<std::string> read(os::fd_t fd, std::size_t count);
  [[nodiscard]] SysResult<std::size_t> write(os::fd_t fd, std::string_view data);
  /// Write several chunks to `fd` in one batched exchange (one rendezvous
  /// round under the MVEE instead of chunks.size()). Returns the total bytes
  /// written, or the first chunk's error.
  [[nodiscard]] SysResult<std::size_t> write_batch(os::fd_t fd,
                                                   const std::vector<std::string_view>& chunks);
  [[nodiscard]] SysResult<std::uint64_t> seek(os::fd_t fd, std::uint64_t offset);
  [[nodiscard]] SysResult<vfs::Stat> stat(std::string_view path);
  [[nodiscard]] os::Errno unlink(std::string_view path);
  [[nodiscard]] os::Errno mkdir(std::string_view path, os::mode_t mode = 0755);
  /// Read a whole file through open/read/close (hits unshared redirection).
  [[nodiscard]] SysResult<std::string> read_file(std::string_view path);

  // --- credentials (values are in this variant's representation) ----------
  [[nodiscard]] os::uid_t getuid();
  [[nodiscard]] os::uid_t geteuid();
  [[nodiscard]] os::gid_t getgid();
  [[nodiscard]] os::gid_t getegid();
  [[nodiscard]] os::Errno setuid(os::uid_t uid);
  [[nodiscard]] os::Errno seteuid(os::uid_t uid);
  [[nodiscard]] os::Errno setreuid(os::uid_t ruid, os::uid_t euid);
  [[nodiscard]] os::Errno setresuid(os::uid_t ruid, os::uid_t euid, os::uid_t suid);
  [[nodiscard]] os::Errno setgid(os::gid_t gid);
  [[nodiscard]] os::Errno setegid(os::gid_t gid);
  [[nodiscard]] os::Errno setgroups(const std::vector<os::gid_t>& groups);

  // --- network -------------------------------------------------------------
  [[nodiscard]] SysResult<os::fd_t> socket();
  [[nodiscard]] os::Errno bind(os::fd_t fd, std::uint16_t port);
  [[nodiscard]] os::Errno listen(os::fd_t fd);
  [[nodiscard]] SysResult<os::fd_t> accept(os::fd_t fd);

  // --- misc ----------------------------------------------------------------
  [[nodiscard]] os::pid_t getpid();
  [[nodiscard]] std::uint64_t gettime();
  [[noreturn]] void exit(int code);
  /// Synchronized asynchronous-event poll (extension): returns the next
  /// queued event, or nullopt. Under the MVEE all variants observe the same
  /// event at the same syscall, avoiding the §3.1 signal-divergence problem.
  [[nodiscard]] std::optional<std::string> poll_event();

  // --- detection syscalls (Table 2) ---------------------------------------
  /// Cross-variant check of a single UID value; returns the passed value.
  [[nodiscard]] os::uid_t uid_value(os::uid_t uid);
  /// Cross-variant check of a condition outcome; returns the condition.
  [[nodiscard]] bool cond_chk(bool condition);
  /// Cross-variant checked comparison evaluated on canonical values.
  [[nodiscard]] bool cc(vkernel::CcOp op, os::uid_t a, os::uid_t b);

  // --- simulated memory ----------------------------------------------------
  [[nodiscard]] vkernel::AddressSpace& memory() noexcept { return process_.memory(); }
  [[nodiscard]] std::uint64_t alloc(std::uint64_t size, std::uint64_t align = 8) {
    return process_.memory().alloc(size, align);
  }

  /// Execute tagged VM code at `entry` under this variant's expected tag.
  [[nodiscard]] vkernel::VmResult execute_code(std::uint64_t entry,
                                               std::uint64_t max_steps = 10000);

  // --- libc-style helpers built on syscalls --------------------------------
  /// Reads /etc/passwd (redirected per variant when unshared); the returned
  /// uid/gid are in this variant's representation — exactly what a transformed
  /// program would see.
  [[nodiscard]] std::optional<vfs::PasswdEntry> getpwnam(std::string_view name);
  [[nodiscard]] std::optional<vfs::GroupEntry> getgrnam(std::string_view name);

 private:
  vkernel::SyscallPort& port_;
  vkernel::Process& process_;
  core::VariantConfig config_;
};

class GuestProgram {
 public:
  virtual ~GuestProgram() = default;
  virtual void run(GuestContext& ctx) = 0;
  [[nodiscard]] virtual std::string_view name() const { return "guest"; }
};

}  // namespace nv::guest

#endif  // NV_GUEST_GUEST_PROGRAM_H

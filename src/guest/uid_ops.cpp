#include "guest/uid_ops.h"

namespace nv::guest {

using vkernel::CcOp;

std::string_view to_string(UidOpsMode mode) noexcept {
  switch (mode) {
    case UidOpsMode::kPlain: return "plain";
    case UidOpsMode::kSyscallChecked: return "syscall-checked";
    case UidOpsMode::kUserSpaceReversed: return "userspace-reversed";
  }
  return "?";
}

UidOps::UidOps(GuestContext& ctx, UidOpsMode mode) : ctx_(ctx), mode_(mode) {}

bool UidOps::order_reversed() const {
  // The XOR-mask coder flips the low bits, which reverses the order of any
  // two values sharing the same high bit (the common case for real UIDs).
  // Identity coders leave order intact.
  return ctx_.uid_const(0) != 0;
}

bool UidOps::compare(CcOp op, os::uid_t a, os::uid_t b) {
  switch (mode_) {
    case UidOpsMode::kSyscallChecked:
      // One syscall checks both values and evaluates the ORIGINAL operator on
      // canonical values — variant instruction streams stay identical (§3.5).
      return ctx_.cc(op, a, b);
    case UidOpsMode::kUserSpaceReversed: {
      CcOp effective = op;
      if (order_reversed()) {
        switch (op) {
          case CcOp::kLt: effective = CcOp::kGt; break;
          case CcOp::kLeq: effective = CcOp::kGeq; break;
          case CcOp::kGt: effective = CcOp::kLt; break;
          case CcOp::kGeq: effective = CcOp::kLeq; break;
          default: break;  // equality is representation-independent
        }
      }
      return ctx_.cond_chk(vkernel::cc_eval(effective, a, b));
    }
    case UidOpsMode::kPlain:
      return vkernel::cc_eval(op, a, b);
  }
  return false;
}

bool UidOps::eq(os::uid_t a, os::uid_t b) { return compare(CcOp::kEq, a, b); }
bool UidOps::neq(os::uid_t a, os::uid_t b) { return compare(CcOp::kNeq, a, b); }
bool UidOps::lt(os::uid_t a, os::uid_t b) { return compare(CcOp::kLt, a, b); }
bool UidOps::leq(os::uid_t a, os::uid_t b) { return compare(CcOp::kLeq, a, b); }
bool UidOps::gt(os::uid_t a, os::uid_t b) { return compare(CcOp::kGt, a, b); }
bool UidOps::geq(os::uid_t a, os::uid_t b) { return compare(CcOp::kGeq, a, b); }

bool UidOps::is_root(os::uid_t uid) { return eq(uid, ctx_.uid_const(os::kRootUid)); }

os::uid_t UidOps::check_value(os::uid_t uid) {
  if (mode_ == UidOpsMode::kPlain) return uid;
  return ctx_.uid_value(uid);
}

bool UidOps::check_cond(bool condition) {
  if (mode_ == UidOpsMode::kPlain) return condition;
  return ctx_.cond_chk(condition);
}

}  // namespace nv::guest

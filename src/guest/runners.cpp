#include "guest/runners.h"

#include "util/strings.h"

namespace nv::guest {

PlainRunResult run_plain(vkernel::KernelContext& ctx, GuestProgram& program,
                         os::Credentials creds, core::VariantConfig config) {
  PlainRunResult result;
  vkernel::PlainKernel kernel(ctx, std::string(program.name()), std::move(creds));
  kernel.process().memory().map(config.memory_base, config.memory_size);
  kernel.process().memory().set_alloc_base(config.memory_base);
  GuestContext guest_ctx(kernel, kernel.process(), std::move(config));
  try {
    program.run(guest_ctx);
    result.completed = true;
    result.exit_code = 0;
  } catch (const GuestExit& exit) {
    result.completed = true;
    result.exit_code = exit.code;
  } catch (const vkernel::MemoryFault& fault) {
    result.faulted = true;
    result.fault_detail = fault.what;
  } catch (const vkernel::TagFault& fault) {
    result.faulted = true;
    result.fault_detail = util::format("tag fault at 0x%llx (expected 0x%02x, found 0x%02x)",
                                       static_cast<unsigned long long>(fault.address),
                                       fault.expected, fault.found);
  }
  return result;
}

core::VariantBody as_variant_body(GuestProgram& program) {
  return [&program](unsigned /*variant*/, vkernel::SyscallPort& port, vkernel::Process& process,
                    const core::VariantConfig& config) {
    GuestContext ctx(port, process, config);
    try {
      program.run(ctx);
    } catch (const GuestExit&) {
      // Normal termination path; the exit syscall already rendezvoused.
    }
  };
}

core::RunReport run_nvariant(core::NVariantSystem& system, GuestProgram& program) {
  return system.run(as_variant_body(program));
}

void launch_nvariant(core::NVariantSystem& system, GuestProgram& program) {
  system.launch(as_variant_body(program));
}

}  // namespace nv::guest

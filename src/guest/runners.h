// Adapters that run GuestPrograms on the two execution substrates:
//   - run_plain():  single process, no redundancy (configurations 1-2)
//   - run/launch_nvariant(): the MVEE (configurations 3-4)
#ifndef NV_GUEST_RUNNERS_H
#define NV_GUEST_RUNNERS_H

#include <string>

#include "core/nvariant_system.h"
#include "guest/guest_program.h"
#include "vkernel/kernel.h"

namespace nv::guest {

struct PlainRunResult {
  bool completed = false;
  int exit_code = 0;
  bool faulted = false;
  std::string fault_detail;
};

/// Run `program` as a single unmonitored process (the baseline the attacker
/// faces without N-variant protection). `config` defaults to an identity
/// build (variant 0 semantics).
[[nodiscard]] PlainRunResult run_plain(vkernel::KernelContext& ctx, GuestProgram& program,
                                       os::Credentials creds = os::Credentials::root(),
                                       core::VariantConfig config = {});

/// Wrap a GuestProgram as the per-variant body for NVariantSystem.
[[nodiscard]] core::VariantBody as_variant_body(GuestProgram& program);

/// Run to completion under the MVEE.
[[nodiscard]] core::RunReport run_nvariant(core::NVariantSystem& system, GuestProgram& program);

/// Start asynchronously (server mode); stop via system.stop().
void launch_nvariant(core::NVariantSystem& system, GuestProgram& program);

}  // namespace nv::guest

#endif  // NV_GUEST_RUNNERS_H

#include "perf/webbench.h"

#include <algorithm>
#include <memory>

#include "sim/resource.h"
#include "util/rng.h"

namespace nv::perf {

PerfResult run_webbench(ServerSetup setup, const CostModel& model,
                        const WorkloadConfig& workload) {
  return run_closed_loop(model.demand_ms(setup), model.visible_demand_ms(setup), 1, model,
                         workload);
}

PerfResult run_closed_loop(double demand_ms, double visible_ms, unsigned cpus,
                           const CostModel& model, const WorkloadConfig& workload) {
  sim::Simulation sim;
  sim::FifoStation cpu(sim, cpus, "server-cpu");
  util::Rng rng{workload.seed};

  const double hidden_ms = demand_ms - visible_ms;
  const sim::SimTime io_time = sim::from_ms(model.io_ms);
  const sim::SimTime end_time = workload.warmup + workload.duration;

  util::RunningStats latency;
  std::uint64_t completed_in_window = 0;

  // One closed loop per client: request -> CPU stage -> I/O stage -> next.
  struct Client {
    std::uint64_t request_start = 0;
  };
  auto clients = std::make_shared<std::vector<Client>>(workload.clients);

  // next_request is recursive via shared_ptr to its own holder.
  auto next_request = std::make_shared<std::function<void(unsigned)>>();
  *next_request = [&, clients, next_request](unsigned index) {
    if (sim.now() >= end_time) return;
    (*clients)[index].request_start = sim.now();
    // Per-request demand jitter (deterministic via seeded rng).
    const double jitter = std::max(0.1, rng.normal(1.0, model.service_jitter));
    const bool cpu_idle = cpu.queue_length() == 0;
    // When the CPU is idle (unsaturated load), the hidden share of the
    // duplicated compute runs on the sibling hardware thread / under I/O: it
    // consumes CPU capacity (a non-blocking filler job) but does not delay
    // the response. Under saturation there is no idle sibling, so the full
    // demand gates the response.
    const double blocking_ms = cpu_idle ? (demand_ms - hidden_ms) * jitter : demand_ms * jitter;
    cpu.submit(sim::from_ms(blocking_ms), [&, clients, next_request, index] {
      // I/O stage: performed once regardless of the number of variants.
      sim.schedule_in(io_time, [&, clients, next_request, index] {
        const auto now = sim.now();
        const double request_latency = sim::to_ms(now - (*clients)[index].request_start);
        if (now >= workload.warmup && now < end_time) {
          latency.add(request_latency);
          ++completed_in_window;
        }
        (*next_request)(index);
      });
    });
    // The filler job queues behind the blocking share and occupies the CPU
    // during this request's I/O window.
    if (cpu_idle && hidden_ms > 0) {
      cpu.submit(sim::from_ms(hidden_ms * jitter), {});
    }
  };

  for (unsigned i = 0; i < workload.clients; ++i) {
    // Stagger client start-up like independent engines ramping up.
    sim.schedule_at(rng.below(1000) * sim::kMicrosecond,
                    [next_request, i] { (*next_request)(i); });
  }

  sim.run_until(end_time + sim::from_ms(100));

  // The loop closure captures a shared_ptr to its own holder; break the
  // cycle so the per-run client state is reclaimed (keeps LeakSanitizer
  // clean across the thousands of runs the benches do).
  *next_request = nullptr;

  PerfResult result;
  result.requests = completed_in_window;
  result.latency_ms = latency.mean();
  result.throughput_kbps = static_cast<double>(completed_in_window) * model.response_kb /
                           sim::to_seconds(workload.duration);
  result.cpu_utilization = cpu.utilization();
  return result;
}

PaperCell paper_table3(ServerSetup setup, bool saturated) noexcept {
  // Table 3 of the paper, verbatim.
  switch (setup) {
    case ServerSetup::kUnmodified:
      return saturated ? PaperCell{5420, 16.32} : PaperCell{1010, 5.81};
    case ServerSetup::kTransformed:
      return saturated ? PaperCell{5372, 16.24} : PaperCell{973, 5.81};
    case ServerSetup::kTwoVariantAddress:
      return saturated ? PaperCell{2369, 37.36} : PaperCell{887, 6.56};
    case ServerSetup::kTwoVariantUid:
      return saturated ? PaperCell{2262, 38.49} : PaperCell{877, 6.65};
  }
  return {0, 0};
}

}  // namespace nv::perf

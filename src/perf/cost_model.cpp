#include "perf/cost_model.h"

namespace nv::perf {

std::string_view to_string(ServerSetup setup) noexcept {
  switch (setup) {
    case ServerSetup::kUnmodified: return "1: Unmodified Apache";
    case ServerSetup::kTransformed: return "2: Transformed Apache";
    case ServerSetup::kTwoVariantAddress: return "3: 2-Variant Address Space";
    case ServerSetup::kTwoVariantUid: return "4: 2-Variant UID";
  }
  return "?";
}

int CostModel::variants(ServerSetup setup) const noexcept {
  switch (setup) {
    case ServerSetup::kUnmodified:
    case ServerSetup::kTransformed:
      return 1;
    case ServerSetup::kTwoVariantAddress:
    case ServerSetup::kTwoVariantUid:
      return 2;
  }
  return 1;
}

double CostModel::demand_ms(ServerSetup setup) const noexcept {
  const int n = variants(setup);
  double cpu = cpu_ms;
  int syscalls = syscalls_per_request;
  double per_syscall_us = syscall_overhead_us;
  switch (setup) {
    case ServerSetup::kUnmodified:
      break;
    case ServerSetup::kTransformed:
      cpu *= transform_factor;
      syscalls += transformed_extra_syscalls;
      break;
    case ServerSetup::kTwoVariantAddress:
      per_syscall_us += rendezvous_us;
      break;
    case ServerSetup::kTwoVariantUid:
      cpu *= transform_factor;
      syscalls += transformed_extra_syscalls + uid_variation_extra_syscalls;
      per_syscall_us += rendezvous_us;
      break;
  }
  return n * cpu + static_cast<double>(syscalls) * per_syscall_us / 1000.0;
}

double CostModel::visible_demand_ms(ServerSetup setup) const noexcept {
  const double single = demand_ms(ServerSetup::kUnmodified);
  const double total = demand_ms(setup);
  if (variants(setup) == 1) return total;
  // Part of the duplicated work hides under I/O / the sibling hardware
  // thread when the server is otherwise idle.
  return single + (total - single) * (1.0 - duplicate_compute_overlap);
}

}  // namespace nv::perf

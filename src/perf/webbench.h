// WebBench-style closed-loop load generator over the DES (§4's experimental
// setup: 1 client engine for the unsaturated runs; 3 machines x 5 engines =
// 15 for the saturated runs).
//
// This is the ANALYTIC side: requests cost what the cost model says they
// cost. src/load/harness.h is its real-fleet successor — the same
// closed-loop shape (and an open-loop one) driving an actual VariantFleet
// on the injected clock.
#ifndef NV_PERF_WEBBENCH_H
#define NV_PERF_WEBBENCH_H

#include "perf/cost_model.h"
#include "sim/simulation.h"
#include "util/stats.h"

namespace nv::perf {

struct WorkloadConfig {
  unsigned clients = 1;
  sim::SimTime warmup = 2 * sim::kSecond;
  sim::SimTime duration = 30 * sim::kSecond;
  std::uint64_t seed = 7;
};

struct PerfResult {
  double throughput_kbps = 0;  // KB/s over the measurement window
  double latency_ms = 0;       // mean request latency
  std::uint64_t requests = 0;
  double cpu_utilization = 0;
};

/// Simulate one (configuration, load) cell of Table 3.
[[nodiscard]] PerfResult run_webbench(ServerSetup setup, const CostModel& model,
                                      const WorkloadConfig& workload);

/// Generalized closed loop for ablations: explicit total CPU demand and
/// latency-visible demand per request (cpus = parallel server cores).
[[nodiscard]] PerfResult run_closed_loop(double demand_ms, double visible_ms, unsigned cpus,
                                         const CostModel& model, const WorkloadConfig& workload);

/// Paper-reported Table 3 values, for side-by-side comparison in benches and
/// regression bounds in tests.
struct PaperCell {
  double throughput_kbps;
  double latency_ms;
};
[[nodiscard]] PaperCell paper_table3(ServerSetup setup, bool saturated) noexcept;

}  // namespace nv::perf

#endif  // NV_PERF_WEBBENCH_H

// Cost model for the Table 3 reproduction.
//
// The paper measured Apache + WebBench 5.0 on a 1.4 GHz Pentium 4 (384 MB,
// Fedora Core 5, 2.6.16 kernel). We reproduce the experiment's STRUCTURE in a
// discrete-event simulation:
//
//   - each request consumes per-variant CPU plus per-syscall overhead on a
//     single CPU station (the saturation bottleneck);
//   - I/O (network + disk) is performed once regardless of N and overlaps
//     with computation;
//   - the 2-variant configurations double compute and add rendezvous +
//     comparison cost per syscall;
//   - the UID variation adds a few detection syscalls per request and a tiny
//     transformation factor (§4: "one system call per request to compare two
//     UID values" for config 2; the full variation adds the uid_value/cc
//     calls on the escalation path).
//
// duplicate_compute_overlap models the Pentium 4's hyper-threading: when the
// CPU queue is empty (unsaturated load), part of the second variant's
// computation hides under the first variant's I/O and the sibling hardware
// thread, so request LATENCY grows by less than the added CPU DEMAND — the
// effect visible in the paper's unsaturated rows. Under saturation there is
// no idle sibling, so full demand governs both throughput and latency.
//
// Calibration targets configuration 1 (baseline hardware speed); all other
// configurations inherit the same constants, so the relative overheads —
// the reproducible claim — come out of the model's structure, not per-cell
// tuning.
#ifndef NV_PERF_COST_MODEL_H
#define NV_PERF_COST_MODEL_H

#include <cstdint>
#include <string_view>

namespace nv::perf {

/// The four server configurations of Table 3.
enum class ServerSetup {
  kUnmodified,        // config 1: stock server, (modified) kernel
  kTransformed,       // config 2: UID-transformed server, single process
  kTwoVariantAddress, // config 3: 2-variant, address-space partitioning
  kTwoVariantUid,     // config 4: 2-variant, UID variation
};

[[nodiscard]] std::string_view to_string(ServerSetup setup) noexcept;

struct CostModel {
  // Calibrated against configuration 1 of Table 3.
  double cpu_ms = 1.035;            // user+kernel CPU per request, one variant
  double io_ms = 4.73;              // once-per-request I/O latency (overlapped)
  double syscall_overhead_us = 2.0; // wrapper check per syscall (plain)
  int syscalls_per_request = 24;
  double rendezvous_us = 15.0;      // added per syscall in 2-variant mode
  double transform_factor = 1.005;  // config 2/4 CPU multiplier
  int transformed_extra_syscalls = 1;    // config 2: one cc_* per request
  int uid_variation_extra_syscalls = 5;  // config 4: uid_value/cc on hot path
  double duplicate_compute_overlap = 0.4624;  // HT hiding at low load
  double response_kb = 5.87;        // average WebBench response size
  double service_jitter = 0.03;     // relative stddev of per-request demand

  /// Total CPU demand placed on the server per request (drives saturation).
  [[nodiscard]] double demand_ms(ServerSetup setup) const noexcept;

  /// Demand visible in latency when the CPU is otherwise idle (unsaturated).
  [[nodiscard]] double visible_demand_ms(ServerSetup setup) const noexcept;

  [[nodiscard]] int variants(ServerSetup setup) const noexcept;
};

}  // namespace nv::perf

#endif  // NV_PERF_COST_MODEL_H

#include "baseline/output_voting.h"

namespace nv::baseline {

bool OutputVotingMonitor::detects(const ServedOutput& a, const ServedOutput& b) const {
  switch (mode_) {
    case VotingMode::kStatusCodes:
      return a.status != b.status;
    case VotingMode::kFullResponse:
      return a.status != b.status || a.body != b.body;
  }
  return false;
}

std::string_view to_string(VotingMode mode) noexcept {
  switch (mode) {
    case VotingMode::kStatusCodes: return "status-code voting (HACQIT)";
    case VotingMode::kFullResponse: return "full-response voting (Totel)";
  }
  return "?";
}

}  // namespace nv::baseline

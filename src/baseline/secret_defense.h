// Secret-based randomization defenses (ASR [8][42], ISR [6][25][28]) and the
// probing attacks that defeat them (Shacham et al. [37], Sovarel et al.
// [38]). §2.1's argument: single-variant data diversity with a secret key can
// be strong IF the key stays secret — but bounded entropy plus a probing
// oracle (crash-and-restart) lets attackers recover keys quickly, which is
// exactly what the N-variant framework's secretless design avoids.
#ifndef NV_BASELINE_SECRET_DEFENSE_H
#define NV_BASELINE_SECRET_DEFENSE_H

#include <cstdint>
#include <string_view>

#include "util/rng.h"

namespace nv::baseline {

/// A defense whose security is a k-bit secret key. try_guess() models one
/// probe against a crash oracle: the service reveals (by crashing or not)
/// whether the guess was right — the derandomization primitive.
class SecretRandomization {
 public:
  SecretRandomization(unsigned entropy_bits, std::uint64_t seed);

  [[nodiscard]] unsigned entropy_bits() const noexcept { return entropy_bits_; }
  [[nodiscard]] bool try_guess(std::uint64_t guess) const noexcept { return guess == key_; }

  /// One probe against a `chunk_bits`-wide slice of the key (the ISR-style
  /// incremental oracle: short injected sequences reveal key bytes
  /// independently).
  [[nodiscard]] bool try_chunk(unsigned chunk_index, unsigned chunk_bits,
                               std::uint64_t guess) const noexcept;

  struct ProbeStats {
    std::uint64_t probes = 0;
    bool recovered = false;
  };

  /// Shacham-style brute force over the whole key space.
  [[nodiscard]] ProbeStats brute_force(std::uint64_t max_probes) const noexcept;

  /// Sovarel-style incremental attack: recover the key chunk by chunk;
  /// expected cost is linear in key length instead of exponential.
  [[nodiscard]] ProbeStats incremental(unsigned chunk_bits, std::uint64_t max_probes) const noexcept;

 private:
  unsigned entropy_bits_;
  std::uint64_t key_;
};

/// The N-variant comparison point: with disjoint reexpression there is no
/// key to guess — an injected value diverges deterministically, independent
/// of the number of probes. Returns the probability that `probes` attack
/// attempts ever evade detection (always 0; provided for the bench's table).
[[nodiscard]] double nvariant_evasion_probability(std::uint64_t probes) noexcept;

/// Expected probes to recover a k-bit key with each strategy (closed form,
/// used to cross-check the simulated numbers).
[[nodiscard]] double expected_brute_force_probes(unsigned entropy_bits) noexcept;
[[nodiscard]] double expected_incremental_probes(unsigned entropy_bits,
                                                 unsigned chunk_bits) noexcept;

}  // namespace nv::baseline

#endif  // NV_BASELINE_SECRET_DEFENSE_H

// Output-voting intrusion detectors from related work (§6): HACQIT [27][35]
// compares HTTP status codes across two diverse servers; Totel et al. [39]
// compare full response bodies. The paper's claim — which the attack bench
// demonstrates — is that neither detects a UID exploit that leaves page
// output unperturbed, whereas the N-variant monitor catches it regardless.
#ifndef NV_BASELINE_OUTPUT_VOTING_H
#define NV_BASELINE_OUTPUT_VOTING_H

#include <string>
#include <string_view>

namespace nv::baseline {

struct ServedOutput {
  int status = 200;
  std::string body;
};

enum class VotingMode {
  kStatusCodes,   // HACQIT
  kFullResponse,  // Totel/Majorczyk/Mé
};

class OutputVotingMonitor {
 public:
  explicit OutputVotingMonitor(VotingMode mode) : mode_(mode) {}

  [[nodiscard]] VotingMode mode() const noexcept { return mode_; }

  /// True when the two servers' outputs disagree (an alarm).
  [[nodiscard]] bool detects(const ServedOutput& a, const ServedOutput& b) const;

 private:
  VotingMode mode_;
};

[[nodiscard]] std::string_view to_string(VotingMode mode) noexcept;

}  // namespace nv::baseline

#endif  // NV_BASELINE_OUTPUT_VOTING_H

#include "baseline/secret_defense.h"

namespace nv::baseline {

SecretRandomization::SecretRandomization(unsigned entropy_bits, std::uint64_t seed)
    : entropy_bits_(entropy_bits) {
  util::Rng rng{seed};
  const std::uint64_t mask =
      entropy_bits >= 64 ? ~0ULL : ((1ULL << entropy_bits) - 1);
  key_ = rng.next_u64() & mask;
}

bool SecretRandomization::try_chunk(unsigned chunk_index, unsigned chunk_bits,
                                    std::uint64_t guess) const noexcept {
  const std::uint64_t mask = (1ULL << chunk_bits) - 1;
  const std::uint64_t actual = (key_ >> (chunk_index * chunk_bits)) & mask;
  return guess == actual;
}

SecretRandomization::ProbeStats SecretRandomization::brute_force(
    std::uint64_t max_probes) const noexcept {
  ProbeStats stats;
  const std::uint64_t space = entropy_bits_ >= 64 ? ~0ULL : (1ULL << entropy_bits_);
  for (std::uint64_t guess = 0; guess < space; ++guess) {
    if (stats.probes >= max_probes) return stats;
    ++stats.probes;
    if (try_guess(guess)) {
      stats.recovered = true;
      return stats;
    }
  }
  return stats;
}

SecretRandomization::ProbeStats SecretRandomization::incremental(
    unsigned chunk_bits, std::uint64_t max_probes) const noexcept {
  ProbeStats stats;
  const unsigned chunks = (entropy_bits_ + chunk_bits - 1) / chunk_bits;
  for (unsigned chunk = 0; chunk < chunks; ++chunk) {
    bool found = false;
    for (std::uint64_t guess = 0; guess < (1ULL << chunk_bits); ++guess) {
      if (stats.probes >= max_probes) return stats;
      ++stats.probes;
      if (try_chunk(chunk, chunk_bits, guess)) {
        found = true;
        break;
      }
    }
    if (!found) return stats;
  }
  stats.recovered = true;
  return stats;
}

double nvariant_evasion_probability(std::uint64_t /*probes*/) noexcept {
  // Disjointedness is deterministic: R0^-1(x) != R1^-1(x) for every injected
  // x, so no number of probes produces an undetected corruption. There is no
  // key to learn.
  return 0.0;
}

double expected_brute_force_probes(unsigned entropy_bits) noexcept {
  return static_cast<double>(1ULL << (entropy_bits - 1));
}

double expected_incremental_probes(unsigned entropy_bits, unsigned chunk_bits) noexcept {
  const double chunks = static_cast<double>(entropy_bits) / chunk_bits;
  return chunks * static_cast<double>(1ULL << (chunk_bits - 1));
}

}  // namespace nv::baseline

#include "util/log.h"

#include <cstdio>

namespace nv::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

Logger Logger::stderr_logger(LogLevel threshold) {
  return Logger{[](LogLevel level, std::string_view message) {
                  std::fprintf(stderr, "%.*s %.*s\n",
                               static_cast<int>(to_string(level).size()), to_string(level).data(),
                               static_cast<int>(message.size()), message.data());
                },
                threshold};
}

Logger& Logger::null_logger() {
  static Logger instance;  // no sink: log() is a no-op
  return instance;
}

void Logger::log(LogLevel level, std::string_view message) {
  if (level < threshold_.load(std::memory_order_relaxed)) return;
  const MutexLock lock(mutex_);
  if (!sink_) return;
  sink_(level, message);
}

Logger::Sink CaptureSink::sink() {
  return [this](LogLevel level, std::string_view message) {
    const MutexLock lock(mutex_);
    lines_.emplace_back(std::string(to_string(level)) + " " + std::string(message));
  };
}

std::vector<std::string> CaptureSink::lines() const {
  const MutexLock lock(mutex_);
  return lines_;
}

bool CaptureSink::contains(std::string_view needle) const {
  const MutexLock lock(mutex_);
  for (const auto& line : lines_) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace nv::util

// Capability-annotated mutex wrappers.
//
// libstdc++'s std::mutex / std::unique_lock carry no thread-safety attributes,
// so Clang's analysis cannot see acquisitions made through them. nv::util::Mutex
// wraps std::mutex as an annotated capability and MutexLock is the annotated
// scoped lock; condition variables wait on MutexLock::native(), which exposes
// the underlying std::unique_lock<std::mutex> (the analysis treats the wait as
// lock-neutral, matching the caller-visible contract: the lock is held again
// when wait() returns).
#ifndef NV_UTIL_MUTEX_H
#define NV_UTIL_MUTEX_H

#include <mutex>

#include "util/thread_annotations.h"

namespace nv::util {

/// std::mutex as a Clang thread-safety capability.
class NV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NV_ACQUIRE() { native_.lock(); }
  void unlock() NV_RELEASE() { native_.unlock(); }
  [[nodiscard]] bool try_lock() NV_TRY_ACQUIRE(true) { return native_.try_lock(); }

  /// Underlying std::mutex, for std::unique_lock / condition_variable plumbing.
  [[nodiscard]] std::mutex& native() noexcept { return native_; }

 private:
  std::mutex native_;
};

/// Scoped lock over Mutex. Supports the condition-variable dance via native()
/// and explicit mid-scope unlock()/lock() (the destructor releases only if
/// still held, which the analysis models for scoped capabilities).
class NV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) NV_ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~MutexLock() NV_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() NV_RELEASE() { lock_.unlock(); }
  void lock() NV_ACQUIRE() { lock_.lock(); }
  [[nodiscard]] bool owns_lock() const noexcept { return lock_.owns_lock(); }

  /// The underlying unique_lock, for condition_variable::wait family. Waiting
  /// releases and re-acquires internally; from the caller's point of view the
  /// capability is held both before and after, so no annotation change.
  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace nv::util

#endif  // NV_UTIL_MUTEX_H

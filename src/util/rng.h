// Deterministic pseudo-random number generation for simulations and tests.
//
// All randomness in nvsys flows through explicitly seeded Rng instances so
// that every experiment is reproducible bit-for-bit. The generator is
// xoshiro256** seeded via splitmix64, which is fast, well distributed, and
// has no global state.
#ifndef NV_UTIL_RNG_H
#define NV_UTIL_RNG_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

namespace nv::util {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic xoshiro256** generator. Copyable; copies evolve independently.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() noexcept { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed value with the given mean (for DES inter-arrivals).
  double exponential(double mean) noexcept;

  /// Normally distributed value (Box-Muller; consumes two draws).
  double normal(double mean, double stddev) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

  /// Pick a uniformly random element; requires a non-empty container.
  template <typename T>
  const T& pick(const std::vector<T>& items) noexcept {
    return items[below(items.size())];
  }

  /// Derive an independent child generator (for per-component streams).
  [[nodiscard]] Rng split() noexcept { return Rng{next_u64()}; }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace nv::util

#endif  // NV_UTIL_RNG_H

// ASCII table renderer used by benches to print paper-style result tables.
#ifndef NV_UTIL_TABLE_H
#define NV_UTIL_TABLE_H

#include <string>
#include <vector>

namespace nv::util {

/// Column-aligned text table with an optional header row, rendered with a
/// separator line under the header (the style the benches print).
class TextTable {
 public:
  /// Sets the header row; resets alignment hints to left.
  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Mark a column as right-aligned (numbers).
  void align_right(std::size_t column);

  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<bool> right_aligned_;
};

}  // namespace nv::util

#endif  // NV_UTIL_TABLE_H

// Minimal Expected<T, E> (std::expected is C++23; this toolchain is C++20).
// Used for expected failure paths (parse errors, syscall errno results);
// programming errors throw.
#ifndef NV_UTIL_EXPECTED_H
#define NV_UTIL_EXPECTED_H

#include <stdexcept>
#include <utility>
#include <variant>

namespace nv::util {

/// Wrapper distinguishing the error alternative when T and E are the same type.
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;

template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Unexpected<E> err) : data_(std::in_place_index<1>, std::move(err.error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const noexcept { return data_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & {
    require_value();
    return std::get<0>(data_);
  }
  [[nodiscard]] const T& value() const& {
    require_value();
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    require_value();
    return std::get<0>(std::move(data_));
  }

  [[nodiscard]] const E& error() const& {
    if (has_value()) throw std::logic_error("Expected holds a value, not an error");
    return std::get<1>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<0>(data_) : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  void require_value() const {
    if (!has_value()) throw std::logic_error("Expected holds an error, not a value");
  }

  std::variant<T, E> data_;
};

}  // namespace nv::util

#endif  // NV_UTIL_EXPECTED_H

#include "util/table.h"

#include <algorithm>
#include <sstream>

namespace nv::util {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  right_aligned_.assign(header_.size(), false);
}

void TextTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void TextTable::align_right(std::size_t column) {
  if (column >= right_aligned_.size()) right_aligned_.resize(column + 1, false);
  right_aligned_[column] = true;
}

std::string TextTable::render() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<std::size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      const bool right = i < right_aligned_.size() && right_aligned_[i];
      const std::size_t pad = widths[i] - cell.size();
      out << "| ";
      if (right) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
      out << ' ';
    }
    out << "|\n";
  };
  if (!header_.empty()) {
    emit(header_);
    for (std::size_t i = 0; i < columns; ++i) out << "|" << std::string(widths[i] + 2, '-');
    out << "|\n";
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace nv::util

// Streaming and batch statistics used by the performance model and benches.
#ifndef NV_UTIL_STATS_H
#define NV_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace nv::util {

/// Welford single-pass accumulator: count/mean/variance/min/max without
/// retaining samples.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample-retaining collector for percentile queries.
class Samples {
 public:
  void add(double x);
  /// Absorb every sample from `other` (which is left untouched). Percentiles
  /// over the merged collector equal percentiles over the concatenated sample
  /// sets — the aggregation FleetTelemetry uses to fold per-session latency
  /// collectors into fleet-wide p50/p95/p99.
  void merge(const Samples& other);
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] double mean() const noexcept;
  /// Percentile in [0, 100]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range values clamp to
/// the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  /// Render as a compact ASCII bar chart (for bench output).
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace nv::util

#endif  // NV_UTIL_STATS_H

#include "util/rng.h"

#include <cmath>

namespace nv::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's debiased multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(6.283185307179586 * u2);
}

}  // namespace nv::util

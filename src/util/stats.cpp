#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace nv::util {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void Samples::add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

void Samples::merge(const Samples& other) {
  if (other.values_.empty()) return;
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
}

double Samples::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo_idx = static_cast<std::size_t>(rank);
  const std::size_t hi_idx = std::min(lo_idx + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo_idx);
  return values_[lo_idx] * (1.0 - frac) + values_[hi_idx] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets == 0 ? 1 : buckets, 0) {}

void Histogram::add(double x) noexcept {
  const auto n = static_cast<double>(counts_.size());
  double pos = (x - lo_) / (hi_ - lo_) * n;
  pos = std::clamp(pos, 0.0, n - 1.0);
  ++counts_[static_cast<std::size_t>(pos)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(width));
    out << "[" << bucket_lo(i) << ", " << bucket_lo(i + 1) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace nv::util

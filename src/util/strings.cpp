#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace nv::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
    std::size_t start = i;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) == 0) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept {
  const std::string_view t = trim(text);
  if (t.empty()) return std::nullopt;
  int base = 10;
  std::size_t i = 0;
  if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    base = 16;
    i = 2;
  }
  std::uint64_t value = 0;
  for (; i < t.size(); ++i) {
    const char c = t[i];
    int digit = -1;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (base == 16 && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    if (digit < 0) return std::nullopt;
    value = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
  }
  return value;
}

std::optional<std::int64_t> parse_i64(std::string_view text) noexcept {
  std::string_view t = trim(text);
  bool negative = false;
  if (!t.empty() && (t[0] == '-' || t[0] == '+')) {
    negative = t[0] == '-';
    t.remove_prefix(1);
  }
  const auto magnitude = parse_u64(t);
  if (!magnitude) return std::nullopt;
  const auto value = static_cast<std::int64_t>(*magnitude);
  return negative ? -value : value;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string hex32(std::uint32_t value) { return format("0x%08x", value); }

std::string replace_all(std::string_view text, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

}  // namespace nv::util

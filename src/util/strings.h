// Small string helpers shared across modules (no locale dependence).
#ifndef NV_UTIL_STRINGS_H
#define NV_UTIL_STRINGS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nv::util {

/// Split on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Split on any whitespace run; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view text);

[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

[[nodiscard]] std::string to_lower(std::string_view text);

/// Parse a decimal (or 0x-prefixed hex) unsigned integer.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept;
[[nodiscard]] std::optional<std::int64_t> parse_i64(std::string_view text) noexcept;

/// printf-style formatting into a std::string (std::format is unavailable on
/// this toolchain).
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Hex rendering of a 32-bit value, zero padded: "0x7fffffff".
[[nodiscard]] std::string hex32(std::uint32_t value);

/// Replace all occurrences of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string_view text, std::string_view from,
                                      std::string_view to);

}  // namespace nv::util

#endif  // NV_UTIL_STRINGS_H

// Leveled logger with pluggable sink. No global mutable state: components
// receive a Logger (or default to a shared no-op instance).
#ifndef NV_UTIL_LOG_H
#define NV_UTIL_LOG_H

#include <atomic>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nv::util {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Thread-safe leveled logger. The sink receives fully formatted lines.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  Logger() = default;
  explicit Logger(Sink sink, LogLevel threshold = LogLevel::kInfo)
      : sink_(std::move(sink)), threshold_(threshold) {}

  /// Logger that writes "LEVEL message" lines to stderr.
  [[nodiscard]] static Logger stderr_logger(LogLevel threshold = LogLevel::kInfo);

  /// Shared silent logger for components that were not given one.
  [[nodiscard]] static Logger& null_logger();

  // The threshold is read on every log() call from worker threads while ops
  // code may retune it live: atomic, not mutex-guarded (the filter check must
  // stay cheap and lock-free on the fast path).
  void set_threshold(LogLevel threshold) noexcept {
    threshold_.store(threshold, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel threshold() const noexcept {
    return threshold_.load(std::memory_order_relaxed);
  }

  void log(LogLevel level, std::string_view message);
  void trace(std::string_view m) { log(LogLevel::kTrace, m); }
  void debug(std::string_view m) { log(LogLevel::kDebug, m); }
  void info(std::string_view m) { log(LogLevel::kInfo, m); }
  void warn(std::string_view m) { log(LogLevel::kWarn, m); }
  void error(std::string_view m) { log(LogLevel::kError, m); }

 private:
  Mutex mutex_;
  // The mutex serializes sink invocations (sinks need not be reentrant).
  Sink sink_ NV_GUARDED_BY(mutex_);
  std::atomic<LogLevel> threshold_{LogLevel::kInfo};
};

/// Sink that captures lines into a vector (used by tests).
class CaptureSink {
 public:
  [[nodiscard]] Logger::Sink sink();
  [[nodiscard]] std::vector<std::string> lines() const;
  [[nodiscard]] bool contains(std::string_view needle) const;

 private:
  mutable Mutex mutex_;
  std::vector<std::string> lines_ NV_GUARDED_BY(mutex_);
};

}  // namespace nv::util

#endif  // NV_UTIL_LOG_H

// Clang Thread Safety Analysis attribute macros (no-ops on other compilers).
//
// The diversity monitor's security argument depends on its own freedom from
// data races: a racy rendezvous can miss a divergence. These macros let the
// compiler prove lock discipline at build time (`clang++ -Wthread-safety
// -Werror`, see docs/STATIC_ANALYSIS.md) instead of relying on TSan catching
// the interleaving at runtime.
//
// Conventions (enforced by tools/nvlint.py rule NV-MUTEX-GUARD):
//  - every mutex-protected field is declared with NV_GUARDED_BY(mutex_);
//  - private helpers called with the lock held take NV_REQUIRES(mutex_);
//  - lock-free state uses std::atomic with explicit std::memory_order
//    (rule NV-MEMORY-ORDER) and carries no capability annotation;
//  - NV_NO_THREAD_SAFETY_ANALYSIS is an audited escape hatch: every use must
//    carry a comment stating the external-synchronization contract.
#ifndef NV_UTIL_THREAD_ANNOTATIONS_H
#define NV_UTIL_THREAD_ANNOTATIONS_H

#if defined(__clang__) && defined(__has_attribute)
#define NV_THREAD_ATTRIBUTE__(x) __attribute__((x))
#else
#define NV_THREAD_ATTRIBUTE__(x)  // no-op on GCC/MSVC
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define NV_CAPABILITY(x) NV_THREAD_ATTRIBUTE__(capability(x))

/// Marks a RAII type whose constructor acquires and destructor releases.
#define NV_SCOPED_CAPABILITY NV_THREAD_ATTRIBUTE__(scoped_lockable)

/// Field is protected by the given mutex; access requires holding it.
#define NV_GUARDED_BY(x) NV_THREAD_ATTRIBUTE__(guarded_by(x))

/// Pointed-to data is protected by the given mutex.
#define NV_PT_GUARDED_BY(x) NV_THREAD_ATTRIBUTE__(pt_guarded_by(x))

/// Function must be called with the given capability held (and keeps it held).
#define NV_REQUIRES(...) NV_THREAD_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function must be called WITHOUT the given capability (deadlock guard).
#define NV_EXCLUDES(...) NV_THREAD_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (and does not release it before return).
#define NV_ACQUIRE(...) NV_THREAD_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define NV_RELEASE(...) NV_THREAD_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function acquires the capability if (and only if) it returns `true`.
#define NV_TRY_ACQUIRE(...) NV_THREAD_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the given capability (for native handles).
#define NV_RETURN_CAPABILITY(x) NV_THREAD_ATTRIBUTE__(lock_returned(x))

/// Documented escape hatch: disables the analysis for one function. Every use
/// MUST carry a comment stating the external-synchronization contract, and is
/// audited in docs/STATIC_ANALYSIS.md.
#define NV_NO_THREAD_SAFETY_ANALYSIS NV_THREAD_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // NV_UTIL_THREAD_ANNOTATIONS_H

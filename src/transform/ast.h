// Mini-C ("nvc"): the source language for the automated UID-transformation
// study. §5 of the paper argues the manual Apache transformation "could be
// readily automated" given (a) uid_t type information or Splint-style
// inference and (b) a mechanical rewrite of constants, comparisons, and
// conditionals. This module is that automation, end to end: parse → infer →
// transform → print/execute.
#ifndef NV_TRANSFORM_AST_H
#define NV_TRANSFORM_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace nv::transform {

enum class Type : std::uint8_t { kVoid, kInt, kBool, kString, kUid, kGid };

[[nodiscard]] std::string_view type_name(Type type) noexcept;
[[nodiscard]] constexpr bool is_uid_type(Type type) noexcept {
  return type == Type::kUid || type == Type::kGid;
}

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv,
  kEq, kNeq, kLt, kLeq, kGt, kGeq,
  kAnd, kOr,
};
enum class UnOp : std::uint8_t { kNot, kNeg };

[[nodiscard]] std::string_view binop_token(BinOp op) noexcept;
[[nodiscard]] bool is_comparison(BinOp op) noexcept;

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One node kind for all expressions; the active fields depend on `kind`.
struct Expr {
  enum class Kind : std::uint8_t {
    kIntLit,    // int_value
    kStrLit,    // str_value
    kBoolLit,   // int_value (0/1)
    kVar,       // name
    kCall,      // callee, args
    kBinary,    // op, lhs, rhs
    kUnary,     // un_op, lhs
    kAssign,    // name, lhs (value)
  };

  Kind kind = Kind::kIntLit;
  long long int_value = 0;
  std::string str_value;
  std::string name;
  std::string callee;
  std::vector<ExprPtr> args;
  BinOp op = BinOp::kAdd;
  UnOp un_op = UnOp::kNot;
  ExprPtr lhs;
  ExprPtr rhs;

  // Filled by analysis: static type and whether the value is UID-derived
  // (taint used by the transformer's cond_chk insertion).
  Type type = Type::kInt;
  bool uid_tainted = false;
  int line = 0;

  [[nodiscard]] ExprPtr clone() const;

  static ExprPtr int_lit(long long value);
  static ExprPtr str_lit(std::string value);
  static ExprPtr bool_lit(bool value);
  static ExprPtr var(std::string name);
  static ExprPtr call(std::string callee, std::vector<ExprPtr> args);
  static ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr unary(UnOp op, ExprPtr operand);
  static ExprPtr assign(std::string name, ExprPtr value);
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    kExpr,     // expr
    kVarDecl,  // decl_type, name, expr (optional init)
    kIf,       // expr, body, else_body
    kWhile,    // expr, body
    kReturn,   // expr (optional)
    kBlock,    // body
  };

  Kind kind = Kind::kExpr;
  ExprPtr expr;
  Type decl_type = Type::kInt;
  std::string name;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
  int line = 0;

  [[nodiscard]] StmtPtr clone() const;
};

struct Param {
  Type type = Type::kInt;
  std::string name;
};

struct Function {
  Type ret = Type::kVoid;
  std::string name;
  std::vector<Param> params;
  std::vector<StmtPtr> body;

  [[nodiscard]] Function clone() const;
};

struct Program {
  std::vector<Function> functions;

  [[nodiscard]] Program clone() const;
  [[nodiscard]] const Function* find(std::string_view name) const;
};

/// Builtin signatures: the APIs whose UID semantics seed the inference
/// (getuid returns a UID; setuid consumes one — exactly the Splint seeds §4
/// describes).
struct Builtin {
  Type ret = Type::kVoid;
  std::vector<Type> params;
};

[[nodiscard]] const Builtin* find_builtin(std::string_view name);

}  // namespace nv::transform

#endif  // NV_TRANSFORM_AST_H

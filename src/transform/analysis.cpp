#include "transform/analysis.h"

namespace nv::transform {

namespace {

/// Per-program analysis state shared across fixpoint iterations.
class Analyzer {
 public:
  explicit Analyzer(Program& program) : program_(program) {
    for (auto& fn : program.functions) {
      signatures_[fn.name] = Signature{fn.ret, {}};
      for (const auto& param : fn.params) signatures_[fn.name].params.push_back(param.type);
    }
  }

  AnalysisResult run() {
    // Seed variable tables from declarations.
    for (auto& fn : program_.functions) {
      auto& vars = result_.var_types[fn.name];
      for (const auto& param : fn.params) vars[param.name] = param.type;
      seed_declarations(fn.name, fn.body);
    }
    // Fixpoint: each pass may promote more int variables to UID types or
    // taint more variables; stop when stable.
    bool changed = true;
    int iterations = 0;
    while (changed && iterations++ < 32) {
      changed = false;
      for (auto& fn : program_.functions) {
        current_fn_ = fn.name;
        for (auto& stmt : fn.body) changed |= visit_stmt(*stmt);
      }
    }
    return std::move(result_);
  }

 private:
  void seed_declarations(const std::string& fn, const std::vector<StmtPtr>& body) {
    for (const auto& stmt : body) {
      if (stmt->kind == Stmt::Kind::kVarDecl) result_.var_types[fn][stmt->name] = stmt->decl_type;
      seed_declarations(fn, stmt->body);
      seed_declarations(fn, stmt->else_body);
    }
  }

  const Signature* signature(const std::string& name) {
    const auto it = signatures_.find(name);
    if (it != signatures_.end()) return &it->second;
    if (const Builtin* builtin = find_builtin(name)) {
      // Cache builtin as a Signature for uniform access.
      signatures_[name] = Signature{builtin->ret, builtin->params};
      return &signatures_[name];
    }
    return nullptr;
  }

  /// Promote an int-declared variable to a UID type discovered by dataflow.
  bool promote(const std::string& var, Type to) {
    auto& vars = result_.var_types[current_fn_];
    const auto it = vars.find(var);
    if (it == vars.end()) return false;
    if (it->second == Type::kInt && is_uid_type(to)) {
      it->second = to;
      result_.inferred_uid_vars.push_back(current_fn_ + "::" + var);
      return true;
    }
    return false;
  }

  bool taint(const std::string& var) {
    return tainted_[current_fn_].insert(var).second;
  }
  bool is_tainted(const std::string& var) {
    return tainted_[current_fn_].contains(var);
  }

  bool visit_stmt(Stmt& stmt) {
    bool changed = false;
    switch (stmt.kind) {
      case Stmt::Kind::kVarDecl:
        if (stmt.expr) {
          changed |= visit_expr(*stmt.expr);
          changed |= promote(stmt.name, stmt.expr->type);
          if (stmt.expr->uid_tainted) changed |= taint(stmt.name);
        }
        break;
      case Stmt::Kind::kExpr:
      case Stmt::Kind::kReturn:
        if (stmt.expr) changed |= visit_expr(*stmt.expr);
        break;
      case Stmt::Kind::kIf:
      case Stmt::Kind::kWhile:
        if (stmt.expr) changed |= visit_expr(*stmt.expr);
        for (auto& child : stmt.body) changed |= visit_stmt(*child);
        for (auto& child : stmt.else_body) changed |= visit_stmt(*child);
        break;
      case Stmt::Kind::kBlock:
        for (auto& child : stmt.body) changed |= visit_stmt(*child);
        break;
    }
    return changed;
  }

  bool visit_expr(Expr& expr) {
    bool changed = false;
    const Type old_type = expr.type;
    const bool old_taint = expr.uid_tainted;
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        expr.type = Type::kInt;
        break;
      case Expr::Kind::kStrLit:
        expr.type = Type::kString;
        break;
      case Expr::Kind::kBoolLit:
        expr.type = Type::kBool;
        break;
      case Expr::Kind::kVar: {
        const auto& vars = result_.var_types[current_fn_];
        const auto it = vars.find(expr.name);
        if (it == vars.end()) {
          error(expr.line, "unknown variable '" + expr.name + "'");
        } else {
          expr.type = it->second;
        }
        expr.uid_tainted = is_uid_type(expr.type) || is_tainted(expr.name);
        break;
      }
      case Expr::Kind::kCall: {
        const Signature* sig = signature(expr.callee);
        if (sig == nullptr) {
          error(expr.line, "unknown function '" + expr.callee + "'");
          break;
        }
        if (sig->params.size() != expr.args.size()) {
          error(expr.line, "wrong argument count for '" + expr.callee + "'");
          break;
        }
        for (std::size_t i = 0; i < expr.args.size(); ++i) {
          changed |= visit_expr(*expr.args[i]);
          // Inference seed: passing an int variable where a UID is expected
          // promotes the variable.
          if (is_uid_type(sig->params[i]) && expr.args[i]->kind == Expr::Kind::kVar) {
            changed |= promote(expr.args[i]->name, sig->params[i]);
          }
          expr.uid_tainted = expr.uid_tainted || expr.args[i]->uid_tainted;
        }
        expr.type = sig->ret;
        if (is_uid_type(sig->ret)) expr.uid_tainted = true;
        break;
      }
      case Expr::Kind::kBinary: {
        changed |= visit_expr(*expr.lhs);
        changed |= visit_expr(*expr.rhs);
        expr.uid_tainted = expr.lhs->uid_tainted || expr.rhs->uid_tainted;
        if (is_comparison(expr.op) || expr.op == BinOp::kAnd || expr.op == BinOp::kOr) {
          expr.type = Type::kBool;
        } else {
          expr.type = is_uid_type(expr.lhs->type) ? expr.lhs->type
                      : is_uid_type(expr.rhs->type) ? expr.rhs->type
                                                    : expr.lhs->type;
        }
        // Comparing an int variable to a uid expression promotes it.
        if (is_comparison(expr.op)) {
          if (is_uid_type(expr.lhs->type) && expr.rhs->kind == Expr::Kind::kVar) {
            changed |= promote(expr.rhs->name, expr.lhs->type);
          }
          if (is_uid_type(expr.rhs->type) && expr.lhs->kind == Expr::Kind::kVar) {
            changed |= promote(expr.lhs->name, expr.rhs->type);
          }
        }
        break;
      }
      case Expr::Kind::kUnary:
        changed |= visit_expr(*expr.lhs);
        expr.type = expr.un_op == UnOp::kNot ? Type::kBool : expr.lhs->type;
        expr.uid_tainted = expr.lhs->uid_tainted;
        break;
      case Expr::Kind::kAssign: {
        changed |= visit_expr(*expr.lhs);
        const auto& vars = result_.var_types[current_fn_];
        const auto it = vars.find(expr.name);
        if (it == vars.end()) {
          error(expr.line, "assignment to unknown variable '" + expr.name + "'");
        } else {
          expr.type = it->second;
        }
        changed |= promote(expr.name, expr.lhs->type);
        if (expr.lhs->uid_tainted) changed |= taint(expr.name);
        expr.uid_tainted = expr.lhs->uid_tainted;
        break;
      }
    }
    return changed || expr.type != old_type || expr.uid_tainted != old_taint;
  }

  void error(int line, const std::string& message) {
    const std::string text = "line " + std::to_string(line) + ": " + message;
    for (const auto& existing : result_.errors) {
      if (existing == text) return;  // fixpoint reruns; dedupe
    }
    result_.errors.push_back(text);
  }

  Program& program_;
  AnalysisResult result_;
  std::map<std::string, Signature> signatures_;
  std::map<std::string, std::set<std::string>> tainted_;
  std::string current_fn_;
};

}  // namespace

AnalysisResult analyze(Program& program) { return Analyzer(program).run(); }

const Signature* find_signature(const Program& program, std::string_view name) {
  static thread_local std::map<std::string, Signature> cache;
  if (const Function* fn = program.find(name)) {
    Signature sig{fn->ret, {}};
    for (const auto& param : fn->params) sig.params.push_back(param.type);
    cache[std::string(name)] = sig;
    return &cache[std::string(name)];
  }
  if (const Builtin* builtin = find_builtin(name)) {
    cache[std::string(name)] = Signature{builtin->ret, builtin->params};
    return &cache[std::string(name)];
  }
  return nullptr;
}

}  // namespace nv::transform

#include "transform/minic_guest.h"

#include <stdexcept>

#include "transform/analysis.h"
#include "transform/parser.h"

namespace nv::transform {

MiniCGuest::MiniCGuest(std::string source, Options options)
    : source_(std::move(source)), options_(std::move(options)) {}

void MiniCGuest::run(guest::GuestContext& ctx) {
  // "Build" this variant: parse + analyze + transform with R_i. The mask is
  // recovered from the variant's coder: for XOR-family coders R_i(0) IS the
  // mask (identity -> 0).
  Program program = parse(source_);
  const AnalysisResult analysis = analyze(program);
  if (!analysis.ok()) {
    throw std::runtime_error("mini-C analysis failed: " + analysis.errors.front());
  }

  TransformStats stats;
  if (options_.apply_transformation) {
    TransformOptions topts;
    topts.mask = ctx.uid_const(0);
    topts.detection = options_.detection;
    program = transform_uid(program, topts, &stats);
  }

  InterpOptions iopts;
  iopts.entry = options_.entry;
  if (!options_.log_path.empty()) {
    auto fd = ctx.open(options_.log_path,
                       os::OpenFlags::kWrite | os::OpenFlags::kCreate | os::OpenFlags::kAppend,
                       0640);
    if (fd) iopts.log_fd = *fd;
  }

  InterpResult result = interpret(program, ctx, iopts);

  if (iopts.log_fd >= 0) (void)ctx.close(iopts.log_fd);
  {
    const util::MutexLock lock(mutex_);
    stats_[ctx.variant()] = stats;
    results_[ctx.variant()] = result;
  }
  long long code = 0;
  if (const auto* i = std::get_if<long long>(&result.ret)) code = *i;
  ctx.exit(static_cast<int>(code));
}

InterpResult MiniCGuest::result_for(unsigned variant) const {
  const util::MutexLock lock(mutex_);
  const auto it = results_.find(variant);
  return it == results_.end() ? InterpResult{} : it->second;
}

TransformStats MiniCGuest::stats_for(unsigned variant) const {
  const util::MutexLock lock(mutex_);
  const auto it = stats_.find(variant);
  return it == stats_.end() ? TransformStats{} : it->second;
}

}  // namespace nv::transform

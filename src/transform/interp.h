// Tree-walking interpreter: executes mini-C programs as guests against a
// GuestContext, so transformed programs run inside the MVEE for real. UID
// builtins become syscalls; detection builtins become Table 2 syscalls.
#ifndef NV_TRANSFORM_INTERP_H
#define NV_TRANSFORM_INTERP_H

#include <string>
#include <variant>
#include <vector>

#include "guest/guest_program.h"
#include "transform/ast.h"

namespace nv::transform {

/// Runtime value: integers carry int/bool/uid/gid; strings are separate.
using Value = std::variant<long long, std::string>;

struct InterpResult {
  Value ret = 0LL;
  /// Lines produced by log_msg/log_uid, in order (also written to the log fd
  /// when one is configured).
  std::vector<std::string> log;
  std::vector<long long> responses;  // respond(n) codes, in order
  std::uint64_t steps = 0;
};

struct InterpOptions {
  std::string entry = "main";
  std::uint64_t max_steps = 1 << 20;  // guard against runaway guests
  /// When >= 0, log lines are also written to this fd via ctx.write — making
  /// log output visible to the MVEE monitor (the §4 error-log hazard).
  os::fd_t log_fd = -1;
};

/// Execute `program` with `ctx` providing syscalls. Throws std::runtime_error
/// on dynamic errors (unknown function, step overflow, division by zero).
[[nodiscard]] InterpResult interpret(const Program& program, guest::GuestContext& ctx,
                                     const InterpOptions& options = {});

}  // namespace nv::transform

#endif  // NV_TRANSFORM_INTERP_H

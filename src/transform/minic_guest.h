// Runs a mini-C program as an MVEE guest: each variant transforms the source
// with ITS OWN reexpression mask at startup (the per-variant "build step"),
// then interprets the transformed AST. This closes the loop the paper's §5
// sketches: automated transformation producing variants that actually execute
// under the monitor.
#ifndef NV_TRANSFORM_MINIC_GUEST_H
#define NV_TRANSFORM_MINIC_GUEST_H

#include <map>
#include <string>

#include "guest/guest_program.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "transform/interp.h"
#include "transform/transform_pass.h"

namespace nv::transform {

class MiniCGuest final : public guest::GuestProgram {
 public:
  struct Options {
    DetectionMode detection = DetectionMode::kSyscalls;
    /// When non-empty the guest opens this (shared) log file and the
    /// interpreter writes log_msg/log_uid lines through it, exposing log
    /// output to the monitor.
    std::string log_path = "/var/log/minic.log";
    std::string entry = "main";
    /// When false, run the ORIGINAL program in every variant (demonstrates
    /// why normal equivalence requires the transformation).
    bool apply_transformation = true;
  };

  explicit MiniCGuest(std::string source) : MiniCGuest(std::move(source), Options{}) {}
  MiniCGuest(std::string source, Options options);

  [[nodiscard]] std::string_view name() const override { return "minic-guest"; }
  void run(guest::GuestContext& ctx) override;

  /// Interpreter result per variant (valid after a run; guarded internally).
  [[nodiscard]] InterpResult result_for(unsigned variant) const;
  [[nodiscard]] TransformStats stats_for(unsigned variant) const;

 private:
  std::string source_;
  Options options_;
  mutable util::Mutex mutex_;
  std::map<unsigned, InterpResult> results_ NV_GUARDED_BY(mutex_);
  std::map<unsigned, TransformStats> stats_ NV_GUARDED_BY(mutex_);
};

}  // namespace nv::transform

#endif  // NV_TRANSFORM_MINIC_GUEST_H

#include "transform/ast.h"

#include <map>

namespace nv::transform {

std::string_view type_name(Type type) noexcept {
  switch (type) {
    case Type::kVoid: return "void";
    case Type::kInt: return "int";
    case Type::kBool: return "bool";
    case Type::kString: return "string";
    case Type::kUid: return "uid_t";
    case Type::kGid: return "gid_t";
  }
  return "?";
}

std::string_view binop_token(BinOp op) noexcept {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kEq: return "==";
    case BinOp::kNeq: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLeq: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGeq: return ">=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

bool is_comparison(BinOp op) noexcept {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNeq:
    case BinOp::kLt:
    case BinOp::kLeq:
    case BinOp::kGt:
    case BinOp::kGeq:
      return true;
    default:
      return false;
  }
}

ExprPtr Expr::clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->int_value = int_value;
  copy->str_value = str_value;
  copy->name = name;
  copy->callee = callee;
  for (const auto& arg : args) copy->args.push_back(arg->clone());
  copy->op = op;
  copy->un_op = un_op;
  if (lhs) copy->lhs = lhs->clone();
  if (rhs) copy->rhs = rhs->clone();
  copy->type = type;
  copy->uid_tainted = uid_tainted;
  copy->line = line;
  return copy;
}

ExprPtr Expr::int_lit(long long value) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kIntLit;
  e->int_value = value;
  return e;
}
ExprPtr Expr::str_lit(std::string value) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kStrLit;
  e->str_value = std::move(value);
  e->type = Type::kString;
  return e;
}
ExprPtr Expr::bool_lit(bool value) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBoolLit;
  e->int_value = value ? 1 : 0;
  e->type = Type::kBool;
  return e;
}
ExprPtr Expr::var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVar;
  e->name = std::move(name);
  return e;
}
ExprPtr Expr::call(std::string callee, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCall;
  e->callee = std::move(callee);
  e->args = std::move(args);
  return e;
}
ExprPtr Expr::binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}
ExprPtr Expr::unary(UnOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->un_op = op;
  e->lhs = std::move(operand);
  return e;
}
ExprPtr Expr::assign(std::string name, ExprPtr value) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAssign;
  e->name = std::move(name);
  e->lhs = std::move(value);
  return e;
}

StmtPtr Stmt::clone() const {
  auto copy = std::make_unique<Stmt>();
  copy->kind = kind;
  if (expr) copy->expr = expr->clone();
  copy->decl_type = decl_type;
  copy->name = name;
  for (const auto& s : body) copy->body.push_back(s->clone());
  for (const auto& s : else_body) copy->else_body.push_back(s->clone());
  copy->line = line;
  return copy;
}

Function Function::clone() const {
  Function copy;
  copy.ret = ret;
  copy.name = name;
  copy.params = params;
  for (const auto& s : body) copy.body.push_back(s->clone());
  return copy;
}

Program Program::clone() const {
  Program copy;
  for (const auto& f : functions) copy.functions.push_back(f.clone());
  return copy;
}

const Function* Program::find(std::string_view name) const {
  for (const auto& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const Builtin* find_builtin(std::string_view name) {
  static const std::map<std::string, Builtin, std::less<>> builtins = {
      // POSIX credential API — the inference seeds.
      {"getuid", {Type::kUid, {}}},
      {"geteuid", {Type::kUid, {}}},
      {"getgid", {Type::kGid, {}}},
      {"getegid", {Type::kGid, {}}},
      {"setuid", {Type::kInt, {Type::kUid}}},
      {"seteuid", {Type::kInt, {Type::kUid}}},
      {"setreuid", {Type::kInt, {Type::kUid, Type::kUid}}},
      {"setgid", {Type::kInt, {Type::kGid}}},
      {"setegid", {Type::kInt, {Type::kGid}}},
      // passwd/group lookups.
      {"getpwnam_uid", {Type::kUid, {Type::kString}}},
      {"getpwnam_gid", {Type::kGid, {Type::kString}}},
      {"getgrnam_gid", {Type::kGid, {Type::kString}}},
      {"getpwuid_ok", {Type::kBool, {Type::kUid}}},
      // Application actions.
      {"log_msg", {Type::kVoid, {Type::kString}}},
      {"log_uid", {Type::kVoid, {Type::kString, Type::kUid}}},
      {"respond", {Type::kVoid, {Type::kInt}}},
      {"abort_request", {Type::kVoid, {}}},
      {"exit", {Type::kVoid, {Type::kInt}}},
      // Detection syscalls inserted by the transformer (Table 2).
      {"uid_value", {Type::kUid, {Type::kUid}}},
      {"cond_chk", {Type::kBool, {Type::kBool}}},
      {"cc_eq", {Type::kBool, {Type::kUid, Type::kUid}}},
      {"cc_neq", {Type::kBool, {Type::kUid, Type::kUid}}},
      {"cc_lt", {Type::kBool, {Type::kUid, Type::kUid}}},
      {"cc_leq", {Type::kBool, {Type::kUid, Type::kUid}}},
      {"cc_gt", {Type::kBool, {Type::kUid, Type::kUid}}},
      {"cc_geq", {Type::kBool, {Type::kUid, Type::kUid}}},
  };
  const auto it = builtins.find(name);
  return it == builtins.end() ? nullptr : &it->second;
}

}  // namespace nv::transform

// Pretty-printer: AST -> mini-C source (used by the transform_tool example
// and round-trip tests).
#ifndef NV_TRANSFORM_PRINTER_H
#define NV_TRANSFORM_PRINTER_H

#include <string>

#include "transform/ast.h"

namespace nv::transform {

[[nodiscard]] std::string print(const Program& program);
[[nodiscard]] std::string print(const Expr& expr);

}  // namespace nv::transform

#endif  // NV_TRANSFORM_PRINTER_H

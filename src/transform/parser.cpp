#include "transform/parser.h"

#include <optional>
#include <stdexcept>

#include "transform/lexer.h"

namespace nv::transform {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse_program() {
    Program program;
    while (!at_eof()) program.functions.push_back(parse_function());
    return program;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("parse error at line " + std::to_string(current().line) + ": " +
                             message + " (near '" + current().text + "')");
  }

  const Token& current() const { return tokens_[pos_]; }
  bool at_eof() const { return current().kind == TokenKind::kEof; }

  bool is_punct(std::string_view text) const {
    return current().kind == TokenKind::kPunct && current().text == text;
  }
  bool is_ident(std::string_view text) const {
    return current().kind == TokenKind::kIdent && current().text == text;
  }

  Token take() { return tokens_[pos_++]; }

  void expect_punct(std::string_view text) {
    if (!is_punct(text)) fail("expected '" + std::string(text) + "'");
    ++pos_;
  }

  std::string expect_ident() {
    if (current().kind != TokenKind::kIdent) fail("expected identifier");
    return take().text;
  }

  std::optional<Type> peek_type() const {
    if (current().kind != TokenKind::kIdent) return std::nullopt;
    const std::string& t = current().text;
    if (t == "void") return Type::kVoid;
    if (t == "int") return Type::kInt;
    if (t == "bool") return Type::kBool;
    if (t == "string") return Type::kString;
    if (t == "uid_t") return Type::kUid;
    if (t == "gid_t") return Type::kGid;
    return std::nullopt;
  }

  Type expect_type() {
    const auto type = peek_type();
    if (!type) fail("expected type name");
    ++pos_;
    return *type;
  }

  Function parse_function() {
    Function fn;
    fn.ret = expect_type();
    fn.name = expect_ident();
    expect_punct("(");
    if (!is_punct(")")) {
      while (true) {
        Param param;
        param.type = expect_type();
        param.name = expect_ident();
        fn.params.push_back(std::move(param));
        if (is_punct(")")) break;
        expect_punct(",");
      }
    }
    expect_punct(")");
    fn.body = parse_block();
    return fn;
  }

  std::vector<StmtPtr> parse_block() {
    expect_punct("{");
    std::vector<StmtPtr> statements;
    while (!is_punct("}")) {
      if (at_eof()) fail("unterminated block");
      statements.push_back(parse_statement());
    }
    expect_punct("}");
    return statements;
  }

  StmtPtr parse_statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = current().line;

    if (const auto type = peek_type(); type && *type != Type::kVoid) {
      // Variable declaration: `type name [= expr];`
      stmt->kind = Stmt::Kind::kVarDecl;
      stmt->decl_type = expect_type();
      stmt->name = expect_ident();
      if (is_punct("=")) {
        ++pos_;
        stmt->expr = parse_expr();
      }
      expect_punct(";");
      return stmt;
    }
    if (is_ident("if")) {
      ++pos_;
      stmt->kind = Stmt::Kind::kIf;
      expect_punct("(");
      stmt->expr = parse_expr();
      expect_punct(")");
      stmt->body = parse_block();
      if (is_ident("else")) {
        ++pos_;
        if (is_ident("if")) {
          stmt->else_body.push_back(parse_statement());
        } else {
          stmt->else_body = parse_block();
        }
      }
      return stmt;
    }
    if (is_ident("while")) {
      ++pos_;
      stmt->kind = Stmt::Kind::kWhile;
      expect_punct("(");
      stmt->expr = parse_expr();
      expect_punct(")");
      stmt->body = parse_block();
      return stmt;
    }
    if (is_ident("return")) {
      ++pos_;
      stmt->kind = Stmt::Kind::kReturn;
      if (!is_punct(";")) stmt->expr = parse_expr();
      expect_punct(";");
      return stmt;
    }
    if (is_punct("{")) {
      stmt->kind = Stmt::Kind::kBlock;
      stmt->body = parse_block();
      return stmt;
    }
    stmt->kind = Stmt::Kind::kExpr;
    stmt->expr = parse_expr();
    expect_punct(";");
    return stmt;
  }

  // Precedence climbing: assignment < or < and < comparison < additive <
  // multiplicative < unary < primary.
  ExprPtr parse_expr() { return parse_assign(); }

  ExprPtr parse_assign() {
    ExprPtr lhs = parse_or();
    if (is_punct("=")) {
      if (lhs->kind != Expr::Kind::kVar) fail("assignment target must be a variable");
      const int line = current().line;
      ++pos_;
      auto e = Expr::assign(lhs->name, parse_assign());
      e->line = line;
      return e;
    }
    return lhs;
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (is_punct("||")) {
      const int line = take().line;
      auto e = Expr::binary(BinOp::kOr, std::move(lhs), parse_and());
      e->line = line;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_comparison();
    while (is_punct("&&")) {
      const int line = take().line;
      auto e = Expr::binary(BinOp::kAnd, std::move(lhs), parse_comparison());
      e->line = line;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    while (true) {
      BinOp op;
      if (is_punct("==")) op = BinOp::kEq;
      else if (is_punct("!=")) op = BinOp::kNeq;
      else if (is_punct("<")) op = BinOp::kLt;
      else if (is_punct("<=")) op = BinOp::kLeq;
      else if (is_punct(">")) op = BinOp::kGt;
      else if (is_punct(">=")) op = BinOp::kGeq;
      else return lhs;
      const int line = take().line;
      auto e = Expr::binary(op, std::move(lhs), parse_additive());
      e->line = line;
      lhs = std::move(e);
    }
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (is_punct("+") || is_punct("-")) {
      const BinOp op = is_punct("+") ? BinOp::kAdd : BinOp::kSub;
      const int line = take().line;
      auto e = Expr::binary(op, std::move(lhs), parse_multiplicative());
      e->line = line;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (is_punct("*") || is_punct("/")) {
      const BinOp op = is_punct("*") ? BinOp::kMul : BinOp::kDiv;
      const int line = take().line;
      auto e = Expr::binary(op, std::move(lhs), parse_unary());
      e->line = line;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (is_punct("!")) {
      const int line = take().line;
      auto e = Expr::unary(UnOp::kNot, parse_unary());
      e->line = line;
      return e;
    }
    if (is_punct("-")) {
      const int line = take().line;
      auto e = Expr::unary(UnOp::kNeg, parse_unary());
      e->line = line;
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const int line = current().line;
    if (is_punct("(")) {
      ++pos_;
      ExprPtr inner = parse_expr();
      expect_punct(")");
      return inner;
    }
    if (current().kind == TokenKind::kNumber) {
      auto e = Expr::int_lit(take().number);
      e->line = line;
      return e;
    }
    if (current().kind == TokenKind::kString) {
      auto e = Expr::str_lit(take().text);
      e->line = line;
      return e;
    }
    if (current().kind == TokenKind::kIdent) {
      if (current().text == "true" || current().text == "false") {
        auto e = Expr::bool_lit(take().text == "true");
        e->line = line;
        return e;
      }
      std::string name = take().text;
      if (is_punct("(")) {
        ++pos_;
        std::vector<ExprPtr> args;
        if (!is_punct(")")) {
          while (true) {
            args.push_back(parse_expr());
            if (is_punct(")")) break;
            expect_punct(",");
          }
        }
        expect_punct(")");
        auto e = Expr::call(std::move(name), std::move(args));
        e->line = line;
        return e;
      }
      auto e = Expr::var(std::move(name));
      e->line = line;
      return e;
    }
    fail("expected expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source) {
  Parser parser(lex(source));
  return parser.parse_program();
}

}  // namespace nv::transform

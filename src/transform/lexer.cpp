#include "transform/lexer.h"

#include <cctype>
#include <stdexcept>

namespace nv::transform {

namespace {
[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("lex error at line " + std::to_string(line) + ": " + message);
}
}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;
  const auto peek = [&](std::size_t offset = 0) -> char {
    return i + offset < source.size() ? source[i + offset] : '\0';
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < source.size() && !(source[i] == '*' && peek(1) == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i >= source.size()) fail(line, "unterminated block comment");
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) != 0 || source[i] == '_')) {
        ++i;
      }
      tokens.push_back({TokenKind::kIdent, std::string(source.substr(start, i - start)), 0, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t start = i;
      long long value = 0;
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        i += 2;
        while (i < source.size() && std::isxdigit(static_cast<unsigned char>(source[i])) != 0) ++i;
        value = std::stoll(std::string(source.substr(start, i - start)), nullptr, 16);
      } else {
        while (i < source.size() && std::isdigit(static_cast<unsigned char>(source[i])) != 0) ++i;
        value = std::stoll(std::string(source.substr(start, i - start)));
      }
      tokens.push_back({TokenKind::kNumber, std::string(source.substr(start, i - start)), value,
                        line});
      continue;
    }
    if (c == '"') {
      ++i;
      std::string text;
      while (i < source.size() && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < source.size()) {
          ++i;
          switch (source[i]) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            default: text += source[i]; break;
          }
        } else {
          if (source[i] == '\n') fail(line, "newline in string literal");
          text += source[i];
        }
        ++i;
      }
      if (i >= source.size()) fail(line, "unterminated string literal");
      ++i;
      tokens.push_back({TokenKind::kString, std::move(text), 0, line});
      continue;
    }
    // Two-character operators first.
    static constexpr std::string_view kTwoChar[] = {"==", "!=", "<=", ">=", "&&", "||"};
    bool matched = false;
    for (std::string_view op : kTwoChar) {
      if (source.substr(i, 2) == op) {
        tokens.push_back({TokenKind::kPunct, std::string(op), 0, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static constexpr std::string_view kOneChar = "+-*/<>=!(){},;";
    if (kOneChar.find(c) != std::string_view::npos) {
      tokens.push_back({TokenKind::kPunct, std::string(1, c), 0, line});
      ++i;
      continue;
    }
    fail(line, std::string("unexpected character '") + c + "'");
  }
  tokens.push_back({TokenKind::kEof, "", 0, line});
  return tokens;
}

}  // namespace nv::transform

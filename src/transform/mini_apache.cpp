#include "transform/mini_apache.h"

namespace nv::transform {

namespace {
// UID usage patterns modelled on httpd 1.3: http_main.c (setuid dance),
// suexec.c (target-user vetting), util.c (identity checks), mod_cgi-ish
// per-request handling. Variable `cgi_uid` in run_cgi is deliberately
// declared `int` to exercise the Splint-style inference path (§4).
constexpr std::string_view kSource = R"NVC(
// ---- identity helpers (util.c-ish) ----------------------------------------

uid_t lookup_user(string name) {
  uid_t uid = getpwnam_uid(name);
  if (uid == 0xFFFFFFFF) {
    log_msg("lookup_user: unknown user");
    return 0xFFFFFFFF;
  }
  return uid;
}

gid_t lookup_group(string name) {
  gid_t gid = getgrnam_gid(name);
  if (gid == 0xFFFFFFFF) {
    log_msg("lookup_group: unknown group");
  }
  return gid;
}

bool is_root_uid(uid_t uid) {
  return uid == 0;
}

bool same_user(uid_t a, uid_t b) {
  return a == b;
}

// ---- suexec.c-style target vetting ----------------------------------------

bool uid_in_allowed_range(uid_t uid) {
  bool too_low = uid < 100;
  bool too_high = uid > 60000;
  if (too_low || too_high) {
    return false;
  }
  bool reserved = uid >= 500 && uid <= 999;
  if (reserved) {
    return false;
  }
  return true;
}

bool vet_cgi_target(uid_t target, uid_t worker) {
  if (is_root_uid(target)) {
    log_msg("suexec: refusing to run as root");
    return false;
  }
  if (target == worker) {
    log_msg("suexec: target equals worker");
    return false;
  }
  if (target <= worker) {
    log_msg("suexec: target not above worker");
  }
  if (!uid_in_allowed_range(target)) {
    log_msg("suexec: target outside allowed range");
    return false;
  }
  if (!getpwuid_ok(target)) {
    log_msg("suexec: target has no passwd entry");
    return false;
  }
  return true;
}

// ---- http_main.c-style privilege management --------------------------------

int drop_privileges(uid_t worker, gid_t worker_gid) {
  if (setegid(worker_gid) != 0) {
    log_msg("drop: setegid failed");
    return 1;
  }
  if (seteuid(worker) != 0) {
    log_msg("drop: seteuid failed");
    return 1;
  }
  uid_t now = geteuid();
  if (now != worker) {
    log_uid("drop: verification failed", now);
    return 1;
  }
  uid_t real = getuid();
  if (real != 0 && real != worker) {
    log_msg("drop: unexpected real uid");
  }
  return 0;
}

int escalate() {
  if (seteuid(0) != 0) {
    log_msg("escalate: seteuid(0) failed");
    return 1;
  }
  if (!is_root_uid(geteuid())) {
    log_msg("escalate: still not root");
    return 1;
  }
  return 0;
}

int restore(uid_t worker) {
  if (seteuid(worker) != 0) {
    log_uid("restore: seteuid failed", worker);
    return 1;
  }
  uid_t now = geteuid();
  if (now != worker) {
    log_msg("restore: verification failed");
    return 1;
  }
  return 0;
}

// ---- request handling (mod_cgi-ish) ----------------------------------------

int run_cgi(string script_owner_name, uid_t worker) {
  int cgi_uid = getpwnam_uid(script_owner_name);
  if (cgi_uid == 0xFFFFFFFF) {
    respond(404);
    return 1;
  }
  if (!vet_cgi_target(cgi_uid, worker)) {
    respond(403);
    return 1;
  }
  if (same_user(cgi_uid, worker)) {
    respond(200);
    return 0;
  }
  if (escalate() != 0) {
    respond(500);
    return 1;
  }
  if (setuid(cgi_uid) != 0) {
    log_uid("run_cgi: setuid failed", cgi_uid);
    respond(500);
    return 1;
  }
  uid_t effective = geteuid();
  if (effective != cgi_uid) {
    respond(500);
    return 1;
  }
  respond(200);
  return 0;
}

int serve_protected(uid_t worker) {
  if (escalate() != 0) {
    respond(500);
    return 1;
  }
  respond(200);
  if (restore(worker) != 0) {
    respond(500);
    return 1;
  }
  uid_t check = geteuid();
  if (check == 0) {
    log_msg("serve_protected: still root after restore");
    return 1;
  }
  return 0;
}

int serve_static(uid_t worker) {
  uid_t now = geteuid();
  if (now != worker) {
    log_uid("serve_static: unexpected identity", now);
    respond(500);
    return 1;
  }
  respond(200);
  return 0;
}

// ---- main (startup + request loop) -----------------------------------------

int main() {
  uid_t boot_uid = getuid();
  if (boot_uid != 0) {
    log_msg("main: must start as root");
    return 2;
  }
  uid_t worker = lookup_user("www");
  gid_t worker_gid = lookup_group("www");
  if (worker == 0xFFFFFFFF) {
    return 2;
  }
  if (is_root_uid(worker)) {
    log_msg("main: refusing User root");
    return 2;
  }
  if (worker < 100) {
    log_msg("main: User uid suspiciously low");
  }
  if (drop_privileges(worker, worker_gid) != 0) {
    return 2;
  }
  uid_t sanity = geteuid();
  if (sanity != worker) {
    return 2;
  }
  int failures = 0;
  if (serve_static(worker) != 0) {
    failures = failures + 1;
  }
  if (serve_protected(worker) != 0) {
    failures = failures + 1;
  }
  if (run_cgi("alice", worker) != 0) {
    failures = failures + 1;
  }
  if (run_cgi("nosuchuser", worker) != 0) {
    failures = failures + 1;
  }
  return 0;
}
)NVC";
}  // namespace

std::string_view mini_apache_source() { return kSource; }

}  // namespace nv::transform

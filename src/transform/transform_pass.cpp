#include "transform/transform_pass.h"

namespace nv::transform {

namespace {

const char* cc_name(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "cc_eq";
    case BinOp::kNeq: return "cc_neq";
    case BinOp::kLt: return "cc_lt";
    case BinOp::kLeq: return "cc_leq";
    case BinOp::kGt: return "cc_gt";
    case BinOp::kGeq: return "cc_geq";
    default: return nullptr;
  }
}

BinOp reversed(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLeq: return BinOp::kGeq;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGeq: return BinOp::kLeq;
    default: return op;
  }
}

class Transformer {
 public:
  Transformer(const Program& program, const TransformOptions& options, TransformStats& stats)
      : program_(program), options_(options), stats_(stats) {}

  Program run() {
    Program out = program_.clone();
    for (auto& fn : out.functions) {
      current_ret_ = fn.ret;
      for (auto& stmt : fn.body) rewrite_stmt(*stmt);
    }
    return out;
  }

 private:
  // ---- constants -----------------------------------------------------------

  /// Reexpress an integer literal that sits in a UID context.
  void reexpress_literal(Expr& lit) {
    ++stats_.constants_reexpressed;
    const auto canonical = static_cast<os::uid_t>(lit.int_value);
    lit.int_value = static_cast<long long>(canonical ^ options_.mask);
    lit.type = Type::kUid;
  }

  // ---- expressions ---------------------------------------------------------

  /// Rewrite `expr` in place. `uid_context` is the type the surrounding
  /// context expects (used to catch literals in UID positions).
  void rewrite_expr(ExprPtr& expr, Type uid_context = Type::kInt) {
    switch (expr->kind) {
      case Expr::Kind::kIntLit:
        if (is_uid_type(uid_context)) reexpress_literal(*expr);
        return;
      case Expr::Kind::kStrLit:
      case Expr::Kind::kBoolLit:
      case Expr::Kind::kVar:
        return;
      case Expr::Kind::kCall:
        rewrite_call(*expr);
        return;
      case Expr::Kind::kBinary:
        rewrite_binary(expr);
        return;
      case Expr::Kind::kUnary:
        if (expr->un_op == UnOp::kNot && is_uid_type(expr->lhs->type)) {
          // §3.3's example: if(!getuid()) has an implied comparison with 0.
          // Make it explicit so the constant can be reexpressed.
          ++stats_.implicit_made_explicit;
          ExprPtr operand = std::move(expr->lhs);
          const Type operand_type = operand->type;
          auto zero = Expr::int_lit(0);
          zero->type = operand_type;
          auto cmp = Expr::binary(BinOp::kEq, std::move(operand), std::move(zero));
          cmp->type = Type::kBool;
          cmp->uid_tainted = true;
          cmp->lhs->uid_tainted = true;
          expr = std::move(cmp);
          rewrite_binary(expr);
          return;
        }
        rewrite_expr(expr->lhs);
        return;
      case Expr::Kind::kAssign:
        rewrite_expr(expr->lhs, expr->type);
        return;
    }
  }

  void rewrite_call(Expr& call) {
    const Signature* sig = find_signature(program_, call.callee);
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      const Type param = sig && i < sig->params.size() ? sig->params[i] : Type::kInt;
      rewrite_expr(call.args[i], param);
      if (options_.detection == DetectionMode::kSyscalls && is_uid_type(param) &&
          expose_uid_arg(call.callee)) {
        // §3.5: pw = getpwname(uid) becomes pw = getpwname(uid_value(uid)).
        ++stats_.uid_value_insertions;
        std::vector<ExprPtr> wrapped;
        wrapped.push_back(std::move(call.args[i]));
        auto check = Expr::call("uid_value", std::move(wrapped));
        check->type = param;
        check->uid_tainted = true;
        call.args[i] = std::move(check);
      }
    }
  }

  /// The kernel wrapper already inverse-transforms and cross-checks the
  /// set*id family, and the detection calls check themselves; log output is
  /// handled by the §4 workaround (removal), not by exposure. Everything
  /// else consuming a UID gets a uid_value exposure.
  static bool expose_uid_arg(const std::string& callee) {
    static const char* kExempt[] = {"setuid",  "seteuid", "setreuid", "setgid",
                                    "setegid", "log_uid", "uid_value",
                                    "cc_eq",   "cc_neq",  "cc_lt",    "cc_leq",
                                    "cc_gt",   "cc_geq"};
    for (const char* name : kExempt) {
      if (callee == name) return false;
    }
    return true;
  }

  void rewrite_binary(ExprPtr& expr) {
    if (is_comparison(expr->op)) {
      const bool uid_compare = is_uid_type(expr->lhs->type) || is_uid_type(expr->rhs->type);
      // Children first; a literal facing a UID-typed sibling is a UID
      // constant and is reexpressed via the context parameter.
      rewrite_expr(expr->lhs, uid_compare ? expr->rhs->type : Type::kInt);
      rewrite_expr(expr->rhs, uid_compare ? expr->lhs->type : Type::kInt);
      if (uid_compare && options_.detection == DetectionMode::kSyscalls) {
        // (uid == VARIANT_ROOT) → cc_eq(uid, VARIANT_ROOT): one syscall
        // checks both values and keeps variant instruction streams identical.
        ++stats_.cc_rewrites;
        std::vector<ExprPtr> args;
        args.push_back(std::move(expr->lhs));
        args.push_back(std::move(expr->rhs));
        auto call = Expr::call(cc_name(expr->op), std::move(args));
        call->type = Type::kBool;
        call->uid_tainted = true;
        call->line = expr->line;
        expr = std::move(call);
        return;
      }
      if (uid_compare && options_.detection == DetectionMode::kUserSpaceReversed &&
          options_.mask != 0 && expr->op != BinOp::kEq && expr->op != BinOp::kNeq) {
        // §3.3: inequality comparisons must be logically reversed on the
        // reexpressed variant to preserve semantics in user space.
        ++stats_.inequalities_reversed;
        expr->op = reversed(expr->op);
      }
      return;
    }
    rewrite_expr(expr->lhs);
    rewrite_expr(expr->rhs);
  }

  // ---- statements ----------------------------------------------------------

  /// Wrap a UID-influenced condition in cond_chk (unless it is already a
  /// self-checking cc_* call).
  void check_condition(ExprPtr& cond) {
    if (options_.detection == DetectionMode::kNone) return;
    if (!cond->uid_tainted) return;
    if (cond->kind == Expr::Kind::kCall && cond->callee.starts_with("cc_")) return;
    ++stats_.cond_chk_insertions;
    std::vector<ExprPtr> args;
    args.push_back(std::move(cond));
    auto call = Expr::call("cond_chk", std::move(args));
    call->type = Type::kBool;
    call->uid_tainted = true;
    cond = std::move(call);
  }

  /// Conditions get truthiness normalization first: a bare UID expression in
  /// boolean position carries an implied `!= 0`.
  void rewrite_condition(ExprPtr& cond) {
    if (is_uid_type(cond->type)) {
      ++stats_.implicit_made_explicit;
      const Type t = cond->type;
      auto zero = Expr::int_lit(0);
      zero->type = t;
      auto cmp = Expr::binary(BinOp::kNeq, std::move(cond), std::move(zero));
      cmp->type = Type::kBool;
      cmp->uid_tainted = true;
      cmp->lhs->uid_tainted = true;
      cond = std::move(cmp);
    }
    rewrite_expr(cond);
    check_condition(cond);
  }

  void rewrite_stmt(Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kVarDecl:
        if (stmt.expr) rewrite_expr(stmt.expr, stmt.decl_type);
        return;
      case Stmt::Kind::kExpr:
        if (stmt.expr) rewrite_expr(stmt.expr);
        return;
      case Stmt::Kind::kReturn:
        if (stmt.expr) rewrite_expr(stmt.expr, current_ret_);
        return;
      case Stmt::Kind::kIf:
      case Stmt::Kind::kWhile:
        rewrite_condition(stmt.expr);
        for (auto& child : stmt.body) rewrite_stmt(*child);
        for (auto& child : stmt.else_body) rewrite_stmt(*child);
        return;
      case Stmt::Kind::kBlock:
        for (auto& child : stmt.body) rewrite_stmt(*child);
        return;
    }
  }

  const Program& program_;
  const TransformOptions& options_;
  TransformStats& stats_;
  Type current_ret_ = Type::kVoid;
};

}  // namespace

Program transform_uid(const Program& program, const TransformOptions& options,
                      TransformStats* stats) {
  TransformStats local;
  Transformer transformer(program, options, stats ? *stats : local);
  return transformer.run();
}

}  // namespace nv::transform

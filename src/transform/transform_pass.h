// The automated UID transformation pass (§3.3 + §3.5 mechanised).
//
// Given an analyzed program, produce the variant-i program:
//   1. make implicit UID comparisons explicit (`!getuid()` → `getuid() == 0`);
//   2. reexpress UID constants (`0` → `R_i(0)`);
//   3. rewrite UID comparisons into cc_* detection syscalls (or logically
//      reverse inequality operators for the user-space alternative);
//   4. wrap UID-influenced conditionals in cond_chk;
//   5. expose single-UID uses with uid_value at call sites.
//
// TransformStats mirrors the §4 case-study accounting (15 constants,
// 16 uid_value, 22 cc_*, 20 cond_chk = 73 changes for Apache).
#ifndef NV_TRANSFORM_TRANSFORM_PASS_H
#define NV_TRANSFORM_TRANSFORM_PASS_H

#include <string>

#include "transform/analysis.h"
#include "transform/ast.h"
#include "vkernel/types.h"

namespace nv::transform {

enum class DetectionMode {
  kSyscalls,          // cc_* + cond_chk + uid_value (the paper's deployment)
  kUserSpaceReversed, // reverse inequalities in user space, cond_chk outcomes
  kNone,              // data reexpression only (no detection exposure)
};

struct TransformOptions {
  /// R_i as an XOR mask; 0 for variant 0 (identity — constants untouched).
  os::uid_t mask = 0x7FFFFFFF;
  DetectionMode detection = DetectionMode::kSyscalls;
};

struct TransformStats {
  int constants_reexpressed = 0;
  int implicit_made_explicit = 0;
  int uid_value_insertions = 0;
  int cc_rewrites = 0;
  int cond_chk_insertions = 0;
  int inequalities_reversed = 0;  // user-space mode only

  [[nodiscard]] int total() const noexcept {
    return constants_reexpressed + uid_value_insertions + cc_rewrites + cond_chk_insertions;
  }
};

/// `program` must already be annotated by analyze(). Returns the transformed
/// clone; `stats` (optional) receives the per-category change counts.
[[nodiscard]] Program transform_uid(const Program& program, const TransformOptions& options,
                                    TransformStats* stats = nullptr);

}  // namespace nv::transform

#endif  // NV_TRANSFORM_TRANSFORM_PASS_H

// Tokenizer for mini-C.
#ifndef NV_TRANSFORM_LEXER_H
#define NV_TRANSFORM_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nv::transform {

enum class TokenKind : std::uint8_t {
  kIdent,
  kNumber,
  kString,
  kPunct,  // operators and punctuation, text in `text`
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  long long number = 0;
  int line = 1;
};

/// Tokenize; throws std::runtime_error with line info on bad input.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace nv::transform

#endif  // NV_TRANSFORM_LEXER_H

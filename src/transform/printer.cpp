#include "transform/printer.h"

#include "util/strings.h"

namespace nv::transform {

namespace {

void print_expr(const Expr& expr, std::string& out) {
  switch (expr.kind) {
    case Expr::Kind::kIntLit:
      if (expr.int_value > 0xFFFF) {
        out += util::format("0x%llx", static_cast<unsigned long long>(expr.int_value));
      } else {
        out += std::to_string(expr.int_value);
      }
      return;
    case Expr::Kind::kStrLit:
      out += '"';
      out += util::replace_all(util::replace_all(expr.str_value, "\\", "\\\\"), "\"", "\\\"");
      out += '"';
      return;
    case Expr::Kind::kBoolLit:
      out += expr.int_value != 0 ? "true" : "false";
      return;
    case Expr::Kind::kVar:
      out += expr.name;
      return;
    case Expr::Kind::kCall:
      out += expr.callee;
      out += '(';
      for (std::size_t i = 0; i < expr.args.size(); ++i) {
        if (i != 0) out += ", ";
        print_expr(*expr.args[i], out);
      }
      out += ')';
      return;
    case Expr::Kind::kBinary:
      out += '(';
      print_expr(*expr.lhs, out);
      out += ' ';
      out += binop_token(expr.op);
      out += ' ';
      print_expr(*expr.rhs, out);
      out += ')';
      return;
    case Expr::Kind::kUnary:
      out += expr.un_op == UnOp::kNot ? "!" : "-";
      print_expr(*expr.lhs, out);
      return;
    case Expr::Kind::kAssign:
      out += expr.name;
      out += " = ";
      print_expr(*expr.lhs, out);
      return;
  }
}

void print_stmt(const Stmt& stmt, std::string& out, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  switch (stmt.kind) {
    case Stmt::Kind::kVarDecl:
      out += indent;
      out += type_name(stmt.decl_type);
      out += ' ';
      out += stmt.name;
      if (stmt.expr) {
        out += " = ";
        print_expr(*stmt.expr, out);
      }
      out += ";\n";
      return;
    case Stmt::Kind::kExpr:
      out += indent;
      print_expr(*stmt.expr, out);
      out += ";\n";
      return;
    case Stmt::Kind::kReturn:
      out += indent;
      out += "return";
      if (stmt.expr) {
        out += ' ';
        print_expr(*stmt.expr, out);
      }
      out += ";\n";
      return;
    case Stmt::Kind::kIf:
      out += indent;
      out += "if (";
      print_expr(*stmt.expr, out);
      out += ") {\n";
      for (const auto& child : stmt.body) print_stmt(*child, out, depth + 1);
      out += indent;
      out += "}";
      if (!stmt.else_body.empty()) {
        out += " else {\n";
        for (const auto& child : stmt.else_body) print_stmt(*child, out, depth + 1);
        out += indent;
        out += "}";
      }
      out += "\n";
      return;
    case Stmt::Kind::kWhile:
      out += indent;
      out += "while (";
      print_expr(*stmt.expr, out);
      out += ") {\n";
      for (const auto& child : stmt.body) print_stmt(*child, out, depth + 1);
      out += indent;
      out += "}\n";
      return;
    case Stmt::Kind::kBlock:
      out += indent;
      out += "{\n";
      for (const auto& child : stmt.body) print_stmt(*child, out, depth + 1);
      out += indent;
      out += "}\n";
      return;
  }
}

}  // namespace

std::string print(const Expr& expr) {
  std::string out;
  print_expr(expr, out);
  return out;
}

std::string print(const Program& program) {
  std::string out;
  for (const auto& fn : program.functions) {
    out += type_name(fn.ret);
    out += ' ';
    out += fn.name;
    out += '(';
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      if (i != 0) out += ", ";
      out += type_name(fn.params[i].type);
      out += ' ';
      out += fn.params[i].name;
    }
    out += ") {\n";
    for (const auto& stmt : fn.body) print_stmt(*stmt, out, 1);
    out += "}\n\n";
  }
  return out;
}

}  // namespace nv::transform

// Recursive-descent parser for mini-C.
#ifndef NV_TRANSFORM_PARSER_H
#define NV_TRANSFORM_PARSER_H

#include <string_view>

#include "transform/ast.h"

namespace nv::transform {

/// Parse a translation unit; throws std::runtime_error with a line number on
/// syntax errors.
[[nodiscard]] Program parse(std::string_view source);

}  // namespace nv::transform

#endif  // NV_TRANSFORM_PARSER_H

// Static analysis for the UID transformation:
//   1. type checking with builtin + user signatures;
//   2. Splint-style UID-type inference (§4: "If the programmer did not use
//      uid_t ... they could be inferred using dataflow analysis by seeing
//      which variables stored the result of functions returning a known uid
//      value or were passed as a parameter to a function expecting a user
//      id");
//   3. UID taint (which boolean/conditional values are UID-influenced) —
//      drives the transformer's cond_chk insertion.
//
// analyze() annotates Expr::type and Expr::uid_tainted in place.
#ifndef NV_TRANSFORM_ANALYSIS_H
#define NV_TRANSFORM_ANALYSIS_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "transform/ast.h"

namespace nv::transform {

struct AnalysisResult {
  std::vector<std::string> errors;
  /// Final per-function variable types ("fn" -> var -> type), after
  /// promotion of int-declared variables that hold UIDs.
  std::map<std::string, std::map<std::string, Type>> var_types;
  /// Variables promoted from int to uid_t/gid_t by inference ("fn::var").
  std::vector<std::string> inferred_uid_vars;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

[[nodiscard]] AnalysisResult analyze(Program& program);

/// Signature of a callable (builtin or user function).
struct Signature {
  Type ret = Type::kVoid;
  std::vector<Type> params;
};

/// Resolve `name` against user functions first, then builtins.
[[nodiscard]] const Signature* find_signature(const Program& program, std::string_view name);

}  // namespace nv::transform

#endif  // NV_TRANSFORM_ANALYSIS_H

// The mini-Apache source model: a mini-C program mirroring the UID usage
// patterns of the Apache 1.3-era code base the paper transformed by hand —
// privilege drop at startup, suexec-style target-user vetting, escalation
// around protected work, and UID-bearing error logging. Running the
// automated pass over this source regenerates the §4 change accounting.
#ifndef NV_TRANSFORM_MINI_APACHE_H
#define NV_TRANSFORM_MINI_APACHE_H

#include <string_view>

namespace nv::transform {

/// Paper-reported manual change counts for Apache (§4).
struct CaseStudyCounts {
  static constexpr int kConstants = 15;
  static constexpr int kUidValue = 16;
  static constexpr int kComparisons = 22;
  static constexpr int kCondChk = 20;
  static constexpr int kTotal = 73;
};

[[nodiscard]] std::string_view mini_apache_source();

}  // namespace nv::transform

#endif  // NV_TRANSFORM_MINI_APACHE_H

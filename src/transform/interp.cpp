#include "transform/interp.h"

#include <map>
#include <stdexcept>

#include "util/strings.h"

namespace nv::transform {

namespace {

struct ReturnSignal {
  Value value;
};

class Interp {
 public:
  Interp(const Program& program, guest::GuestContext& ctx, const InterpOptions& options)
      : program_(program), ctx_(ctx), options_(options) {}

  InterpResult run() {
    const Function* entry = program_.find(options_.entry);
    if (entry == nullptr) throw std::runtime_error("no entry function '" + options_.entry + "'");
    result_.ret = call_function(*entry, {});
    return std::move(result_);
  }

 private:
  using Scope = std::map<std::string, Value>;

  static long long as_int(const Value& value) {
    if (const auto* i = std::get_if<long long>(&value)) return *i;
    throw std::runtime_error("expected integer value");
  }
  static const std::string& as_str(const Value& value) {
    if (const auto* s = std::get_if<std::string>(&value)) return *s;
    throw std::runtime_error("expected string value");
  }
  static os::uid_t as_uid(const Value& value) { return static_cast<os::uid_t>(as_int(value)); }

  void step() {
    if (++result_.steps > options_.max_steps) throw std::runtime_error("step budget exceeded");
  }

  Value call_function(const Function& fn, std::vector<Value> args) {
    if (args.size() != fn.params.size()) {
      throw std::runtime_error("bad argument count calling " + fn.name);
    }
    Scope scope;
    for (std::size_t i = 0; i < args.size(); ++i) scope[fn.params[i].name] = std::move(args[i]);
    try {
      for (const auto& stmt : fn.body) exec_stmt(*stmt, scope);
    } catch (ReturnSignal& signal) {
      return std::move(signal.value);
    }
    return 0LL;
  }

  void exec_stmt(const Stmt& stmt, Scope& scope) {
    step();
    switch (stmt.kind) {
      case Stmt::Kind::kVarDecl:
        scope[stmt.name] = stmt.expr ? eval(*stmt.expr, scope) : Value{0LL};
        return;
      case Stmt::Kind::kExpr:
        (void)eval(*stmt.expr, scope);
        return;
      case Stmt::Kind::kReturn:
        throw ReturnSignal{stmt.expr ? eval(*stmt.expr, scope) : Value{0LL}};
      case Stmt::Kind::kIf:
        if (as_int(eval(*stmt.expr, scope)) != 0) {
          for (const auto& child : stmt.body) exec_stmt(*child, scope);
        } else {
          for (const auto& child : stmt.else_body) exec_stmt(*child, scope);
        }
        return;
      case Stmt::Kind::kWhile:
        while (as_int(eval(*stmt.expr, scope)) != 0) {
          step();
          for (const auto& child : stmt.body) exec_stmt(*child, scope);
        }
        return;
      case Stmt::Kind::kBlock:
        for (const auto& child : stmt.body) exec_stmt(*child, scope);
        return;
    }
  }

  Value eval(const Expr& expr, Scope& scope) {
    step();
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
      case Expr::Kind::kBoolLit:
        return expr.int_value;
      case Expr::Kind::kStrLit:
        return expr.str_value;
      case Expr::Kind::kVar: {
        const auto it = scope.find(expr.name);
        if (it == scope.end()) throw std::runtime_error("unbound variable " + expr.name);
        return it->second;
      }
      case Expr::Kind::kAssign: {
        Value value = eval(*expr.lhs, scope);
        scope[expr.name] = value;
        return value;
      }
      case Expr::Kind::kUnary: {
        const Value operand = eval(*expr.lhs, scope);
        if (expr.un_op == UnOp::kNot) return static_cast<long long>(as_int(operand) == 0);
        return -as_int(operand);
      }
      case Expr::Kind::kBinary:
        return eval_binary(expr, scope);
      case Expr::Kind::kCall:
        return eval_call(expr, scope);
    }
    throw std::runtime_error("unreachable expression kind");
  }

  Value eval_binary(const Expr& expr, Scope& scope) {
    // Short-circuit logicals first.
    if (expr.op == BinOp::kAnd) {
      if (as_int(eval(*expr.lhs, scope)) == 0) return 0LL;
      return static_cast<long long>(as_int(eval(*expr.rhs, scope)) != 0);
    }
    if (expr.op == BinOp::kOr) {
      if (as_int(eval(*expr.lhs, scope)) != 0) return 1LL;
      return static_cast<long long>(as_int(eval(*expr.rhs, scope)) != 0);
    }
    const Value lhs = eval(*expr.lhs, scope);
    const Value rhs = eval(*expr.rhs, scope);
    // UID-typed comparisons operate on the unsigned 32-bit domain — matching
    // the uid_t semantics of the transformed program.
    const bool unsigned_compare = is_uid_type(expr.lhs->type) || is_uid_type(expr.rhs->type);
    if (std::holds_alternative<std::string>(lhs) || std::holds_alternative<std::string>(rhs)) {
      if (expr.op == BinOp::kEq) return static_cast<long long>(as_str(lhs) == as_str(rhs));
      if (expr.op == BinOp::kNeq) return static_cast<long long>(as_str(lhs) != as_str(rhs));
      if (expr.op == BinOp::kAdd) return as_str(lhs) + as_str(rhs);
      throw std::runtime_error("bad string operation");
    }
    const long long a = as_int(lhs);
    const long long b = as_int(rhs);
    const auto ua = static_cast<os::uid_t>(a);
    const auto ub = static_cast<os::uid_t>(b);
    switch (expr.op) {
      case BinOp::kAdd: return a + b;
      case BinOp::kSub: return a - b;
      case BinOp::kMul: return a * b;
      case BinOp::kDiv:
        if (b == 0) throw std::runtime_error("division by zero");
        return a / b;
      case BinOp::kEq: return static_cast<long long>(a == b);
      case BinOp::kNeq: return static_cast<long long>(a != b);
      case BinOp::kLt: return static_cast<long long>(unsigned_compare ? ua < ub : a < b);
      case BinOp::kLeq: return static_cast<long long>(unsigned_compare ? ua <= ub : a <= b);
      case BinOp::kGt: return static_cast<long long>(unsigned_compare ? ua > ub : a > b);
      case BinOp::kGeq: return static_cast<long long>(unsigned_compare ? ua >= ub : a >= b);
      default: throw std::runtime_error("unreachable binop");
    }
  }

  void emit_log(std::string line) {
    if (options_.log_fd >= 0) (void)ctx_.write(options_.log_fd, line + "\n");
    result_.log.push_back(std::move(line));
  }

  Value eval_call(const Expr& expr, Scope& scope) {
    std::vector<Value> args;
    args.reserve(expr.args.size());
    for (const auto& arg : expr.args) args.push_back(eval(*arg, scope));

    if (const Function* fn = program_.find(expr.callee)) {
      return call_function(*fn, std::move(args));
    }

    const std::string& name = expr.callee;
    auto cc = [&](vkernel::CcOp op) -> Value {
      return static_cast<long long>(ctx_.cc(op, as_uid(args.at(0)), as_uid(args.at(1))));
    };
    if (name == "getuid") return static_cast<long long>(ctx_.getuid());
    if (name == "geteuid") return static_cast<long long>(ctx_.geteuid());
    if (name == "getgid") return static_cast<long long>(ctx_.getgid());
    if (name == "getegid") return static_cast<long long>(ctx_.getegid());
    if (name == "setuid") return static_cast<long long>(ctx_.setuid(as_uid(args.at(0))));
    if (name == "seteuid") return static_cast<long long>(ctx_.seteuid(as_uid(args.at(0))));
    if (name == "setreuid") {
      return static_cast<long long>(ctx_.setreuid(as_uid(args.at(0)), as_uid(args.at(1))));
    }
    if (name == "setgid") return static_cast<long long>(ctx_.setgid(as_uid(args.at(0))));
    if (name == "setegid") return static_cast<long long>(ctx_.setegid(as_uid(args.at(0))));
    // Lookup failures return the VARIANT-ENCODED sentinel R_i(-1): a
    // transformed C library reexpresses its UID-typed return values,
    // including error sentinels (the §3.2 "negative UIDs are special"
    // subtlety). Found entries come from the variant's own diversified
    // passwd/group copy and are already encoded.
    if (name == "getpwnam_uid") {
      const auto pw = ctx_.getpwnam(as_str(args.at(0)));
      return static_cast<long long>(pw ? pw->uid : ctx_.uid_const(os::kInvalidUid));
    }
    if (name == "getpwnam_gid") {
      const auto pw = ctx_.getpwnam(as_str(args.at(0)));
      return static_cast<long long>(pw ? pw->gid : ctx_.uid_const(os::kInvalidGid));
    }
    if (name == "getgrnam_gid") {
      const auto gr = ctx_.getgrnam(as_str(args.at(0)));
      return static_cast<long long>(gr ? gr->gid : ctx_.uid_const(os::kInvalidGid));
    }
    if (name == "getpwuid_ok") {
      // Existence probe; routes the UID through a lookup like getpwuid(3).
      const auto content = ctx_.read_file("/etc/passwd");
      if (!content) return 0LL;
      const auto uid = as_uid(args.at(0));
      return static_cast<long long>(vfs::find_uid(vfs::parse_passwd(*content), uid).has_value());
    }
    if (name == "log_msg") {
      emit_log(as_str(args.at(0)));
      return 0LL;
    }
    if (name == "log_uid") {
      // The §4 hazard: embeds the raw (variant-encoded) UID in log output.
      emit_log(as_str(args.at(0)) + " uid=" + std::to_string(as_uid(args.at(1))));
      return 0LL;
    }
    if (name == "respond") {
      result_.responses.push_back(as_int(args.at(0)));
      return 0LL;
    }
    if (name == "abort_request") return 0LL;
    if (name == "exit") ctx_.exit(static_cast<int>(as_int(args.at(0))));
    if (name == "uid_value") return static_cast<long long>(ctx_.uid_value(as_uid(args.at(0))));
    if (name == "cond_chk") {
      return static_cast<long long>(ctx_.cond_chk(as_int(args.at(0)) != 0));
    }
    if (name == "cc_eq") return cc(vkernel::CcOp::kEq);
    if (name == "cc_neq") return cc(vkernel::CcOp::kNeq);
    if (name == "cc_lt") return cc(vkernel::CcOp::kLt);
    if (name == "cc_leq") return cc(vkernel::CcOp::kLeq);
    if (name == "cc_gt") return cc(vkernel::CcOp::kGt);
    if (name == "cc_geq") return cc(vkernel::CcOp::kGeq);
    throw std::runtime_error("unknown function in interpreter: " + name);
  }

  const Program& program_;
  guest::GuestContext& ctx_;
  const InterpOptions& options_;
  InterpResult result_;
};

}  // namespace

InterpResult interpret(const Program& program, guest::GuestContext& ctx,
                       const InterpOptions& options) {
  return Interp(program, ctx, options).run();
}

}  // namespace nv::transform

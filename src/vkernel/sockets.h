// Simulated loopback TCP: listeners, bidirectional byte streams, and a
// host-side client API used by workload generators and attack drivers.
//
// Blocking semantics use condition variables; SocketHub::shutdown() wakes
// every blocked operation with EINTR so servers can be torn down cleanly.
#ifndef NV_VKERNEL_SOCKETS_H
#define NV_VKERNEL_SOCKETS_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/expected.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "vkernel/types.h"

namespace nv::vkernel {

template <typename T>
using NetResult = util::Expected<T, os::Errno>;

/// One established connection: two byte streams guarded by a mutex. The
/// server holds side A; the client holds side B.
class Stream {
 public:
  struct Side {
    std::string buffer;   // bytes waiting to be read by this side
    bool peer_closed = false;
  };

  util::Mutex mutex;
  std::condition_variable cv;
  Side server NV_GUARDED_BY(mutex);  // data flowing client -> server
  Side client NV_GUARDED_BY(mutex);  // data flowing server -> client
  bool interrupted NV_GUARDED_BY(mutex) = false;
};

using StreamPtr = std::shared_ptr<Stream>;

/// Handle to one end of a Stream.
class Connection {
 public:
  Connection() = default;
  Connection(StreamPtr stream, bool is_server) : stream_(std::move(stream)), is_server_(is_server) {}

  [[nodiscard]] bool valid() const noexcept { return stream_ != nullptr; }

  /// Blocking receive: waits for data, EOF (returns ""), or interrupt.
  [[nodiscard]] NetResult<std::string> recv(std::size_t max_bytes);
  /// Non-blocking send; fails with EPIPE if the peer closed.
  [[nodiscard]] NetResult<std::size_t> send(std::string_view bytes);
  /// Receive exactly until `delimiter` or EOF; used by HTTP parsing.
  [[nodiscard]] NetResult<std::string> recv_until(std::string_view delimiter,
                                                  std::size_t max_bytes = 1 << 20);
  void close();

 private:
  StreamPtr stream_;
  bool is_server_ = false;
  std::string pending_;  // bytes read past a delimiter by recv_until
};

/// The loopback network: port -> listener with a pending-connection queue.
class SocketHub {
 public:
  [[nodiscard]] os::Errno bind(std::uint16_t port);
  [[nodiscard]] bool is_bound(std::uint16_t port) const;
  void unbind(std::uint16_t port);

  /// Server side: block until a client connects to `port` (or interrupt).
  [[nodiscard]] NetResult<Connection> accept(std::uint16_t port);
  [[nodiscard]] std::size_t backlog(std::uint16_t port) const;

  /// Client side (host threads): create a connection to a bound port.
  [[nodiscard]] NetResult<Connection> connect(std::uint16_t port);

  /// Wake all blocked accept/recv calls with EINTR and refuse new work.
  void shutdown();
  [[nodiscard]] bool is_shutdown() const;
  /// Re-arm after shutdown (used between test scenarios).
  void reset();

 private:
  struct Listener {
    std::deque<StreamPtr> pending;
  };

  mutable util::Mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint16_t, Listener> listeners_ NV_GUARDED_BY(mutex_);
  bool shutdown_ NV_GUARDED_BY(mutex_) = false;
  // Every stream ever created (for interrupt).
  std::vector<StreamPtr> streams_ NV_GUARDED_BY(mutex_);
};

}  // namespace nv::vkernel

#endif  // NV_VKERNEL_SOCKETS_H

#include "vkernel/credentials.h"

namespace nv::vkernel {

using os::Errno;
using os::kInvalidUid;

Errno sys_setuid(os::Credentials& creds, os::uid_t uid) noexcept {
  if (uid == kInvalidUid) return Errno::kEINVAL;
  if (creds.is_superuser()) {
    creds.ruid = creds.euid = creds.suid = uid;
    return Errno::kOk;
  }
  if (uid == creds.ruid || uid == creds.suid) {
    creds.euid = uid;
    return Errno::kOk;
  }
  return Errno::kEPERM;
}

Errno sys_seteuid(os::Credentials& creds, os::uid_t uid) noexcept {
  if (uid == kInvalidUid) return Errno::kEINVAL;
  if (creds.is_superuser() || uid == creds.ruid || uid == creds.euid || uid == creds.suid) {
    creds.euid = uid;
    return Errno::kOk;
  }
  return Errno::kEPERM;
}

Errno sys_setreuid(os::Credentials& creds, os::uid_t ruid, os::uid_t euid) noexcept {
  const os::Credentials old = creds;
  const bool privileged = creds.is_superuser();
  if (ruid != kInvalidUid) {
    if (!privileged && ruid != old.ruid && ruid != old.euid) return Errno::kEPERM;
    creds.ruid = ruid;
  }
  if (euid != kInvalidUid) {
    if (!privileged && euid != old.ruid && euid != old.euid && euid != old.suid) {
      creds = old;
      return Errno::kEPERM;
    }
    creds.euid = euid;
  }
  if (ruid != kInvalidUid || (euid != kInvalidUid && creds.euid != old.ruid)) {
    creds.suid = creds.euid;
  }
  return Errno::kOk;
}

Errno sys_setresuid(os::Credentials& creds, os::uid_t ruid, os::uid_t euid,
                    os::uid_t suid) noexcept {
  const os::Credentials old = creds;
  const bool privileged = creds.is_superuser();
  auto allowed = [&](os::uid_t uid) {
    return privileged || uid == old.ruid || uid == old.euid || uid == old.suid;
  };
  if (ruid != kInvalidUid) {
    if (!allowed(ruid)) return Errno::kEPERM;
    creds.ruid = ruid;
  }
  if (euid != kInvalidUid) {
    if (!allowed(euid)) {
      creds = old;
      return Errno::kEPERM;
    }
    creds.euid = euid;
  }
  if (suid != kInvalidUid) {
    if (!allowed(suid)) {
      creds = old;
      return Errno::kEPERM;
    }
    creds.suid = suid;
  }
  return Errno::kOk;
}

Errno sys_setgid(os::Credentials& creds, os::gid_t gid) noexcept {
  if (gid == os::kInvalidGid) return Errno::kEINVAL;
  if (creds.is_superuser()) {
    creds.rgid = creds.egid = creds.sgid = gid;
    return Errno::kOk;
  }
  if (gid == creds.rgid || gid == creds.sgid) {
    creds.egid = gid;
    return Errno::kOk;
  }
  return Errno::kEPERM;
}

Errno sys_setegid(os::Credentials& creds, os::gid_t gid) noexcept {
  if (gid == os::kInvalidGid) return Errno::kEINVAL;
  if (creds.is_superuser() || gid == creds.rgid || gid == creds.egid || gid == creds.sgid) {
    creds.egid = gid;
    return Errno::kOk;
  }
  return Errno::kEPERM;
}

Errno sys_setgroups(os::Credentials& creds, std::vector<os::gid_t> groups) noexcept {
  if (!creds.is_superuser()) return Errno::kEPERM;
  creds.groups = std::move(groups);
  return Errno::kOk;
}

}  // namespace nv::vkernel

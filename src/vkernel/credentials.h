// Linux credential-changing semantics (setuid(2) family) over
// os::Credentials. The UID variation's target interpreter is exactly this
// logic: whoever controls the values flowing into these functions controls
// process privilege.
#ifndef NV_VKERNEL_CREDENTIALS_H
#define NV_VKERNEL_CREDENTIALS_H

#include "vkernel/types.h"

namespace nv::vkernel {

/// setuid(2): root sets all three UIDs; others may only set euid to ruid/suid.
[[nodiscard]] os::Errno sys_setuid(os::Credentials& creds, os::uid_t uid) noexcept;

/// seteuid(2): may set euid to ruid, euid, or suid; root sets anything.
[[nodiscard]] os::Errno sys_seteuid(os::Credentials& creds, os::uid_t uid) noexcept;

/// setreuid(2): kInvalidUid (-1) leaves a field unchanged; updates suid when
/// ruid is set or euid differs from the old ruid (Linux rule).
[[nodiscard]] os::Errno sys_setreuid(os::Credentials& creds, os::uid_t ruid,
                                     os::uid_t euid) noexcept;

/// setresuid(2): -1 leaves a field unchanged; unprivileged callers may only
/// use current ruid/euid/suid values.
[[nodiscard]] os::Errno sys_setresuid(os::Credentials& creds, os::uid_t ruid, os::uid_t euid,
                                      os::uid_t suid) noexcept;

[[nodiscard]] os::Errno sys_setgid(os::Credentials& creds, os::gid_t gid) noexcept;
[[nodiscard]] os::Errno sys_setegid(os::Credentials& creds, os::gid_t gid) noexcept;

/// setgroups(2): root only.
[[nodiscard]] os::Errno sys_setgroups(os::Credentials& creds,
                                      std::vector<os::gid_t> groups) noexcept;

}  // namespace nv::vkernel

#endif  // NV_VKERNEL_CREDENTIALS_H

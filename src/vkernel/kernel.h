// Syscall execution engine.
//
// execute_syscall() is the single implementation of syscall semantics. The
// plain (single-process) kernel calls it directly; the N-variant MVEE calls
// it per-variant or once-with-replication according to SysClass, which keeps
// the two execution modes behaviourally identical on normal inputs — the
// normal-equivalence property the paper's argument rests on.
#ifndef NV_VKERNEL_KERNEL_H
#define NV_VKERNEL_KERNEL_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "vfs/filesystem.h"
#include "vkernel/process.h"
#include "vkernel/sockets.h"
#include "vkernel/syscalls.h"

namespace nv::vkernel {

/// Shared kernel-wide state: one filesystem, one network, one logical clock.
class KernelContext {
 public:
  KernelContext(vfs::FileSystem& fs, SocketHub& hub) : fs_(fs), hub_(hub) {}

  [[nodiscard]] vfs::FileSystem& fs() noexcept { return fs_; }
  [[nodiscard]] SocketHub& hub() noexcept { return hub_; }

  /// Logical clock: advances 1us per reading, so time is deterministic.
  [[nodiscard]] std::uint64_t read_clock() noexcept {
    return clock_.fetch_add(1000, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t syscalls_executed() const noexcept {
    return syscall_count_.load(std::memory_order_relaxed);
  }
  void count_syscall() noexcept { syscall_count_.fetch_add(1, std::memory_order_relaxed); }

  /// Queue an asynchronous event (simulated signal). Guests observe it via
  /// the poll_event syscall, which the MVEE executes once and replicates —
  /// every variant sees the event at the same execution point.
  void push_event(std::string event) {
    const util::MutexLock lock(events_mutex_);
    events_.push_back(std::move(event));
  }
  [[nodiscard]] std::optional<std::string> pop_event() {
    const util::MutexLock lock(events_mutex_);
    if (events_.empty()) return std::nullopt;
    std::string event = std::move(events_.front());
    events_.pop_front();
    return event;
  }

 private:
  vfs::FileSystem& fs_;
  SocketHub& hub_;
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> syscall_count_{0};
  util::Mutex events_mutex_;
  std::deque<std::string> events_ NV_GUARDED_BY(events_mutex_);
};

/// Execute one syscall against one process. Blocking calls (accept, read on
/// a socket) block the calling thread via the SocketHub.
[[nodiscard]] SyscallResult execute_syscall(KernelContext& ctx, Process& proc,
                                            const SyscallArgs& args);

/// Open `path` for `proc` and install the fd at `slot` (or the lowest free
/// slot when slot < 0). Exposed separately so the MVEE can implement the
/// unshared-files redirection while keeping variant fd tables synchronized.
[[nodiscard]] SyscallResult do_open(KernelContext& ctx, Process& proc, std::string_view path,
                                    os::OpenFlags flags, os::mode_t mode, os::fd_t slot = -1);

/// Single-process kernel: the configuration-1/2 baseline (no redundancy, no
/// monitor). Implements the guest-facing SyscallPort.
class PlainKernel : public SyscallPort {
 public:
  PlainKernel(KernelContext& ctx, std::string process_name,
              os::Credentials creds = os::Credentials::root());

  SyscallResult syscall(const SyscallArgs& args) override;

  [[nodiscard]] Process& process() noexcept { return *proc_; }
  [[nodiscard]] KernelContext& context() noexcept { return ctx_; }

 private:
  KernelContext& ctx_;
  std::unique_ptr<Process> proc_;
};

}  // namespace nv::vkernel

#endif  // NV_VKERNEL_KERNEL_H

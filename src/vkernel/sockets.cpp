#include "vkernel/sockets.h"

namespace nv::vkernel {

namespace {
[[nodiscard]] util::Unexpected<os::Errno> net_fail(os::Errno e) {
  return util::Unexpected<os::Errno>{e};
}
}  // namespace

NetResult<std::string> Connection::recv(std::size_t max_bytes) {
  if (!stream_) return net_fail(os::Errno::kEBADF);
  if (!pending_.empty()) {
    const std::size_t take = std::min(max_bytes, pending_.size());
    std::string out = pending_.substr(0, take);
    pending_.erase(0, take);
    return out;
  }
  util::MutexLock lock(stream_->mutex);
  Stream::Side& side = is_server_ ? stream_->server : stream_->client;
  // Explicit wait loop (not a predicate lambda) so the guarded reads are
  // visibly under the lock for the thread-safety analysis.
  while (side.buffer.empty() && !side.peer_closed && !stream_->interrupted) {
    stream_->cv.wait(lock.native());
  }
  if (stream_->interrupted && side.buffer.empty()) return net_fail(os::Errno::kEINTR);
  if (side.buffer.empty()) return std::string{};  // EOF
  const std::size_t take = std::min(max_bytes, side.buffer.size());
  std::string out = side.buffer.substr(0, take);
  side.buffer.erase(0, take);
  return out;
}

NetResult<std::size_t> Connection::send(std::string_view bytes) {
  if (!stream_) return net_fail(os::Errno::kEBADF);
  const util::MutexLock lock(stream_->mutex);
  // Writing into the buffer the *peer* reads from. my_side.peer_closed is
  // set when the peer closed its end — sending to a departed peer is EPIPE.
  Stream::Side& peer_side = is_server_ ? stream_->client : stream_->server;
  Stream::Side& my_side = is_server_ ? stream_->server : stream_->client;
  if (my_side.peer_closed) return net_fail(os::Errno::kEPIPE);
  peer_side.buffer.append(bytes);
  stream_->cv.notify_all();
  return bytes.size();
}

NetResult<std::string> Connection::recv_until(std::string_view delimiter, std::size_t max_bytes) {
  std::string collected = std::move(pending_);
  pending_.clear();
  while (collected.find(delimiter) == std::string::npos) {
    if (collected.size() > max_bytes) return net_fail(os::Errno::kERANGE);
    auto chunk = recv(4096);
    if (!chunk) return chunk;
    if (chunk->empty()) break;  // EOF before delimiter
    collected += *chunk;
  }
  const std::size_t pos = collected.find(delimiter);
  if (pos == std::string::npos) return collected;  // EOF case: return what we have
  const std::size_t end = pos + delimiter.size();
  pending_ = collected.substr(end);
  collected.resize(end);
  return collected;
}

void Connection::close() {
  if (!stream_) return;
  const util::MutexLock lock(stream_->mutex);
  // Closing my end means the *peer* sees peer_closed on their read side, and
  // my own read side also reports peer_closed for symmetric teardown.
  Stream::Side& peer_side = is_server_ ? stream_->client : stream_->server;
  peer_side.peer_closed = true;
  stream_->cv.notify_all();
  stream_.reset();
}

os::Errno SocketHub::bind(std::uint16_t port) {
  const util::MutexLock lock(mutex_);
  if (shutdown_) return os::Errno::kEINTR;
  if (listeners_.contains(port)) return os::Errno::kEADDRINUSE;
  listeners_.emplace(port, Listener{});
  return os::Errno::kOk;
}

bool SocketHub::is_bound(std::uint16_t port) const {
  const util::MutexLock lock(mutex_);
  return listeners_.contains(port);
}

void SocketHub::unbind(std::uint16_t port) {
  const util::MutexLock lock(mutex_);
  listeners_.erase(port);
  cv_.notify_all();
}

NetResult<Connection> SocketHub::accept(std::uint16_t port) {
  util::MutexLock lock(mutex_);
  const auto it = listeners_.find(port);
  if (it == listeners_.end()) return net_fail(os::Errno::kEINVAL);
  while (it->second.pending.empty() && !shutdown_) cv_.wait(lock.native());
  if (it->second.pending.empty()) return net_fail(os::Errno::kEINTR);
  StreamPtr stream = it->second.pending.front();
  it->second.pending.pop_front();
  return Connection{std::move(stream), /*is_server=*/true};
}

std::size_t SocketHub::backlog(std::uint16_t port) const {
  const util::MutexLock lock(mutex_);
  const auto it = listeners_.find(port);
  return it == listeners_.end() ? 0 : it->second.pending.size();
}

NetResult<Connection> SocketHub::connect(std::uint16_t port) {
  const util::MutexLock lock(mutex_);
  if (shutdown_) return net_fail(os::Errno::kEINTR);
  const auto it = listeners_.find(port);
  if (it == listeners_.end()) return net_fail(os::Errno::kECONNREFUSED);
  auto stream = std::make_shared<Stream>();
  streams_.push_back(stream);
  it->second.pending.push_back(stream);
  cv_.notify_all();
  return Connection{std::move(stream), /*is_server=*/false};
}

void SocketHub::shutdown() {
  const util::MutexLock lock(mutex_);
  shutdown_ = true;
  cv_.notify_all();
  for (const auto& stream : streams_) {
    const util::MutexLock stream_lock(stream->mutex);
    stream->interrupted = true;
    stream->cv.notify_all();
  }
}

bool SocketHub::is_shutdown() const {
  const util::MutexLock lock(mutex_);
  return shutdown_;
}

void SocketHub::reset() {
  const util::MutexLock lock(mutex_);
  shutdown_ = false;
  listeners_.clear();
  streams_.clear();
}

}  // namespace nv::vkernel

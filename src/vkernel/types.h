// Shared OS-level scalar types and error codes for the simulated kernel and
// filesystem. Kept header-only and dependency-free so lower layers (vfs) can
// use them without linking against the kernel.
#ifndef NV_VKERNEL_TYPES_H
#define NV_VKERNEL_TYPES_H

#include <cstdint>
#include <string_view>
#include <vector>

namespace nv::os {

// The paper's target data type. Deliberately matches POSIX: unsigned, with
// (uid_t)-1 reserved as an "unchanged" sentinel by set*id calls — the reason
// the paper's reexpression mask is 0x7FFFFFFF and not 0xFFFFFFFF (§3.2).
using uid_t = std::uint32_t;
using gid_t = std::uint32_t;
using pid_t = std::int32_t;
using fd_t = std::int32_t;

constexpr uid_t kRootUid = 0;
constexpr gid_t kRootGid = 0;
constexpr uid_t kInvalidUid = static_cast<uid_t>(-1);
constexpr gid_t kInvalidGid = static_cast<gid_t>(-1);

/// Subset of POSIX errno values the simulated kernel can return.
enum class Errno : std::uint8_t {
  kOk = 0,
  kEPERM,
  kENOENT,
  kEINTR,
  kEBADF,
  kEACCES,
  kEFAULT,
  kEEXIST,
  kENOTDIR,
  kEISDIR,
  kEINVAL,
  kEMFILE,
  kENOSYS,
  kEAGAIN,
  kEPIPE,
  kENOTCONN,
  kECONNREFUSED,
  kEADDRINUSE,
  kENOTSOCK,
  kERANGE,
};

[[nodiscard]] std::string_view errno_name(Errno e) noexcept;

/// File mode permission bits (standard octal layout).
using mode_t = std::uint16_t;
constexpr mode_t kModeOwnerRead = 0400;
constexpr mode_t kModeOwnerWrite = 0200;
constexpr mode_t kModeOwnerExec = 0100;
constexpr mode_t kModeGroupRead = 0040;
constexpr mode_t kModeGroupWrite = 0020;
constexpr mode_t kModeGroupExec = 0010;
constexpr mode_t kModeOtherRead = 0004;
constexpr mode_t kModeOtherWrite = 0002;
constexpr mode_t kModeOtherExec = 0001;

/// Open flags (bitmask).
enum class OpenFlags : std::uint8_t {
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
  kCreate = 4,
  kTruncate = 8,
  kAppend = 16,
};

[[nodiscard]] constexpr OpenFlags operator|(OpenFlags a, OpenFlags b) noexcept {
  return static_cast<OpenFlags>(static_cast<std::uint8_t>(a) | static_cast<std::uint8_t>(b));
}
[[nodiscard]] constexpr bool has_flag(OpenFlags flags, OpenFlags bit) noexcept {
  return (static_cast<std::uint8_t>(flags) & static_cast<std::uint8_t>(bit)) != 0;
}

/// Process credentials: real/effective/saved UIDs and GIDs plus supplementary
/// groups, with Linux semantics for privilege checks (euid == 0 is superuser).
struct Credentials {
  uid_t ruid = kRootUid;
  uid_t euid = kRootUid;
  uid_t suid = kRootUid;
  gid_t rgid = kRootGid;
  gid_t egid = kRootGid;
  gid_t sgid = kRootGid;
  std::vector<gid_t> groups;

  [[nodiscard]] bool is_superuser() const noexcept { return euid == kRootUid; }
  [[nodiscard]] bool in_group(gid_t g) const noexcept {
    if (egid == g) return true;
    for (gid_t member : groups) {
      if (member == g) return true;
    }
    return false;
  }
  [[nodiscard]] static Credentials root() noexcept { return Credentials{}; }
  [[nodiscard]] static Credentials user(uid_t uid, gid_t gid) noexcept {
    Credentials c;
    c.ruid = c.euid = c.suid = uid;
    c.rgid = c.egid = c.sgid = gid;
    return c;
  }
  [[nodiscard]] bool operator==(const Credentials&) const = default;
};

}  // namespace nv::os

#endif  // NV_VKERNEL_TYPES_H

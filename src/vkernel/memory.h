// Simulated sparse address space.
//
// Each variant process owns one AddressSpace. Accesses to unmapped addresses
// throw MemoryFault — the simulation's SIGSEGV — which the variant runner
// converts into a monitor alarm. Address-space partitioning (Table 1, rows 1
// and 2) works by mapping each variant's memory into a disjoint region, so an
// attacker-injected absolute address can be valid in at most one variant.
#ifndef NV_VKERNEL_MEMORY_H
#define NV_VKERNEL_MEMORY_H

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace nv::vkernel {

/// Simulated segmentation fault. Carries the faulting address for alarms.
struct MemoryFault {
  std::uint64_t address = 0;
  std::string what = "memory fault";
};

/// Sparse page-granular address space. Pages are allocated on map() only;
/// all loads/stores bounds-check against the mapped set.
class AddressSpace {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  /// Map [base, base+size); rounds outward to page boundaries. Remapping an
  /// already-mapped page is idempotent.
  void map(std::uint64_t base, std::uint64_t size);
  [[nodiscard]] bool is_mapped(std::uint64_t addr, std::uint64_t size = 1) const noexcept;

  /// Bump-allocate `size` bytes from the data segment (set_alloc_base first).
  std::uint64_t alloc(std::uint64_t size, std::uint64_t align = 8);
  void set_alloc_base(std::uint64_t base) noexcept { alloc_next_ = base; }
  [[nodiscard]] std::uint64_t alloc_cursor() const noexcept { return alloc_next_; }

  // Typed accessors; all throw MemoryFault on unmapped access.
  [[nodiscard]] std::uint8_t load_u8(std::uint64_t addr) const;
  [[nodiscard]] std::uint32_t load_u32(std::uint64_t addr) const;
  [[nodiscard]] std::uint64_t load_u64(std::uint64_t addr) const;
  void store_u8(std::uint64_t addr, std::uint8_t value);
  void store_u32(std::uint64_t addr, std::uint32_t value);
  void store_u64(std::uint64_t addr, std::uint64_t value);

  [[nodiscard]] std::vector<std::uint8_t> load_bytes(std::uint64_t addr,
                                                     std::uint64_t size) const;
  void store_bytes(std::uint64_t addr, std::span<const std::uint8_t> bytes);
  void store_string(std::uint64_t addr, std::string_view text);
  [[nodiscard]] std::string load_string(std::uint64_t addr, std::uint64_t max_len) const;

  [[nodiscard]] std::uint64_t mapped_pages() const noexcept { return pages_.size(); }

 private:
  [[nodiscard]] const std::uint8_t* page_for(std::uint64_t addr) const;
  [[nodiscard]] std::uint8_t* page_for(std::uint64_t addr);

  std::map<std::uint64_t, std::vector<std::uint8_t>> pages_;  // page base -> bytes
  std::uint64_t alloc_next_ = 0;
};

}  // namespace nv::vkernel

#endif  // NV_VKERNEL_MEMORY_H

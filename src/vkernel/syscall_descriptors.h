// Declarative per-syscall metadata: the single source of truth for how the
// MVEE treats every Sys enumerator.
//
// Each descriptor records the syscall's behaviour class (§3.1), the execution
// policy the leader applies after the monitor's equivalence check, and the
// semantic role of every argument slot. Canonicalization (R⁻¹_i), result
// reexpression (R_i), shared-fd routing, unshared-path redirection, and the
// monitor's alarm classification are all driven from this table — a new
// variation registers transformers for the roles it diversifies instead of
// pattern-matching raw SyscallArgs, and a new syscall is one table row.
#ifndef NV_VKERNEL_SYSCALL_DESCRIPTORS_H
#define NV_VKERNEL_SYSCALL_DESCRIPTORS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "vkernel/syscalls.h"

namespace nv::vkernel {

/// Number of Sys enumerators (kCcCmp is last; keep in sync with the enum).
inline constexpr std::size_t kSysCount = static_cast<std::size_t>(Sys::kCcCmp) + 1;

/// Semantic role of one argument slot (or of the primary result value).
/// Variations diversify ROLES, not call sites: the UID variation registers a
/// transform for kUid; an fd-diversifying variation would register kFd.
enum class ArgRole : std::uint8_t {
  kNone,      // no cross-variant meaning (opaque scalar)
  kFd,        // file-descriptor slot (drives shared/unshared routing)
  kUid,       // UID/GID value (the §3.5 variation's target)
  kPath,      // filesystem path (drives unshared-file redirection)
  kPayload,   // output payload bytes
  kFlags,     // open flags
  kMode,      // permission bits
  kOffset,    // file offset / byte count
  kPort,      // network port
  kCcOp,      // CcOp selector for cc_cmp
  kCond,      // boolean condition value (cond_chk)
  kExitCode,  // process exit status
};

/// How the leader executes the call after canonical arguments compared equal.
enum class ExecPolicy : std::uint8_t {
  kPerVariant,    // run in every variant's process with canonical args
  kOnce,          // run once on variant 0, replicate the result (input class,
                  // shared-namespace mutations, socket setup)
  kOnceMirrorFd,  // kOnce + install the resulting fd in every variant's table
  kFdRouted,      // fd argument shared -> kOnce; unshared -> kPerVariant
  kPathRouted,    // path argument unshared -> per-variant redirect; else kOnce
  kOpen,          // open's shared/unshared file resolution (§3.4)
  kDetection,     // Table 2 cross-variant checks; no kernel execution
  kExit,          // per-variant exit bookkeeping
};

/// Which alarm the monitor raises when canonical arguments diverge.
enum class MismatchKind : std::uint8_t {
  kArgument,   // generic argument divergence
  kUidCheck,   // uid_value / cc_* disagreement (§3.5)
  kCondition,  // cond_chk disagreement
};

/// How the pipelined rendezvous may relax the per-call lockstep barrier for
/// this syscall. Divergence detection is never skipped — the policies only
/// change WHEN the cross-variant comparison happens.
enum class BatchPolicy : std::uint8_t {
  /// Full per-call barrier. Shared-state mutations whose ordering against
  /// other variants' calls matters (open's fd-slot allocation, socket setup,
  /// exit, poll_event's queue consumption) and path-routed calls that may
  /// resolve per variant.
  kBarrier,
  /// May ride in a multi-call batch: consecutive same-class kCoalesce calls
  /// from one variant are compared and executed as ONE leader round. Each
  /// batch position still gets the full canonicalize/compare/execute/
  /// reexpress treatment.
  kCoalesce,
  /// Non-divergence-relevant: a read-only input-class kOnce call whose
  /// canonical form carries no arguments to diverge on. Completes through a
  /// lock-free completion slot — the first variant to arrive executes and
  /// publishes; later variants compare their canonical args against the
  /// published prefix and consume the result without blocking anyone.
  /// Divergence (a variant issuing a DIFFERENT call at the same stream
  /// position) is still detected, at consume time or at the next barrier.
  kCompletion,
};

inline constexpr std::size_t kFixedIntRoles = 4;

struct SyscallDescriptor {
  Sys no = Sys::kGetpid;
  std::string_view name;
  SysClass cls = SysClass::kPerVariant;
  ExecPolicy exec = ExecPolicy::kPerVariant;
  /// Roles of ints[0..3]; ints[4...] take rest_int_role (setgroups passes a
  /// variable-length GID list, so every slot is kUid there).
  std::array<ArgRole, kFixedIntRoles> int_roles{ArgRole::kNone, ArgRole::kNone, ArgRole::kNone,
                                                ArgRole::kNone};
  ArgRole rest_int_role = ArgRole::kNone;
  ArgRole str0_role = ArgRole::kNone;
  /// Role carried by SyscallResult::value on success (kUid => the variation
  /// reexpresses it per variant in the R_i step).
  ArgRole result_role = ArgRole::kNone;
  MismatchKind mismatch = MismatchKind::kArgument;
  /// Barrier relaxation class for the pipelined rendezvous (see BatchPolicy).
  BatchPolicy batch = BatchPolicy::kBarrier;
  /// kFdRouted only: how to execute when the call carries no fd slot at all
  /// (malformed guest call). kOnce replicates a single EBADF; kPerVariant
  /// lets every variant's kernel report its own.
  ExecPolicy missing_fd_exec = ExecPolicy::kOnce;

  [[nodiscard]] constexpr ArgRole int_role(std::size_t index) const noexcept {
    return index < kFixedIntRoles ? int_roles[index] : rest_int_role;
  }
};

/// Descriptor lookup; total over the enum (static_asserted in the .cpp).
[[nodiscard]] const SyscallDescriptor& descriptor(Sys sys) noexcept;

/// The whole table in enum order, for exhaustiveness checks and tooling.
[[nodiscard]] const std::array<SyscallDescriptor, kSysCount>& descriptor_table() noexcept;

[[nodiscard]] std::string_view arg_role_name(ArgRole role) noexcept;

[[nodiscard]] std::string_view batch_policy_name(BatchPolicy policy) noexcept;

}  // namespace nv::vkernel

#endif  // NV_VKERNEL_SYSCALL_DESCRIPTORS_H

// Simulated process control block: credentials, fd table, address space.
#ifndef NV_VKERNEL_PROCESS_H
#define NV_VKERNEL_PROCESS_H

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "vfs/filesystem.h"
#include "vkernel/memory.h"
#include "vkernel/sockets.h"
#include "vkernel/types.h"

namespace nv::vkernel {

/// A socket fd object: either listening on a port or an established stream.
struct SocketObj {
  enum class State { kUnbound, kListening, kConnected };
  State state = State::kUnbound;
  std::uint16_t port = 0;
  Connection conn;  // valid when kConnected
};
using SocketPtr = std::shared_ptr<SocketObj>;

/// One fd-table slot: file, socket, or empty.
using FdEntry = std::variant<std::monostate, vfs::OpenFilePtr, SocketPtr>;

/// Process control block. The N-variant MVEE creates one per variant; slot n
/// of every variant's fd table refers to corresponding objects (§3.4: "the
/// n-th slot in P0's data structure corresponds to the n-th slot in P1's").
class Process {
 public:
  Process(os::pid_t pid, std::string name, os::Credentials creds)
      : pid_(pid), name_(std::move(name)), creds_(std::move(creds)) {}

  [[nodiscard]] os::pid_t pid() const noexcept { return pid_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] os::Credentials& creds() noexcept { return creds_; }
  [[nodiscard]] const os::Credentials& creds() const noexcept { return creds_; }

  [[nodiscard]] AddressSpace& memory() noexcept { return memory_; }
  [[nodiscard]] const AddressSpace& memory() const noexcept { return memory_; }

  /// Place `entry` in the lowest free slot and return its fd.
  [[nodiscard]] os::fd_t install_fd(FdEntry entry);
  /// Place `entry` at exactly `fd` (used by the MVEE to keep tables slot-
  /// synchronized); grows the table as needed.
  void install_fd_at(os::fd_t fd, FdEntry entry);
  [[nodiscard]] FdEntry* fd(os::fd_t fd) noexcept;
  [[nodiscard]] os::Errno close_fd(os::fd_t fd) noexcept;
  [[nodiscard]] std::size_t open_fd_count() const noexcept;
  [[nodiscard]] os::fd_t lowest_free_fd() const noexcept;

  void set_exited(int code) noexcept {
    exited_ = true;
    exit_code_ = code;
  }
  [[nodiscard]] bool exited() const noexcept { return exited_; }
  [[nodiscard]] int exit_code() const noexcept { return exit_code_; }

 private:
  os::pid_t pid_;
  std::string name_;
  os::Credentials creds_;
  AddressSpace memory_;
  std::vector<FdEntry> fds_;
  bool exited_ = false;
  int exit_code_ = 0;
};

}  // namespace nv::vkernel

#endif  // NV_VKERNEL_PROCESS_H

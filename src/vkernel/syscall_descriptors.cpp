#include "vkernel/syscall_descriptors.h"

namespace nv::vkernel {

namespace {

using R = ArgRole;

struct Roles {
  std::array<ArgRole, kFixedIntRoles> fixed{R::kNone, R::kNone, R::kNone, R::kNone};
  ArgRole rest = R::kNone;
};

constexpr Roles ints() { return {}; }
constexpr Roles ints(R a) { return {{a, R::kNone, R::kNone, R::kNone}, R::kNone}; }
constexpr Roles ints(R a, R b) { return {{a, b, R::kNone, R::kNone}, R::kNone}; }
constexpr Roles ints(R a, R b, R c) { return {{a, b, c, R::kNone}, R::kNone}; }
constexpr Roles all_ints(R role) { return {{role, role, role, role}, role}; }

constexpr SyscallDescriptor row(Sys no, std::string_view name, SysClass cls, ExecPolicy exec,
                                Roles roles = {}, ArgRole str0 = R::kNone,
                                ArgRole result = R::kNone,
                                MismatchKind mismatch = MismatchKind::kArgument,
                                BatchPolicy batch = BatchPolicy::kBarrier,
                                ExecPolicy missing_fd_exec = ExecPolicy::kOnce) {
  SyscallDescriptor d;
  d.no = no;
  d.name = name;
  d.cls = cls;
  d.exec = exec;
  d.int_roles = roles.fixed;
  d.rest_int_role = roles.rest;
  d.str0_role = str0;
  d.result_role = result;
  d.mismatch = mismatch;
  d.batch = batch;
  d.missing_fd_exec = missing_fd_exec;
  return d;
}

constexpr BatchPolicy kBarrier = BatchPolicy::kBarrier;
constexpr BatchPolicy kCoalesce = BatchPolicy::kCoalesce;
constexpr BatchPolicy kCompletion = BatchPolicy::kCompletion;
constexpr MismatchKind kArgMismatch = MismatchKind::kArgument;

// clang-format off
//
// BatchPolicy assignments: open/socket/bind/listen/accept allocate or mirror
// fd-table slots and poll_event consumes the shared event queue — their
// ordering against everything else matters, so they keep the full per-call
// barrier. stat stays kBarrier because a path-routed call may resolve per
// variant (§3.4), which a shared completion slot cannot express. getpid and
// gettime are the argument-free read-only input calls: pure completion-slot
// candidates. Everything else is coalescible — batching merely merges K
// consecutive barrier rounds into one, each position still fully checked.
constexpr std::array<SyscallDescriptor, kSysCount> kTable = {{
    // Files
    row(Sys::kOpen,      "open",      SysClass::kOpen,       ExecPolicy::kOpen,
        ints(R::kFlags, R::kMode), R::kPath, R::kFd, kArgMismatch, kBarrier),
    row(Sys::kClose,     "close",     SysClass::kPerVariant, ExecPolicy::kPerVariant,
        ints(R::kFd), R::kNone, R::kNone, kArgMismatch, kCoalesce),
    row(Sys::kRead,      "read",      SysClass::kInput,      ExecPolicy::kFdRouted,
        ints(R::kFd, R::kOffset), R::kNone, R::kNone, kArgMismatch, kCoalesce),
    row(Sys::kWrite,     "write",     SysClass::kOutput,     ExecPolicy::kFdRouted,
        ints(R::kFd), R::kPayload, R::kNone, kArgMismatch, kCoalesce),
    row(Sys::kSeek,      "seek",      SysClass::kPerVariant, ExecPolicy::kFdRouted,
        ints(R::kFd, R::kOffset), R::kNone, R::kNone, kArgMismatch, kCoalesce,
        ExecPolicy::kPerVariant),
    row(Sys::kStat,      "stat",      SysClass::kInput,      ExecPolicy::kPathRouted,
        ints(), R::kPath, R::kNone, kArgMismatch, kBarrier),
    row(Sys::kUnlink,    "unlink",    SysClass::kPerVariant, ExecPolicy::kOnce,
        ints(), R::kPath, R::kNone, kArgMismatch, kCoalesce),
    row(Sys::kMkdir,     "mkdir",     SysClass::kPerVariant, ExecPolicy::kOnce,
        ints(R::kMode), R::kPath, R::kNone, kArgMismatch, kCoalesce),
    // Credentials (the UID variation's target interface, §3.5)
    row(Sys::kGetuid,    "getuid",    SysClass::kPerVariant, ExecPolicy::kPerVariant,
        ints(), R::kNone, R::kUid, kArgMismatch, kCoalesce),
    row(Sys::kGeteuid,   "geteuid",   SysClass::kPerVariant, ExecPolicy::kPerVariant,
        ints(), R::kNone, R::kUid, kArgMismatch, kCoalesce),
    row(Sys::kGetgid,    "getgid",    SysClass::kPerVariant, ExecPolicy::kPerVariant,
        ints(), R::kNone, R::kUid, kArgMismatch, kCoalesce),
    row(Sys::kGetegid,   "getegid",   SysClass::kPerVariant, ExecPolicy::kPerVariant,
        ints(), R::kNone, R::kUid, kArgMismatch, kCoalesce),
    row(Sys::kSetuid,    "setuid",    SysClass::kPerVariant, ExecPolicy::kPerVariant,
        ints(R::kUid), R::kNone, R::kNone, kArgMismatch, kCoalesce),
    row(Sys::kSeteuid,   "seteuid",   SysClass::kPerVariant, ExecPolicy::kPerVariant,
        ints(R::kUid), R::kNone, R::kNone, kArgMismatch, kCoalesce),
    row(Sys::kSetreuid,  "setreuid",  SysClass::kPerVariant, ExecPolicy::kPerVariant,
        ints(R::kUid, R::kUid), R::kNone, R::kNone, kArgMismatch, kCoalesce),
    row(Sys::kSetresuid, "setresuid", SysClass::kPerVariant, ExecPolicy::kPerVariant,
        ints(R::kUid, R::kUid, R::kUid), R::kNone, R::kNone, kArgMismatch, kCoalesce),
    row(Sys::kSetgid,    "setgid",    SysClass::kPerVariant, ExecPolicy::kPerVariant,
        ints(R::kUid), R::kNone, R::kNone, kArgMismatch, kCoalesce),
    row(Sys::kSetegid,   "setegid",   SysClass::kPerVariant, ExecPolicy::kPerVariant,
        ints(R::kUid), R::kNone, R::kNone, kArgMismatch, kCoalesce),
    row(Sys::kSetgroups, "setgroups", SysClass::kPerVariant, ExecPolicy::kPerVariant,
        all_ints(R::kUid), R::kNone, R::kNone, kArgMismatch, kCoalesce),
    // Network: socket objects must stay identical across variants, so setup
    // executes once; accept's new connection fd is mirrored into every table.
    row(Sys::kSocket,    "socket",    SysClass::kPerVariant, ExecPolicy::kOnceMirrorFd,
        ints(), R::kNone, R::kFd, kArgMismatch, kBarrier),
    row(Sys::kBind,      "bind",      SysClass::kPerVariant, ExecPolicy::kOnce,
        ints(R::kFd, R::kPort), R::kNone, R::kNone, kArgMismatch, kBarrier),
    row(Sys::kListen,    "listen",    SysClass::kPerVariant, ExecPolicy::kOnce,
        ints(R::kFd), R::kNone, R::kNone, kArgMismatch, kBarrier),
    row(Sys::kAccept,    "accept",    SysClass::kInput,      ExecPolicy::kOnceMirrorFd,
        ints(R::kFd), R::kNone, R::kFd, kArgMismatch, kBarrier),
    // Misc
    row(Sys::kGetpid,    "getpid",    SysClass::kInput,      ExecPolicy::kOnce,
        ints(), R::kNone, R::kNone, kArgMismatch, kCompletion),
    row(Sys::kGettime,   "gettime",   SysClass::kInput,      ExecPolicy::kOnce,
        ints(), R::kNone, R::kNone, kArgMismatch, kCompletion),
    row(Sys::kExit,      "exit",      SysClass::kExit,       ExecPolicy::kExit,
        ints(R::kExitCode), R::kNone, R::kNone, kArgMismatch, kBarrier),
    row(Sys::kPollEvent, "poll_event", SysClass::kInput,     ExecPolicy::kOnce,
        ints(), R::kNone, R::kNone, kArgMismatch, kBarrier),
    // Detection syscalls introduced by the paper (Table 2)
    row(Sys::kUidValue,  "uid_value", SysClass::kDetection,  ExecPolicy::kDetection,
        ints(R::kUid), R::kNone, R::kUid, MismatchKind::kUidCheck, kCoalesce),
    row(Sys::kCondChk,   "cond_chk",  SysClass::kDetection,  ExecPolicy::kDetection,
        ints(R::kCond), R::kNone, R::kCond, MismatchKind::kCondition, kCoalesce),
    row(Sys::kCcCmp,     "cc_cmp",    SysClass::kDetection,  ExecPolicy::kDetection,
        ints(R::kCcOp, R::kUid, R::kUid), R::kNone, R::kCond, MismatchKind::kUidCheck,
        kCoalesce),
}};
// clang-format on

/// Every enumerator must have exactly one row, in enum order, with a name.
constexpr bool table_is_complete() {
  for (std::size_t i = 0; i < kSysCount; ++i) {
    if (static_cast<std::size_t>(kTable[i].no) != i) return false;
    if (kTable[i].name.empty()) return false;
  }
  return true;
}
static_assert(table_is_complete(),
              "syscall descriptor table must cover every Sys enumerator in order");

}  // namespace

const SyscallDescriptor& descriptor(Sys sys) noexcept {
  const auto index = static_cast<std::size_t>(sys);
  if (index >= kSysCount) {
    // Corrupted enum from an untrusted guest: degrade to a harmless
    // per-variant row (the old switches' "sys?" / default behaviour) instead
    // of reading past the table.
    static constexpr SyscallDescriptor kUnknown =
        row(Sys::kGetpid, "sys?", SysClass::kPerVariant, ExecPolicy::kPerVariant);
    return kUnknown;
  }
  return kTable[index];
}

const std::array<SyscallDescriptor, kSysCount>& descriptor_table() noexcept { return kTable; }

std::string_view arg_role_name(ArgRole role) noexcept {
  switch (role) {
    case ArgRole::kNone: return "none";
    case ArgRole::kFd: return "fd";
    case ArgRole::kUid: return "uid";
    case ArgRole::kPath: return "path";
    case ArgRole::kPayload: return "payload";
    case ArgRole::kFlags: return "flags";
    case ArgRole::kMode: return "mode";
    case ArgRole::kOffset: return "offset";
    case ArgRole::kPort: return "port";
    case ArgRole::kCcOp: return "cc-op";
    case ArgRole::kCond: return "cond";
    case ArgRole::kExitCode: return "exit-code";
  }
  return "role?";
}

std::string_view batch_policy_name(BatchPolicy policy) noexcept {
  switch (policy) {
    case BatchPolicy::kBarrier: return "barrier";
    case BatchPolicy::kCoalesce: return "coalesce";
    case BatchPolicy::kCompletion: return "completion";
  }
  return "policy?";
}

}  // namespace nv::vkernel


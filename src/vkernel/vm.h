// Tagged-bytecode virtual machine: the "machine hardware" target interpreter
// for the instruction-set-tagging variation (Table 1, row 3).
//
// Every instruction in memory is prefixed with a one-byte tag. The VM checks
// the tag against the value configured for the executing variant and strips
// it before decoding (R⁻¹ᵢ(i || inst) = inst). Code injected by an attacker
// carries one concrete tag sequence, so it can satisfy at most one variant —
// the other variant raises TagFault, which the monitor reports as an attack.
#ifndef NV_VKERNEL_VM_H
#define NV_VKERNEL_VM_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "vkernel/memory.h"
#include "vkernel/syscalls.h"

namespace nv::vkernel {

/// Raised when an instruction's tag does not match the variant's tag.
struct TagFault {
  std::uint64_t address = 0;
  std::uint8_t expected = 0;
  std::uint8_t found = 0;
};

enum class Opcode : std::uint8_t {
  kHalt = 0x00,
  kLoadImm = 0x01,   // reg, imm32
  kMov = 0x02,       // dst, src
  kAdd = 0x03,       // dst, src
  kXor = 0x04,       // dst, src
  kSysSetuid = 0x05, // setuid(r0); r0 <- errno
  kSysGeteuid = 0x06,// r0 <- geteuid()
  kEmit = 0x07,      // append r0 to output
  kJnz = 0x08,       // reg, signed rel8 (instruction-count delta)
};

/// One untagged instruction (opcode + operands).
struct VmInstruction {
  Opcode op = Opcode::kHalt;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::uint32_t imm = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::size_t encoded_size(Opcode op) noexcept;
};

/// Convenience builder for guest code used in tests and examples.
class VmProgram {
 public:
  VmProgram& load_imm(std::uint8_t reg, std::uint32_t imm);
  VmProgram& mov(std::uint8_t dst, std::uint8_t src);
  VmProgram& add(std::uint8_t dst, std::uint8_t src);
  VmProgram& xor_(std::uint8_t dst, std::uint8_t src);
  VmProgram& sys_setuid();
  VmProgram& sys_geteuid();
  VmProgram& emit();
  VmProgram& jnz(std::uint8_t reg, std::int8_t rel);
  VmProgram& halt();

  [[nodiscard]] const std::vector<VmInstruction>& instructions() const noexcept {
    return instructions_;
  }

  /// Flat image with each instruction prefixed by `tag` — the reexpression
  /// function R_i(inst) = tag_i || inst applied at "load time".
  [[nodiscard]] std::vector<std::uint8_t> assemble(std::uint8_t tag) const;

 private:
  std::vector<VmInstruction> instructions_;
};

struct VmResult {
  std::vector<std::uint32_t> output;
  std::uint64_t steps = 0;
  bool halted = false;
  std::array<std::uint32_t, 4> regs{};
};

/// Execute tagged code at `entry` in `memory`. Syscall opcodes call through
/// `port` (so injected code can actually attempt privilege escalation).
/// Throws TagFault on tag mismatch and MemoryFault on unmapped fetch.
[[nodiscard]] VmResult vm_run(AddressSpace& memory, std::uint64_t entry, std::uint8_t expected_tag,
                              SyscallPort& port, std::uint64_t max_steps = 10000);

}  // namespace nv::vkernel

#endif  // NV_VKERNEL_VM_H

#include "vkernel/memory.h"

#include <cstring>
#include <utility>

#include "util/strings.h"

namespace nv::vkernel {

namespace {
constexpr std::uint64_t page_base(std::uint64_t addr) noexcept {
  return addr & ~(AddressSpace::kPageSize - 1);
}
}  // namespace

void AddressSpace::map(std::uint64_t base, std::uint64_t size) {
  if (size == 0) return;
  const std::uint64_t first = page_base(base);
  const std::uint64_t last = page_base(base + size - 1);
  for (std::uint64_t page = first;; page += kPageSize) {
    pages_.try_emplace(page, kPageSize, std::uint8_t{0});
    if (page == last) break;
  }
}

bool AddressSpace::is_mapped(std::uint64_t addr, std::uint64_t size) const noexcept {
  if (size == 0) return true;
  const std::uint64_t first = page_base(addr);
  const std::uint64_t last = page_base(addr + size - 1);
  for (std::uint64_t page = first;; page += kPageSize) {
    if (!pages_.contains(page)) return false;
    if (page == last) break;
  }
  return true;
}

std::uint64_t AddressSpace::alloc(std::uint64_t size, std::uint64_t align) {
  if (align == 0) align = 1;
  alloc_next_ = (alloc_next_ + align - 1) / align * align;
  const std::uint64_t addr = alloc_next_;
  map(addr, size);
  alloc_next_ += size;
  return addr;
}

const std::uint8_t* AddressSpace::page_for(std::uint64_t addr) const {
  const auto it = pages_.find(page_base(addr));
  if (it == pages_.end()) {
    throw MemoryFault{addr, "unmapped address " + util::format("0x%llx",
                                                               static_cast<unsigned long long>(addr))};
  }
  return it->second.data();
}

std::uint8_t* AddressSpace::page_for(std::uint64_t addr) {
  return const_cast<std::uint8_t*>(std::as_const(*this).page_for(addr));
}

std::uint8_t AddressSpace::load_u8(std::uint64_t addr) const {
  return page_for(addr)[addr % kPageSize];
}

void AddressSpace::store_u8(std::uint64_t addr, std::uint8_t value) {
  page_for(addr)[addr % kPageSize] = value;
}

std::uint32_t AddressSpace::load_u32(std::uint64_t addr) const {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= static_cast<std::uint32_t>(load_u8(addr + static_cast<std::uint64_t>(i))) << (8 * i);
  return value;
}

void AddressSpace::store_u32(std::uint64_t addr, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) store_u8(addr + static_cast<std::uint64_t>(i), static_cast<std::uint8_t>(value >> (8 * i)));
}

std::uint64_t AddressSpace::load_u64(std::uint64_t addr) const {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= static_cast<std::uint64_t>(load_u8(addr + static_cast<std::uint64_t>(i))) << (8 * i);
  return value;
}

void AddressSpace::store_u64(std::uint64_t addr, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) store_u8(addr + static_cast<std::uint64_t>(i), static_cast<std::uint8_t>(value >> (8 * i)));
}

std::vector<std::uint8_t> AddressSpace::load_bytes(std::uint64_t addr, std::uint64_t size) const {
  std::vector<std::uint8_t> out;
  out.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) out.push_back(load_u8(addr + i));
  return out;
}

void AddressSpace::store_bytes(std::uint64_t addr, std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) store_u8(addr + i, bytes[i]);
}

void AddressSpace::store_string(std::uint64_t addr, std::string_view text) {
  for (std::size_t i = 0; i < text.size(); ++i) {
    store_u8(addr + i, static_cast<std::uint8_t>(text[i]));
  }
  store_u8(addr + text.size(), 0);
}

std::string AddressSpace::load_string(std::uint64_t addr, std::uint64_t max_len) const {
  std::string out;
  for (std::uint64_t i = 0; i < max_len; ++i) {
    const std::uint8_t byte = load_u8(addr + i);
    if (byte == 0) break;
    out.push_back(static_cast<char>(byte));
  }
  return out;
}

}  // namespace nv::vkernel

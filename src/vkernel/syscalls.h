// The syscall vocabulary of the simulated kernel.
//
// A syscall invocation is reified as SyscallArgs so the N-variant monitor can
// compare invocations across variants (§3.1: "the wrappers also act as
// monitors and check ... that all system calls receive equivalent arguments").
// The last three entries are the paper's new detection syscalls (Table 2).
#ifndef NV_VKERNEL_SYSCALLS_H
#define NV_VKERNEL_SYSCALLS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "vkernel/types.h"

namespace nv::vkernel {

enum class Sys : std::uint8_t {
  // Files
  kOpen,
  kClose,
  kRead,
  kWrite,
  kSeek,
  kStat,
  kUnlink,
  kMkdir,
  // Credentials (the UID variation's target interface, §3.5)
  kGetuid,
  kGeteuid,
  kGetgid,
  kGetegid,
  kSetuid,
  kSeteuid,
  kSetreuid,
  kSetresuid,
  kSetgid,
  kSetegid,
  kSetgroups,
  // Network
  kSocket,
  kBind,
  kListen,
  kAccept,
  // Misc
  kGetpid,
  kGettime,
  kExit,
  /// Synchronized asynchronous-event delivery (extension; the Bruschi [9]
  /// direction for the §3.1 signal limitation): events queued on the kernel
  /// are observed by ALL variants at the same syscall index because the poll
  /// is an input-class call executed once and replicated.
  kPollEvent,
  // Detection syscalls introduced by the paper (Table 2)
  kUidValue,
  kCondChk,
  kCcCmp,
};

[[nodiscard]] std::string_view sys_name(Sys sys) noexcept;

/// Comparison operator selector for kCcCmp (cc_eq .. cc_geq).
enum class CcOp : std::uint8_t { kEq, kNeq, kLt, kLeq, kGt, kGeq };

[[nodiscard]] std::string_view cc_op_name(CcOp op) noexcept;

/// Evaluate a CcOp over canonical (post-inverse-reexpression) UID values.
[[nodiscard]] bool cc_eval(CcOp op, os::uid_t a, os::uid_t b) noexcept;

/// Reified syscall invocation. `ints` carries scalars (fds, uids, flags);
/// `strs` carries paths and payloads. Equality is what the monitor compares
/// after canonicalization.
struct SyscallArgs {
  Sys no = Sys::kGetpid;
  std::vector<std::uint64_t> ints;
  std::vector<std::string> strs;

  [[nodiscard]] bool operator==(const SyscallArgs&) const = default;
  [[nodiscard]] std::string describe() const;
};

/// Result delivered back to the guest.
struct SyscallResult {
  std::uint64_t value = 0;                 // primary return value
  os::Errno err = os::Errno::kOk;          // kOk means success
  std::string data;                        // read()/accept() payloads
  std::vector<std::uint64_t> out_ints;     // stat() fields etc.

  [[nodiscard]] bool ok() const noexcept { return err == os::Errno::kOk; }
  [[nodiscard]] bool operator==(const SyscallResult&) const = default;
};

/// Behaviour class used by the MVEE to decide execution strategy (§3.1).
enum class SysClass : std::uint8_t {
  kPerVariant,  // state change applied to each variant's process (creds, close)
  kInput,       // performed once, result replicated (read shared fd, accept, time)
  kOutput,      // args checked equal, performed once (write shared fd)
  kOpen,        // special: shared/unshared file resolution
  kDetection,   // paper's Table 2 calls: cross-variant checks only
  kExit,
};

[[nodiscard]] SysClass sys_class(Sys sys) noexcept;

/// True for syscalls whose result carries a UID/GID that the UID variation
/// must reexpress per variant (getuid family).
[[nodiscard]] bool returns_uid(Sys sys) noexcept;

/// Indices into SyscallArgs::ints that hold UID/GID values for this syscall
/// (the arguments the UID variation inverse-transforms at the boundary).
[[nodiscard]] std::vector<std::size_t> uid_arg_indices(const SyscallArgs& args);

/// A run of syscalls issued together by one variant. The MVEE's pipelined
/// rendezvous compares and executes an entire batch as ONE cross-variant
/// exchange (one barrier instead of calls.size() barriers); the descriptor
/// table's BatchPolicy says which calls may ride in a batch. Results come
/// back positionally, one per call.
struct SyscallBatch {
  std::vector<SyscallArgs> calls;

  [[nodiscard]] bool operator==(const SyscallBatch&) const = default;
};

/// Guest-facing syscall port. Each variant's GuestContext holds one; the
/// plain kernel and the N-variant MVEE both implement it.
class SyscallPort {
 public:
  virtual ~SyscallPort() = default;
  virtual SyscallResult syscall(const SyscallArgs& args) = 0;
  /// Issue several calls at once. The default runs them one by one (plain
  /// kernel semantics); the MVEE overrides it to coalesce eligible runs into
  /// single rendezvous rounds. Batching is a throughput hint, never a
  /// semantic change: results are identical to issuing the calls serially.
  virtual std::vector<SyscallResult> syscall_batch(const SyscallBatch& batch) {
    std::vector<SyscallResult> results;
    results.reserve(batch.calls.size());
    for (const auto& call : batch.calls) results.push_back(syscall(call));
    return results;
  }
};

}  // namespace nv::vkernel

#endif  // NV_VKERNEL_SYSCALLS_H

#include "vkernel/syscalls.h"

#include "util/strings.h"

namespace nv::vkernel {

std::string_view sys_name(Sys sys) noexcept {
  switch (sys) {
    case Sys::kOpen: return "open";
    case Sys::kClose: return "close";
    case Sys::kRead: return "read";
    case Sys::kWrite: return "write";
    case Sys::kSeek: return "seek";
    case Sys::kStat: return "stat";
    case Sys::kUnlink: return "unlink";
    case Sys::kMkdir: return "mkdir";
    case Sys::kGetuid: return "getuid";
    case Sys::kGeteuid: return "geteuid";
    case Sys::kGetgid: return "getgid";
    case Sys::kGetegid: return "getegid";
    case Sys::kSetuid: return "setuid";
    case Sys::kSeteuid: return "seteuid";
    case Sys::kSetreuid: return "setreuid";
    case Sys::kSetresuid: return "setresuid";
    case Sys::kSetgid: return "setgid";
    case Sys::kSetegid: return "setegid";
    case Sys::kSetgroups: return "setgroups";
    case Sys::kSocket: return "socket";
    case Sys::kBind: return "bind";
    case Sys::kListen: return "listen";
    case Sys::kAccept: return "accept";
    case Sys::kGetpid: return "getpid";
    case Sys::kGettime: return "gettime";
    case Sys::kExit: return "exit";
    case Sys::kPollEvent: return "poll_event";
    case Sys::kUidValue: return "uid_value";
    case Sys::kCondChk: return "cond_chk";
    case Sys::kCcCmp: return "cc_cmp";
  }
  return "sys?";
}

std::string_view cc_op_name(CcOp op) noexcept {
  switch (op) {
    case CcOp::kEq: return "cc_eq";
    case CcOp::kNeq: return "cc_neq";
    case CcOp::kLt: return "cc_lt";
    case CcOp::kLeq: return "cc_leq";
    case CcOp::kGt: return "cc_gt";
    case CcOp::kGeq: return "cc_geq";
  }
  return "cc_?";
}

bool cc_eval(CcOp op, os::uid_t a, os::uid_t b) noexcept {
  switch (op) {
    case CcOp::kEq: return a == b;
    case CcOp::kNeq: return a != b;
    case CcOp::kLt: return a < b;
    case CcOp::kLeq: return a <= b;
    case CcOp::kGt: return a > b;
    case CcOp::kGeq: return a >= b;
  }
  return false;
}

std::string SyscallArgs::describe() const {
  std::string out{sys_name(no)};
  out += "(";
  for (std::size_t i = 0; i < ints.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(ints[i]);
  }
  for (const auto& s : strs) {
    out += ", \"";
    out += s.size() > 32 ? s.substr(0, 29) + "..." : s;
    out += "\"";
  }
  out += ")";
  return out;
}

SysClass sys_class(Sys sys) noexcept {
  switch (sys) {
    case Sys::kOpen:
      return SysClass::kOpen;
    case Sys::kRead:
    case Sys::kAccept:
    case Sys::kGettime:
    case Sys::kGetpid:
    case Sys::kStat:
    case Sys::kPollEvent:
      return SysClass::kInput;
    case Sys::kWrite:
      return SysClass::kOutput;
    case Sys::kUidValue:
    case Sys::kCondChk:
    case Sys::kCcCmp:
      return SysClass::kDetection;
    case Sys::kExit:
      return SysClass::kExit;
    default:
      return SysClass::kPerVariant;
  }
}

bool returns_uid(Sys sys) noexcept {
  switch (sys) {
    case Sys::kGetuid:
    case Sys::kGeteuid:
    case Sys::kGetgid:
    case Sys::kGetegid:
      return true;
    default:
      return false;
  }
}

std::vector<std::size_t> uid_arg_indices(const SyscallArgs& args) {
  switch (args.no) {
    case Sys::kSetuid:
    case Sys::kSeteuid:
    case Sys::kSetgid:
    case Sys::kSetegid:
    case Sys::kUidValue:
      return {0};
    case Sys::kSetreuid:
      return {0, 1};
    case Sys::kSetresuid:
      return {0, 1, 2};
    case Sys::kSetgroups: {
      std::vector<std::size_t> all(args.ints.size());
      for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
      return all;
    }
    case Sys::kCcCmp:
      return {1, 2};  // ints[0] is the operator
    default:
      return {};
  }
}

}  // namespace nv::vkernel

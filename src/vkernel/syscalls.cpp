#include "vkernel/syscalls.h"

#include "util/strings.h"
#include "vkernel/syscall_descriptors.h"

namespace nv::vkernel {

std::string_view sys_name(Sys sys) noexcept { return descriptor(sys).name; }

std::string_view cc_op_name(CcOp op) noexcept {
  switch (op) {
    case CcOp::kEq: return "cc_eq";
    case CcOp::kNeq: return "cc_neq";
    case CcOp::kLt: return "cc_lt";
    case CcOp::kLeq: return "cc_leq";
    case CcOp::kGt: return "cc_gt";
    case CcOp::kGeq: return "cc_geq";
  }
  return "cc_?";
}

bool cc_eval(CcOp op, os::uid_t a, os::uid_t b) noexcept {
  switch (op) {
    case CcOp::kEq: return a == b;
    case CcOp::kNeq: return a != b;
    case CcOp::kLt: return a < b;
    case CcOp::kLeq: return a <= b;
    case CcOp::kGt: return a > b;
    case CcOp::kGeq: return a >= b;
  }
  return false;
}

std::string SyscallArgs::describe() const {
  std::string out{sys_name(no)};
  out += "(";
  for (std::size_t i = 0; i < ints.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(ints[i]);
  }
  for (const auto& s : strs) {
    out += ", \"";
    out += s.size() > 32 ? s.substr(0, 29) + "..." : s;
    out += "\"";
  }
  out += ")";
  return out;
}

SysClass sys_class(Sys sys) noexcept { return descriptor(sys).cls; }

bool returns_uid(Sys sys) noexcept { return descriptor(sys).result_role == ArgRole::kUid; }

std::vector<std::size_t> uid_arg_indices(const SyscallArgs& args) {
  const SyscallDescriptor& desc = descriptor(args.no);
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < args.ints.size(); ++i) {
    if (desc.int_role(i) == ArgRole::kUid) indices.push_back(i);
  }
  return indices;
}

}  // namespace nv::vkernel

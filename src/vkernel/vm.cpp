#include "vkernel/vm.h"

#include <stdexcept>

namespace nv::vkernel {

std::size_t VmInstruction::encoded_size(Opcode op) noexcept {
  switch (op) {
    case Opcode::kLoadImm: return 6;  // op, reg, imm32
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kXor:
    case Opcode::kJnz: return 3;  // op, a, b
    case Opcode::kHalt:
    case Opcode::kSysSetuid:
    case Opcode::kSysGeteuid:
    case Opcode::kEmit: return 1;
  }
  return 1;
}

std::vector<std::uint8_t> VmInstruction::encode() const {
  std::vector<std::uint8_t> bytes;
  bytes.push_back(static_cast<std::uint8_t>(op));
  switch (op) {
    case Opcode::kLoadImm:
      bytes.push_back(a);
      for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<std::uint8_t>(imm >> (8 * i)));
      break;
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kXor:
    case Opcode::kJnz:
      bytes.push_back(a);
      bytes.push_back(b);
      break;
    default:
      break;
  }
  return bytes;
}

VmProgram& VmProgram::load_imm(std::uint8_t reg, std::uint32_t imm) {
  instructions_.push_back({Opcode::kLoadImm, reg, 0, imm});
  return *this;
}
VmProgram& VmProgram::mov(std::uint8_t dst, std::uint8_t src) {
  instructions_.push_back({Opcode::kMov, dst, src, 0});
  return *this;
}
VmProgram& VmProgram::add(std::uint8_t dst, std::uint8_t src) {
  instructions_.push_back({Opcode::kAdd, dst, src, 0});
  return *this;
}
VmProgram& VmProgram::xor_(std::uint8_t dst, std::uint8_t src) {
  instructions_.push_back({Opcode::kXor, dst, src, 0});
  return *this;
}
VmProgram& VmProgram::sys_setuid() {
  instructions_.push_back({Opcode::kSysSetuid, 0, 0, 0});
  return *this;
}
VmProgram& VmProgram::sys_geteuid() {
  instructions_.push_back({Opcode::kSysGeteuid, 0, 0, 0});
  return *this;
}
VmProgram& VmProgram::emit() {
  instructions_.push_back({Opcode::kEmit, 0, 0, 0});
  return *this;
}
VmProgram& VmProgram::jnz(std::uint8_t reg, std::int8_t rel) {
  instructions_.push_back({Opcode::kJnz, reg, static_cast<std::uint8_t>(rel), 0});
  return *this;
}
VmProgram& VmProgram::halt() {
  instructions_.push_back({Opcode::kHalt, 0, 0, 0});
  return *this;
}

std::vector<std::uint8_t> VmProgram::assemble(std::uint8_t tag) const {
  std::vector<std::uint8_t> image;
  for (const auto& inst : instructions_) {
    image.push_back(tag);
    const auto bytes = inst.encode();
    image.insert(image.end(), bytes.begin(), bytes.end());
  }
  return image;
}

VmResult vm_run(AddressSpace& memory, std::uint64_t entry, std::uint8_t expected_tag,
                SyscallPort& port, std::uint64_t max_steps) {
  VmResult result;
  std::array<std::uint32_t, 4>& regs = result.regs;
  // Pre-decode instruction boundaries by walking the tagged stream. Jumps are
  // expressed in instruction counts, so record each instruction's address.
  std::uint64_t pc = entry;
  std::vector<std::uint64_t> addrs;   // address of instruction i (its tag byte)

  auto find_index = [&](std::uint64_t addr) -> std::size_t {
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      if (addrs[i] == addr) return i;
    }
    addrs.push_back(addr);
    return addrs.size() - 1;
  };

  while (result.steps < max_steps) {
    ++result.steps;
    const std::size_t index = find_index(pc);
    const std::uint8_t tag = memory.load_u8(pc);
    if (tag != expected_tag) throw TagFault{pc, expected_tag, tag};
    const auto op = static_cast<Opcode>(memory.load_u8(pc + 1));
    const std::uint64_t operands = pc + 2;
    const std::uint64_t next = pc + 1 + VmInstruction::encoded_size(op);
    switch (op) {
      case Opcode::kHalt:
        result.halted = true;
        return result;
      case Opcode::kLoadImm: {
        const std::uint8_t reg = memory.load_u8(operands);
        regs.at(reg % 4) = memory.load_u32(operands + 1);
        pc = next;
        break;
      }
      case Opcode::kMov: {
        regs.at(memory.load_u8(operands) % 4) = regs.at(memory.load_u8(operands + 1) % 4);
        pc = next;
        break;
      }
      case Opcode::kAdd: {
        regs.at(memory.load_u8(operands) % 4) += regs.at(memory.load_u8(operands + 1) % 4);
        pc = next;
        break;
      }
      case Opcode::kXor: {
        regs.at(memory.load_u8(operands) % 4) ^= regs.at(memory.load_u8(operands + 1) % 4);
        pc = next;
        break;
      }
      case Opcode::kSysSetuid: {
        SyscallArgs call;
        call.no = Sys::kSetuid;
        call.ints = {regs[0]};
        const SyscallResult r = port.syscall(call);
        regs[0] = static_cast<std::uint32_t>(r.err);
        pc = next;
        break;
      }
      case Opcode::kSysGeteuid: {
        SyscallArgs call;
        call.no = Sys::kGeteuid;
        const SyscallResult r = port.syscall(call);
        regs[0] = static_cast<std::uint32_t>(r.value);
        pc = next;
        break;
      }
      case Opcode::kEmit:
        result.output.push_back(regs[0]);
        pc = next;
        break;
      case Opcode::kJnz: {
        const std::uint8_t reg = memory.load_u8(operands);
        const auto rel = static_cast<std::int8_t>(memory.load_u8(operands + 1));
        if (regs.at(reg % 4) != 0) {
          const std::ptrdiff_t target = static_cast<std::ptrdiff_t>(index) + rel;
          if (target < 0 || static_cast<std::size_t>(target) >= addrs.size()) {
            // Backward jumps only reach already-visited instructions; anything
            // else is a wild jump — treat as a fault, like a real CPU would
            // eventually do on garbage.
            throw MemoryFault{pc, "wild VM jump"};
          }
          pc = addrs[static_cast<std::size_t>(target)];
        } else {
          pc = next;
        }
        break;
      }
      default:
        throw MemoryFault{pc, "illegal VM opcode"};
    }
  }
  return result;  // step budget exhausted, not halted
}

}  // namespace nv::vkernel

#include "vkernel/process.h"

namespace nv::vkernel {

os::fd_t Process::install_fd(FdEntry entry) {
  const os::fd_t fd = lowest_free_fd();
  install_fd_at(fd, std::move(entry));
  return fd;
}

void Process::install_fd_at(os::fd_t fd, FdEntry entry) {
  if (fd < 0) return;
  const auto index = static_cast<std::size_t>(fd);
  if (index >= fds_.size()) fds_.resize(index + 1);
  fds_[index] = std::move(entry);
}

FdEntry* Process::fd(os::fd_t fd) noexcept {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size()) return nullptr;
  FdEntry& entry = fds_[static_cast<std::size_t>(fd)];
  if (std::holds_alternative<std::monostate>(entry)) return nullptr;
  return &entry;
}

os::Errno Process::close_fd(os::fd_t fd) noexcept {
  FdEntry* entry = this->fd(fd);
  if (entry == nullptr) return os::Errno::kEBADF;
  if (auto* sock = std::get_if<SocketPtr>(entry)) {
    if (*sock && (*sock)->state == SocketObj::State::kConnected) (*sock)->conn.close();
  }
  *entry = std::monostate{};
  return os::Errno::kOk;
}

std::size_t Process::open_fd_count() const noexcept {
  std::size_t count = 0;
  for (const auto& entry : fds_) {
    if (!std::holds_alternative<std::monostate>(entry)) ++count;
  }
  return count;
}

os::fd_t Process::lowest_free_fd() const noexcept {
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    if (std::holds_alternative<std::monostate>(fds_[i])) return static_cast<os::fd_t>(i);
  }
  return static_cast<os::fd_t>(fds_.size());
}

}  // namespace nv::vkernel

#include "vkernel/kernel.h"

#include "vkernel/credentials.h"

namespace nv::vkernel {

namespace {

SyscallResult failure(os::Errno e) {
  SyscallResult r;
  r.err = e;
  r.value = static_cast<std::uint64_t>(-1);
  return r;
}

SyscallResult success(std::uint64_t value = 0) {
  SyscallResult r;
  r.value = value;
  return r;
}

std::uint64_t ival(const SyscallArgs& args, std::size_t i) {
  return i < args.ints.size() ? args.ints[i] : 0;
}

const std::string& sval(const SyscallArgs& args, std::size_t i) {
  static const std::string empty;
  return i < args.strs.size() ? args.strs[i] : empty;
}

SyscallResult do_read(Process& proc, const SyscallArgs& args) {
  FdEntry* entry = proc.fd(static_cast<os::fd_t>(ival(args, 0)));
  if (entry == nullptr) return failure(os::Errno::kEBADF);
  const auto count = static_cast<std::size_t>(ival(args, 1));
  if (auto* file = std::get_if<vfs::OpenFilePtr>(entry)) {
    auto data = (*file)->read(count);
    if (!data) return failure(data.error());
    SyscallResult r = success(data->size());
    r.data = std::move(*data);
    return r;
  }
  if (auto* sock = std::get_if<SocketPtr>(entry)) {
    if ((*sock)->state != SocketObj::State::kConnected) return failure(os::Errno::kENOTCONN);
    auto data = (*sock)->conn.recv(count);
    if (!data) return failure(data.error());
    SyscallResult r = success(data->size());
    r.data = std::move(*data);
    return r;
  }
  return failure(os::Errno::kEBADF);
}

SyscallResult do_write(Process& proc, const SyscallArgs& args) {
  FdEntry* entry = proc.fd(static_cast<os::fd_t>(ival(args, 0)));
  if (entry == nullptr) return failure(os::Errno::kEBADF);
  const std::string& payload = sval(args, 0);
  if (auto* file = std::get_if<vfs::OpenFilePtr>(entry)) {
    auto written = (*file)->write(payload);
    if (!written) return failure(written.error());
    return success(*written);
  }
  if (auto* sock = std::get_if<SocketPtr>(entry)) {
    if ((*sock)->state != SocketObj::State::kConnected) return failure(os::Errno::kENOTCONN);
    auto sent = (*sock)->conn.send(payload);
    if (!sent) return failure(sent.error());
    return success(*sent);
  }
  return failure(os::Errno::kEBADF);
}

}  // namespace

SyscallResult do_open(KernelContext& ctx, Process& proc, std::string_view path,
                      os::OpenFlags flags, os::mode_t mode, os::fd_t slot) {
  auto file = ctx.fs().open(path, flags, proc.creds(), mode);
  if (!file) return failure(file.error());
  os::fd_t fd = slot;
  if (fd < 0) {
    fd = proc.install_fd(FdEntry{std::move(*file)});
  } else {
    proc.install_fd_at(fd, FdEntry{std::move(*file)});
  }
  return success(static_cast<std::uint64_t>(fd));
}

SyscallResult execute_syscall(KernelContext& ctx, Process& proc, const SyscallArgs& args) {
  ctx.count_syscall();
  switch (args.no) {
    case Sys::kOpen:
      return do_open(ctx, proc, sval(args, 0), static_cast<os::OpenFlags>(ival(args, 0)),
                     static_cast<os::mode_t>(ival(args, 1)));
    case Sys::kClose: {
      const os::Errno e = proc.close_fd(static_cast<os::fd_t>(ival(args, 0)));
      return e == os::Errno::kOk ? success() : failure(e);
    }
    case Sys::kRead:
      return do_read(proc, args);
    case Sys::kWrite:
      return do_write(proc, args);
    case Sys::kSeek: {
      FdEntry* entry = proc.fd(static_cast<os::fd_t>(ival(args, 0)));
      if (entry == nullptr) return failure(os::Errno::kEBADF);
      auto* file = std::get_if<vfs::OpenFilePtr>(entry);
      if (file == nullptr) return failure(os::Errno::kEINVAL);
      auto off = (*file)->seek(ival(args, 1));
      if (!off) return failure(off.error());
      return success(*off);
    }
    case Sys::kStat: {
      auto st = ctx.fs().stat(sval(args, 0));
      if (!st) return failure(st.error());
      SyscallResult r = success();
      r.out_ints = {st->ino, st->is_dir ? 1ULL : 0ULL, st->mode, st->uid, st->gid, st->size};
      return r;
    }
    case Sys::kUnlink: {
      auto u = ctx.fs().unlink(sval(args, 0), proc.creds());
      return u ? success() : failure(u.error());
    }
    case Sys::kMkdir: {
      auto m = ctx.fs().mkdir(sval(args, 0), proc.creds(),
                              static_cast<os::mode_t>(ival(args, 0)));
      return m ? success() : failure(m.error());
    }

    case Sys::kGetuid: return success(proc.creds().ruid);
    case Sys::kGeteuid: return success(proc.creds().euid);
    case Sys::kGetgid: return success(proc.creds().rgid);
    case Sys::kGetegid: return success(proc.creds().egid);
    case Sys::kSetuid: {
      const os::Errno e = sys_setuid(proc.creds(), static_cast<os::uid_t>(ival(args, 0)));
      return e == os::Errno::kOk ? success() : failure(e);
    }
    case Sys::kSeteuid: {
      const os::Errno e = sys_seteuid(proc.creds(), static_cast<os::uid_t>(ival(args, 0)));
      return e == os::Errno::kOk ? success() : failure(e);
    }
    case Sys::kSetreuid: {
      const os::Errno e = sys_setreuid(proc.creds(), static_cast<os::uid_t>(ival(args, 0)),
                                       static_cast<os::uid_t>(ival(args, 1)));
      return e == os::Errno::kOk ? success() : failure(e);
    }
    case Sys::kSetresuid: {
      const os::Errno e = sys_setresuid(proc.creds(), static_cast<os::uid_t>(ival(args, 0)),
                                        static_cast<os::uid_t>(ival(args, 1)),
                                        static_cast<os::uid_t>(ival(args, 2)));
      return e == os::Errno::kOk ? success() : failure(e);
    }
    case Sys::kSetgid: {
      const os::Errno e = sys_setgid(proc.creds(), static_cast<os::gid_t>(ival(args, 0)));
      return e == os::Errno::kOk ? success() : failure(e);
    }
    case Sys::kSetegid: {
      const os::Errno e = sys_setegid(proc.creds(), static_cast<os::gid_t>(ival(args, 0)));
      return e == os::Errno::kOk ? success() : failure(e);
    }
    case Sys::kSetgroups: {
      std::vector<os::gid_t> groups;
      groups.reserve(args.ints.size());
      for (auto g : args.ints) groups.push_back(static_cast<os::gid_t>(g));
      const os::Errno e = sys_setgroups(proc.creds(), std::move(groups));
      return e == os::Errno::kOk ? success() : failure(e);
    }

    case Sys::kSocket: {
      auto sock = std::make_shared<SocketObj>();
      return success(static_cast<std::uint64_t>(proc.install_fd(FdEntry{std::move(sock)})));
    }
    case Sys::kBind: {
      FdEntry* entry = proc.fd(static_cast<os::fd_t>(ival(args, 0)));
      if (entry == nullptr) return failure(os::Errno::kEBADF);
      auto* sock = std::get_if<SocketPtr>(entry);
      if (sock == nullptr) return failure(os::Errno::kENOTSOCK);
      // Binding to port 0 and privileged ports (<1024) as non-root is refused,
      // matching POSIX; servers must bind before dropping privileges.
      const auto port = static_cast<std::uint16_t>(ival(args, 1));
      if (port < 1024 && !proc.creds().is_superuser()) return failure(os::Errno::kEACCES);
      const os::Errno e = ctx.hub().bind(port);
      if (e != os::Errno::kOk) return failure(e);
      (*sock)->state = SocketObj::State::kListening;
      (*sock)->port = port;
      return success();
    }
    case Sys::kListen: {
      FdEntry* entry = proc.fd(static_cast<os::fd_t>(ival(args, 0)));
      if (entry == nullptr) return failure(os::Errno::kEBADF);
      auto* sock = std::get_if<SocketPtr>(entry);
      if (sock == nullptr) return failure(os::Errno::kENOTSOCK);
      if ((*sock)->state != SocketObj::State::kListening) return failure(os::Errno::kEINVAL);
      return success();
    }
    case Sys::kAccept: {
      FdEntry* entry = proc.fd(static_cast<os::fd_t>(ival(args, 0)));
      if (entry == nullptr) return failure(os::Errno::kEBADF);
      auto* sock = std::get_if<SocketPtr>(entry);
      if (sock == nullptr) return failure(os::Errno::kENOTSOCK);
      if ((*sock)->state != SocketObj::State::kListening) return failure(os::Errno::kEINVAL);
      auto conn = ctx.hub().accept((*sock)->port);
      if (!conn) return failure(conn.error());
      auto new_sock = std::make_shared<SocketObj>();
      new_sock->state = SocketObj::State::kConnected;
      new_sock->conn = std::move(*conn);
      return success(static_cast<std::uint64_t>(proc.install_fd(FdEntry{std::move(new_sock)})));
    }

    case Sys::kGetpid: return success(static_cast<std::uint64_t>(proc.pid()));
    case Sys::kGettime: return success(ctx.read_clock());
    case Sys::kExit:
      proc.set_exited(static_cast<int>(ival(args, 0)));
      return success();
    case Sys::kPollEvent: {
      auto event = ctx.pop_event();
      SyscallResult r = success(event.has_value() ? 1 : 0);
      if (event) r.data = std::move(*event);
      return r;
    }

    // Detection syscalls (Table 2). In the plain kernel there is no peer
    // variant to compare with, so these degenerate to identity/evaluation —
    // the MVEE overrides their handling with cross-variant checks.
    case Sys::kUidValue: return success(ival(args, 0));
    case Sys::kCondChk: return success(ival(args, 0) != 0 ? 1 : 0);
    case Sys::kCcCmp:
      return success(cc_eval(static_cast<CcOp>(ival(args, 0)),
                             static_cast<os::uid_t>(ival(args, 1)),
                             static_cast<os::uid_t>(ival(args, 2)))
                         ? 1
                         : 0);
  }
  return failure(os::Errno::kENOSYS);
}

PlainKernel::PlainKernel(KernelContext& ctx, std::string process_name, os::Credentials creds)
    : ctx_(ctx), proc_(std::make_unique<Process>(1, std::move(process_name), std::move(creds))) {}

SyscallResult PlainKernel::syscall(const SyscallArgs& args) {
  return execute_syscall(ctx_, *proc_, args);
}

}  // namespace nv::vkernel

#include "core/alarm.h"

#include <cctype>

namespace nv::core {

namespace {

bool is_syscall_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

/// "uid_value: canonical arguments diverge ..." -> "uid_value". Extracted
/// from the already-collapsed SHAPE, and the first character must be a
/// letter: a detail that leads with a raw diversified value ("4099: ...")
/// must yield NO attribution, not a per-session pseudo-syscall that would
/// split one campaign into N signatures.
std::string leading_syscall(const std::string& shape) {
  const std::size_t colon = shape.find(':');
  if (colon == std::string::npos || colon == 0) return {};
  if (shape[0] < 'a' || shape[0] > 'z') return {};
  for (std::size_t i = 1; i < colon; ++i) {
    if (!is_syscall_char(shape[i])) return {};
  }
  return shape.substr(0, colon);
}

/// Collapse every numeric literal (hex "0x..." or decimal run) to '#': the
/// numbers are the per-session diversified values, exactly what must NOT
/// distinguish two incidents of the same campaign.
std::string collapse_numbers(const std::string& text) {
  std::string shape;
  shape.reserve(text.size());
  for (std::size_t i = 0; i < text.size();) {
    const char c = text[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (c == '0' && i + 1 < text.size() && (text[i + 1] == 'x' || text[i + 1] == 'X')) {
        i += 2;
        while (i < text.size() && std::isxdigit(static_cast<unsigned char>(text[i]))) ++i;
      } else {
        while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      shape += '#';
      continue;
    }
    shape += c;
    ++i;
  }
  return shape;
}

}  // namespace

std::string_view to_string(AlarmKind kind) noexcept {
  switch (kind) {
    case AlarmKind::kSyscallMismatch: return "syscall-mismatch";
    case AlarmKind::kArgumentMismatch: return "argument-mismatch";
    case AlarmKind::kUidCheckFailed: return "uid-check-failed";
    case AlarmKind::kConditionMismatch: return "condition-mismatch";
    case AlarmKind::kMemoryFault: return "memory-fault";
    case AlarmKind::kTagFault: return "tag-fault";
    case AlarmKind::kExitDivergence: return "exit-divergence";
    case AlarmKind::kRendezvousTimeout: return "rendezvous-timeout";
    case AlarmKind::kGuestError: return "guest-error";
  }
  return "alarm?";
}

std::string Alarm::describe() const {
  std::string out{to_string(kind)};
  if (variant != kAllVariants) {
    out += " (variant ";
    out += std::to_string(variant);
    out += ")";
  }
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

AlarmSignature signature_of(const Alarm& alarm) {
  AlarmSignature signature;
  signature.kind = alarm.kind;
  signature.shape = collapse_numbers(alarm.detail);
  signature.syscall = leading_syscall(signature.shape);
  return signature;
}

std::string AlarmSignature::key() const {
  std::string out{to_string(kind)};
  out += '|';
  out += syscall;
  out += '|';
  out += shape;
  return out;
}

std::string AlarmSignature::describe() const {
  std::string out{to_string(kind)};
  if (!syscall.empty()) {
    out += " via ";
    out += syscall;
  }
  if (!shape.empty()) {
    out += " [";
    out += shape;
    out += "]";
  }
  return out;
}

}  // namespace nv::core

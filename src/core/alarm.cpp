#include "core/alarm.h"

namespace nv::core {

std::string_view to_string(AlarmKind kind) noexcept {
  switch (kind) {
    case AlarmKind::kSyscallMismatch: return "syscall-mismatch";
    case AlarmKind::kArgumentMismatch: return "argument-mismatch";
    case AlarmKind::kUidCheckFailed: return "uid-check-failed";
    case AlarmKind::kConditionMismatch: return "condition-mismatch";
    case AlarmKind::kMemoryFault: return "memory-fault";
    case AlarmKind::kTagFault: return "tag-fault";
    case AlarmKind::kExitDivergence: return "exit-divergence";
    case AlarmKind::kRendezvousTimeout: return "rendezvous-timeout";
    case AlarmKind::kGuestError: return "guest-error";
  }
  return "alarm?";
}

std::string Alarm::describe() const {
  std::string out{to_string(kind)};
  if (variant != kAllVariants) {
    out += " (variant ";
    out += std::to_string(variant);
    out += ")";
  }
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

}  // namespace nv::core

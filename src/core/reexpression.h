// Data reexpression functions (§2 of the paper).
//
// A variation assigns each variant i a reexpression function R_i over some
// target type T. Security rests on two checkable properties:
//
//   inverse:        ∀x. R⁻¹ᵢ(Rᵢ(x)) = x                      (§2.2 property 3)
//   disjointedness: ∀x. R⁻¹₀(x) ≠ R⁻¹₁(x)                    (§2.3)
//
// This header provides the interface, the concrete families used by Table 1,
// and property verifiers (exhaustive for small domains, corner-plus-random
// sampling otherwise).
#ifndef NV_CORE_REEXPRESSION_H
#define NV_CORE_REEXPRESSION_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "vkernel/types.h"

namespace nv::core {

template <typename T>
class Reexpression {
 public:
  virtual ~Reexpression() = default;
  /// R_i: canonical -> variant representation.
  [[nodiscard]] virtual T reexpress(T value) const = 0;
  /// R⁻¹_i: variant representation -> canonical.
  [[nodiscard]] virtual T invert(T value) const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

template <typename T>
using ReexpressionPtr = std::shared_ptr<const Reexpression<T>>;

/// The process-wide identity UID coder. Identity is stateless and immutable,
/// so every VariantConfig shares one instance instead of allocating its own.
[[nodiscard]] ReexpressionPtr<os::uid_t> identity_uid_coder();

/// The process-wide identity port coder (network diversity's moral twin of
/// identity_uid_coder: ports are 16-bit "program constants" in guest code).
[[nodiscard]] ReexpressionPtr<std::uint16_t> identity_port_coder();

/// R(x) = x. Variant 0 in every variation of Table 1.
template <typename T>
class Identity final : public Reexpression<T> {
 public:
  [[nodiscard]] T reexpress(T value) const override { return value; }
  [[nodiscard]] T invert(T value) const override { return value; }
  [[nodiscard]] std::string describe() const override { return "R(x) = x"; }
};

/// R(u) = u XOR mask. The paper's UID variation uses mask 0x7FFFFFFF for
/// variant 1 (§3.2): self-inverse, and disjoint from identity whenever
/// mask != 0.
class XorMask final : public Reexpression<os::uid_t> {
 public:
  explicit XorMask(os::uid_t mask) : mask_(mask) {}
  [[nodiscard]] os::uid_t reexpress(os::uid_t value) const override { return value ^ mask_; }
  [[nodiscard]] os::uid_t invert(os::uid_t value) const override { return value ^ mask_; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] os::uid_t mask() const noexcept { return mask_; }

 private:
  os::uid_t mask_;
};

/// R(a) = a + offset (mod 2^64). Address-space partitioning uses
/// offset 0x80000000 (Table 1 row 1); the extended variant adds a per-variant
/// extra offset (row 2).
class AddressOffset final : public Reexpression<std::uint64_t> {
 public:
  explicit AddressOffset(std::uint64_t offset) : offset_(offset) {}
  [[nodiscard]] std::uint64_t reexpress(std::uint64_t value) const override {
    return value + offset_;
  }
  [[nodiscard]] std::uint64_t invert(std::uint64_t value) const override {
    return value - offset_;
  }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::uint64_t offset_;
};

/// R(inst) = tag || inst over encoded instruction units (Table 1 row 3).
/// invert() checks and strips the tag; a wrong tag throws — which is exactly
/// the target interpreter's trap behaviour.
class InstructionTag final : public Reexpression<std::vector<std::uint8_t>> {
 public:
  explicit InstructionTag(std::uint8_t tag) : tag_(tag) {}
  [[nodiscard]] std::vector<std::uint8_t> reexpress(std::vector<std::uint8_t> value) const override;
  [[nodiscard]] std::vector<std::uint8_t> invert(std::vector<std::uint8_t> value) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::uint8_t tag() const noexcept { return tag_; }

 private:
  std::uint8_t tag_;
};

// ---------------------------------------------------------------------------
// Property verification

/// Structured corner values plus `random_count` seeded random samples.
[[nodiscard]] std::vector<os::uid_t> uid_property_samples(std::size_t random_count,
                                                          std::uint64_t seed = 42);
[[nodiscard]] std::vector<std::uint64_t> address_property_samples(std::size_t random_count,
                                                                  std::uint64_t seed = 42);

/// ∀ sample x: R⁻¹(R(x)) == x.
template <typename T>
[[nodiscard]] bool verify_inverse(const Reexpression<T>& r, const std::vector<T>& samples) {
  for (const T& x : samples) {
    if (r.invert(r.reexpress(x)) != x) return false;
  }
  return true;
}

/// Samples x where R⁻¹₀(x) == R⁻¹₁(x), i.e. disjointedness violations. Empty
/// means the property held on every sample.
template <typename T>
[[nodiscard]] std::vector<T> disjointedness_violations(const Reexpression<T>& r0,
                                                       const Reexpression<T>& r1,
                                                       const std::vector<T>& samples) {
  std::vector<T> violations;
  for (const T& x : samples) {
    if (r0.invert(x) == r1.invert(x)) violations.push_back(x);
  }
  return violations;
}

/// Exhaustive disjointedness check for XOR-mask pairs over the full 32-bit
/// domain is unnecessary: R⁻¹₀(x) == R⁻¹₁(x) iff the masks are equal. This
/// helper states the closed-form result (used by tests to cross-check the
/// sampling verifier).
[[nodiscard]] bool xor_masks_disjoint(os::uid_t mask0, os::uid_t mask1) noexcept;

}  // namespace nv::core

#endif  // NV_CORE_REEXPRESSION_H

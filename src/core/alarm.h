// Divergence alarms raised by the monitor (§2's detection property made
// concrete).
#ifndef NV_CORE_ALARM_H
#define NV_CORE_ALARM_H

#include <string>
#include <string_view>

namespace nv::core {

enum class AlarmKind {
  kSyscallMismatch,    // variants issued different syscalls
  kArgumentMismatch,   // same syscall, different canonicalized arguments
  kUidCheckFailed,     // uid_value / cc_* detected inconsistent UID meanings
  kConditionMismatch,  // cond_chk saw variants on different control paths
  kMemoryFault,        // simulated SIGSEGV in one variant
  kTagFault,           // instruction tag violation in one variant
  kExitDivergence,     // one variant exited while others continued
  kRendezvousTimeout,  // a variant stopped arriving at syscall rendezvous
  kGuestError,         // unexpected guest exception
};

[[nodiscard]] std::string_view to_string(AlarmKind kind) noexcept;

struct Alarm {
  AlarmKind kind = AlarmKind::kGuestError;
  /// Variant that triggered the alarm, or kAllVariants for cross-variant
  /// comparisons where no single variant is "the" trigger.
  unsigned variant = kAllVariants;
  std::string detail;

  static constexpr unsigned kAllVariants = ~0U;

  [[nodiscard]] std::string describe() const;
};

}  // namespace nv::core

#endif  // NV_CORE_ALARM_H

// Divergence alarms raised by the monitor (§2's detection property made
// concrete).
#ifndef NV_CORE_ALARM_H
#define NV_CORE_ALARM_H

#include <string>
#include <string_view>

namespace nv::core {

enum class AlarmKind {
  kSyscallMismatch,    // variants issued different syscalls
  kArgumentMismatch,   // same syscall, different canonicalized arguments
  kUidCheckFailed,     // uid_value / cc_* detected inconsistent UID meanings
  kConditionMismatch,  // cond_chk saw variants on different control paths
  kMemoryFault,        // simulated SIGSEGV in one variant
  kTagFault,           // instruction tag violation in one variant
  kExitDivergence,     // one variant exited while others continued
  kRendezvousTimeout,  // a variant stopped arriving at syscall rendezvous
  kGuestError,         // unexpected guest exception
};

[[nodiscard]] std::string_view to_string(AlarmKind kind) noexcept;

struct Alarm {
  AlarmKind kind = AlarmKind::kGuestError;
  /// Variant that triggered the alarm, or kAllVariants for cross-variant
  /// comparisons where no single variant is "the" trigger.
  unsigned variant = kAllVariants;
  std::string detail;

  static constexpr unsigned kAllVariants = ~0U;

  [[nodiscard]] std::string describe() const;
};

/// Diversity-independent classification of an alarm, the unit of cross-session
/// correlation: the same attack payload hitting two differently-diversified
/// sessions produces different raw values (each session drew its own masks)
/// but the SAME signature — alarm kind, the syscall that tripped the monitor,
/// and the shape of the offending values with every numeric literal collapsed.
/// The variant index is deliberately excluded: which variant's reexpression
/// broke first is itself a function of the per-session diversity draw.
struct AlarmSignature {
  AlarmKind kind = AlarmKind::kGuestError;
  /// The monitor prefixes comparison alarms with "<syscall>: ..."; empty when
  /// the detail carries no syscall attribution (guest errors, faults).
  std::string syscall;
  /// Alarm detail with numeric literals (hex and decimal) replaced by '#'.
  std::string shape;

  [[nodiscard]] bool operator==(const AlarmSignature&) const = default;
  /// Stable map key: "<kind>|<syscall>|<shape>".
  [[nodiscard]] std::string key() const;
  [[nodiscard]] std::string describe() const;
};

/// Derive the correlation signature from one alarm.
[[nodiscard]] AlarmSignature signature_of(const Alarm& alarm);

}  // namespace nv::core

#endif  // NV_CORE_ALARM_H

// The execution monitor: receives divergence alarms and records comparison
// statistics. Any alarm is treated as an attack (the paper replaces data
// diversity's majority vote with "any divergence is a security violation").
#ifndef NV_CORE_MONITOR_H
#define NV_CORE_MONITOR_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/alarm.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nv::core {

class Monitor {
 public:
  using AlarmCallback = std::function<void(const Alarm&)>;

  /// Record an alarm; the first one wins as the attack verdict. Thread-safe.
  void raise(Alarm alarm);

  [[nodiscard]] bool triggered() const;
  [[nodiscard]] std::optional<Alarm> first_alarm() const;
  [[nodiscard]] std::vector<Alarm> alarms() const;

  /// Called (outside the lock) for every alarm raised.
  void set_alarm_callback(AlarmCallback callback);

  // Statistics for the overhead experiments.
  void note_syscall_checked() noexcept { syscalls_checked_.fetch_add(1, std::memory_order_relaxed); }
  void note_detection_check() noexcept { detection_checks_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t syscalls_checked() const noexcept {
    return syscalls_checked_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t detection_checks() const noexcept {
    return detection_checks_.load(std::memory_order_relaxed);
  }

  void reset();

 private:
  mutable util::Mutex mutex_;
  std::vector<Alarm> alarms_ NV_GUARDED_BY(mutex_);
  AlarmCallback callback_ NV_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> syscalls_checked_{0};
  std::atomic<std::uint64_t> detection_checks_{0};
};

}  // namespace nv::core

#endif  // NV_CORE_MONITOR_H

// Executable version of the paper's interpreters model (§2, Figure 2).
//
// An application is a stack of interpreters; a data-diversity variation
// inserts R_i between the application interpreter and the target interpreter,
// and R⁻¹_i immediately before the target interpreter. This class models the
// two data paths the security argument distinguishes:
//
//   trusted path:   datum d is reexpressed at build/load time, so variant i
//                   stores R_i(d) and the target interpreter sees
//                   R⁻¹_i(R_i(d)) = d in both variants → no divergence.
//   injected path:  the attacker's value x enters both variants VERBATIM
//                   (both variants receive the same input bytes), so the
//                   target interpreters see R⁻¹_0(x) vs R⁻¹_1(x), which the
//                   disjointedness property forces to differ → detected.
//
// partial_overwrite models byte/bit-granular corruption (§2.3, §3.2): the
// attacker replaces only the masked bits of the *stored representation* in
// both variants with the same bits.
#ifndef NV_CORE_INTERPRETER_MODEL_H
#define NV_CORE_INTERPRETER_MODEL_H

#include <string>
#include <vector>

#include "core/reexpression.h"

namespace nv::core {

template <typename T>
struct FlowOutcome {
  T canonical0{};
  T canonical1{};
  [[nodiscard]] bool diverged() const { return !(canonical0 == canonical1); }
};

/// Two-variant data flow through one reexpression boundary.
template <typename T>
class TwoVariantDataFlow {
 public:
  TwoVariantDataFlow(ReexpressionPtr<T> r0, ReexpressionPtr<T> r1)
      : r0_(std::move(r0)), r1_(std::move(r1)) {}

  /// Normal-equivalence path: trusted datum, reexpressed per variant.
  [[nodiscard]] FlowOutcome<T> trusted_flow(const T& datum) const {
    return FlowOutcome<T>{r0_->invert(r0_->reexpress(datum)), r1_->invert(r1_->reexpress(datum))};
  }

  /// Detection path: identical injected value reaches both target
  /// interpreters. diverged() == true means the monitor catches it.
  [[nodiscard]] FlowOutcome<T> injected_flow(const T& injected) const {
    return FlowOutcome<T>{r0_->invert(injected), r1_->invert(injected)};
  }

  [[nodiscard]] const Reexpression<T>& r0() const { return *r0_; }
  [[nodiscard]] const Reexpression<T>& r1() const { return *r1_; }

 private:
  ReexpressionPtr<T> r0_;
  ReexpressionPtr<T> r1_;
};

/// Integer-domain partial overwrite: the attacker replaces the bits selected
/// by `mask` in each variant's *stored* representation of `original` with the
/// corresponding bits of `value` (same value in both variants — the shared
/// input channel). Returns the canonical values each target interpreter then
/// sees. Detection requires canonical0 != canonical1.
[[nodiscard]] FlowOutcome<os::uid_t> partial_overwrite(const Reexpression<os::uid_t>& r0,
                                                       const Reexpression<os::uid_t>& r1,
                                                       os::uid_t original, os::uid_t value,
                                                       os::uid_t mask);

/// Human-readable trace of an injected-flow check, used by examples.
[[nodiscard]] std::string explain_injection(const Reexpression<os::uid_t>& r0,
                                            const Reexpression<os::uid_t>& r1, os::uid_t injected);

}  // namespace nv::core

#endif  // NV_CORE_INTERPRETER_MODEL_H

// The Variation interface: one implementation per Table 1 row.
//
// A variation plugs into the N-variant system at three points:
//   1. variant construction  — configure_variant() assigns per-variant
//      parameters (memory base, instruction tag, UID coder); this models the
//      program transformation that builds P_i from P.
//   2. trusted external data — prepare_filesystem() generates per-variant
//      copies of trusted files (unshared files, §3.4).
//   3. syscall boundary      — canonicalize_args() applies R⁻¹_i to syscall
//      arguments before the monitor compares them and before the real kernel
//      executes; reexpress_result() applies R_i to trusted kernel outputs
//      (§3.5).
#ifndef NV_CORE_VARIATION_H
#define NV_CORE_VARIATION_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/reexpression.h"
#include "vfs/filesystem.h"
#include "vkernel/syscalls.h"

namespace nv::core {

/// Per-variant parameters produced by the variations at system construction.
/// This is the moral equivalent of "compile P with transformation R_i".
struct VariantConfig {
  unsigned index = 0;
  /// Where this variant's data segment lives (address partitioning moves it).
  std::uint64_t memory_base = 0x10000000;
  std::uint64_t memory_size = 1 << 20;
  /// Expected instruction tag for the VM (instruction tagging sets it).
  std::uint8_t code_tag = 0;
  /// Reverse-stack extension (Franz [20]): guests that maintain a simulated
  /// stack grow it downward when false, upward when true.
  bool reverse_stack = false;
  /// UID reexpression for "program constants" in guest code (identity unless
  /// the UID variation is installed). Never null.
  ReexpressionPtr<os::uid_t> uid_coder = std::make_shared<Identity<os::uid_t>>();
};

class Variation {
 public:
  virtual ~Variation() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Adjust the variant's construction parameters (index is pre-filled).
  virtual void configure_variant(VariantConfig& config) const { (void)config; }

  /// Create per-variant copies of trusted files. Called once before launch.
  virtual void prepare_filesystem(vfs::FileSystem& fs, unsigned n_variants) const {
    (void)fs;
    (void)n_variants;
  }

  /// Paths the kernel must treat as unshared (open redirects to path-<i>).
  [[nodiscard]] virtual std::vector<std::string> unshared_paths() const { return {}; }

  /// Apply R⁻¹_i to the UID-carrying arguments of `args` (in place).
  virtual void canonicalize_args(unsigned variant, vkernel::SyscallArgs& args) const {
    (void)variant;
    (void)args;
  }

  /// Apply R_i to UID-carrying results (in place). `canonical` is the
  /// already-canonicalized invocation, for syscall identification.
  virtual void reexpress_result(unsigned variant, const vkernel::SyscallArgs& canonical,
                                vkernel::SyscallResult& result) const {
    (void)variant;
    (void)canonical;
    (void)result;
  }
};

using VariationPtr = std::shared_ptr<const Variation>;

}  // namespace nv::core

#endif  // NV_CORE_VARIATION_H

// The Variation interface: one implementation per Table 1 row.
//
// A variation plugs into the N-variant system at three points:
//   1. variant construction  — configure_variant() assigns per-variant
//      parameters (memory base, instruction tag, UID coder); this models the
//      program transformation that builds P_i from P.
//   2. trusted external data — prepare_filesystem() generates per-variant
//      copies of trusted files (unshared files, §3.4).
//   3. syscall boundary      — canonicalize_args() applies R⁻¹_i to syscall
//      arguments before the monitor compares them and before the real kernel
//      executes; reexpress_result() applies R_i to trusted kernel outputs
//      (§3.5).
//
// Point 3 is table-driven: the vkernel syscall descriptor table assigns a
// semantic role (uid-carrying, fd, path, ...) to every argument slot, and a
// variation registers a RoleTransform per role via role_transform(). The
// default canonicalize_args()/reexpress_result() walk the descriptor and
// apply the registered transforms, so a new data variation never pattern
// matches raw SyscallArgs. Overriding the two boundary hooks directly remains
// possible for variations that need non-slot-local behaviour.
#ifndef NV_CORE_VARIATION_H
#define NV_CORE_VARIATION_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/reexpression.h"
#include "vfs/filesystem.h"
#include "vkernel/syscall_descriptors.h"
#include "vkernel/syscalls.h"

namespace nv::core {

/// Per-variant parameters produced by the variations at system construction.
/// This is the moral equivalent of "compile P with transformation R_i".
struct VariantConfig {
  unsigned index = 0;
  /// Where this variant's data segment lives (address partitioning moves it).
  std::uint64_t memory_base = 0x10000000;
  std::uint64_t memory_size = 1 << 20;
  /// Expected instruction tag for the VM (instruction tagging sets it).
  std::uint8_t code_tag = 0;
  /// Reverse-stack extension (Franz [20]): guests that maintain a simulated
  /// stack grow it downward when false, upward when true.
  bool reverse_stack = false;
  /// UID reexpression for "program constants" in guest code (identity unless
  /// the UID variation is installed). Never null; the identity default is a
  /// shared immutable singleton.
  ReexpressionPtr<os::uid_t> uid_coder = identity_uid_coder();
  /// Port reexpression for network-endpoint constants in guest code (identity
  /// unless a network variation such as port-hopping is installed). Applied
  /// by GuestContext::bind() — the transformed program P_i embeds its listen
  /// port reexpressed, and the monitor's kPort canonicalization inverts it.
  /// Never null; the identity default is a shared immutable singleton.
  ReexpressionPtr<std::uint16_t> port_coder = identity_port_coder();
};

/// R_i over one 64-bit argument slot, selected by descriptor role.
struct RoleTransform {
  std::function<std::uint64_t(std::uint64_t)> invert;     // R⁻¹_i: variant -> canonical
  std::function<std::uint64_t(std::uint64_t)> reexpress;  // R_i: canonical -> variant
};

class Variation {
 public:
  virtual ~Variation() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Adjust the variant's construction parameters (index is pre-filled).
  virtual void configure_variant(VariantConfig& config) const { (void)config; }

  /// Create per-variant copies of trusted files. Called once before launch.
  virtual void prepare_filesystem(vfs::FileSystem& fs, unsigned n_variants) const {
    (void)fs;
    (void)n_variants;
  }

  /// Paths the kernel must treat as unshared (open redirects to path-<i>).
  [[nodiscard]] virtual std::vector<std::string> unshared_paths() const { return {}; }

  /// The reexpression this variation applies to argument slots carrying
  /// `role` in variant `variant`, or nullopt when the role is untouched.
  /// Data variations implement ONLY this; the boundary plumbing is generic.
  [[nodiscard]] virtual std::optional<RoleTransform> role_transform(vkernel::ArgRole role,
                                                                    unsigned variant) const {
    (void)role;
    (void)variant;
    return std::nullopt;
  }

  /// Apply R⁻¹_i to `args` in place. Default: descriptor-table walk applying
  /// role_transform(...)->invert to every role-carrying int slot.
  virtual void canonicalize_args(unsigned variant, vkernel::SyscallArgs& args) const;

  /// Apply R_i to trusted results in place. `canonical` is the
  /// already-canonicalized invocation, for syscall identification. Default:
  /// applies role_transform(...)->reexpress when the descriptor marks the
  /// result value as role-carrying and the call succeeded.
  virtual void reexpress_result(unsigned variant, const vkernel::SyscallArgs& canonical,
                                vkernel::SyscallResult& result) const;

  /// Entropy of this variation's re-expression keyspace, in bits: log2 of the
  /// number of DISTINCT parameterizations a fleet can stamp out for an
  /// N-variant session (the space a probing attacker must guess through, and
  /// the space SessionFactory's uniqueness-per-lifetime burns down — its
  /// draw_params() policy realizes exactly this space per builtin). Zero for
  /// variations with no drawn parameters (e.g. stack reversal: the layout
  /// flip is deterministic), which compose as a single-key space. Estimates
  /// compose additively across a DiversitySuite because the factory draws
  /// each variation's parameters independently.
  [[nodiscard]] virtual double keyspace_bits(unsigned n_variants) const {
    (void)n_variants;
    return 0.0;
  }

  /// The ATTACKER-OBSERVABLE identity of this parameterization, or nullopt
  /// when the drawn parameters themselves are the observable identity (the
  /// common case: a uid-xor mask or partitioning stride IS the layout the
  /// attacker probes). Variations whose drawn parameters are a SEED that maps
  /// onto a smaller derived space (extended-address-partitioning: 64-bit seed
  /// -> page-aligned offset vector) override this to return the derived
  /// layout, so SessionFactory's keyspace ledger counts distinct OBSERVABLE
  /// layouts rather than distinct seeds and keys_remaining stays strictly
  /// honest — two seeds colliding onto one layout are one key, not two.
  /// Must be consistent with keyspace_bits(): 2^bits distinct observable keys.
  [[nodiscard]] virtual std::optional<std::string> observable_key(unsigned n_variants) const {
    (void)n_variants;
    return std::nullopt;
  }

  /// Pairwise disjointedness evidence (§2.3) for variants `vi` and `vj`:
  /// a human-readable violation description, or nullopt when R_vi and R_vj
  /// are disjoint on the sampled domain — or when the variation carries no
  /// value-domain reexpression to check (e.g. probabilistic layout
  /// variations like stack reversal).
  [[nodiscard]] virtual std::optional<std::string> disjointedness_violation(unsigned vi,
                                                                            unsigned vj) const {
    (void)vi;
    (void)vj;
    return std::nullopt;
  }
};

using VariationPtr = std::shared_ptr<const Variation>;

}  // namespace nv::core

#endif  // NV_CORE_VARIATION_H

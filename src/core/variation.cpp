#include "core/variation.h"

namespace nv::core {

using vkernel::ArgRole;
using vkernel::SyscallDescriptor;

void Variation::canonicalize_args(unsigned variant, vkernel::SyscallArgs& args) const {
  const SyscallDescriptor& desc = vkernel::descriptor(args.no);
  // Query role_transform once per distinct role, not per slot: this runs on
  // every rendezvous, and slots sharing a role are contiguous in practice
  // (setresuid, setgroups), so a one-entry cache removes the repeated
  // std::function construction from the hot path.
  ArgRole cached_role = ArgRole::kNone;
  std::optional<RoleTransform> cached;
  for (std::size_t i = 0; i < args.ints.size(); ++i) {
    const ArgRole role = desc.int_role(i);
    if (role == ArgRole::kNone) continue;
    if (role != cached_role) {
      cached = role_transform(role, variant);
      cached_role = role;
    }
    if (cached) args.ints[i] = cached->invert(args.ints[i]);
  }
}

void Variation::reexpress_result(unsigned variant, const vkernel::SyscallArgs& canonical,
                                 vkernel::SyscallResult& result) const {
  if (!result.ok()) return;
  const SyscallDescriptor& desc = vkernel::descriptor(canonical.no);
  if (desc.result_role == ArgRole::kNone) return;
  if (const auto transform = role_transform(desc.result_role, variant)) {
    result.value = transform->reexpress(result.value);
  }
}

}  // namespace nv::core

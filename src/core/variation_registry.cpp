#include "core/variation_registry.h"

#include <algorithm>

namespace nv::core {

template <typename T>
util::Expected<T, std::string> VariationParams::get(const std::string& key, T fallback,
                                                    std::string_view type_name) const {
  consumed_.push_back(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (const T* value = std::get_if<T>(&it->second)) return *value;
  return util::Unexpected{"parameter \"" + key + "\" must be a " + std::string(type_name)};
}

util::Expected<std::uint64_t, std::string> VariationParams::get_u64(const std::string& key,
                                                                    std::uint64_t fallback) const {
  return get<std::uint64_t>(key, fallback, "u64");
}

util::Expected<bool, std::string> VariationParams::get_bool(const std::string& key,
                                                            bool fallback) const {
  return get<bool>(key, fallback, "bool");
}

util::Expected<std::string, std::string> VariationParams::get_string(const std::string& key,
                                                                     std::string fallback) const {
  return get<std::string>(key, std::move(fallback), "string");
}

util::Expected<std::vector<std::string>, std::string> VariationParams::get_strings(
    const std::string& key, std::vector<std::string> fallback) const {
  return get<std::vector<std::string>>(key, std::move(fallback), "string list");
}

std::vector<std::string> VariationParams::unconsumed() const {
  std::vector<std::string> leftover;
  for (const auto& [key, value] : values_) {
    if (std::find(consumed_.begin(), consumed_.end(), key) == consumed_.end()) {
      leftover.push_back(key);
    }
  }
  return leftover;
}

void VariationRegistry::add(std::string name, std::string description, Factory factory,
                            std::vector<std::string> aliases) {
  // Replacing a name (shadowing a builtin) must also retire its old aliases:
  // an alias left pointing at the replaced factory would make two names
  // documented as equivalent construct different variations.
  std::erase_if(entries_,
                [&name](const auto& entry) { return entry.second.alias_of == name; });
  for (auto& alias : aliases) {
    entries_[std::move(alias)] = Entry{description, factory, name};
  }
  entries_[std::move(name)] = Entry{std::move(description), std::move(factory), {}};
}

util::Expected<VariationPtr, std::string> VariationRegistry::make(
    std::string_view name, const VariationParams& params) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& entry_name : names()) {
      if (!known.empty()) known += ", ";
      known += entry_name;
    }
    return util::Unexpected{"unknown variation \"" + std::string(name) +
                            "\" (known: " + known + ")"};
  }
  params.reset_consumption();
  auto result = it->second.factory(params);
  if (!result) return result;
  const auto leftover = params.unconsumed();
  if (!leftover.empty()) {
    return util::Unexpected{"variation \"" + std::string(name) +
                            "\" does not take parameter \"" + leftover.front() + "\""};
  }
  return result;
}

bool VariationRegistry::contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

std::string_view VariationRegistry::description(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? std::string_view{} : std::string_view{it->second.description};
}

std::vector<std::string> VariationRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) {
    if (entry.alias_of.empty()) out.push_back(name);
  }
  return out;  // std::map iteration is already sorted
}

}  // namespace nv::core

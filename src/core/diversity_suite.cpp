#include "core/diversity_suite.h"

namespace nv::core {

util::Expected<DiversitySuite, std::string> DiversitySuite::compose(
    unsigned n_variants, std::vector<VariationPtr> variations) {
  if (n_variants < 2) {
    return util::Unexpected{
        std::string("a diversity suite needs at least 2 variants to compare")};
  }
  for (const auto& variation : variations) {
    if (variation == nullptr) return util::Unexpected{std::string("null variation in suite")};
  }
  for (std::size_t a = 0; a < variations.size(); ++a) {
    for (std::size_t b = a + 1; b < variations.size(); ++b) {
      if (variations[a]->name() == variations[b]->name()) {
        return util::Unexpected{"variation \"" + std::string(variations[a]->name()) +
                                "\" installed twice"};
      }
    }
  }
  // All-pairs §2.3 check: each variation must keep its per-variant
  // reexpressions disjoint across every (R_i, R_j) pair it will instantiate.
  for (const auto& variation : variations) {
    for (unsigned i = 0; i < n_variants; ++i) {
      for (unsigned j = i + 1; j < n_variants; ++j) {
        if (const auto violation = variation->disjointedness_violation(i, j)) {
          return util::Unexpected{"disjointedness violation in \"" +
                                  std::string(variation->name()) + "\": " + *violation};
        }
      }
    }
  }
  return DiversitySuite(n_variants, std::move(variations));
}

DiversitySuite DiversitySuite::identical(unsigned n_variants) {
  return DiversitySuite(n_variants < 2 ? 2 : n_variants, {});
}

double DiversitySuite::keyspace_bits() const {
  double bits = 0.0;
  for (const auto& variation : variations_) bits += variation->keyspace_bits(n_variants_);
  return bits;
}

std::string DiversitySuite::describe() const {
  std::string out;
  if (variations_.empty()) {
    out = "identical";
  } else {
    for (const auto& variation : variations_) {
      if (!out.empty()) out += " + ";
      out += variation->name();
    }
  }
  out += " across " + std::to_string(n_variants_) + " variants";
  return out;
}

}  // namespace nv::core

// Open-ended variation catalog: Table 1 as data, not as code.
//
// The paper frames every diversity technique as a reexpression family R_i
// plugged into the syscall boundary; the registry makes that literal. A
// variation is registered once under a stable name with a factory that takes
// typed parameters, and policy code (config files, experiment sweeps, the
// attack lab) constructs variations by name without linking against their
// concrete types. Unknown names and malformed parameters are expected
// failure paths and come back as Expected errors, not exceptions.
#ifndef NV_CORE_VARIATION_REGISTRY_H
#define NV_CORE_VARIATION_REGISTRY_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/variation.h"
#include "util/expected.h"

namespace nv::core {

/// Typed parameter bag for registry factories. Keys are consumed on access;
/// make() rejects parameter sets with unconsumed (misspelled) keys so a typo
/// like "strde" fails loudly instead of silently using the default.
class VariationParams {
 public:
  using Value = std::variant<std::uint64_t, bool, std::string, std::vector<std::string>>;

  VariationParams() = default;
  VariationParams(std::initializer_list<std::pair<const std::string, Value>> init)
      : values_(init) {}

  VariationParams& set(const std::string& key, Value value) {
    values_[key] = std::move(value);
    return *this;
  }

  [[nodiscard]] bool contains(const std::string& key) const { return values_.contains(key); }

  /// Typed getters: return the parameter (marking it consumed) or `fallback`
  /// when absent. A present key with the wrong alternative reports an error.
  [[nodiscard]] util::Expected<std::uint64_t, std::string> get_u64(const std::string& key,
                                                                   std::uint64_t fallback) const;
  [[nodiscard]] util::Expected<bool, std::string> get_bool(const std::string& key,
                                                           bool fallback) const;
  [[nodiscard]] util::Expected<std::string, std::string> get_string(const std::string& key,
                                                                    std::string fallback) const;
  [[nodiscard]] util::Expected<std::vector<std::string>, std::string> get_strings(
      const std::string& key, std::vector<std::string> fallback) const;

  /// Keys never consumed by any getter — misspellings the factory never read.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

  /// Forget which keys were consumed. make() calls this before invoking a
  /// factory so one params object can be reused across constructions without
  /// stale consumption hiding a misspelled key.
  void reset_consumption() const { consumed_.clear(); }

 private:
  template <typename T>
  [[nodiscard]] util::Expected<T, std::string> get(const std::string& key, T fallback,
                                                   std::string_view type_name) const;

  std::map<std::string, Value> values_;
  mutable std::vector<std::string> consumed_;
};

class VariationRegistry {
 public:
  using Factory =
      std::function<util::Expected<VariationPtr, std::string>(const VariationParams&)>;

  /// Register `factory` under `name` (plus optional aliases). Re-registering
  /// a name replaces the previous entry — tests and downstream deployments
  /// may shadow a builtin.
  void add(std::string name, std::string description, Factory factory,
           std::vector<std::string> aliases = {});

  /// Construct a variation by name. Errors: unknown name (with the known
  /// catalog listed), factory-reported parameter problems, unconsumed keys.
  [[nodiscard]] util::Expected<VariationPtr, std::string> make(
      std::string_view name, const VariationParams& params = {}) const;

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::string_view description(std::string_view name) const;
  /// Primary (non-alias) names, sorted — the printable catalog.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Entry {
    std::string description;
    Factory factory;
    /// Primary name this entry is an alias of; empty for primaries. Lets
    /// add() retire a replaced name's aliases so shadowing a builtin cannot
    /// leave an alias resolving to the old factory.
    std::string alias_of;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace nv::core

#endif  // NV_CORE_VARIATION_REGISTRY_H

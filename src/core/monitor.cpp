#include "core/monitor.h"

#include <atomic>

#include "util/mutex.h"

namespace nv::core {

void Monitor::raise(Alarm alarm) {
  AlarmCallback callback;
  Alarm copy = alarm;
  {
    const util::MutexLock lock(mutex_);
    alarms_.push_back(std::move(alarm));
    callback = callback_;
  }
  if (callback) callback(copy);
}

bool Monitor::triggered() const {
  const util::MutexLock lock(mutex_);
  return !alarms_.empty();
}

std::optional<Alarm> Monitor::first_alarm() const {
  const util::MutexLock lock(mutex_);
  if (alarms_.empty()) return std::nullopt;
  return alarms_.front();
}

std::vector<Alarm> Monitor::alarms() const {
  const util::MutexLock lock(mutex_);
  return alarms_;
}

void Monitor::set_alarm_callback(AlarmCallback callback) {
  const util::MutexLock lock(mutex_);
  callback_ = std::move(callback);
}

void Monitor::reset() {
  const util::MutexLock lock(mutex_);
  alarms_.clear();
  syscalls_checked_.store(0, std::memory_order_relaxed);
  detection_checks_.store(0, std::memory_order_relaxed);
}

}  // namespace nv::core

// A DiversitySuite is the validated composition the paper's §4 sketches:
// several variations applied simultaneously to N variants.
//
// compose() is the build-time gate. For every installed variation it checks
// the §2.3 disjointedness property over EVERY variant pair (i, j), using the
// variation's own sampled verifier — a suite whose reexpression families
// collide anywhere (uid mask exhaustion at large N, equal address offsets,
// instruction-tag wraparound) is rejected before a variant ever launches,
// instead of silently weakening detection at runtime.
#ifndef NV_CORE_DIVERSITY_SUITE_H
#define NV_CORE_DIVERSITY_SUITE_H

#include <string>
#include <vector>

#include "core/variation.h"
#include "util/expected.h"

namespace nv::core {

class DiversitySuite {
 public:
  /// Validate and build a suite for `n_variants`. Errors (expected failure
  /// paths): n_variants < 2, null or duplicate variations, and any pairwise
  /// disjointedness violation, with the offending pair named.
  [[nodiscard]] static util::Expected<DiversitySuite, std::string> compose(
      unsigned n_variants, std::vector<VariationPtr> variations);

  /// An empty-but-valid suite: N identical variants, redundancy alone
  /// (the paper's configuration 2 baseline).
  [[nodiscard]] static DiversitySuite identical(unsigned n_variants);

  [[nodiscard]] unsigned n_variants() const noexcept { return n_variants_; }
  [[nodiscard]] const std::vector<VariationPtr>& variations() const noexcept {
    return variations_;
  }

  /// Composed per-session fingerprint entropy, in bits: the sum of every
  /// installed variation's keyspace_bits(n_variants()). Independent draws
  /// multiply their keyspaces, so bits add; an empty (identical) suite is a
  /// single-key space (0 bits).
  [[nodiscard]] double keyspace_bits() const;

  /// "uid-xor + address-partitioning across 3 variants" — for logs/reports.
  [[nodiscard]] std::string describe() const;

 private:
  DiversitySuite(unsigned n_variants, std::vector<VariationPtr> variations)
      : n_variants_(n_variants), variations_(std::move(variations)) {}

  unsigned n_variants_;
  std::vector<VariationPtr> variations_;
};

}  // namespace nv::core

#endif  // NV_CORE_DIVERSITY_SUITE_H

#include "core/interpreter_model.h"

#include "util/strings.h"

namespace nv::core {

FlowOutcome<os::uid_t> partial_overwrite(const Reexpression<os::uid_t>& r0,
                                         const Reexpression<os::uid_t>& r1, os::uid_t original,
                                         os::uid_t value, os::uid_t mask) {
  const os::uid_t stored0 = r0.reexpress(original);
  const os::uid_t stored1 = r1.reexpress(original);
  const os::uid_t corrupted0 = (stored0 & ~mask) | (value & mask);
  const os::uid_t corrupted1 = (stored1 & ~mask) | (value & mask);
  return FlowOutcome<os::uid_t>{r0.invert(corrupted0), r1.invert(corrupted1)};
}

std::string explain_injection(const Reexpression<os::uid_t>& r0,
                              const Reexpression<os::uid_t>& r1, os::uid_t injected) {
  const os::uid_t c0 = r0.invert(injected);
  const os::uid_t c1 = r1.invert(injected);
  std::string out;
  out += "attacker injects " + util::hex32(injected) + " into both variants\n";
  out += "  variant 0 target interpreter sees R0^-1 = " + util::hex32(c0) + "\n";
  out += "  variant 1 target interpreter sees R1^-1 = " + util::hex32(c1) + "\n";
  out += c0 != c1 ? "  => divergence: ATTACK DETECTED\n"
                  : "  => identical canonical values: attack NOT detected\n";
  return out;
}

}  // namespace nv::core

#include "core/reexpression.h"

#include <stdexcept>

#include "util/strings.h"

namespace nv::core {

ReexpressionPtr<os::uid_t> identity_uid_coder() {
  static const ReexpressionPtr<os::uid_t> instance = std::make_shared<Identity<os::uid_t>>();
  return instance;
}

ReexpressionPtr<std::uint16_t> identity_port_coder() {
  static const ReexpressionPtr<std::uint16_t> instance =
      std::make_shared<Identity<std::uint16_t>>();
  return instance;
}

std::string XorMask::describe() const {
  return "R(u) = u XOR " + util::hex32(mask_);
}

std::string AddressOffset::describe() const {
  return util::format("R(a) = a + 0x%llx", static_cast<unsigned long long>(offset_));
}

std::vector<std::uint8_t> InstructionTag::reexpress(std::vector<std::uint8_t> value) const {
  value.insert(value.begin(), tag_);
  return value;
}

std::vector<std::uint8_t> InstructionTag::invert(std::vector<std::uint8_t> value) const {
  if (value.empty() || value.front() != tag_) {
    throw std::runtime_error("instruction tag violation");
  }
  value.erase(value.begin());
  return value;
}

std::string InstructionTag::describe() const {
  return util::format("R(inst) = 0x%02x || inst", tag_);
}

std::vector<os::uid_t> uid_property_samples(std::size_t random_count, std::uint64_t seed) {
  std::vector<os::uid_t> samples = {
      0,           // root: the value attacks care about most
      1,           2,          99,        100,       500,
      1000,        1001,       32767,     32768,     65534,  // nobody
      65535,       0x7FFFFFFE, 0x7FFFFFFF, 0x80000000,
      0xFFFFFFFE,  os::kInvalidUid,
  };
  util::Rng rng{seed};
  for (std::size_t i = 0; i < random_count; ++i) samples.push_back(rng.next_u32());
  return samples;
}

std::vector<std::uint64_t> address_property_samples(std::size_t random_count,
                                                    std::uint64_t seed) {
  std::vector<std::uint64_t> samples = {
      0,          0x1000,     0x08048000,  // classic ELF text base
      0x7FFFFFFF, 0x80000000, 0xBFFFF000,  // stack-ish
      0xC0000000, 0xFFFFFFFF,
  };
  util::Rng rng{seed};
  for (std::size_t i = 0; i < random_count; ++i) samples.push_back(rng.next_u64() & 0xFFFFFFFF);
  return samples;
}

bool xor_masks_disjoint(os::uid_t mask0, os::uid_t mask1) noexcept {
  // R⁻¹_i(x) = x ^ mask_i, so R⁻¹_0(x) == R⁻¹_1(x) iff mask0 == mask1 —
  // disjointedness holds exactly when the masks differ.
  return mask0 != mask1;
}

}  // namespace nv::core

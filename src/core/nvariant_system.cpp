#include "core/nvariant_system.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"
#include "vfs/path.h"
#include "vkernel/syscall_descriptors.h"
#include "vkernel/vm.h"

namespace nv::core {

using vkernel::ArgRole;
using vkernel::ExecPolicy;
using vkernel::MismatchKind;
using vkernel::Sys;
using vkernel::SysClass;
using vkernel::SyscallArgs;
using vkernel::SyscallResult;

namespace {

SyscallResult errno_result(os::Errno e) {
  SyscallResult r;
  r.err = e;
  r.value = static_cast<std::uint64_t>(-1);
  return r;
}

AlarmKind alarm_kind_for(MismatchKind mismatch) {
  switch (mismatch) {
    case MismatchKind::kUidCheck: return AlarmKind::kUidCheckFailed;
    case MismatchKind::kCondition: return AlarmKind::kConditionMismatch;
    case MismatchKind::kArgument: break;
  }
  return AlarmKind::kArgumentMismatch;
}

}  // namespace

// ---------------------------------------------------------------------------
// Builder

NVariantSystem::Builder& NVariantSystem::Builder::n_variants(unsigned n) {
  options_.n_variants = n;
  n_variants_set_ = true;
  return *this;
}

NVariantSystem::Builder& NVariantSystem::Builder::rendezvous_timeout(
    std::chrono::milliseconds timeout) {
  options_.rendezvous_timeout = timeout;
  return *this;
}

NVariantSystem::Builder& NVariantSystem::Builder::memory_base(std::uint64_t base) {
  options_.default_memory_base = base;
  return *this;
}

NVariantSystem::Builder& NVariantSystem::Builder::memory_size(std::uint64_t size) {
  options_.default_memory_size = size;
  return *this;
}

NVariantSystem::Builder& NVariantSystem::Builder::suite(DiversitySuite suite) {
  suite_ = std::move(suite);
  return *this;
}

NVariantSystem::Builder& NVariantSystem::Builder::variation(VariationPtr variation) {
  pending_variations_.push_back(std::move(variation));
  return *this;
}

NVariantSystem::Builder& NVariantSystem::Builder::unshared(std::string path) {
  unshared_.push_back(std::move(path));
  return *this;
}

NVariantSystem::Builder& NVariantSystem::Builder::pipeline(PipelineMode mode) {
  options_.pipeline = mode;
  return *this;
}

NVariantSystem::Builder& NVariantSystem::Builder::trace(
    std::shared_ptr<obs::TraceRecorder> recorder, std::uint32_t track,
    std::uint64_t parent_span) {
  trace_ = std::move(recorder);
  trace_track_ = track;
  trace_parent_ = parent_span;
  return *this;
}

util::Expected<std::unique_ptr<NVariantSystem>, std::string>
NVariantSystem::Builder::try_build() {
  if (suite_) {
    if (n_variants_set_ && options_.n_variants != suite_->n_variants()) {
      return util::Unexpected{util::format(
          "n_variants(%u) conflicts with the suite's %u variants", options_.n_variants,
          suite_->n_variants())};
    }
    options_.n_variants = suite_->n_variants();
  }
  if (options_.n_variants < 2) {
    return util::Unexpected{util::format(
        "an N-variant system needs at least 2 variants to compare, got %u",
        options_.n_variants)};
  }
  if (options_.rendezvous_timeout <= std::chrono::milliseconds::zero()) {
    return util::Unexpected{std::string("rendezvous timeout must be positive")};
  }
  if (options_.default_memory_size == 0) {
    return util::Unexpected{std::string("variant memory size must be non-zero")};
  }

  // Merge suite variations with any ad-hoc variation() additions, then
  // (re)compose so the §2.3 pairwise validation covers the final set.
  std::vector<VariationPtr> all =
      suite_ ? suite_->variations() : std::vector<VariationPtr>{};
  all.insert(all.end(), pending_variations_.begin(), pending_variations_.end());
  auto composed = DiversitySuite::compose(options_.n_variants, std::move(all));
  if (!composed) return util::Unexpected{composed.error()};

  // make_unique cannot reach the private constructor; Builder (a member) can.
  auto system = std::unique_ptr<NVariantSystem>(new NVariantSystem(options_));
  for (const auto& variation : composed->variations()) {
    system->install_variation(variation);
  }
  for (auto& path : unshared_) system->install_unshared(path);
  if (trace_) system->install_trace(trace_, trace_track_, trace_parent_);
  system->seal();
  return system;
}

std::unique_ptr<NVariantSystem> NVariantSystem::Builder::build() {
  auto system = try_build();
  if (!system) throw std::invalid_argument(system.error());
  return std::move(*system);
}

// ---------------------------------------------------------------------------
// System

/// Guest-facing port bound to one variant: forwards into the rendezvous.
class NVariantSystem::VariantPort final : public vkernel::SyscallPort {
 public:
  VariantPort(NVariantSystem& system, unsigned variant) : system_(system), variant_(variant) {}

  SyscallResult syscall(const SyscallArgs& args) override {
    return system_.variant_syscall(variant_, args);
  }

  std::vector<SyscallResult> syscall_batch(const vkernel::SyscallBatch& batch) override {
    return system_.variant_syscall_batch(variant_, batch);
  }

 private:
  NVariantSystem& system_;
  unsigned variant_;
};

NVariantSystem::NVariantSystem(NVariantOptions options)
    : options_(options), ctx_(fs_, hub_) {
  if (options_.n_variants == 0) throw std::invalid_argument("need at least one variant");
}

NVariantSystem::~NVariantSystem() {
  if (!threads_.empty()) {
    hub_.shutdown();
    if (rendezvous_) {
      rendezvous_->abort(Alarm{AlarmKind::kGuestError, Alarm::kAllVariants, "system destroyed"});
    }
    threads_.clear();  // jthread joins
  }
}

void NVariantSystem::install_variation(VariationPtr variation) {
  if (sealed_) throw std::logic_error("sealed system: variations are fixed at build time");
  for (const auto& path : variation->unshared_paths()) {
    unshared_.insert(vfs::normalize_path(path));
  }
  variations_.push_back(std::move(variation));
}

double NVariantSystem::keyspace_bits() const {
  double bits = 0.0;
  for (const auto& variation : variations_) {
    bits += variation->keyspace_bits(options_.n_variants);
  }
  return bits;
}

void NVariantSystem::install_unshared(std::string path) {
  if (sealed_) throw std::logic_error("sealed system: unshared paths are fixed at build time");
  unshared_.insert(vfs::normalize_path(std::move(path)));
}

void NVariantSystem::install_trace(std::shared_ptr<obs::TraceRecorder> recorder,
                                   std::uint32_t track, std::uint64_t parent_span) {
  if (sealed_) throw std::logic_error("sealed system: tracing is fixed at build time");
  trace_ = std::move(recorder);
  trace_track_ = track;
  trace_parent_ = parent_span;
  // Resolve the per-class latency histograms once, at build time: lead() is
  // the syscall hot path and must not touch the recorder's name map.
  static constexpr std::array<const char*, 6> kClassNames = {
      "per_variant", "input", "output", "open", "detection", "exit"};
  for (std::size_t cls = 0; cls < kClassNames.size(); ++cls) {
    class_histograms_[cls] =
        trace_->histogram(std::string("lead_us.") + kClassNames[cls]);
  }
}

void NVariantSystem::prepare() {
  configs_.clear();
  for (unsigned v = 0; v < options_.n_variants; ++v) {
    VariantConfig config;
    config.index = v;
    config.memory_base = options_.default_memory_base;
    config.memory_size = options_.default_memory_size;
    for (const auto& variation : variations_) variation->configure_variant(config);
    configs_.push_back(std::move(config));
  }
  for (const auto& variation : variations_) {
    variation->prepare_filesystem(fs_, options_.n_variants);
  }
  prepared_ = true;
}

RunReport NVariantSystem::run(const VariantBody& body) {
  launch(body);
  // Wait for every variant thread to finish on its own (normal completion,
  // joint exit, or divergence unwind), then harvest without interrupting.
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  return collect_report();
}

void NVariantSystem::launch(const VariantBody& body) {
  if (!threads_.empty()) throw std::logic_error("system already running");
  prepare();
  monitor_.reset();
  hub_.reset();  // re-arm the network after a previous run's shutdown
  procs_.clear();
  shared_fds_.clear();
  rendezvous_ = std::make_unique<SyscallRendezvous>(options_.n_variants,
                                                    options_.rendezvous_timeout);
  rendezvous_->set_batch_leader(
      [this](const std::vector<vkernel::SyscallBatch>& raw) { return lead_batch(raw); });

  for (unsigned v = 0; v < options_.n_variants; ++v) {
    auto proc = std::make_unique<vkernel::Process>(1, "variant-" + std::to_string(v),
                                                   os::Credentials::root());
    proc->memory().map(configs_[v].memory_base, configs_[v].memory_size);
    proc->memory().set_alloc_base(configs_[v].memory_base);
    procs_.push_back(std::move(proc));
  }

  for (unsigned v = 0; v < options_.n_variants; ++v) {
    threads_.emplace_back([this, v, body] {
      VariantPort port(*this, v);
      try {
        body(v, port, *procs_[v], configs_[v]);
        // Guests end with an exit syscall; if the body returned without one,
        // issue exit(0) so variants that finish together rendezvous cleanly.
        if (!procs_[v]->exited()) {
          SyscallArgs exit_call;
          exit_call.no = Sys::kExit;
          exit_call.ints = {0};
          (void)port.syscall(exit_call);
        }
      } catch (const DivergenceAbort& abort) {
        // The alarm may have been recorded by the leader already (comparison
        // failures) or not at all yet (rendezvous timeout raised on a waiter).
        if (!monitor_.triggered()) monitor_.raise(abort.alarm);
        hub_.shutdown();
      } catch (const vkernel::MemoryFault& fault) {
        Alarm alarm{AlarmKind::kMemoryFault, v, fault.what};
        monitor_.raise(alarm);
        rendezvous_->abort(alarm);
        hub_.shutdown();
      } catch (const vkernel::TagFault& fault) {
        Alarm alarm{AlarmKind::kTagFault, v,
                    util::format("tag 0x%02x expected 0x%02x at 0x%llx", fault.found,
                                 fault.expected, static_cast<unsigned long long>(fault.address))};
        monitor_.raise(alarm);
        rendezvous_->abort(alarm);
        hub_.shutdown();
      } catch (const std::exception& e) {
        Alarm alarm{AlarmKind::kGuestError, v, e.what()};
        monitor_.raise(alarm);
        rendezvous_->abort(alarm);
        hub_.shutdown();
      }
    });
  }
}

RunReport NVariantSystem::stop() {
  hub_.shutdown();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  return collect_report();
}

RunReport NVariantSystem::collect_report() {
  RunReport report;
  report.attack_detected = monitor_.triggered();
  report.alarm = monitor_.first_alarm();
  report.syscall_rounds = rendezvous_ ? rendezvous_->rounds_completed() : 0;
  report.syscall_batches = rendezvous_ ? rendezvous_->batches_completed() : 0;
  report.async_completions = rendezvous_ ? rendezvous_->async_completions() : 0;
  report.completed = true;
  for (const auto& proc : procs_) {
    report.completed = report.completed && proc->exited();
    report.exit_codes.push_back(proc->exited() ? proc->exit_code() : -1);
  }
  if (report.attack_detected) report.completed = false;
  return report;
}

vkernel::SyscallResult NVariantSystem::variant_syscall(unsigned variant, SyscallArgs args) {
  if (options_.pipeline == PipelineMode::kPipelined &&
      vkernel::descriptor(args.no).batch == vkernel::BatchPolicy::kCompletion) {
    return async_syscall(variant, std::move(args));
  }
  return rendezvous_->exchange(variant, std::move(args));
}

std::vector<vkernel::SyscallResult> NVariantSystem::variant_syscall_batch(
    unsigned variant, const vkernel::SyscallBatch& batch) {
  std::vector<SyscallResult> out;
  out.reserve(batch.calls.size());
  const bool pipelined = options_.pipeline == PipelineMode::kPipelined;
  std::size_t i = 0;
  while (i < batch.calls.size()) {
    const auto& desc = vkernel::descriptor(batch.calls[i].no);
    if (pipelined && desc.batch == vkernel::BatchPolicy::kCompletion) {
      out.push_back(async_syscall(variant, batch.calls[i]));
      ++i;
      continue;
    }
    if (!pipelined || desc.batch != vkernel::BatchPolicy::kCoalesce) {
      out.push_back(rendezvous_->exchange(variant, batch.calls[i]));
      ++i;
      continue;
    }
    // Maximal run of same-class coalescible calls -> ONE barrier round.
    // Splitting on the class boundary keeps the per-class trace timing and
    // the leader's per-class policies exact.
    vkernel::SyscallBatch segment;
    const auto cls = desc.cls;
    while (i < batch.calls.size()) {
      const auto& next = vkernel::descriptor(batch.calls[i].no);
      if (next.batch != vkernel::BatchPolicy::kCoalesce || next.cls != cls) break;
      segment.calls.push_back(batch.calls[i]);
      ++i;
    }
    auto segment_results = rendezvous_->exchange_batch(variant, std::move(segment));
    for (auto& result : segment_results) out.push_back(std::move(result));
  }
  return out;
}

vkernel::SyscallResult NVariantSystem::async_syscall(unsigned variant, SyscallArgs args) {
  // R⁻¹ on the issuing thread; the rendezvous compares this canonical form
  // against the published slot (first arriver) or publishes it (claimer).
  for (const auto& variation : variations_) variation->canonicalize_args(variant, args);
  SyscallResult result = rendezvous_->complete_async(
      variant, args, [this](const SyscallArgs& call) {
        monitor_.note_syscall_checked();
        std::vector<SyscallResult> results(options_.n_variants);
        execute_once(call, /*mirror_fd=*/false, results);
        return results[0];
      });
  for (const auto& variation : variations_) {
    variation->reexpress_result(variant, args, result);
  }
  return result;
}

bool NVariantSystem::fd_is_shared(os::fd_t fd) const {
  if (fd < 0 || static_cast<std::size_t>(fd) >= shared_fds_.size()) return true;
  return shared_fds_[static_cast<std::size_t>(fd)];
}

void NVariantSystem::mark_fd(os::fd_t fd, bool shared) {
  if (fd < 0) return;
  if (static_cast<std::size_t>(fd) >= shared_fds_.size()) {
    shared_fds_.resize(static_cast<std::size_t>(fd) + 1, true);
  }
  shared_fds_[static_cast<std::size_t>(fd)] = shared;
}

void NVariantSystem::mirror_fd_into_variants(os::fd_t fd) {
  auto* entry = procs_[0]->fd(fd);
  for (unsigned v = 1; v < options_.n_variants; ++v) procs_[v]->install_fd_at(fd, *entry);
  mark_fd(fd, /*shared=*/true);
}

/// The fd the descriptor routes shared/unshared execution on, if present.
std::optional<os::fd_t> NVariantSystem::routed_fd(const SyscallArgs& call) {
  const auto& desc = vkernel::descriptor(call.no);
  for (std::size_t i = 0; i < call.ints.size(); ++i) {
    if (desc.int_role(i) == ArgRole::kFd) return static_cast<os::fd_t>(call.ints[i]);
  }
  return std::nullopt;
}

bool NVariantSystem::compare_canonical(const std::vector<SyscallArgs>& canonical) {
  monitor_.note_syscall_checked();
  for (unsigned v = 1; v < canonical.size(); ++v) {
    if (canonical[v].no != canonical[0].no) {
      Alarm alarm{AlarmKind::kSyscallMismatch, Alarm::kAllVariants,
                  util::format("variant 0 called %s but variant %u called %s",
                               std::string(sys_name(canonical[0].no)).c_str(), v,
                               std::string(sys_name(canonical[v].no)).c_str())};
      monitor_.raise(alarm);
      rendezvous_->abort(alarm);
      return false;
    }
    if (canonical[v] != canonical[0]) {
      Alarm alarm{alarm_kind_for(vkernel::descriptor(canonical[0].no).mismatch),
                  Alarm::kAllVariants,
                  util::format("%s: canonical arguments diverge between variant 0 and %u (%s vs %s)",
                               std::string(sys_name(canonical[0].no)).c_str(), v,
                               canonical[0].describe().c_str(), canonical[v].describe().c_str())};
      monitor_.raise(alarm);
      rendezvous_->abort(alarm);
      return false;
    }
  }
  return true;
}

void NVariantSystem::execute_per_variant(const std::vector<SyscallArgs>& canonical,
                                         std::vector<SyscallResult>& results) {
  for (unsigned v = 0; v < options_.n_variants; ++v) {
    results[v] = vkernel::execute_syscall(ctx_, *procs_[v], canonical[v]);
  }
}

void NVariantSystem::execute_once(const SyscallArgs& call, bool mirror_fd,
                                  std::vector<SyscallResult>& results) {
  const SyscallResult once = vkernel::execute_syscall(ctx_, *procs_[0], call);
  if (mirror_fd && once.ok()) {
    // The new fd must appear in every variant's table at the same slot, all
    // referring to the same underlying kernel object (§3.1 input replication
    // for accept; identical socket objects for socket()).
    mirror_fd_into_variants(static_cast<os::fd_t>(once.value));
  }
  std::fill(results.begin(), results.end(), once);
}

std::vector<std::vector<SyscallResult>> NVariantSystem::lead_batch(
    const std::vector<vkernel::SyscallBatch>& raw) {
  const unsigned n = options_.n_variants;
  const std::size_t k = raw.empty() ? 0 : raw[0].calls.size();
  std::vector<std::vector<SyscallResult>> out(n);

  const auto run_positions = [&] {
    for (std::size_t p = 0; p < k; ++p) {
      if (rendezvous_->aborted()) break;  // mid-batch abort: stop executing
      std::vector<SyscallArgs> column;
      column.reserve(n);
      for (const auto& batch : raw) column.push_back(batch.calls[p]);
      auto column_results = lead_impl(column);
      column_results.resize(n);
      for (unsigned v = 0; v < n; ++v) out[v].push_back(std::move(column_results[v]));
    }
  };

  // Sampling gates ALL per-round trace work (bench_fleet_throughput's A/B
  // holds tracing to <= 5% on job p95): an unsampled round pays exactly one
  // relaxed fetch_add. Timing is at BATCH granularity — one histogram
  // observation and one event per round, however many calls it carried
  // (kSyscallRound for a single call, kSyscallBatch with b = batch size for
  // a coalesced run), measured on the recorder's injected clock (0-width
  // under ManualClock — deterministic, not wall-clock noise).
  if (!trace_ || k == 0 || !trace_->sample_round(trace_track_)) {
    run_positions();
    return out;
  }
  const auto cls = static_cast<std::size_t>(vkernel::sys_class(raw[0].calls[0].no));
  const auto start = trace_->now();
  run_positions();
  const auto elapsed_us =
      std::chrono::duration<double, std::micro>(trace_->now() - start).count();
  trace_->observe(class_histograms_[cls], elapsed_us);
  trace_->record(trace_track_,
                 k > 1 ? obs::TraceEventKind::kSyscallBatch : obs::TraceEventKind::kSyscallRound,
                 0, trace_parent_, static_cast<std::uint64_t>(raw[0].calls[0].no),
                 k > 1 ? static_cast<std::uint64_t>(k) : static_cast<std::uint64_t>(cls));
  return out;
}

std::vector<SyscallResult> NVariantSystem::lead_impl(const std::vector<SyscallArgs>& raw) {
  const unsigned n = options_.n_variants;

  // Step 1: canonicalize per variant — each variation applies R⁻¹_i to the
  // argument slots whose descriptor role it diversifies.
  std::vector<SyscallArgs> canonical = raw;
  for (unsigned v = 0; v < n; ++v) {
    for (const auto& variation : variations_) variation->canonicalize_args(v, canonical[v]);
  }

  // Step 2: compare canonicalized invocations (normal equivalence check).
  if (!compare_canonical(canonical)) return {};

  // Step 3: execute according to the descriptor's policy.
  std::vector<SyscallResult> results(n);
  const SyscallArgs& call = canonical[0];
  const auto& desc = vkernel::descriptor(call.no);
  switch (desc.exec) {
    case ExecPolicy::kOpen:
      results = lead_open(canonical);
      break;

    case ExecPolicy::kDetection:
      results = lead_detection(canonical);
      break;

    case ExecPolicy::kExit:
    case ExecPolicy::kPerVariant:
      execute_per_variant(canonical, results);
      break;

    case ExecPolicy::kOnce:
      execute_once(call, /*mirror_fd=*/false, results);
      break;

    case ExecPolicy::kOnceMirrorFd:
      execute_once(call, /*mirror_fd=*/true, results);
      break;

    case ExecPolicy::kPathRouted: {
      // stat on an unshared path must resolve per variant (§3.4).
      if (!call.strs.empty() && unshared_.contains(vfs::normalize_path(call.strs[0]))) {
        for (unsigned v = 0; v < n; ++v) {
          SyscallArgs redirected = canonical[v];
          redirected.strs[0] = vfs::variant_path(redirected.strs[0], v);
          results[v] = vkernel::execute_syscall(ctx_, *procs_[v], redirected);
        }
      } else {
        execute_once(call, /*mirror_fd=*/false, results);
      }
      break;
    }

    case ExecPolicy::kFdRouted: {
      // A shared fd means one underlying object: perform the operation once
      // and replicate (§3.1 input-once / output-once). An unshared fd means
      // each variant holds its own diversified file: execute per variant.
      // No fd slot at all (malformed call): the descriptor says how.
      const auto fd = routed_fd(call);
      if (!fd.has_value()) {
        if (desc.missing_fd_exec == ExecPolicy::kPerVariant) {
          execute_per_variant(canonical, results);
        } else {
          execute_once(call, /*mirror_fd=*/false, results);
        }
      } else if (fd_is_shared(*fd)) {
        execute_once(call, /*mirror_fd=*/false, results);
      } else {
        execute_per_variant(canonical, results);
      }
      break;
    }
  }

  // Step 4: reexpress trusted role-carrying results per variant (R_i on
  // getuid-family values, uid_value echoes, ...).
  for (unsigned v = 0; v < n; ++v) {
    for (const auto& variation : variations_) {
      variation->reexpress_result(v, canonical[v], results[v]);
    }
  }
  return results;
}

std::vector<SyscallResult> NVariantSystem::lead_open(const std::vector<SyscallArgs>& canonical) {
  const unsigned n = options_.n_variants;
  std::vector<SyscallResult> results(n);
  const std::string path = vfs::normalize_path(canonical[0].strs.at(0));
  const auto flags = static_cast<os::OpenFlags>(canonical[0].ints.at(0));
  const auto mode = static_cast<os::mode_t>(canonical[0].ints.size() > 1 ? canonical[0].ints[1]
                                                                         : 0644);

  // Keep fd tables slot-synchronized: all variants receive the same fd.
  const os::fd_t slot = procs_[0]->lowest_free_fd();
  const bool unshared = unshared_.contains(path);

  if (unshared) {
    // Each variant opens its own diversified copy (§3.4: "P0 will actually
    // open /etc/passwd-0 and P1 will open /etc/passwd-1").
    for (unsigned v = 0; v < n; ++v) {
      results[v] =
          vkernel::do_open(ctx_, *procs_[v], vfs::variant_path(path, v), flags, mode, slot);
    }
  } else {
    // Shared file: one open-file object, mirrored into every table slot.
    results[0] = vkernel::do_open(ctx_, *procs_[0], path, flags, mode, slot);
    if (results[0].ok()) {
      auto* entry = procs_[0]->fd(slot);
      for (unsigned v = 1; v < n; ++v) procs_[v]->install_fd_at(slot, *entry);
    }
    std::fill(results.begin() + 1, results.end(), results[0]);
  }

  const bool ok = std::all_of(results.begin(), results.end(),
                              [](const SyscallResult& r) { return r.ok(); });
  if (ok) mark_fd(slot, !unshared);
  return results;
}

std::vector<SyscallResult> NVariantSystem::lead_detection(
    const std::vector<SyscallArgs>& canonical) {
  const unsigned n = options_.n_variants;
  monitor_.note_detection_check();
  std::vector<SyscallResult> results(n);
  ctx_.count_syscall();
  switch (canonical[0].no) {
    case Sys::kUidValue:
      // Equality of canonical values was established by compare_canonical().
      // Return the canonical value; step 4 reexpresses it per variant (the
      // descriptor marks uid_value's result uid-carrying), so each variant
      // gets back its own encoding of the value it passed in.
      for (unsigned v = 0; v < n; ++v) {
        results[v].value = canonical[v].ints.at(0);
      }
      break;
    case Sys::kCondChk:
      for (unsigned v = 0; v < n; ++v) results[v].value = canonical[v].ints.at(0) != 0 ? 1 : 0;
      break;
    case Sys::kCcCmp: {
      // Evaluate on canonical values with the *original* operator — variant
      // instruction streams stay identical (§3.5 advantage 2).
      const bool truth = vkernel::cc_eval(static_cast<vkernel::CcOp>(canonical[0].ints.at(0)),
                                          static_cast<os::uid_t>(canonical[0].ints.at(1)),
                                          static_cast<os::uid_t>(canonical[0].ints.at(2)));
      for (unsigned v = 0; v < n; ++v) results[v].value = truth ? 1 : 0;
      break;
    }
    default:
      std::fill(results.begin(), results.end(), errno_result(os::Errno::kENOSYS));
      break;
  }
  return results;
}

}  // namespace nv::core

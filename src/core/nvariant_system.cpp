#include "core/nvariant_system.h"

#include <algorithm>

#include "util/strings.h"
#include "vfs/path.h"
#include "vkernel/vm.h"

namespace nv::core {

using vkernel::Sys;
using vkernel::SysClass;
using vkernel::SyscallArgs;
using vkernel::SyscallResult;

namespace {

SyscallResult errno_result(os::Errno e) {
  SyscallResult r;
  r.err = e;
  r.value = static_cast<std::uint64_t>(-1);
  return r;
}

}  // namespace

/// Guest-facing port bound to one variant: forwards into the rendezvous.
class NVariantSystem::VariantPort final : public vkernel::SyscallPort {
 public:
  VariantPort(NVariantSystem& system, unsigned variant) : system_(system), variant_(variant) {}

  SyscallResult syscall(const SyscallArgs& args) override {
    return system_.variant_syscall(variant_, args);
  }

 private:
  NVariantSystem& system_;
  unsigned variant_;
};

NVariantSystem::NVariantSystem(NVariantOptions options)
    : options_(options), ctx_(fs_, hub_) {
  if (options_.n_variants == 0) throw std::invalid_argument("need at least one variant");
}

NVariantSystem::~NVariantSystem() {
  if (!threads_.empty()) {
    hub_.shutdown();
    if (rendezvous_) {
      rendezvous_->abort(Alarm{AlarmKind::kGuestError, Alarm::kAllVariants, "system destroyed"});
    }
    threads_.clear();  // jthread joins
  }
}

void NVariantSystem::add_variation(VariationPtr variation) {
  for (const auto& path : variation->unshared_paths()) {
    unshared_.insert(vfs::normalize_path(path));
  }
  variations_.push_back(std::move(variation));
}

void NVariantSystem::mark_unshared(std::string path) {
  unshared_.insert(vfs::normalize_path(path));
}

void NVariantSystem::prepare() {
  configs_.clear();
  for (unsigned v = 0; v < options_.n_variants; ++v) {
    VariantConfig config;
    config.index = v;
    config.memory_base = options_.default_memory_base;
    config.memory_size = options_.default_memory_size;
    for (const auto& variation : variations_) variation->configure_variant(config);
    configs_.push_back(std::move(config));
  }
  for (const auto& variation : variations_) {
    variation->prepare_filesystem(fs_, options_.n_variants);
  }
  prepared_ = true;
}

RunReport NVariantSystem::run(const VariantBody& body) {
  launch(body);
  // Wait for every variant thread to finish on its own (normal completion,
  // joint exit, or divergence unwind), then harvest without interrupting.
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  return collect_report();
}

void NVariantSystem::launch(const VariantBody& body) {
  if (!threads_.empty()) throw std::logic_error("system already running");
  prepare();
  monitor_.reset();
  hub_.reset();  // re-arm the network after a previous run's shutdown
  procs_.clear();
  shared_fds_.clear();
  rendezvous_ = std::make_unique<SyscallRendezvous>(options_.n_variants,
                                                    options_.rendezvous_timeout);
  rendezvous_->set_leader([this](const std::vector<SyscallArgs>& raw) { return lead(raw); });

  for (unsigned v = 0; v < options_.n_variants; ++v) {
    auto proc = std::make_unique<vkernel::Process>(1, "variant-" + std::to_string(v),
                                                   os::Credentials::root());
    proc->memory().map(configs_[v].memory_base, configs_[v].memory_size);
    proc->memory().set_alloc_base(configs_[v].memory_base);
    procs_.push_back(std::move(proc));
  }

  for (unsigned v = 0; v < options_.n_variants; ++v) {
    threads_.emplace_back([this, v, body] {
      VariantPort port(*this, v);
      try {
        body(v, port, *procs_[v], configs_[v]);
        // Guests end with an exit syscall; if the body returned without one,
        // issue exit(0) so variants that finish together rendezvous cleanly.
        if (!procs_[v]->exited()) {
          SyscallArgs exit_call;
          exit_call.no = Sys::kExit;
          exit_call.ints = {0};
          (void)port.syscall(exit_call);
        }
      } catch (const DivergenceAbort& abort) {
        // The alarm may have been recorded by the leader already (comparison
        // failures) or not at all yet (rendezvous timeout raised on a waiter).
        if (!monitor_.triggered()) monitor_.raise(abort.alarm);
        hub_.shutdown();
      } catch (const vkernel::MemoryFault& fault) {
        Alarm alarm{AlarmKind::kMemoryFault, v, fault.what};
        monitor_.raise(alarm);
        rendezvous_->abort(alarm);
        hub_.shutdown();
      } catch (const vkernel::TagFault& fault) {
        Alarm alarm{AlarmKind::kTagFault, v,
                    util::format("tag 0x%02x expected 0x%02x at 0x%llx", fault.found,
                                 fault.expected, static_cast<unsigned long long>(fault.address))};
        monitor_.raise(alarm);
        rendezvous_->abort(alarm);
        hub_.shutdown();
      } catch (const std::exception& e) {
        Alarm alarm{AlarmKind::kGuestError, v, e.what()};
        monitor_.raise(alarm);
        rendezvous_->abort(alarm);
        hub_.shutdown();
      }
    });
  }
}

RunReport NVariantSystem::stop() {
  hub_.shutdown();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  return collect_report();
}

RunReport NVariantSystem::collect_report() {
  RunReport report;
  report.attack_detected = monitor_.triggered();
  report.alarm = monitor_.first_alarm();
  report.syscall_rounds = rendezvous_ ? rendezvous_->rounds_completed() : 0;
  report.completed = true;
  for (const auto& proc : procs_) {
    report.completed = report.completed && proc->exited();
    report.exit_codes.push_back(proc->exited() ? proc->exit_code() : -1);
  }
  if (report.attack_detected) report.completed = false;
  return report;
}

vkernel::SyscallResult NVariantSystem::variant_syscall(unsigned variant, SyscallArgs args) {
  return rendezvous_->exchange(variant, std::move(args));
}

bool NVariantSystem::fd_is_shared(os::fd_t fd) const {
  if (fd < 0 || static_cast<std::size_t>(fd) >= shared_fds_.size()) return true;
  return shared_fds_[static_cast<std::size_t>(fd)];
}

bool NVariantSystem::compare_canonical(const std::vector<SyscallArgs>& canonical) {
  monitor_.note_syscall_checked();
  for (unsigned v = 1; v < canonical.size(); ++v) {
    if (canonical[v].no != canonical[0].no) {
      Alarm alarm{AlarmKind::kSyscallMismatch, Alarm::kAllVariants,
                  util::format("variant 0 called %s but variant %u called %s",
                               std::string(sys_name(canonical[0].no)).c_str(), v,
                               std::string(sys_name(canonical[v].no)).c_str())};
      monitor_.raise(alarm);
      rendezvous_->abort(alarm);
      return false;
    }
    if (canonical[v] != canonical[0]) {
      AlarmKind kind = AlarmKind::kArgumentMismatch;
      if (canonical[0].no == Sys::kUidValue || canonical[0].no == Sys::kCcCmp) {
        kind = AlarmKind::kUidCheckFailed;
      } else if (canonical[0].no == Sys::kCondChk) {
        kind = AlarmKind::kConditionMismatch;
      }
      Alarm alarm{kind, Alarm::kAllVariants,
                  util::format("%s: canonical arguments diverge between variant 0 and %u (%s vs %s)",
                               std::string(sys_name(canonical[0].no)).c_str(), v,
                               canonical[0].describe().c_str(), canonical[v].describe().c_str())};
      monitor_.raise(alarm);
      rendezvous_->abort(alarm);
      return false;
    }
  }
  return true;
}

std::vector<SyscallResult> NVariantSystem::lead(const std::vector<SyscallArgs>& raw) {
  const unsigned n = options_.n_variants;

  // Step 1: canonicalize per variant (apply R⁻¹_i to UID-carrying args).
  std::vector<SyscallArgs> canonical = raw;
  for (unsigned v = 0; v < n; ++v) {
    for (const auto& variation : variations_) variation->canonicalize_args(v, canonical[v]);
  }

  // Step 2: compare canonicalized invocations (normal equivalence check).
  if (!compare_canonical(canonical)) return {};

  // Step 3: execute according to syscall class.
  std::vector<SyscallResult> results(n);
  const SyscallArgs& call = canonical[0];
  switch (sys_class(call.no)) {
    case SysClass::kOpen:
      results = lead_open(canonical);
      break;

    case SysClass::kDetection:
      results = lead_detection(canonical, raw);
      break;

    case SysClass::kExit: {
      for (unsigned v = 0; v < n; ++v) {
        results[v] = vkernel::execute_syscall(ctx_, *procs_[v], canonical[v]);
      }
      break;
    }

    case SysClass::kInput: {
      // stat on an unshared path must resolve per variant.
      if (call.no == Sys::kStat && !call.strs.empty() &&
          unshared_.contains(vfs::normalize_path(call.strs[0]))) {
        for (unsigned v = 0; v < n; ++v) {
          SyscallArgs redirected = canonical[v];
          redirected.strs[0] = vfs::variant_path(redirected.strs[0], v);
          results[v] = vkernel::execute_syscall(ctx_, *procs_[v], redirected);
        }
        break;
      }
      // read on an unshared fd executes per variant (each has its own file).
      if (call.no == Sys::kRead && !call.ints.empty() &&
          !fd_is_shared(static_cast<os::fd_t>(call.ints[0]))) {
        for (unsigned v = 0; v < n; ++v) {
          results[v] = vkernel::execute_syscall(ctx_, *procs_[v], canonical[v]);
        }
        break;
      }
      // Shared input: perform once, replicate the result (§3.1: "the actual
      // input operation is only performed once and the same data is sent to
      // all variants").
      SyscallResult once = vkernel::execute_syscall(ctx_, *procs_[0], call);
      if (call.no == Sys::kAccept && once.ok()) {
        // The new connection fd must appear in every variant's table at the
        // same slot, all referring to the same underlying stream.
        const auto fd = static_cast<os::fd_t>(once.value);
        auto* entry = procs_[0]->fd(fd);
        for (unsigned v = 1; v < n; ++v) procs_[v]->install_fd_at(fd, *entry);
        if (static_cast<std::size_t>(fd) >= shared_fds_.size()) {
          shared_fds_.resize(static_cast<std::size_t>(fd) + 1, true);
        }
        shared_fds_[static_cast<std::size_t>(fd)] = true;
      }
      std::fill(results.begin(), results.end(), once);
      break;
    }

    case SysClass::kOutput: {
      // write on an unshared fd executes per variant; shared output executes
      // once (argument equality was already established in step 2).
      if (!call.ints.empty() && !fd_is_shared(static_cast<os::fd_t>(call.ints[0]))) {
        for (unsigned v = 0; v < n; ++v) {
          results[v] = vkernel::execute_syscall(ctx_, *procs_[v], canonical[v]);
        }
      } else {
        const SyscallResult once = vkernel::execute_syscall(ctx_, *procs_[0], call);
        std::fill(results.begin(), results.end(), once);
      }
      break;
    }

    case SysClass::kPerVariant: {
      // Credential changes, close, seek, socket setup: these mutate
      // per-process state. Socket objects must stay identical across
      // variants, so socket/bind/listen execute once and the fd objects are
      // mirrored; everything else executes in each variant with the same
      // canonical arguments.
      if (call.no == Sys::kSocket) {
        const SyscallResult once = vkernel::execute_syscall(ctx_, *procs_[0], call);
        if (once.ok()) {
          const auto fd = static_cast<os::fd_t>(once.value);
          auto* entry = procs_[0]->fd(fd);
          for (unsigned v = 1; v < n; ++v) procs_[v]->install_fd_at(fd, *entry);
          if (static_cast<std::size_t>(fd) >= shared_fds_.size()) {
            shared_fds_.resize(static_cast<std::size_t>(fd) + 1, true);
          }
          shared_fds_[static_cast<std::size_t>(fd)] = true;
        }
        std::fill(results.begin(), results.end(), once);
        break;
      }
      if (call.no == Sys::kBind || call.no == Sys::kListen) {
        const SyscallResult once = vkernel::execute_syscall(ctx_, *procs_[0], call);
        std::fill(results.begin(), results.end(), once);
        break;
      }
      if (call.no == Sys::kUnlink || call.no == Sys::kMkdir) {
        // Shared filesystem namespace: execute once.
        const SyscallResult once = vkernel::execute_syscall(ctx_, *procs_[0], call);
        std::fill(results.begin(), results.end(), once);
        break;
      }
      if (call.no == Sys::kSeek && !call.ints.empty() &&
          fd_is_shared(static_cast<os::fd_t>(call.ints[0]))) {
        const SyscallResult once = vkernel::execute_syscall(ctx_, *procs_[0], call);
        std::fill(results.begin(), results.end(), once);
        break;
      }
      for (unsigned v = 0; v < n; ++v) {
        results[v] = vkernel::execute_syscall(ctx_, *procs_[v], canonical[v]);
      }
      break;
    }
  }

  // Step 4: reexpress trusted UID results per variant (R_i on getuid etc.).
  for (unsigned v = 0; v < n; ++v) {
    for (const auto& variation : variations_) {
      variation->reexpress_result(v, canonical[v], results[v]);
    }
  }
  return results;
}

std::vector<SyscallResult> NVariantSystem::lead_open(const std::vector<SyscallArgs>& canonical) {
  const unsigned n = options_.n_variants;
  std::vector<SyscallResult> results(n);
  const std::string path = vfs::normalize_path(canonical[0].strs.at(0));
  const auto flags = static_cast<os::OpenFlags>(canonical[0].ints.at(0));
  const auto mode = static_cast<os::mode_t>(canonical[0].ints.size() > 1 ? canonical[0].ints[1]
                                                                         : 0644);

  // Keep fd tables slot-synchronized: all variants receive the same fd.
  const os::fd_t slot = procs_[0]->lowest_free_fd();
  const bool unshared = unshared_.contains(path);

  if (unshared) {
    // Each variant opens its own diversified copy (§3.4: "P0 will actually
    // open /etc/passwd-0 and P1 will open /etc/passwd-1").
    for (unsigned v = 0; v < n; ++v) {
      results[v] =
          vkernel::do_open(ctx_, *procs_[v], vfs::variant_path(path, v), flags, mode, slot);
    }
  } else {
    // Shared file: one open-file object, mirrored into every table slot.
    results[0] = vkernel::do_open(ctx_, *procs_[0], path, flags, mode, slot);
    if (results[0].ok()) {
      auto* entry = procs_[0]->fd(slot);
      for (unsigned v = 1; v < n; ++v) procs_[v]->install_fd_at(slot, *entry);
    }
    std::fill(results.begin() + 1, results.end(), results[0]);
  }

  const bool ok = std::all_of(results.begin(), results.end(),
                              [](const SyscallResult& r) { return r.ok(); });
  if (ok) {
    if (static_cast<std::size_t>(slot) >= shared_fds_.size()) {
      shared_fds_.resize(static_cast<std::size_t>(slot) + 1, true);
    }
    shared_fds_[static_cast<std::size_t>(slot)] = !unshared;
  }
  return results;
}

std::vector<SyscallResult> NVariantSystem::lead_detection(
    const std::vector<SyscallArgs>& canonical, const std::vector<SyscallArgs>& raw) {
  const unsigned n = options_.n_variants;
  monitor_.note_detection_check();
  std::vector<SyscallResult> results(n);
  ctx_.count_syscall();
  switch (canonical[0].no) {
    case Sys::kUidValue:
      // Equality of canonical values was established by compare_canonical();
      // each variant gets back the value it passed in (its own encoding).
      for (unsigned v = 0; v < n; ++v) {
        results[v].value = raw[v].ints.at(0);
      }
      break;
    case Sys::kCondChk:
      for (unsigned v = 0; v < n; ++v) results[v].value = canonical[v].ints.at(0) != 0 ? 1 : 0;
      break;
    case Sys::kCcCmp: {
      // Evaluate on canonical values with the *original* operator — variant
      // instruction streams stay identical (§3.5 advantage 2).
      const bool truth = vkernel::cc_eval(static_cast<vkernel::CcOp>(canonical[0].ints.at(0)),
                                          static_cast<os::uid_t>(canonical[0].ints.at(1)),
                                          static_cast<os::uid_t>(canonical[0].ints.at(2)));
      for (unsigned v = 0; v < n; ++v) results[v].value = truth ? 1 : 0;
      break;
    }
    default:
      std::fill(results.begin(), results.end(), errno_result(os::Errno::kENOSYS));
      break;
  }
  return results;
}

}  // namespace nv::core

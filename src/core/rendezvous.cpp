#include "core/rendezvous.h"

#include <stdexcept>

namespace nv::core {

SyscallRendezvous::SyscallRendezvous(unsigned n_variants,
                                     std::chrono::milliseconds arrival_timeout)
    : n_(n_variants), arrival_timeout_(arrival_timeout), slots_(n_variants), results_(n_variants) {
  if (n_variants == 0) throw std::invalid_argument("rendezvous requires at least one variant");
}

vkernel::SyscallResult SyscallRendezvous::exchange(unsigned variant, vkernel::SyscallArgs args) {
  std::unique_lock lock(mutex_);
  if (aborted_) throw DivergenceAbort{abort_alarm_};
  if (variant >= n_) throw std::invalid_argument("bad variant index");
  if (slots_[variant].has_value()) throw std::logic_error("variant re-entered rendezvous");

  slots_[variant] = std::move(args);
  ++arrived_;
  const std::uint64_t my_generation = generation_;

  if (arrived_ == n_) {
    // Leader path: snapshot arguments, run the real work unlocked.
    std::vector<vkernel::SyscallArgs> snapshot;
    snapshot.reserve(n_);
    for (auto& slot : slots_) {
      snapshot.push_back(std::move(*slot));
      slot.reset();
    }
    executing_ = true;
    lock.unlock();
    std::vector<vkernel::SyscallResult> results;
    if (leader_) results = leader_(snapshot);
    results.resize(n_);
    lock.lock();
    executing_ = false;
    if (aborted_) {
      cv_.notify_all();
      throw DivergenceAbort{abort_alarm_};
    }
    results_ = std::move(results);
    arrived_ = 0;
    ++generation_;
    ++rounds_;
    vkernel::SyscallResult mine = results_[variant];
    cv_.notify_all();
    return mine;
  }

  // Follower path: wait for the leader to publish this generation's results.
  // While the leader is executing (possibly blocked in a legitimate blocking
  // syscall like accept), wait indefinitely; the arrival timeout only applies
  // while we are waiting for peers to *arrive*, which bounds divergence where
  // a compromised variant stops making syscalls.
  const auto deadline = std::chrono::steady_clock::now() + arrival_timeout_;
  while (generation_ == my_generation && !aborted_) {
    if (executing_ || arrived_ == 0) {
      cv_.wait(lock);
      continue;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout && generation_ == my_generation &&
        !aborted_ && !executing_ && arrived_ != 0) {
      // Peers never arrived: unilateral divergence.
      aborted_ = true;
      abort_alarm_ = Alarm{AlarmKind::kRendezvousTimeout, variant,
                           "peer variant stopped making system calls"};
      cv_.notify_all();
      throw DivergenceAbort{abort_alarm_};
    }
  }
  if (aborted_) throw DivergenceAbort{abort_alarm_};
  return results_[variant];
}

void SyscallRendezvous::abort(Alarm alarm) {
  const std::scoped_lock lock(mutex_);
  if (aborted_) return;
  aborted_ = true;
  abort_alarm_ = std::move(alarm);
  cv_.notify_all();
}

bool SyscallRendezvous::aborted() const {
  const std::scoped_lock lock(mutex_);
  return aborted_;
}

std::uint64_t SyscallRendezvous::rounds_completed() const noexcept {
  const std::scoped_lock lock(mutex_);
  return rounds_;
}

}  // namespace nv::core

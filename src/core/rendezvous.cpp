#include "core/rendezvous.h"

#include <algorithm>
#include <stdexcept>

#include "util/mutex.h"
#include "util/strings.h"

namespace nv::core {

SyscallRendezvous::SyscallRendezvous(unsigned n_variants,
                                     std::chrono::milliseconds arrival_timeout)
    : n_(n_variants),
      arrival_timeout_(arrival_timeout),
      slots_(n_variants),
      results_(n_variants),
      slot_generation_(n_variants, 0),
      async_cursor_(new std::atomic<std::uint64_t>[n_variants]()) {
  if (n_variants == 0) throw std::invalid_argument("rendezvous requires at least one variant");
}

vkernel::SyscallResult SyscallRendezvous::exchange(unsigned variant, vkernel::SyscallArgs args) {
  vkernel::SyscallBatch batch;
  batch.calls.push_back(std::move(args));
  auto results = exchange_batch(variant, std::move(batch));
  return std::move(results.at(0));
}

std::vector<vkernel::SyscallResult> SyscallRendezvous::exchange_batch(
    unsigned variant, vkernel::SyscallBatch batch) {
  util::MutexLock lock(mutex_);
  if (aborted_) throw DivergenceAbort{abort_alarm_};
  if (variant >= n_) throw std::invalid_argument("bad variant index");
  if (batch.calls.empty()) throw std::invalid_argument("empty syscall batch");
  if (slots_[variant].has_value()) throw std::logic_error("variant re-entered rendezvous");

  slots_[variant] = std::move(batch);
  ++arrived_;
  const std::uint64_t my_generation = slot_generation_[variant];

  if (arrived_ == n_) {
    // Leader path: the last arriver validates the round, runs the real work
    // unlocked, and publishes per-variant result vectors.
    //
    // A batch-size mismatch means the variants' call streams have already
    // diverged (identical guest code forms identical batches): abort before
    // executing anything.
    const std::size_t k = slots_[0]->calls.size();
    for (unsigned v = 1; v < n_; ++v) {
      if (slots_[v]->calls.size() != k) {
        abort_locked(Alarm{AlarmKind::kSyscallMismatch, Alarm::kAllVariants,
                           util::format("batch sizes diverge: variant 0 issued %zu calls but "
                                        "variant %u issued %zu",
                                        k, v, slots_[v]->calls.size())});
        throw DivergenceAbort{abort_alarm_};
      }
    }
    // With every variant parked at this barrier, all completion-class
    // streams must have drained to the same position — a variant that
    // skipped (or invented) async calls is a divergence even though the
    // async path never blocked on it.
    if (!verify_async_prefix()) throw DivergenceAbort{abort_alarm_};

    std::vector<vkernel::SyscallBatch> snapshot;
    snapshot.reserve(n_);
    for (auto& slot : slots_) {
      snapshot.push_back(std::move(*slot));
      slot.reset();
    }
    executing_ = true;
    lock.unlock();
    std::vector<std::vector<vkernel::SyscallResult>> results;
    if (batch_leader_) {
      results = batch_leader_(snapshot);
    } else if (leader_) {
      // Per-call adapter: one LeaderFn round per batch position. An abort at
      // any position stops the batch — the remaining calls never execute.
      results.assign(n_, std::vector<vkernel::SyscallResult>(k));
      for (std::size_t p = 0; p < k && !aborted(); ++p) {
        std::vector<vkernel::SyscallArgs> column;
        column.reserve(n_);
        for (const auto& b : snapshot) column.push_back(b.calls[p]);
        auto column_results = leader_(column);
        column_results.resize(n_);
        for (unsigned v = 0; v < n_; ++v) results[v][p] = std::move(column_results[v]);
      }
    }
    results.resize(n_);
    for (auto& per_variant : results) per_variant.resize(k);
    lock.lock();
    executing_ = false;
    if (aborted_) {
      cv_.notify_all();
      throw DivergenceAbort{abort_alarm_};
    }
    results_ = std::move(results);
    arrived_ = 0;
    for (auto& generation : slot_generation_) ++generation;
    rounds_.fetch_add(1, std::memory_order_relaxed);
    calls_.fetch_add(k, std::memory_order_relaxed);
    if (k > 1) batch_rounds_.fetch_add(1, std::memory_order_relaxed);
    std::vector<vkernel::SyscallResult> mine = results_[variant];
    cv_.notify_all();
    return mine;
  }

  // Follower path: wait for the leader to publish this variant's slot. While
  // the leader is executing (possibly blocked in a legitimate blocking
  // syscall like accept), wait indefinitely; the arrival timeout only applies
  // while we are waiting for peers to *arrive*, which bounds divergence where
  // a compromised variant stops making syscalls. On expiry the timeout
  // converts into a proper abort for ALL waiters — current and late arrivers
  // alike observe aborted_ and unwind, nobody is left parked on a stale
  // generation.
  const auto deadline = std::chrono::steady_clock::now() + arrival_timeout_;
  while (slot_generation_[variant] == my_generation && !aborted_) {
    if (executing_) {
      cv_.wait(lock.native());
      continue;
    }
    if (cv_.wait_until(lock.native(), deadline) == std::cv_status::timeout &&
        slot_generation_[variant] == my_generation && !aborted_ && !executing_) {
      abort_locked(Alarm{AlarmKind::kRendezvousTimeout, variant,
                         "peer variant stopped making system calls"});
      throw DivergenceAbort{abort_alarm_};
    }
  }
  if (aborted_) throw DivergenceAbort{abort_alarm_};
  return std::move(results_[variant]);
}

vkernel::SyscallResult SyscallRendezvous::complete_async(unsigned variant,
                                                         const vkernel::SyscallArgs& canonical,
                                                         const AsyncExecuteFn& execute) {
  if (variant >= n_) throw std::invalid_argument("bad variant index");
  const std::uint64_t position = async_cursor_[variant].load(std::memory_order_relaxed);

  if (async_published_.load(std::memory_order_acquire) <= position) {
    // Slow path: nothing published at our position yet — claim it (we are
    // the first variant here) or wait for the claimer to publish.
    util::MutexLock lock(async_mutex_);
    for (;;) {
      if (aborted_flag_.load(std::memory_order_acquire)) {
        lock.unlock();
        throw_aborted();
      }
      if (async_published_.load(std::memory_order_acquire) > position) break;
      if (async_claimed_ == position) {
        if (position >= min_async_cursor() + kAsyncRingCapacity) {
          // Ring full: the slowest variant is a whole ring behind. Wait for
          // it to consume, bounded by the arrival timeout — a variant that
          // stopped draining completion slots has stopped making syscalls.
          async_claim_stalled_.store(true, std::memory_order_release);
          const auto status = async_cv_.wait_for(lock.native(), arrival_timeout_);
          async_claim_stalled_.store(false, std::memory_order_release);
          if (aborted_flag_.load(std::memory_order_acquire)) {
            lock.unlock();
            throw_aborted();
          }
          if (status == std::cv_status::timeout &&
              position >= min_async_cursor() + kAsyncRingCapacity) {
            lock.unlock();
            abort(Alarm{AlarmKind::kRendezvousTimeout, variant,
                        "peer variant stopped draining completion slots"});
            throw_aborted();
          }
          continue;
        }
        async_claimed_ = position + 1;
        lock.unlock();
        vkernel::SyscallResult result;
        try {
          result = execute(canonical);
        } catch (...) {
          abort(Alarm{AlarmKind::kGuestError, variant,
                      "completion-slot execution failed"});
          throw;
        }
        AsyncSlot& slot = async_ring_[position % kAsyncRingCapacity];
        slot.args = canonical;
        slot.result = result;
        async_published_.store(position + 1, std::memory_order_release);
        {
          // Empty critical section: a consumer that checked published_ and
          // is about to wait must not miss this notify.
          const util::MutexLock relock(async_mutex_);
        }
        async_cv_.notify_all();
        async_cursor_[variant].store(position + 1, std::memory_order_release);
        return result;
      }
      // Another variant claimed this position and is executing; it publishes
      // promptly (completion-class calls never block) or the system aborts.
      async_cv_.wait(lock.native());
    }
  }

  // Fast path: the slot is published — consume without any lock. The ring-
  // full guard guarantees an unconsumed slot is never overwritten.
  const AsyncSlot& slot = async_ring_[position % kAsyncRingCapacity];
  if (slot.args != canonical) {
    const bool different_call = slot.args.no != canonical.no;
    Alarm alarm{different_call ? AlarmKind::kSyscallMismatch : AlarmKind::kArgumentMismatch,
                variant,
                util::format("completion stream diverged at position %llu: variant %u issued "
                             "%s but the published call is %s",
                             static_cast<unsigned long long>(position), variant,
                             canonical.describe().c_str(), slot.args.describe().c_str())};
    abort(alarm);
    throw DivergenceAbort{std::move(alarm)};
  }
  vkernel::SyscallResult result = slot.result;
  async_cursor_[variant].store(position + 1, std::memory_order_release);
  if (async_claim_stalled_.load(std::memory_order_acquire)) {
    {
      const util::MutexLock relock(async_mutex_);
    }
    async_cv_.notify_all();
  }
  return result;
}

void SyscallRendezvous::abort(Alarm alarm) {
  const util::MutexLock lock(mutex_);
  abort_locked(std::move(alarm));
}

void SyscallRendezvous::abort_locked(Alarm alarm) {
  if (aborted_) return;
  abort_alarm_ = std::move(alarm);
  aborted_ = true;
  aborted_flag_.store(true, std::memory_order_release);
  cv_.notify_all();
  {
    // mutex_ -> async_mutex_ is the one permitted nesting order (the async
    // slow path always drops async_mutex_ before touching mutex_).
    const util::MutexLock async_lock(async_mutex_);
  }
  async_cv_.notify_all();
}

void SyscallRendezvous::throw_aborted() {
  const util::MutexLock lock(mutex_);
  throw DivergenceAbort{abort_alarm_};
}

std::uint64_t SyscallRendezvous::min_async_cursor() const noexcept {
  std::uint64_t lowest = async_cursor_[0].load(std::memory_order_acquire);
  for (unsigned v = 1; v < n_; ++v) {
    lowest = std::min(lowest, async_cursor_[v].load(std::memory_order_acquire));
  }
  return lowest;
}

bool SyscallRendezvous::verify_async_prefix() {
  const std::uint64_t reference = async_cursor_[0].load(std::memory_order_acquire);
  for (unsigned v = 1; v < n_; ++v) {
    const std::uint64_t cursor = async_cursor_[v].load(std::memory_order_acquire);
    if (cursor != reference) {
      abort_locked(
          Alarm{AlarmKind::kSyscallMismatch, Alarm::kAllVariants,
                util::format("completion-class syscall streams diverged before the barrier "
                             "(variant 0 consumed %llu, variant %u consumed %llu)",
                             static_cast<unsigned long long>(reference), v,
                             static_cast<unsigned long long>(cursor))});
      return false;
    }
  }
  return true;
}

}  // namespace nv::core

// Pipelined syscall rendezvous (§3.1 with a relaxed barrier).
//
// The paper's rule — "once one variant makes a system call, it will not
// proceed until all other variants make the same system call" — is preserved
// for every divergence-relevant call, but the PER-CALL barrier is not the
// only way to enforce it. This rendezvous offers three exchange shapes,
// selected by the descriptor table's BatchPolicy:
//
//   exchange()        one call, full barrier (the classic lockstep round).
//   exchange_batch()  several calls, ONE barrier: every variant arrives with
//                     a SyscallBatch; sizes are cross-checked; the leader
//                     (last arriver) runs the batch leader once per position
//                     and publishes per-variant result vectors. K coalesced
//                     calls cost one barrier instead of K.
//   complete_async()  completion-slot path for non-divergence-relevant calls
//                     (read-only, argument-free input class): the FIRST
//                     variant to reach stream position i claims the slot,
//                     executes, and publishes; the others consume lock-free
//                     (acquire-load on the published count) and compare their
//                     canonical args against the published ones. Nobody waits
//                     for anybody unless the ring is empty at their cursor.
//
// Divergence detection is delayed-but-guaranteed on the async path: an
// argument mismatch is caught at consume time; a variant that silently skips
// async calls is caught at the next barrier (the leader cross-checks all
// async cursors before executing) or by the arrival timeout.
//
// All counters are atomics readable without the round lock; abort() wakes
// every waiter on both the barrier and the completion ring.
#ifndef NV_CORE_RENDEZVOUS_H
#define NV_CORE_RENDEZVOUS_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/alarm.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "vkernel/syscalls.h"

namespace nv::core {

/// Thrown out of exchange()/complete_async() when the system is aborted by an
/// alarm. Variant runner threads catch it and unwind.
struct DivergenceAbort {
  Alarm alarm;
};

class SyscallRendezvous {
 public:
  /// Receives one SyscallArgs per variant; returns one result per variant.
  /// Runs on the leader's thread with the rendezvous lock released. If it
  /// detects divergence it must call abort() and may return garbage results.
  using LeaderFn =
      std::function<std::vector<vkernel::SyscallResult>(const std::vector<vkernel::SyscallArgs>&)>;

  /// Batch form: one SyscallBatch per variant (sizes already verified equal);
  /// returns one result vector per variant, positionally matching the batch.
  /// Same locking contract as LeaderFn. Should stop early (returning what it
  /// has) if it aborts mid-batch.
  using BatchLeaderFn = std::function<std::vector<std::vector<vkernel::SyscallResult>>(
      const std::vector<vkernel::SyscallBatch>&)>;

  /// Executes one already-canonical call for the completion-slot path; runs
  /// on the claiming variant's thread with no rendezvous lock held.
  using AsyncExecuteFn = std::function<vkernel::SyscallResult(const vkernel::SyscallArgs&)>;

  SyscallRendezvous(unsigned n_variants, std::chrono::milliseconds arrival_timeout);

  /// Per-call leader. When only this is set, exchange_batch() adapts it: one
  /// LeaderFn invocation per batch position.
  void set_leader(LeaderFn leader) { leader_ = std::move(leader); }
  /// Batch-aware leader; preferred over the per-call adapter when set.
  void set_batch_leader(BatchLeaderFn leader) { batch_leader_ = std::move(leader); }

  /// Block until all variants arrive; leader executes; everyone gets their
  /// per-variant result. Throws DivergenceAbort if the system aborted.
  [[nodiscard]] vkernel::SyscallResult exchange(unsigned variant, vkernel::SyscallArgs args);

  /// One barrier for a whole batch. Every variant must arrive with the SAME
  /// number of calls (identical guest code produces identical batches); a
  /// size mismatch is a divergence and aborts the system. Throws
  /// DivergenceAbort if the system aborted (before, during, or because of
  /// this batch) — per-position partial results are never returned.
  [[nodiscard]] std::vector<vkernel::SyscallResult> exchange_batch(unsigned variant,
                                                                   vkernel::SyscallBatch batch);

  /// Completion-slot exchange for a non-divergence-relevant call. `canonical`
  /// must already be canonicalized (R⁻¹ applied). The first variant at this
  /// stream position executes via `execute` and publishes {args, result};
  /// later variants verify their canonical args match the published ones and
  /// consume without blocking. Aborts (and throws) on mismatch.
  [[nodiscard]] vkernel::SyscallResult complete_async(unsigned variant,
                                                      const vkernel::SyscallArgs& canonical,
                                                      const AsyncExecuteFn& execute);

  /// Wake all waiters; all current and future exchanges throw DivergenceAbort.
  void abort(Alarm alarm);
  [[nodiscard]] bool aborted() const noexcept {
    return aborted_flag_.load(std::memory_order_acquire);
  }

  [[nodiscard]] unsigned variants() const noexcept { return n_; }
  /// Barrier rounds completed (a batch counts as ONE round). Lock-free.
  [[nodiscard]] std::uint64_t rounds_completed() const noexcept {
    return rounds_.load(std::memory_order_relaxed);
  }
  /// Barrier rounds that carried more than one call.
  [[nodiscard]] std::uint64_t batches_completed() const noexcept {
    return batch_rounds_.load(std::memory_order_relaxed);
  }
  /// Calls that went through a barrier round (sum of batch sizes).
  [[nodiscard]] std::uint64_t calls_exchanged() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }
  /// Completion slots published on the async ring (one per async call).
  [[nodiscard]] std::uint64_t async_completions() const noexcept {
    return async_published_.load(std::memory_order_relaxed);
  }

  /// Completion-ring capacity: the furthest a variant may run ahead of the
  /// slowest variant on async calls before the claim path blocks.
  static constexpr std::size_t kAsyncRingCapacity = 1024;

 private:
  struct AsyncSlot {
    vkernel::SyscallArgs args;
    vkernel::SyscallResult result;
  };

  void abort_locked(Alarm alarm) NV_REQUIRES(mutex_);
  [[noreturn]] void throw_aborted() NV_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t min_async_cursor() const noexcept;
  /// Leader-side cross-check before a barrier round executes: with every
  /// variant parked at the barrier, all async streams must have drained to
  /// the same position. Returns false (after aborting) on divergence.
  [[nodiscard]] bool verify_async_prefix() NV_REQUIRES(mutex_);

  const unsigned n_;
  const std::chrono::milliseconds arrival_timeout_;
  LeaderFn leader_;
  BatchLeaderFn batch_leader_;

  // ---- Barrier state (mutex_/cv_): arrivals, leader election, publish -----
  mutable util::Mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::optional<vkernel::SyscallBatch>> slots_ NV_GUARDED_BY(mutex_);
  std::vector<std::vector<vkernel::SyscallResult>> results_ NV_GUARDED_BY(mutex_);
  /// Per-variant publish generation: bumped for a variant when its results_
  /// entry for the current round is ready. Replaces the old single
  /// generation_ counter so a variant's wait condition only touches its own
  /// slot.
  std::vector<std::uint64_t> slot_generation_ NV_GUARDED_BY(mutex_);
  unsigned arrived_ NV_GUARDED_BY(mutex_) = 0;
  // Leader is running the real syscall(s).
  bool executing_ NV_GUARDED_BY(mutex_) = false;
  // Mirrored in aborted_flag_ for lock-free readers.
  bool aborted_ NV_GUARDED_BY(mutex_) = false;
  Alarm abort_alarm_ NV_GUARDED_BY(mutex_);

  // ---- Completion ring (async path) ---------------------------------------
  std::vector<AsyncSlot> async_ring_{kAsyncRingCapacity};
  /// Slots fully published; consumers acquire-load this and then read the
  /// ring without any lock (the ring-full guard keeps unconsumed slots from
  /// being overwritten).
  std::atomic<std::uint64_t> async_published_{0};
  /// Next per-variant stream position. Each entry is written only by its own
  /// variant's thread; the barrier leader and the ring-full guard read them.
  std::unique_ptr<std::atomic<std::uint64_t>[]> async_cursor_;
  util::Mutex async_mutex_;
  std::condition_variable async_cv_;
  std::uint64_t async_claimed_ NV_GUARDED_BY(async_mutex_) = 0;
  /// True while a claimer is parked on a full ring; fast-path consumers check
  /// it (one relaxed load) and only then pay for a notify.
  std::atomic<bool> async_claim_stalled_{false};

  // ---- Lock-free counters --------------------------------------------------
  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> batch_rounds_{0};
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<bool> aborted_flag_{false};
};

}  // namespace nv::core

#endif  // NV_CORE_RENDEZVOUS_H

// Lockstep syscall rendezvous (§3.1: "once one variant makes a system call,
// it will not proceed until all other variants make the same system call").
//
// Each variant thread calls exchange() with its pending syscall. The last
// arriver becomes the leader, runs the MVEE's leader function (compare,
// execute, build per-variant results) WITHOUT holding the lock (the real
// syscall may legitimately block, e.g. accept), then publishes results.
// abort() wakes everyone with a DivergenceAbort.
#ifndef NV_CORE_RENDEZVOUS_H
#define NV_CORE_RENDEZVOUS_H

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "core/alarm.h"
#include "vkernel/syscalls.h"

namespace nv::core {

/// Thrown out of exchange() when the system is aborted by an alarm. Variant
/// runner threads catch it and unwind.
struct DivergenceAbort {
  Alarm alarm;
};

class SyscallRendezvous {
 public:
  /// Receives one SyscallArgs per variant; returns one result per variant.
  /// Runs on the leader's thread with the rendezvous lock released. If it
  /// detects divergence it must call abort() and may return garbage results.
  using LeaderFn =
      std::function<std::vector<vkernel::SyscallResult>(const std::vector<vkernel::SyscallArgs>&)>;

  SyscallRendezvous(unsigned n_variants, std::chrono::milliseconds arrival_timeout);

  void set_leader(LeaderFn leader) { leader_ = std::move(leader); }

  /// Block until all variants arrive; leader executes; everyone gets their
  /// per-variant result. Throws DivergenceAbort if the system aborted.
  [[nodiscard]] vkernel::SyscallResult exchange(unsigned variant, vkernel::SyscallArgs args);

  /// Wake all waiters; all current and future exchanges throw DivergenceAbort.
  void abort(Alarm alarm);
  [[nodiscard]] bool aborted() const;

  [[nodiscard]] unsigned variants() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t rounds_completed() const noexcept;

 private:
  const unsigned n_;
  const std::chrono::milliseconds arrival_timeout_;
  LeaderFn leader_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::optional<vkernel::SyscallArgs>> slots_;
  std::vector<vkernel::SyscallResult> results_;
  unsigned arrived_ = 0;
  bool executing_ = false;        // leader is running the real syscall
  std::uint64_t generation_ = 0;  // bumped when results are published
  std::uint64_t rounds_ = 0;
  bool aborted_ = false;
  Alarm abort_alarm_;
};

}  // namespace nv::core

#endif  // NV_CORE_RENDEZVOUS_H

// The N-variant MVEE: runs N variant processes in syscall lockstep over one
// simulated kernel, with input replication, output-once execution,
// unshared-file redirection, detection syscalls, and divergence monitoring.
//
// This corresponds to the modified Linux kernel of §3.1, with the same
// execution rules:
//   - system calls are synchronization points (rendezvous);
//   - wrappers canonicalize arguments (inverse reexpression) and compare;
//   - input syscalls execute once, results replicated to all variants;
//   - output syscalls are checked for equivalence and executed once;
//   - unshared files open per-variant diversified copies (§3.4);
//   - uid_value/cond_chk/cc_* compare UID meanings across variants (§3.5).
//
// Construction goes through NVariantSystem::Builder: options are validated,
// a DiversitySuite is installed (with §2.3 pairwise disjointedness already
// checked at compose time), and the resulting system is sealed — its policy
// is immutable from the first launch on. The legacy mutate-then-run protocol
// (default-construct, add_variation(), mark_unshared()) is gone: every
// NVariantSystem is Builder-made and sealed.
#ifndef NV_CORE_NVARIANT_SYSTEM_H
#define NV_CORE_NVARIANT_SYSTEM_H

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/diversity_suite.h"
#include "core/monitor.h"
#include "core/rendezvous.h"
#include "core/variation.h"
#include "obs/trace.h"
#include "util/expected.h"
#include "vfs/filesystem.h"
#include "vkernel/kernel.h"
#include "vkernel/process.h"
#include "vkernel/sockets.h"

namespace nv::core {

/// Whether the monitor may relax the per-call barrier per the descriptor
/// table's BatchPolicy. kLockstep forces a full barrier for EVERY call (the
/// paper's original §3.1 semantics, and the A/B baseline for
/// bench_syscall_overhead); kPipelined is the default: completion-class
/// calls go through the async ring and coalescible batches share one round.
enum class PipelineMode : std::uint8_t { kLockstep, kPipelined };

struct NVariantOptions {
  unsigned n_variants = 2;
  std::chrono::milliseconds rendezvous_timeout{2000};
  /// Default base for variant data segments when no variation overrides it.
  std::uint64_t default_memory_base = 0x10000000;
  std::uint64_t default_memory_size = 1 << 20;
  PipelineMode pipeline = PipelineMode::kPipelined;
};

/// Outcome of a complete N-variant run.
struct RunReport {
  bool completed = false;        // all variants exited normally
  bool attack_detected = false;  // the monitor raised at least one alarm
  std::optional<Alarm> alarm;
  std::vector<int> exit_codes;
  /// Barrier rounds (a coalesced batch counts once — this is the number of
  /// times all variants synchronized, not the number of calls).
  std::uint64_t syscall_rounds = 0;
  /// Barrier rounds that carried more than one call.
  std::uint64_t syscall_batches = 0;
  /// Calls that completed through the async completion ring (no barrier).
  std::uint64_t async_completions = 0;
};

/// Per-variant guest entry point: the function each variant thread runs.
/// Receives the variant's syscall port (already wrapped by the MVEE), its
/// process (for simulated memory access), and its construction parameters.
using VariantBody =
    std::function<void(unsigned variant, vkernel::SyscallPort& port, vkernel::Process& process,
                       const VariantConfig& config)>;

class NVariantSystem {
 public:
  /// Fluent construction with build-time validation. Typical use:
  ///
  ///   auto system = core::NVariantSystem::Builder()
  ///                     .suite(std::move(validated_suite))   // sets N too
  ///                     .rendezvous_timeout(500ms)
  ///                     .unshared("/etc/state")
  ///                     .build();                            // unique_ptr
  class Builder {
   public:
    /// Variant count; a suite() call overrides this with the suite's N.
    Builder& n_variants(unsigned n);
    Builder& rendezvous_timeout(std::chrono::milliseconds timeout);
    Builder& memory_base(std::uint64_t base);
    Builder& memory_size(std::uint64_t size);
    /// Install a validated composition (replacing any previous suite()) and
    /// adopt its variant count. Order-independent with variation(): build()
    /// merges the suite with every ad-hoc variation and re-validates.
    Builder& suite(DiversitySuite suite);
    /// Add one variation; build() composes all of them (plus any suite) into
    /// one suite and runs the pairwise disjointedness validation then.
    Builder& variation(VariationPtr variation);
    /// Mark a path unshared even without a variation requesting it.
    Builder& unshared(std::string path);
    /// Barrier relaxation mode (default kPipelined; kLockstep restores the
    /// per-call barrier everywhere — the bench baseline).
    Builder& pipeline(PipelineMode mode);
    /// Attach structured tracing: every lead() records its per-syscall-class
    /// latency into `recorder`'s histograms and emits sampled kSyscallRound
    /// events on `track`, parented to `parent_span` (the session's draw span
    /// — so rendezvous activity joins the session's causal chain). Null
    /// recorder = untraced (the default, zero overhead).
    Builder& trace(std::shared_ptr<obs::TraceRecorder> recorder, std::uint32_t track = 0,
                   std::uint64_t parent_span = 0);

    /// Validate and construct. Errors are expected failure paths: n < 2,
    /// non-positive timeout, zero memory size, or a disjointedness violation
    /// among the variations added via variation().
    [[nodiscard]] util::Expected<std::unique_ptr<NVariantSystem>, std::string> try_build();
    /// try_build() that throws std::invalid_argument on error.
    [[nodiscard]] std::unique_ptr<NVariantSystem> build();

   private:
    NVariantOptions options_;
    std::optional<DiversitySuite> suite_;
    std::vector<VariationPtr> pending_variations_;
    std::vector<std::string> unshared_;
    bool n_variants_set_ = false;
    std::shared_ptr<obs::TraceRecorder> trace_;
    std::uint32_t trace_track_ = 0;
    std::uint64_t trace_parent_ = 0;
  };

  ~NVariantSystem();

  NVariantSystem(const NVariantSystem&) = delete;
  NVariantSystem& operator=(const NVariantSystem&) = delete;

  [[nodiscard]] vfs::FileSystem& fs() noexcept { return fs_; }
  [[nodiscard]] vkernel::SocketHub& hub() noexcept { return hub_; }
  [[nodiscard]] Monitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] vkernel::KernelContext& kernel() noexcept { return ctx_; }
  [[nodiscard]] const VariantConfig& variant_config(unsigned variant) const {
    return configs_.at(variant);
  }
  [[nodiscard]] unsigned n_variants() const noexcept { return options_.n_variants; }
  [[nodiscard]] const std::vector<VariationPtr>& variations() const noexcept {
    return variations_;
  }
  /// Composed per-session fingerprint entropy: the sum of every installed
  /// variation's keyspace_bits() — how many bits of re-expression diversity
  /// this system's parameterization was drawn from (DiversitySuite composes
  /// the same sum at validation time).
  [[nodiscard]] double keyspace_bits() const;
  /// Builder-made systems reject policy mutation (the immutability contract).
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }

  /// Run `body` in every variant to completion (blocking). Each call builds
  /// fresh processes; the filesystem persists across runs.
  [[nodiscard]] RunReport run(const VariantBody& body);

  /// Start variants asynchronously (server mode); stop() interrupts blocking
  /// network syscalls via SocketHub::shutdown() and joins.
  void launch(const VariantBody& body);
  [[nodiscard]] RunReport stop();
  [[nodiscard]] bool running() const noexcept { return !threads_.empty(); }

 private:
  friend class Builder;

  /// Builder-only construction; the public path is Builder::build().
  explicit NVariantSystem(NVariantOptions options);

  void install_variation(VariationPtr variation);
  void install_unshared(std::string path);
  void install_trace(std::shared_ptr<obs::TraceRecorder> recorder, std::uint32_t track,
                     std::uint64_t parent_span);
  void seal() noexcept { sealed_ = true; }

  void prepare();
  [[nodiscard]] vkernel::SyscallResult variant_syscall(unsigned variant,
                                                       vkernel::SyscallArgs args);
  /// Guest-issued batch: completion-class calls peel off to the async ring,
  /// maximal same-class kCoalesce runs share one barrier round, everything
  /// else falls back to a per-call exchange.
  [[nodiscard]] std::vector<vkernel::SyscallResult> variant_syscall_batch(
      unsigned variant, const vkernel::SyscallBatch& batch);
  /// Completion-ring path: canonicalize here (caller thread), then publish/
  /// consume through the rendezvous without a barrier.
  [[nodiscard]] vkernel::SyscallResult async_syscall(unsigned variant,
                                                     vkernel::SyscallArgs args);
  /// Batch leader (rendezvous BatchLeaderFn): tracing at batch granularity
  /// around one lead_impl() per position.
  [[nodiscard]] std::vector<std::vector<vkernel::SyscallResult>> lead_batch(
      const std::vector<vkernel::SyscallBatch>& raw);
  /// The actual canonicalize/compare/execute/reexpress pipeline for one
  /// batch position (one SyscallArgs per variant).
  [[nodiscard]] std::vector<vkernel::SyscallResult> lead_impl(
      const std::vector<vkernel::SyscallArgs>& raw);
  [[nodiscard]] RunReport collect_report();

  // Leader-side execution helpers (run with rendezvous lock released).
  void execute_per_variant(const std::vector<vkernel::SyscallArgs>& canonical,
                           std::vector<vkernel::SyscallResult>& results);
  void execute_once(const vkernel::SyscallArgs& call, bool mirror_fd,
                    std::vector<vkernel::SyscallResult>& results);
  [[nodiscard]] std::vector<vkernel::SyscallResult> lead_open(
      const std::vector<vkernel::SyscallArgs>& canonical);
  [[nodiscard]] std::vector<vkernel::SyscallResult> lead_detection(
      const std::vector<vkernel::SyscallArgs>& canonical);
  [[nodiscard]] bool compare_canonical(const std::vector<vkernel::SyscallArgs>& canonical);
  [[nodiscard]] bool fd_is_shared(os::fd_t fd) const;
  [[nodiscard]] static std::optional<os::fd_t> routed_fd(const vkernel::SyscallArgs& call);
  void mark_fd(os::fd_t fd, bool shared);
  void mirror_fd_into_variants(os::fd_t fd);

  class VariantPort;

  NVariantOptions options_;
  vfs::FileSystem fs_;
  vkernel::SocketHub hub_;
  vkernel::KernelContext ctx_;
  Monitor monitor_;
  std::set<std::string> unshared_;
  std::vector<VariationPtr> variations_;
  std::vector<VariantConfig> configs_;
  std::vector<std::unique_ptr<vkernel::Process>> procs_;
  std::vector<bool> shared_fds_;  // slot -> shared? (kept slot-synchronized)
  std::unique_ptr<SyscallRendezvous> rendezvous_;
  std::vector<std::jthread> threads_;
  bool prepared_ = false;
  bool sealed_ = false;

  /// Structured tracing (Builder::trace): per-syscall-class lead() latency
  /// histograms + sampled kSyscallRound events. Null = untraced.
  std::shared_ptr<obs::TraceRecorder> trace_;
  std::uint32_t trace_track_ = 0;
  std::uint64_t trace_parent_ = 0;
  std::array<std::uint32_t, 6> class_histograms_{};  // one per vkernel::SysClass
};

}  // namespace nv::core

#endif  // NV_CORE_NVARIANT_SYSTEM_H

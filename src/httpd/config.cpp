#include "httpd/config.h"

#include "util/strings.h"

namespace nv::httpd {

ServerConfig ServerConfig::parse(std::string_view text) {
  ServerConfig config;
  for (const auto& raw_line : util::split(text, '\n')) {
    const std::string_view line = util::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const auto tokens = util::split_ws(line);
    if (tokens.size() < 2) continue;
    const std::string key = util::to_lower(tokens[0]);
    const std::string& value = tokens[1];
    if (key == "listen") {
      if (auto port = util::parse_u64(value)) config.listen_port = static_cast<std::uint16_t>(*port);
    } else if (key == "user") {
      config.user = value;
    } else if (key == "group") {
      config.group = value;
    } else if (key == "documentroot") {
      config.document_root = value;
    } else if (key == "errorlog") {
      config.error_log = value;
    } else if (key == "protected") {
      config.protected_prefix = value;
    } else if (key == "loguidinerrors") {
      config.log_uid_in_errors = util::to_lower(value) == "on";
    } else if (key == "uidopsmode") {
      const std::string mode = util::to_lower(value);
      if (mode == "plain") config.uid_ops_mode = guest::UidOpsMode::kPlain;
      else if (mode == "userspace") config.uid_ops_mode = guest::UidOpsMode::kUserSpaceReversed;
      else config.uid_ops_mode = guest::UidOpsMode::kSyscallChecked;
    } else if (key == "maxrequests") {
      if (auto n = util::parse_u64(value)) config.max_requests = static_cast<std::uint32_t>(*n);
    } else if (key == "headerbuffersize") {
      if (auto n = util::parse_u64(value)) config.header_buffer_size = static_cast<std::uint32_t>(*n);
    }
  }
  return config;
}

std::string ServerConfig::serialize() const {
  std::string out;
  out += util::format("Listen %u\n", listen_port);
  out += "User " + user + "\n";
  out += "Group " + group + "\n";
  out += "DocumentRoot " + document_root + "\n";
  out += "ErrorLog " + error_log + "\n";
  out += "Protected " + protected_prefix + "\n";
  out += util::format("LogUidInErrors %s\n", log_uid_in_errors ? "on" : "off");
  switch (uid_ops_mode) {
    case guest::UidOpsMode::kPlain: out += "UidOpsMode plain\n"; break;
    case guest::UidOpsMode::kSyscallChecked: out += "UidOpsMode syscall\n"; break;
    case guest::UidOpsMode::kUserSpaceReversed: out += "UidOpsMode userspace\n"; break;
  }
  out += util::format("MaxRequests %u\n", max_requests);
  out += util::format("HeaderBufferSize %u\n", header_buffer_size);
  return out;
}

}  // namespace nv::httpd

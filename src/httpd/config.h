// httpd.conf parsing for the mini web server (Apache-style directives).
#ifndef NV_HTTPD_CONFIG_H
#define NV_HTTPD_CONFIG_H

#include <cstdint>
#include <string>
#include <string_view>

#include "guest/uid_ops.h"

namespace nv::httpd {

struct ServerConfig {
  std::uint16_t listen_port = 8080;
  std::string user = "www";
  std::string group = "www";
  std::string document_root = "/var/www";
  std::string error_log = "/var/log/httpd-error.log";
  /// Path prefix that requires privilege escalation to serve (the root-owned
  /// resource motivating the setuid dance).
  std::string protected_prefix = "/secret";
  /// Reproduces the §4 complication: when true, error-log lines include the
  /// numeric UID, which diverges across variants and triggers a benign alarm.
  /// The paper's workaround ("removing the user id value from the log
  /// output") is the default.
  bool log_uid_in_errors = false;
  /// Which §3.3 transformation mode the server was "built" with.
  guest::UidOpsMode uid_ops_mode = guest::UidOpsMode::kSyscallChecked;
  /// Serve at most this many requests, then exit (0 = run until interrupted).
  std::uint32_t max_requests = 0;
  /// Size of the (deliberately unchecked) header copy buffer in simulated
  /// memory — the Chen-style non-control-data vulnerability.
  std::uint32_t header_buffer_size = 256;

  [[nodiscard]] static ServerConfig parse(std::string_view text);
  [[nodiscard]] std::string serialize() const;
};

}  // namespace nv::httpd

#endif  // NV_HTTPD_CONFIG_H

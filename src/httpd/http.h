// Minimal HTTP/1.0 request/response handling for the mini web server.
#ifndef NV_HTTPD_HTTP_H
#define NV_HTTPD_HTTP_H

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace nv::httpd {

struct HttpRequest {
  std::string method;
  std::string path;
  std::string version;
  std::map<std::string, std::string> headers;  // lower-cased names

  [[nodiscard]] std::string header(std::string_view name) const;
};

/// Parse the request head (start line + headers). Returns nullopt on
/// malformed input.
[[nodiscard]] std::optional<HttpRequest> parse_request(std::string_view head);

/// Serialize an HTTP/1.0 response with Content-Length and Connection: close.
[[nodiscard]] std::string format_response(int status, std::string_view body,
                                          std::string_view content_type = "text/plain");

/// Just the head (start line + headers + blank line) for a body of
/// `body_size` bytes: servers write head and body as separate chunks of one
/// batched write instead of concatenating them into a fresh string.
[[nodiscard]] std::string format_response_head(int status, std::size_t body_size,
                                               std::string_view content_type = "text/plain");

[[nodiscard]] std::string_view status_text(int status) noexcept;

/// Build a request head (used by clients / workload generators).
[[nodiscard]] std::string format_request(std::string_view method, std::string_view path,
                                         const std::map<std::string, std::string>& headers = {});

/// Split a raw response into (status, body). Returns status -1 on garbage.
struct HttpResponse {
  int status = -1;
  std::map<std::string, std::string> headers;
  std::string body;
};
[[nodiscard]] HttpResponse parse_response(std::string_view raw);

}  // namespace nv::httpd

#endif  // NV_HTTPD_HTTP_H

#include "httpd/mini_httpd.h"

#include "util/strings.h"

namespace nv::httpd {

using guest::GuestContext;
using guest::UidOps;

namespace {

/// Read from `conn` until the end of the HTTP head or EOF.
std::string read_head(GuestContext& ctx, os::fd_t conn) {
  std::string head;
  while (head.find("\r\n\r\n") == std::string::npos) {
    auto chunk = ctx.read(conn, 4096);
    if (!chunk || chunk->empty()) break;
    head += *chunk;
    if (head.size() > (1u << 20)) break;  // refuse absurd heads
  }
  return head;
}

}  // namespace

void MiniHttpd::run(GuestContext& ctx) {
  ServerState state;

  auto conf_text = ctx.read_file(config_path_);
  if (!conf_text) ctx.exit(2);
  state.config = ServerConfig::parse(*conf_text);

  UidOps ops(ctx, state.config.uid_ops_mode);

  auto log_fd = ctx.open(state.config.error_log,
                         os::OpenFlags::kWrite | os::OpenFlags::kCreate | os::OpenFlags::kAppend,
                         0640);
  if (!log_fd) ctx.exit(2);
  state.log_fd = *log_fd;

  // Resolve worker identity from the (possibly unshared) passwd/group files.
  const auto pw = ctx.getpwnam(state.config.user);
  const auto gr = ctx.getgrnam(state.config.group);
  if (!pw || !gr) {
    log_error(ctx, state, "unknown User/Group in configuration");
    ctx.exit(2);
  }
  state.worker_uid = pw->uid;  // variant representation (diversified file)
  state.worker_gid = gr->gid;

  // Network setup while still root (privileged port semantics).
  auto listen_fd = ctx.socket();
  if (!listen_fd) ctx.exit(2);
  state.listen_fd = *listen_fd;
  if (ctx.bind(state.listen_fd, state.config.listen_port) != os::Errno::kOk) {
    log_error(ctx, state, "bind failed");
    ctx.exit(2);
  }
  if (ctx.listen(state.listen_fd) != os::Errno::kOk) ctx.exit(2);

  // The vulnerable layout: header buffer immediately followed by the stored
  // worker UID that privilege restoration reads back.
  state.buffer_addr = ctx.alloc(state.config.header_buffer_size + 4);
  state.uid_addr = state.buffer_addr + state.config.header_buffer_size;
  ctx.memory().store_u32(state.uid_addr, state.worker_uid);

  // Drop privileges for request handling. Saved UID stays root so the
  // protected-resource path can escalate (the Apache/wu-ftpd pattern that
  // Chen et al.'s non-control-data attack exploits).
  if (ctx.setgroups({state.worker_gid}) != os::Errno::kOk ||
      ctx.setegid(state.worker_gid) != os::Errno::kOk ||
      ctx.seteuid(state.worker_uid) != os::Errno::kOk) {
    log_error(ctx, state, "privilege drop failed");
    ctx.exit(2);
  }

  while (true) {
    auto conn = ctx.accept(state.listen_fd);
    if (!conn) break;  // EINTR on shutdown
    handle_connection(ctx, ops, state, *conn);
    (void)ctx.close(*conn);
    ++state.requests_served;
    if (state.config.max_requests != 0 && state.requests_served >= state.config.max_requests) {
      break;
    }
  }

  (void)ctx.close(state.listen_fd);
  (void)ctx.close(state.log_fd);
  ctx.exit(0);
}

void MiniHttpd::handle_connection(GuestContext& ctx, UidOps& ops, ServerState& state,
                                  os::fd_t conn) {
  const std::string head = read_head(ctx, conn);
  const auto request = parse_request(head);
  if (!request || request->method != "GET") {
    (void)ctx.write(conn, format_response(400, "bad request\n"));
    log_error(ctx, state, "malformed request");
    return;
  }

  // THE VULNERABILITY: copy the User-Agent into the fixed-size simulated-
  // memory buffer without a bounds check. A longer value runs over the
  // stored worker UID at buffer_addr + header_buffer_size.
  const std::string agent = request->header("user-agent");
  for (std::size_t i = 0; i < agent.size(); ++i) {
    ctx.memory().store_u8(state.buffer_addr + i, static_cast<std::uint8_t>(agent[i]));
  }

  serve_request(ctx, ops, state, conn, *request);
}

void MiniHttpd::serve_request(GuestContext& ctx, UidOps& ops, ServerState& state, os::fd_t conn,
                              const HttpRequest& request) {
  if (request.path == "/whoami") {
    // Compare — never print — the UID (printing raw UIDs diverges across
    // variants; see the error-log discussion in §4).
    const bool root = ops.is_root(ctx.geteuid());
    (void)ctx.write(conn, format_response(200, root ? "root\n" : "user\n"));
    return;
  }

  if (request.path.starts_with(state.config.protected_prefix)) {
    serve_protected(ctx, ops, state, conn, request);
    return;
  }

  std::string path = state.config.document_root + request.path;
  if (request.path == "/") path = state.config.document_root + "/index.html";
  auto content = ctx.read_file(path);
  if (!content) {
    (void)ctx.write(conn, format_response(404, "not found\n"));
    log_error(ctx, state, "file not found: " + request.path);
    return;
  }
  // Head and body go out as one batched write: a single rendezvous round
  // under the MVEE, and no head+body concatenation copy.
  (void)ctx.write_batch(conn,
                        {format_response_head(200, content->size(), "text/html"), *content});
}

void MiniHttpd::serve_protected(GuestContext& ctx, UidOps& ops, ServerState& state, os::fd_t conn,
                                const HttpRequest& request) {
  // Escalate to root for the protected resource.
  if (ctx.seteuid(ctx.uid_const(os::kRootUid)) != os::Errno::kOk) {
    (void)ctx.write(conn, format_response(500, "escalation failed\n"));
    log_error(ctx, state, "seteuid(root) failed");
    return;
  }

  std::string path = state.config.document_root + request.path;
  auto content = ctx.read_file(path);

  // Restore the worker UID from simulated memory — the value the attacker
  // may have corrupted. check_value() is the uid_value() exposure point
  // (§3.5): under the UID variation, a corrupted-but-identical value has
  // different meanings per variant and the monitor raises an alarm here,
  // BEFORE the corrupted UID is installed.
  os::uid_t restore_uid = ctx.memory().load_u32(state.uid_addr);
  restore_uid = ops.check_value(restore_uid);
  if (ctx.seteuid(restore_uid) != os::Errno::kOk) {
    log_error(ctx, state, "privilege restore failed");
    (void)ctx.write(conn, format_response(500, "restore failed\n"));
    return;
  }

  if (!content) {
    (void)ctx.write(conn, format_response(404, "not found\n"));
    log_error(ctx, state, "protected file missing: " + request.path);
    return;
  }
  (void)ctx.write_batch(conn,
                        {format_response_head(200, content->size(), "text/plain"), *content});
}

void MiniHttpd::log_error(GuestContext& ctx, ServerState& state, std::string_view message) {
  if (state.log_fd < 0) return;
  std::string line = "[error] ";
  line += message;
  if (state.config.log_uid_in_errors) {
    // The §4 complication, left in deliberately as a configuration option:
    // the numeric euid differs across variants, so writing it to the shared
    // log file diverges and the monitor (correctly, by its rules) alarms.
    line += util::format(" (euid=%u)", ctx.geteuid());
  }
  line += "\n";
  (void)ctx.write(state.log_fd, line);
}

ServerConfig install_default_site(vfs::FileSystem& fs, const ServerConfig& config) {
  const os::Credentials root = os::Credentials::root();
  (void)fs.mkdir_p("/etc", root);
  (void)fs.mkdir_p("/var/log", root);
  (void)fs.mkdir_p(config.document_root, root);

  (void)fs.write_file("/etc/passwd",
                      "root:x:0:0:root:/root:/bin/sh\n"
                      "daemon:x:1:1:daemon:/usr/sbin:/usr/sbin/nologin\n"
                      "www:x:33:33:www-data:/var/www:/usr/sbin/nologin\n"
                      "alice:x:1000:1000:Alice:/home/alice:/bin/sh\n"
                      "bob:x:1001:1001:Bob:/home/bob:/bin/sh\n",
                      root, 0644);
  (void)fs.write_file("/etc/group",
                      "root:x:0:\n"
                      "daemon:x:1:\n"
                      "www:x:33:\n"
                      "users:x:100:alice,bob\n",
                      root, 0644);
  (void)fs.write_file("/etc/httpd.conf", config.serialize(), root, 0644);

  (void)fs.write_file(config.document_root + "/index.html",
                      "<html><body>It works!</body></html>\n", root, 0644);
  (void)fs.write_file(config.document_root + "/page1.html",
                      "<html><body>page one</body></html>\n", root, 0644);
  (void)fs.write_file(config.document_root + "/page2.html",
                      "<html><body>page two</body></html>\n", root, 0644);
  // Protected resource: root-only, readable solely while escalated.
  (void)fs.mkdir_p(config.document_root + config.protected_prefix, root);
  (void)fs.write_file(config.document_root + config.protected_prefix + "/key.txt",
                      "TOP-SECRET-KEY\n", root, 0600);
  return config;
}

}  // namespace nv::httpd

#include "httpd/http.h"

#include "util/strings.h"

namespace nv::httpd {

std::string HttpRequest::header(std::string_view name) const {
  const auto it = headers.find(util::to_lower(name));
  return it == headers.end() ? std::string{} : it->second;
}

std::optional<HttpRequest> parse_request(std::string_view head) {
  const auto lines = util::split(head, '\n');
  if (lines.empty()) return std::nullopt;
  const auto first = util::split_ws(util::trim(lines[0]));
  if (first.size() < 2) return std::nullopt;
  HttpRequest request;
  request.method = first[0];
  request.path = first[1];
  request.version = first.size() > 2 ? first[2] : "HTTP/1.0";
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = util::trim(lines[i]);
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    request.headers[util::to_lower(util::trim(line.substr(0, colon)))] =
        std::string(util::trim(line.substr(colon + 1)));
  }
  return request;
}

std::string_view status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

std::string format_response_head(int status, std::size_t body_size,
                                 std::string_view content_type) {
  std::string out = util::format("HTTP/1.0 %d %s\r\n", status,
                                 std::string(status_text(status)).c_str());
  out += util::format("Content-Type: %s\r\n", std::string(content_type).c_str());
  out += util::format("Content-Length: %zu\r\n", body_size);
  out += "Connection: close\r\n\r\n";
  return out;
}

std::string format_response(int status, std::string_view body, std::string_view content_type) {
  std::string out = format_response_head(status, body.size(), content_type);
  out += body;
  return out;
}

std::string format_request(std::string_view method, std::string_view path,
                           const std::map<std::string, std::string>& headers) {
  std::string out;
  out += method;
  out += " ";
  out += path;
  out += " HTTP/1.0\r\n";
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  return out;
}

HttpResponse parse_response(std::string_view raw) {
  HttpResponse response;
  const std::size_t head_end = raw.find("\r\n\r\n");
  const std::string_view head = head_end == std::string_view::npos ? raw : raw.substr(0, head_end);
  const auto lines = util::split(head, '\n');
  if (lines.empty()) return response;
  const auto first = util::split_ws(util::trim(lines[0]));
  if (first.size() >= 2) {
    if (auto status = util::parse_i64(first[1])) response.status = static_cast<int>(*status);
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = util::trim(lines[i]);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    response.headers[util::to_lower(util::trim(line.substr(0, colon)))] =
        std::string(util::trim(line.substr(colon + 1)));
  }
  if (head_end != std::string_view::npos) response.body = std::string(raw.substr(head_end + 4));
  return response;
}

}  // namespace nv::httpd

// mini-ftpd: a second case-study server, modelled on the wu-ftpd pattern
// Chen et al. [12] actually attacked. Sessions authenticate against
// /etc/passwd (+ a shared secrets file), then the daemon switches its
// effective UID to the logged-in user for file access — keeping saved-root
// so the next session can switch again.
//
// The deliberate vulnerability mirrors wu-ftpd's SITE EXEC bug: the SITE
// argument is copied into a fixed simulated-memory buffer with no bounds
// check, directly below the stored session UID. REIN ("reinitialize")
// escalates to root and re-installs that (possibly corrupted) UID — the
// non-control-data attack path.
//
// Protocol (one command per line, deliberately tiny):
//   USER <name>        -> "331 need password" | "530 unknown user"
//   PASS <secret>      -> "230 logged in"     | "530 denied"
//   RETR <path>        -> "150 <contents>"    | "550 denied"
//   SITE <arg>         -> "200 site ok"         (vulnerable copy)
//   REIN               -> "220 reinitialized"   (escalate + restore UID)
//   WHOAMI             -> "211 root" | "211 user"   (comparisons only)
//   QUIT               -> "221 bye"
#ifndef NV_HTTPD_MINI_FTPD_H
#define NV_HTTPD_MINI_FTPD_H

#include "guest/guest_program.h"
#include "guest/uid_ops.h"

namespace nv::httpd {

struct FtpdConfig {
  std::uint16_t listen_port = 2121;
  std::string secrets_path = "/etc/ftpd.secrets";  // "name:password" lines
  std::uint32_t command_buffer_size = 128;
  std::uint32_t max_sessions = 0;  // 0 = until interrupted
  guest::UidOpsMode uid_ops_mode = guest::UidOpsMode::kSyscallChecked;
};

class MiniFtpd final : public guest::GuestProgram {
 public:
  explicit MiniFtpd(FtpdConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string_view name() const override { return "mini-ftpd"; }
  void run(guest::GuestContext& ctx) override;

 private:
  struct Session {
    std::uint64_t buffer_addr = 0;  // SITE argument buffer
    std::uint64_t uid_addr = 0;     // stored session UID (right after buffer)
    bool authenticated = false;
    std::string pending_user;
  };

  void serve_session(guest::GuestContext& ctx, guest::UidOps& ops, os::fd_t conn,
                     Session& session);
  /// Handle one command line; returns false when the session should end.
  bool handle_command(guest::GuestContext& ctx, guest::UidOps& ops, os::fd_t conn,
                      Session& session, const std::string& line);

  FtpdConfig config_;
};

/// Seed a filesystem for mini-ftpd: users, secrets, home files, and a
/// root-only file for compromise probes.
void install_ftpd_site(vfs::FileSystem& fs, const FtpdConfig& config = {});

}  // namespace nv::httpd

#endif  // NV_HTTPD_MINI_FTPD_H

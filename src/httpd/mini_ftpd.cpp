#include "httpd/mini_ftpd.h"

#include "util/strings.h"

namespace nv::httpd {

using guest::GuestContext;
using guest::UidOps;

namespace {

/// Read one CRLF/LF-terminated line from the connection.
std::string read_line(GuestContext& ctx, os::fd_t conn) {
  std::string line;
  while (true) {
    auto chunk = ctx.read(conn, 1);
    if (!chunk || chunk->empty()) return line;  // EOF/interrupt
    if ((*chunk)[0] == '\n') return line;
    if ((*chunk)[0] != '\r') line += (*chunk)[0];
    if (line.size() > 4096) return line;  // refuse absurd lines
  }
}

void reply(GuestContext& ctx, os::fd_t conn, std::string_view text) {
  (void)ctx.write(conn, std::string(text) + "\r\n");
}

/// Look up a user's password in the secrets file ("name:password" lines).
std::optional<std::string> password_for(GuestContext& ctx, const std::string& path,
                                        const std::string& user) {
  auto content = ctx.read_file(path);
  if (!content) return std::nullopt;
  for (const auto& line : util::split(*content, '\n')) {
    const auto fields = util::split(line, ':');
    if (fields.size() >= 2 && fields[0] == user) return fields[1];
  }
  return std::nullopt;
}

}  // namespace

void MiniFtpd::run(GuestContext& ctx) {
  auto listen_fd = ctx.socket();
  if (!listen_fd) ctx.exit(2);
  if (ctx.bind(*listen_fd, config_.listen_port) != os::Errno::kOk) ctx.exit(2);
  if (ctx.listen(*listen_fd) != os::Errno::kOk) ctx.exit(2);

  UidOps ops(ctx, config_.uid_ops_mode);

  // Per-daemon command buffer and session-UID slot: buffer first, UID right
  // after it — the wu-ftpd-style layout the SITE copy can overrun.
  Session session;
  session.buffer_addr = ctx.alloc(config_.command_buffer_size + 4);
  session.uid_addr = session.buffer_addr + config_.command_buffer_size;

  std::uint32_t sessions = 0;
  while (true) {
    auto conn = ctx.accept(*listen_fd);
    if (!conn) break;  // interrupted
    serve_session(ctx, ops, *conn, session);
    (void)ctx.close(*conn);
    ++sessions;
    if (config_.max_sessions != 0 && sessions >= config_.max_sessions) break;
  }
  (void)ctx.close(*listen_fd);
  ctx.exit(0);
}

void MiniFtpd::serve_session(GuestContext& ctx, UidOps& ops, os::fd_t conn, Session& session) {
  reply(ctx, conn, "220 mini-ftpd ready");
  while (true) {
    const std::string line = read_line(ctx, conn);
    if (line.empty()) return;  // disconnect
    if (!handle_command(ctx, ops, conn, session, line)) return;
  }
}

bool MiniFtpd::handle_command(GuestContext& ctx, UidOps& ops, os::fd_t conn, Session& session,
                              const std::string& line) {
  const auto tokens = util::split_ws(line);
  if (tokens.empty()) return true;
  const std::string verb = util::to_lower(tokens[0]);
  const std::string arg = tokens.size() > 1
                              ? std::string(util::trim(line.substr(line.find(tokens[1]))))
                              : std::string{};

  if (verb == "user") {
    const auto pw = ctx.getpwnam(arg);
    if (!pw) {
      reply(ctx, conn, "530 unknown user");
      return true;
    }
    session.pending_user = arg;
    reply(ctx, conn, "331 need password");
    return true;
  }

  if (verb == "pass") {
    const auto expected = password_for(ctx, config_.secrets_path, session.pending_user);
    const auto pw = ctx.getpwnam(session.pending_user);
    if (!expected || !pw || *expected != arg) {
      reply(ctx, conn, "530 denied");
      return true;
    }
    // The wu-ftpd pattern: remember the session identity in memory and
    // switch effective UID to it (saved-root retained for later sessions).
    ctx.memory().store_u32(session.uid_addr, pw->uid);
    if (ctx.setegid(pw->gid) != os::Errno::kOk ||
        ctx.seteuid(pw->uid) != os::Errno::kOk) {
      reply(ctx, conn, "530 cannot switch identity");
      return true;
    }
    session.authenticated = true;
    reply(ctx, conn, "230 logged in");
    return true;
  }

  if (verb == "retr") {
    if (!session.authenticated) {
      reply(ctx, conn, "530 not logged in");
      return true;
    }
    auto content = ctx.read_file(arg);
    if (!content) {
      reply(ctx, conn, "550 denied");
      return true;
    }
    reply(ctx, conn, "150 " + *content);
    return true;
  }

  if (verb == "site") {
    // THE VULNERABILITY (wu-ftpd SITE EXEC analog): unbounded copy of the
    // argument into the fixed buffer that sits just below the session UID.
    for (std::size_t i = 0; i < arg.size(); ++i) {
      ctx.memory().store_u8(session.buffer_addr + i, static_cast<std::uint8_t>(arg[i]));
    }
    reply(ctx, conn, "200 site ok");
    return true;
  }

  if (verb == "rein") {
    // Reinitialize: escalate, then re-install the stored session UID — the
    // value the attacker may have corrupted. check_value() is the §3.5
    // uid_value exposure; the seteuid boundary is the fallback detector.
    if (ctx.seteuid(ctx.uid_const(os::kRootUid)) != os::Errno::kOk) {
      reply(ctx, conn, "421 cannot reinitialize");
      return true;
    }
    os::uid_t session_uid = ctx.memory().load_u32(session.uid_addr);
    session_uid = ops.check_value(session_uid);
    (void)ctx.seteuid(session_uid);
    reply(ctx, conn, "220 reinitialized");
    return true;
  }

  if (verb == "whoami") {
    reply(ctx, conn, ops.is_root(ctx.geteuid()) ? "211 root" : "211 user");
    return true;
  }

  if (verb == "quit") {
    reply(ctx, conn, "221 bye");
    return false;
  }

  reply(ctx, conn, "502 not implemented");
  return true;
}

void install_ftpd_site(vfs::FileSystem& fs, const FtpdConfig& config) {
  const os::Credentials root = os::Credentials::root();
  (void)fs.mkdir_p("/etc", root);
  (void)fs.mkdir_p("/home/alice", root);
  (void)fs.mkdir_p("/home/bob", root);
  (void)fs.write_file("/etc/passwd",
                      "root:x:0:0:root:/root:/bin/sh\n"
                      "alice:x:1000:1000:Alice:/home/alice:/bin/sh\n"
                      "bob:x:1001:1001:Bob:/home/bob:/bin/sh\n",
                      root, 0644);
  (void)fs.write_file("/etc/group", "root:x:0:\nalice:x:1000:\nbob:x:1001:\n", root, 0644);
  (void)fs.write_file(config.secrets_path, "alice:wonderland\nbob:builder\n", root, 0644);
  (void)fs.write_file("/home/alice/notes.txt", "alice's notes\n", root, 0644);
  (void)fs.chown("/home/alice/notes.txt", 1000, 1000, root);
  (void)fs.chmod("/home/alice/notes.txt", 0600, root);
  (void)fs.write_file("/home/bob/todo.txt", "bob's todo\n", root, 0644);
  (void)fs.chown("/home/bob/todo.txt", 1001, 1001, root);
  (void)fs.chmod("/home/bob/todo.txt", 0600, root);
  (void)fs.write_file("/etc/master.key", "ROOT-ONLY-KEY\n", root, 0600);
}

}  // namespace nv::httpd

#include "httpd/client.h"

namespace nv::httpd {

HttpResponse http_get(vkernel::SocketHub& hub, std::uint16_t port, const std::string& path,
                      const std::map<std::string, std::string>& headers) {
  auto conn = hub.connect(port);
  if (!conn) return HttpResponse{};
  auto sent = conn->send(format_request("GET", path, headers));
  if (!sent) {
    conn->close();
    return HttpResponse{};
  }
  std::string raw;
  while (true) {
    auto chunk = conn->recv(4096);
    if (!chunk || chunk->empty()) break;
    raw += *chunk;
  }
  conn->close();
  return parse_response(raw);
}

}  // namespace nv::httpd

// Host-side HTTP client over the simulated network: drives the server from
// tests, benches, and attack campaigns (it plays the WebBench/attacker role).
#ifndef NV_HTTPD_CLIENT_H
#define NV_HTTPD_CLIENT_H

#include <map>
#include <string>

#include "httpd/http.h"
#include "vkernel/sockets.h"

namespace nv::httpd {

/// Blocking GET against the simulated hub; returns the parsed response
/// (status -1 on connection failure).
[[nodiscard]] HttpResponse http_get(vkernel::SocketHub& hub, std::uint16_t port,
                                    const std::string& path,
                                    const std::map<std::string, std::string>& headers = {});

}  // namespace nv::httpd

#endif  // NV_HTTPD_CLIENT_H

// mini-Apache: the §4 case-study server as a guest program.
//
// Reproduces the UID usage patterns of the Apache case study:
//   - reads /etc/httpd.conf, opens an error log, binds its port as root;
//   - resolves User/Group via /etc/passwd + /etc/group (unshared files under
//     the UID variation, so each variant reads its own diversified copy);
//   - drops privileges for request handling (seteuid to the worker UID,
//     keeping saved-UID root so it can escalate for protected resources);
//   - escalates to root around protected-resource serving and then RESTORES
//     the worker UID from a value stored in simulated memory.
//
// The server carries a deliberate Chen-et-al-style non-control-data
// vulnerability: the User-Agent header is copied into a fixed-size buffer in
// simulated memory with no bounds check, and the stored worker UID lives
// directly after that buffer. An overlong header therefore corrupts the UID
// that the privilege-restore path will install — the exact attack class §3
// is designed to thwart.
#ifndef NV_HTTPD_MINI_HTTPD_H
#define NV_HTTPD_MINI_HTTPD_H

#include "guest/guest_program.h"
#include "guest/uid_ops.h"
#include "httpd/config.h"
#include "httpd/http.h"

namespace nv::httpd {

class MiniHttpd final : public guest::GuestProgram {
 public:
  explicit MiniHttpd(std::string config_path = "/etc/httpd.conf")
      : config_path_(std::move(config_path)) {}

  [[nodiscard]] std::string_view name() const override { return "mini-httpd"; }

  void run(guest::GuestContext& ctx) override;

 private:
  struct ServerState {
    ServerConfig config;
    os::fd_t log_fd = -1;
    os::fd_t listen_fd = -1;
    std::uint64_t buffer_addr = 0;  // header copy buffer (simulated memory)
    std::uint64_t uid_addr = 0;     // stored worker UID (right after buffer)
    os::uid_t worker_uid = 0;       // variant representation
    os::gid_t worker_gid = 0;
    std::uint32_t requests_served = 0;
  };

  void handle_connection(guest::GuestContext& ctx, guest::UidOps& ops, ServerState& state,
                         os::fd_t conn);
  void serve_request(guest::GuestContext& ctx, guest::UidOps& ops, ServerState& state,
                     os::fd_t conn, const HttpRequest& request);
  void serve_protected(guest::GuestContext& ctx, guest::UidOps& ops, ServerState& state,
                       os::fd_t conn, const HttpRequest& request);
  void log_error(guest::GuestContext& ctx, ServerState& state, std::string_view message);

  std::string config_path_;
};

/// Seed a filesystem with everything mini-httpd needs: /etc/passwd,
/// /etc/group, httpd.conf, a document root with sample pages, and a
/// root-owned protected file. Returns the parsed config for convenience.
ServerConfig install_default_site(vfs::FileSystem& fs, const ServerConfig& config = {});

}  // namespace nv::httpd

#endif  // NV_HTTPD_MINI_HTTPD_H

// Deterministic open-workload generator: the arrival side of the load
// harness (load/harness.h drives the schedule into a real VariantFleet).
//
// This is the promotion of src/perf/webbench's ANALYTIC workload into one a
// real fleet can serve: Poisson arrivals from a seeded util::Rng stream on
// src/sim's integer-nanosecond time base, a heavy-tailed httpd/ftpd request
// mix (bounded-Pareto service demands — web traffic's "many small pages, a
// few huge transfers" shape), and an attacker-fraction dial that swaps a
// random subset of arrivals for attack probes (fixed signature, so the
// CampaignCorrelator can fold them into one campaign).
//
// Millions-of-users scaling: a Poisson process at aggregate rate λ is
// statistically identical to the superposition of `client_population`
// per-user processes at rate λ/population (thinning/superposition), so the
// stream stands in for an arbitrarily large population; `client_lanes` is
// the scaled-down lane count arrivals are attributed to (closed-loop mode
// gives each lane its own think-time stream).
//
// Everything is drawn from one explicitly-seeded generator in arrival
// order: the same config produces a byte-identical schedule
// (serialize(generate(cfg))), which is the reproducibility contract
// tests/test_load_harness.cpp pins.
#ifndef NV_LOAD_WORKLOAD_H
#define NV_LOAD_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "util/rng.h"

namespace nv::load {

/// Request classes of the heavy-tailed mix. kAttack is not part of the mix
/// weights — the attacker-fraction dial replaces benign arrivals in place.
enum class RequestClass : std::uint8_t {
  kHttpSmall = 0,   // cached page / small static asset
  kHttpHeavy = 1,   // dynamic page / large asset (bounded-Pareto tail)
  kFtpTransfer = 2, // bulk transfer (the heaviest tail)
  kAttack = 3,      // diversity probe: detected + quarantined by the fleet
};

[[nodiscard]] const char* to_string(RequestClass klass) noexcept;

/// One scheduled request. Times are sim::SimTime (integer ns) offsets from
/// the run start, converted onto the harness's ManualClock at submit time.
struct Arrival {
  sim::SimTime at = 0;       // arrival offset from run start
  sim::SimTime service = 0;  // virtual service demand once a lane picks it up
  RequestClass klass = RequestClass::kHttpSmall;
  std::uint64_t client = 0;  // originating (scaled) client lane
};

struct WorkloadConfig {
  std::uint64_t seed = 0x10ad;
  /// Aggregate Poisson arrival rate (requests per second of virtual time).
  double offered_per_sec = 50.0;
  /// Arrival horizon: requests are generated while t < duration.
  sim::SimTime duration = 5 * sim::kSecond;
  /// Fraction of arrivals replaced by attack probes (0 = all benign).
  double attacker_fraction = 0.0;
  /// The user population this stream stands in for (documentation + scaling
  /// reports; the aggregate-rate Poisson stream is exact for any population).
  std::uint64_t client_population = 1'000'000;
  /// Scaled client lanes arrivals are attributed to.
  unsigned client_lanes = 64;

  /// Heavy-tailed mix weights (normalized internally; must sum > 0).
  double http_small_weight = 0.70;
  double http_heavy_weight = 0.25;
  double ftp_weight = 0.05;

  /// Service demands. Small requests are near-constant; heavy/ftp are
  /// bounded Pareto [min, cap] with tail index alpha.
  sim::SimTime http_small_service = 4 * sim::kMillisecond;
  sim::SimTime heavy_service_min = 10 * sim::kMillisecond;
  sim::SimTime heavy_service_cap = 400 * sim::kMillisecond;
  double heavy_alpha = 1.3;
  sim::SimTime ftp_service_min = 40 * sim::kMillisecond;
  sim::SimTime ftp_service_cap = 1500 * sim::kMillisecond;
  double ftp_alpha = 1.1;
  /// Attack probes are cheap for the attacker — the cost is the fleet's
  /// quarantine + respawn, not the probe itself.
  sim::SimTime attack_service = 2 * sim::kMillisecond;

  /// Analytic mean service demand E[S] of the mix (ms), attacker fraction
  /// included — the denominator of the offered-load computation below.
  [[nodiscard]] double mean_service_ms() const;
};

/// Offered load rho = lambda * E[S] / pool: arrivals per second times mean
/// service seconds, normalized by the serving lanes. rho < 1 is a stable
/// queue; past 1 only admission control keeps latency finite.
[[nodiscard]] double offered_rho(const WorkloadConfig& config, unsigned pool_size);

/// The arrival rate that realizes a target rho at `pool_size` lanes.
[[nodiscard]] double rate_for_rho(const WorkloadConfig& config, double rho,
                                  unsigned pool_size);

/// Draw one request's class and service demand (arrival time and client are
/// left at zero) — the per-arrival core of generate(), exposed so the closed
/// loop can draw i.i.d. requests from each client's own Rng stream. Applies
/// the attacker-fraction dial, the mix weights, and the millisecond clamp.
[[nodiscard]] Arrival draw_request(const WorkloadConfig& config, util::Rng& rng);

/// Generate the full schedule (sorted by arrival time by construction).
/// Deterministic: one seeded stream, drawn in arrival order.
[[nodiscard]] std::vector<Arrival> generate(const WorkloadConfig& config);

/// Canonical text form of a schedule, for reproducibility hashes and the
/// byte-identical test: one "t=<ns> class=<name> service=<ns> client=<id>"
/// line per arrival.
[[nodiscard]] std::string serialize(const std::vector<Arrival>& schedule);

}  // namespace nv::load

#endif  // NV_LOAD_WORKLOAD_H

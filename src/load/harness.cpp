#include "load/harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <queue>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "fleet/jobs.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/thread_annotations.h"

namespace nv::load {

namespace {

using TimePoint = std::chrono::steady_clock::time_point;

[[nodiscard]] std::chrono::nanoseconds to_ns(sim::SimTime t) {
  return std::chrono::nanoseconds(static_cast<std::int64_t>(t));
}

/// Clock-gated lane occupancy: a job parks here until the ManualClock reaches
/// its virtual service completion. The harness subscribes wake() to the
/// clock, so every advance() re-evaluates all parked waiters; any_due() lets
/// the driver's settle loop see waiters whose deadline has passed but who
/// have not yet woken and unregistered (i.e. the fleet is not quiescent).
///
/// Lock order: this mutex is taken first, then the clock's (inside now()).
/// ManualClock::advance() invokes wakers OUTSIDE its own lock, so wake()
/// taking this mutex cannot invert the order.
class VirtualService {
 public:
  void wake() {
    const util::MutexLock lock(mutex_);
    cv_.notify_all();
  }

  void wait_until(const fleet::ManualClock& clock, TimePoint deadline) {
    util::MutexLock lock(mutex_);
    const auto ticket = waiting_.insert(deadline);
    while (clock.now() < deadline) cv_.wait(lock.native());
    waiting_.erase(ticket);
  }

  [[nodiscard]] bool any_due(TimePoint now) const {
    const util::MutexLock lock(mutex_);
    return !waiting_.empty() && *waiting_.begin() <= now;
  }

  /// Currently-registered waiters. The driver's quiescence check compares
  /// this against the number of jobs inside their bodies: equality means
  /// every in-flight job is parked on the gate (none is still between the
  /// clock read and the park, or between the wake and its body exit), so
  /// advancing the clock cannot change what any job observes.
  [[nodiscard]] std::size_t parked() const {
    const util::MutexLock lock(mutex_);
    return waiting_.size();
  }

 private:
  mutable util::Mutex mutex_;
  std::condition_variable cv_;
  std::multiset<TimePoint> waiting_ NV_GUARDED_BY(mutex_);
};

/// Benign end-to-end latency samples, fed from worker threads.
class LatencyCollector {
 public:
  void add(double ms) {
    const util::MutexLock lock(mutex_);
    samples_.add(ms);
  }
  [[nodiscard]] util::Samples take() const {
    const util::MutexLock lock(mutex_);
    return samples_;
  }

 private:
  mutable util::Mutex mutex_;
  util::Samples samples_ NV_GUARDED_BY(mutex_);
};

struct Completion {
  std::uint64_t client = 0;
  TimePoint at{};
};

/// Closed-loop feedback path: workers record completions, the driver drains
/// them each quantum to schedule the client's next request after think time.
class CompletionLog {
 public:
  void push(std::uint64_t client, TimePoint at) {
    const util::MutexLock lock(mutex_);
    done_.push_back({client, at});
  }
  [[nodiscard]] std::vector<Completion> take() {
    const util::MutexLock lock(mutex_);
    return std::exchange(done_, {});
  }
  [[nodiscard]] bool empty() const {
    const util::MutexLock lock(mutex_);
    return done_.empty();
  }

 private:
  mutable util::Mutex mutex_;
  std::vector<Completion> done_ NV_GUARDED_BY(mutex_);
};

/// A submitted request awaiting its outcome.
struct Record {
  std::future<fleet::JobOutcome> future;
  bool resolved = false;
};

}  // namespace

LoadReport run_load(const LoadHarnessConfig& config) {
  if (config.quantum <= std::chrono::milliseconds::zero()) {
    throw std::invalid_argument("load harness quantum must be positive");
  }
  if (config.pool_size == 0) {
    throw std::invalid_argument("load harness needs an explicit pool size");
  }
  if (config.mode == LoadMode::kClosedLoop) {
    if (config.clients == 0) {
      throw std::invalid_argument("closed loop needs at least one client");
    }
    if (config.queue_capacity < config.clients) {
      throw std::invalid_argument(
          "closed loop needs queue_capacity >= clients: a client whose own "
          "request is refused never completes, wedging the loop");
    }
  }

  fleet::ManualClock clock;
  VirtualService service;

  fleet::FleetConfig fleet_config;
  fleet_config.spec.n_variants = 2;
  fleet_config.spec.variations = {"uid-xor"};
  fleet_config.pool_size = config.pool_size;
  fleet_config.queue_capacity = config.queue_capacity;
  // Stealing picks its victim by racing real-time queue scans, so which JOB
  // a freed worker takes — and hence when each lane next frees — would vary
  // run to run. Global-FIFO pops are commutative (every interleaving of
  // concurrent pops removes the same oldest jobs), so the whole pop schedule
  // is a function of virtual time alone — and the pool serves as the single
  // shared M/G/k queue the src/sim analytic model assumes.
  fleet_config.fifo_pop = true;
  fleet_config.admission = config.admission;
  fleet_config.queue_deadline = config.queue_deadline;
  fleet_config.seed = config.fleet_seed;
  fleet_config.campaign = config.campaign;
  fleet_config.adaptive.enabled = config.adaptive;
  fleet_config.clock = clock.fn();
  fleet::VariantFleet fleet(std::move(fleet_config));
  clock.subscribe([&service] { service.wake(); });
  clock.subscribe([&fleet] { (void)fleet.notify_time_advanced(); });

  const TimePoint epoch = clock.now();
  const auto to_tp = [epoch](sim::SimTime at) { return epoch + to_ns(at); };

  // started/finished bracket every job body, so started - finished is the
  // number of requests currently occupying worker lanes.
  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> finished{0};
  LatencyCollector latencies;
  CompletionLog completions;
  const bool closed = config.mode == LoadMode::kClosedLoop;
  const fleet::FleetJob churn = fleet::jobs::uid_churn(config.uid_churn_rounds);

  // The job body: a slice of REAL MVEE work, then park on the virtual
  // service gate until the manual clock reaches completion. Timestamps are
  // taken from the precomputed deadline, not clock.now() after the wait —
  // the clock may advance between the wake and the read, and the deadline is
  // the deterministic value.
  //
  // Ordering is the determinism linchpin: the clock is read BEFORE `started`
  // is bumped. Until the bump, the driver's quiescence check counts this job
  // as unstarted and refuses to advance — so the quantum a job stamps its
  // service deadline in is decided by the settle protocol, not by how fast
  // the OS scheduled the worker thread.
  const auto make_job = [&](const Arrival arrival, const TimePoint scheduled) {
    return fleet::FleetJob([&clock, &service, &latencies, &completions, &started, &finished,
                            &churn, closed, arrival,
                            scheduled](core::NVariantSystem& system) -> core::RunReport {
      const TimePoint service_done = clock.now() + to_ns(arrival.service);
      started.fetch_add(1, std::memory_order_acq_rel);
      struct Finish {
        std::atomic<std::uint64_t>& counter;
        ~Finish() { counter.fetch_add(1, std::memory_order_acq_rel); }
      } finish{finished};
      if (arrival.klass == RequestClass::kAttack) {
        // The probe occupies its lane like any request, then trips the
        // detector: one fixed signature, so the correlator folds every probe
        // of the run into a single campaign.
        service.wait_until(clock, service_done);
        if (closed) completions.push(arrival.client, service_done);
        throw std::runtime_error(kAttackProbeError);
      }
      core::RunReport report = churn(system);
      service.wait_until(clock, service_done);
      latencies.add(std::chrono::duration<double, std::milli>(service_done - scheduled).count());
      if (closed) completions.push(arrival.client, service_done);
      return report;
    });
  };

  std::vector<Record> records;
  std::uint64_t offered = 0;
  // Driver-side admission ledger: jobs the fleet actually accepted. A door
  // refusal (kShedError) resolves its future before submit() returns, so the
  // readiness probe below classifies synchronously on the driver thread —
  // the quiescence check can then count unstarted work exactly, without
  // racing the workers' queue pops the way queue_depth_hint() would.
  std::uint64_t accepted = 0;
  const auto submit_arrival = [&](const Arrival& arrival) {
    Record record;
    record.future = fleet.submit(make_job(arrival, to_tp(arrival.at)));
    ++offered;
    if (record.future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      record.resolved = true;  // refused at the door; counted in jobs_shed
    } else {
      ++accepted;
    }
    records.push_back(std::move(record));
  };

  // Resolve finished futures; returns how many are still outstanding.
  const auto harvest = [&records]() {
    std::size_t pending = 0;
    for (Record& record : records) {
      if (record.resolved) continue;
      if (record.future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
        record.resolved = true;
      } else {
        ++pending;
      }
    }
    return pending;
  };

  // Whole-run watchdog on the REAL clock: a healthy run is bounded by
  // virtual-time progress alone; only a wedged fleet (a harness bug) gets
  // here, and it must fail loudly instead of hanging CI.
  const auto real_give_up = std::chrono::steady_clock::now() + config.real_time_budget;
  const auto fail_run = [&](const char* message) {
    // The fleet destructor drains queued jobs by RUNNING them, and they park
    // on the virtual service gate — keep virtual time moving from a side
    // thread until the drain finishes, then report the failure.
    std::atomic<bool> stop{false};
    std::thread advancer([&clock, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        clock.advance(std::chrono::milliseconds(100));
        std::this_thread::yield();
      }
    });
    fleet.shutdown();
    stop.store(true, std::memory_order_release);
    advancer.join();
    throw std::runtime_error(message);
  };

  // Accepted jobs that will never run a body: kDeadlineDrop expires them at
  // pop time on a worker thread, so the count is read from telemetry. Only
  // that policy can drop; the other modes skip the snapshot lock.
  const auto dropped_so_far = [&]() -> std::uint64_t {
    if (config.admission != fleet::AdmissionPolicy::kDeadlineDrop) return 0;
    return fleet.telemetry().snapshot().jobs_deadline_dropped;
  };

  // Quiescent: virtual time may move without changing what any job observes.
  // Four conditions, each closing a distinct race:
  //   1. no parked job is past its service deadline (it would wake and run);
  //   2. every job that entered its body is parked on the gate — a job
  //      between pop and its clock read, mid-churn, or past its wake but
  //      still inside its body would otherwise straddle the advance;
  //   3. every worker is accounted for: parked inside a body or blocked on
  //      the queue condvar. A worker mid-pop, between pop and the body's
  //      clock read, in its post-body epilogue, or mid-respawn is neither —
  //      and would otherwise make progress across the advance;
  //   4. no idle worker has backlog in its own queue (it will pop any
  //      moment), and no lane is mid-swap (the round-robin lane pick routes
  //      around lanes in flux, so submitting during a swap would make queue
  //      assignment depend on how fast the session factory ran).
  // Work the check holds the clock for progresses in real time to a counted
  // state without virtual time moving, so settle() terminates.
  const auto quiescent = [&]() {
    if (service.any_due(clock.now())) return false;
    const std::uint64_t done = finished.load(std::memory_order_acquire);
    const std::uint64_t begun = started.load(std::memory_order_acquire);
    const std::uint64_t in_body = begun - done;
    if (service.parked() != in_body) return false;
    const fleet::VariantFleet::IdleSnapshot idle = fleet.idle_snapshot();
    if (idle.idle_backlog || idle.lanes_in_flux != 0) return false;
    return in_body + idle.idle_workers == config.pool_size;
  };
  const auto settle = [&] {
    int stable = 0;
    while (stable < 3) {
      if (std::chrono::steady_clock::now() >= real_give_up) {
        fail_run("load harness watchdog: fleet failed to quiesce");
      }
      stable = quiescent() ? stable + 1 : 0;
      std::this_thread::yield();
    }
  };
  // Every accepted job ran its body to completion (or was dropped): the
  // terminal condition of the drain loops. `finished` is read FIRST so a
  // racing body can only make the check false, never falsely true.
  const auto all_bodies_done = [&]() {
    const std::uint64_t done = finished.load(std::memory_order_acquire);
    const std::uint64_t begun = started.load(std::memory_order_acquire);
    return done == begun && begun == accepted - dropped_so_far();
  };

  if (config.mode == LoadMode::kOpenLoop) {
    const std::vector<Arrival> schedule = generate(config.workload);
    records.reserve(schedule.size());
    // kBlock holding pen: arrivals that found the fleet full, FIFO. The
    // driver itself must never block (see header), so it checks headroom via
    // the lock-free hint — as the sole submitter, depth can only fall
    // between the check and the submit, so submit() cannot block.
    std::deque<Arrival> backlog;
    std::size_t next = 0;
    const auto headroom = [&]() {
      return fleet.queue_depth_hint() < config.queue_capacity;
    };
    // At most ONE step of work per call; returns whether it did anything.
    // One-at-a-time is the determinism linchpin: each submission happens from
    // a settled fleet (see the driver loop), so the queue depth an admission
    // decision sees is a function of the schedule alone — a burst would race
    // the workers' pops and shed a different subset each run.
    const auto pump = [&]() -> bool {
      const TimePoint now = clock.now();
      if (config.admission == fleet::AdmissionPolicy::kBlock) {
        if (!backlog.empty() && headroom()) {
          submit_arrival(backlog.front());
          backlog.pop_front();
          return true;
        }
        if (next < schedule.size() && to_tp(schedule[next].at) <= now) {
          if (backlog.empty() && headroom()) {
            submit_arrival(schedule[next]);
          } else {
            backlog.push_back(schedule[next]);
          }
          ++next;
          return true;
        }
        return false;
      }
      // kShed / kDeadlineDrop: the fleet's own admission path decides.
      if (next < schedule.size() && to_tp(schedule[next].at) <= now) {
        submit_arrival(schedule[next]);
        ++next;
        return true;
      }
      return false;
    };
    // settle() BEFORE each pump step: the submission lands on a fleet where
    // every in-flight body is parked and the queue has drained as far as it
    // can, then the loop re-settles before the next step. Only when a settled
    // fleet has nothing due does virtual time advance.
    for (;;) {
      settle();
      if (!pump()) {
        if (next >= schedule.size() && backlog.empty()) break;
        clock.advance(config.quantum);
      }
    }
  } else {
    // Closed loop: `clients` concurrent users, each submit -> wait -> think
    // -> submit, with every client's requests and think times drawn from its
    // own split Rng stream (determinism is per-client, independent of the
    // order completions happen to land in).
    struct PendingArrival {
      TimePoint at{};
      Arrival arrival;
    };
    const auto later = [](const PendingArrival& a, const PendingArrival& b) {
      return a.at > b.at;
    };
    std::priority_queue<PendingArrival, std::vector<PendingArrival>, decltype(later)> queue(
        later);

    util::Rng root(config.workload.seed);
    std::vector<util::Rng> client_rng;
    client_rng.reserve(config.clients);
    for (unsigned client = 0; client < config.clients; ++client) {
      client_rng.push_back(root.split());
    }
    const double think_ms = static_cast<double>(config.think_time.count());
    const TimePoint horizon = to_tp(config.workload.duration);

    const auto schedule_next = [&](std::uint64_t client, TimePoint from) {
      util::Rng& rng = client_rng[static_cast<std::size_t>(client)];
      const TimePoint at = from + to_ns(sim::from_ms(rng.exponential(think_ms)));
      if (at >= horizon) return;  // this client's session is over
      PendingArrival pending;
      pending.at = at;
      pending.arrival = draw_request(config.workload, rng);
      pending.arrival.client = client;
      pending.arrival.at =
          static_cast<sim::SimTime>(std::chrono::nanoseconds(at - epoch).count());
      queue.push(std::move(pending));
    };
    for (unsigned client = 0; client < config.clients; ++client) {
      schedule_next(client, epoch);
    }

    // settle() first for the same reason as the open loop, and at most one
    // submission per settled state: the set of completions visible at each
    // instant and the queue depth each submission meets are then
    // deterministic functions of the schedule. (Harvesting completions and
    // re-queueing think times touch no fleet state, so they batch freely.)
    for (;;) {
      settle();
      bool progress = false;
      for (const Completion& completion : completions.take()) {
        schedule_next(completion.client, completion.at);
        progress = true;
      }
      if (!queue.empty() && queue.top().at <= clock.now()) {
        submit_arrival(queue.top().arrival);
        queue.pop();
        progress = true;
      }
      if (progress) continue;  // re-settle before judging termination
      if (queue.empty() && all_bodies_done() && completions.empty()) break;
      clock.advance(config.quantum);
    }
  }

  // Drain phase 1: advance virtual time until every accepted body has run to
  // completion (or been deadline-dropped). Each advance is taken from a
  // settled state, so the number of quanta consumed — and hence duration_s —
  // is deterministic.
  while (!all_bodies_done()) {
    settle();
    if (all_bodies_done()) break;
    clock.advance(config.quantum);
  }
  // Drain phase 2: bodies are done, but a future resolves a moment AFTER its
  // body returns (the packaged_task epilogue). That tail needs only real
  // time, never another quantum — spinning here instead of advancing keeps
  // duration_s independent of epilogue timing.
  while (harvest() > 0) {
    if (std::chrono::steady_clock::now() >= real_give_up) {
      fail_run("load harness watchdog: futures failed to resolve");
    }
    std::this_thread::yield();
  }
  const double duration_s =
      std::chrono::duration<double>(clock.now() - epoch).count();
  fleet.shutdown();

  LoadReport report;
  report.snapshot = fleet.telemetry().snapshot();
  report.offered = offered;
  report.admitted = report.snapshot.jobs_submitted;
  report.shed = report.snapshot.jobs_shed;
  report.deadline_dropped = report.snapshot.jobs_deadline_dropped;
  report.completed = report.snapshot.jobs_completed;
  report.errors = report.snapshot.job_errors;
  report.alarmed = report.snapshot.jobs_alarmed;
  report.abandoned = report.snapshot.jobs_abandoned;
  report.quarantined = report.snapshot.sessions_quarantined;
  report.campaign_alerts = report.snapshot.campaign_alerts;
  report.queue_high_watermark = report.snapshot.queue_high_watermark;
  report.admission_blocked_us = report.snapshot.admission_blocked_us;
  report.duration_s = duration_s;
  if (duration_s > 0.0) {
    report.offered_per_sec = static_cast<double>(report.offered) / duration_s;
    report.goodput_per_sec = static_cast<double>(report.completed) / duration_s;
  }
  if (report.offered > 0) {
    report.shed_fraction =
        static_cast<double>(report.shed) / static_cast<double>(report.offered);
  }
  const util::Samples samples = latencies.take();
  report.latency_count = samples.count();
  if (samples.count() > 0) {
    report.latency_mean_ms = samples.mean();
    report.latency_p50_ms = samples.percentile(50.0);
    report.latency_p95_ms = samples.percentile(95.0);
    report.latency_p99_ms = samples.percentile(99.0);
  }
  return report;
}

std::string LoadReport::describe() const {
  return util::format(
      "load: offered %llu (%.1f/s) admitted %llu shed %llu (%.2f%%) dropped %llu | "
      "good %llu (%.1f/s) err %llu quarantined %llu campaigns %llu | "
      "p50 %.1f p95 %.1f p99 %.1f ms | watermark %llu blocked %llu us",
      static_cast<unsigned long long>(offered), offered_per_sec,
      static_cast<unsigned long long>(admitted), static_cast<unsigned long long>(shed),
      shed_fraction * 100.0, static_cast<unsigned long long>(deadline_dropped),
      static_cast<unsigned long long>(completed), goodput_per_sec,
      static_cast<unsigned long long>(errors), static_cast<unsigned long long>(quarantined),
      static_cast<unsigned long long>(campaign_alerts), latency_p50_ms, latency_p95_ms,
      latency_p99_ms, static_cast<unsigned long long>(queue_high_watermark),
      static_cast<unsigned long long>(admission_blocked_us));
}

std::size_t knee_index(const std::vector<LoadCurvePoint>& curve, double latency_factor,
                       double shed_threshold) {
  if (curve.empty()) return 0;
  const double base_p99 = curve.front().report.latency_p99_ms;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const LoadReport& report = curve[i].report;
    if (report.shed_fraction > shed_threshold) return i;
    if (base_p99 > 0.0 && report.latency_p99_ms > base_p99 * latency_factor) return i;
  }
  return curve.size();
}

}  // namespace nv::load

#include "load/workload.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/strings.h"

namespace nv::load {

namespace {

/// Mean of a bounded Pareto on [lo, hi] with tail index alpha (alpha != 1).
double bounded_pareto_mean(double lo, double hi, double alpha) {
  const double ratio = std::pow(lo / hi, alpha);
  return (std::pow(lo, alpha) / (1.0 - ratio)) * (alpha / (alpha - 1.0)) *
         (std::pow(lo, 1.0 - alpha) - std::pow(hi, 1.0 - alpha));
}

/// Inverse-CDF draw from the same bounded Pareto.
double bounded_pareto_draw(util::Rng& rng, double lo, double hi, double alpha) {
  const double ratio = std::pow(lo / hi, alpha);
  const double u = rng.uniform();
  return lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
}

}  // namespace

const char* to_string(RequestClass klass) noexcept {
  switch (klass) {
    case RequestClass::kHttpSmall: return "http_small";
    case RequestClass::kHttpHeavy: return "http_heavy";
    case RequestClass::kFtpTransfer: return "ftp_transfer";
    case RequestClass::kAttack: return "attack";
  }
  return "unknown";
}

double WorkloadConfig::mean_service_ms() const {
  const double total = http_small_weight + http_heavy_weight + ftp_weight;
  if (total <= 0.0) throw std::invalid_argument("workload mix weights must sum > 0");
  const double small_ms = sim::to_ms(http_small_service);
  const double heavy_ms = bounded_pareto_mean(sim::to_ms(heavy_service_min),
                                              sim::to_ms(heavy_service_cap), heavy_alpha);
  const double ftp_ms = bounded_pareto_mean(sim::to_ms(ftp_service_min),
                                            sim::to_ms(ftp_service_cap), ftp_alpha);
  const double benign = (http_small_weight * small_ms + http_heavy_weight * heavy_ms +
                         ftp_weight * ftp_ms) /
                        total;
  return attacker_fraction * sim::to_ms(attack_service) +
         (1.0 - attacker_fraction) * benign;
}

double offered_rho(const WorkloadConfig& config, unsigned pool_size) {
  if (pool_size == 0) throw std::invalid_argument("offered_rho needs a non-empty pool");
  const double service_s = config.mean_service_ms() / 1000.0;
  return config.offered_per_sec * service_s / static_cast<double>(pool_size);
}

double rate_for_rho(const WorkloadConfig& config, double rho, unsigned pool_size) {
  const double service_s = config.mean_service_ms() / 1000.0;
  if (service_s <= 0.0) throw std::invalid_argument("workload mean service must be positive");
  return rho * static_cast<double>(pool_size) / service_s;
}

Arrival draw_request(const WorkloadConfig& config, util::Rng& rng) {
  const double weight_total =
      config.http_small_weight + config.http_heavy_weight + config.ftp_weight;
  if (weight_total <= 0.0) throw std::invalid_argument("workload mix weights must sum > 0");

  Arrival arrival;
  if (config.attacker_fraction > 0.0 && rng.chance(config.attacker_fraction)) {
    arrival.klass = RequestClass::kAttack;
    arrival.service = config.attack_service;
  } else {
    const double pick = rng.uniform() * weight_total;
    if (pick < config.http_small_weight) {
      arrival.klass = RequestClass::kHttpSmall;
      arrival.service = config.http_small_service;
    } else if (pick < config.http_small_weight + config.http_heavy_weight) {
      arrival.klass = RequestClass::kHttpHeavy;
      arrival.service = sim::from_ms(
          bounded_pareto_draw(rng, sim::to_ms(config.heavy_service_min),
                              sim::to_ms(config.heavy_service_cap), config.heavy_alpha));
    } else {
      arrival.klass = RequestClass::kFtpTransfer;
      arrival.service = sim::from_ms(
          bounded_pareto_draw(rng, sim::to_ms(config.ftp_service_min),
                              sim::to_ms(config.ftp_service_cap), config.ftp_alpha));
    }
  }
  // Sub-millisecond service would vanish under the harness's millisecond
  // clock quanta; clamp so every admitted request occupies its lane for at
  // least one advance.
  if (arrival.service < sim::kMillisecond) arrival.service = sim::kMillisecond;
  return arrival;
}

std::vector<Arrival> generate(const WorkloadConfig& config) {
  if (config.offered_per_sec <= 0.0) {
    throw std::invalid_argument("workload offered_per_sec must be positive");
  }
  if (config.client_lanes == 0) {
    throw std::invalid_argument("workload needs at least one client lane");
  }

  util::Rng rng(config.seed);
  std::vector<Arrival> schedule;
  const double mean_gap_ms = 1000.0 / config.offered_per_sec;
  double t_ms = 0.0;
  for (;;) {
    t_ms += rng.exponential(mean_gap_ms);
    const sim::SimTime at = sim::from_ms(t_ms);
    if (at >= config.duration) break;
    // Draw order is part of the reproducibility contract: gap, client, then
    // the request body — changing it silently reshuffles every seed.
    const std::uint64_t client = rng.below(config.client_lanes);
    Arrival arrival = draw_request(config, rng);
    arrival.at = at;
    arrival.client = client;
    schedule.push_back(arrival);
  }
  return schedule;
}

std::string serialize(const std::vector<Arrival>& schedule) {
  std::string out;
  out.reserve(schedule.size() * 48);
  for (const Arrival& arrival : schedule) {
    out += util::format("t=%llu class=%s service=%llu client=%llu\n",
                        static_cast<unsigned long long>(arrival.at),
                        to_string(arrival.klass),
                        static_cast<unsigned long long>(arrival.service),
                        static_cast<unsigned long long>(arrival.client));
  }
  return out;
}

}  // namespace nv::load

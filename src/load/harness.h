// LoadHarness: drive a REAL VariantFleet with the deterministic workload
// stream from load/workload.h, entirely on the injected clock.
//
// This is the production instrument the ROADMAP's "million-user closed-loop
// load harness" item names — the successor of src/perf/webbench's analytic
// model, measuring the actual fleet (real worker lanes, real MVEE sessions
// running real uid-churn guests, real quarantine/respawn/campaign machinery)
// instead of a cost model:
//
//   open loop    arrivals fire on schedule whether or not earlier requests
//                finished — the workload shape that exposes saturation and
//                makes admission control load-bearing (a blocking queue under
//                an open workload has unbounded latency; shedding bounds it).
//   closed loop  a finite client population; each client submits, waits for
//                its completion, thinks (exponential), and submits again —
//                latency self-limits, throughput plateaus at saturation.
//
// Virtual service time: each request carries a service demand from the
// workload's heavy-tailed mix. The job occupies its worker lane until the
// ManualClock reaches service completion (a condition-variable gate woken by
// clock advances), after doing a small amount of REAL MVEE work (uid-churn
// through the diversified session) so the measured fleet is the real one.
// The driver advances the clock in fixed quanta and, between advances,
// yields until the fleet is quiescent (no runnable work, no due service
// completions) — runs are sleep-free and independent of host speed.
//
// Admission-policy semantics in the harness:
//   kShed / kDeadlineDrop  submit() at capacity resolves kShedError — the
//                          fleet's own 503 path, counted in jobs_shed.
//   kBlock                 the harness never blocks its driver thread (that
//                          would freeze the clock); arrivals that find the
//                          fleet full wait in the harness's unbounded accept
//                          backlog and are submitted when capacity frees —
//                          the same unbounded-waiting semantics, measured as
//                          latency instead of deadlock.
#ifndef NV_LOAD_HARNESS_H
#define NV_LOAD_HARNESS_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "load/workload.h"

namespace nv::load {

enum class LoadMode {
  kOpenLoop,
  kClosedLoop,
};

struct LoadHarnessConfig {
  WorkloadConfig workload;
  LoadMode mode = LoadMode::kOpenLoop;

  /// Fleet shape. The spec defaults to the cheap uid-xor pair every bench
  /// uses; widen it to measure heavier diversity suites under load.
  unsigned pool_size = 4;
  std::size_t queue_capacity = 16;
  fleet::AdmissionPolicy admission = fleet::AdmissionPolicy::kShed;
  std::chrono::milliseconds queue_deadline{0};
  std::uint64_t fleet_seed = 0xF1EE7;
  fleet::CampaignPolicy campaign;
  bool adaptive = false;

  /// Closed loop only: concurrent clients and mean exponential think time.
  /// Requires queue_capacity >= clients (a closed loop sized to refuse its
  /// own clients would block the driver; run_load throws on that config).
  unsigned clients = 8;
  std::chrono::milliseconds think_time{100};

  /// Virtual-time step between quiescence points. Latencies are quantized to
  /// this granularity; smaller is finer and slower.
  std::chrono::milliseconds quantum{5};
  /// Real MVEE work per request: uid-churn rounds through the session.
  unsigned uid_churn_rounds = 1;
  /// REAL-time watchdog for the whole run — a harness bug (or a wedged
  /// fleet) fails loudly instead of hanging CI. Generous: virtual time is
  /// decoupled from real time and a healthy run finishes far inside it.
  std::chrono::seconds real_time_budget{120};
};

/// One load point, measured on the real fleet.
struct LoadReport {
  // Admission accounting. offered == admitted + shed by construction
  // (kBlock: everything is eventually admitted; shed == 0).
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_dropped = 0;
  std::uint64_t completed = 0;  // benign requests served cleanly
  std::uint64_t errors = 0;     // attack probes land here (they throw)
  std::uint64_t alarmed = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t campaign_alerts = 0;

  double duration_s = 0.0;       // virtual span of the run (arrivals + drain)
  double offered_per_sec = 0.0;  // offered / duration_s
  double goodput_per_sec = 0.0;  // benign completions / duration_s
  double shed_fraction = 0.0;    // shed / offered

  // End-to-end latency of benign completions (virtual ms, measured from the
  // SCHEDULED arrival — queueing, backlog waiting, and service included).
  std::size_t latency_count = 0;
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;

  std::uint64_t queue_high_watermark = 0;
  std::uint64_t admission_blocked_us = 0;

  /// Full fleet counter view at the end of the run.
  fleet::FleetSnapshot snapshot;

  [[nodiscard]] std::string describe() const;
};

/// JobOutcome::error / quarantine signature of the workload's attack probes
/// (one fixed signature, so a campaign correlates into ONE alert).
inline constexpr const char* kAttackProbeError = "load-harness diversity probe";

/// Run one load point. Deterministic virtual time; throws std::runtime_error
/// if the real-time watchdog expires (a wedged run, never a slow host with a
/// sane budget) and std::invalid_argument on contradictory configs.
[[nodiscard]] LoadReport run_load(const LoadHarnessConfig& config);

/// One point of a latency-vs-offered-load sweep.
struct LoadCurvePoint {
  double rho = 0.0;  // offered load at the fleet (workload::offered_rho)
  LoadReport report;
};

/// Index of the first point past the saturation knee: benign p99 above
/// `latency_factor` times the first (lightest) point's p99, or any
/// shedding at all. Returns curve.size() when no knee is visible. The curve
/// must be sorted by rho ascending.
[[nodiscard]] std::size_t knee_index(const std::vector<LoadCurvePoint>& curve,
                                     double latency_factor = 3.0,
                                     double shed_threshold = 0.005);

}  // namespace nv::load

#endif  // NV_LOAD_HARNESS_H

#include "experiments/population_curves.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "fleet/fleet.h"
#include "util/strings.h"
#include "variants/registry.h"

namespace nv::experiments {

namespace {

/// Every failed probe throws this exact message, so all probe quarantines
/// share ONE AlarmSignature — the coordinated campaign the correlator (and
/// the adaptive scenario) is meant to see.
constexpr const char* kProbeSignature = "population probe: diversity guess rejected";

/// Rotation resolves asynchronously on the worker threads; park until every
/// flagged lane has either rotated or failed to. A timeout means the run can
/// no longer be deterministic (rotations still in flight would race the
/// fingerprint reads), so it throws rather than silently degrading the
/// byte-identical-replay contract — a healthy fleet settles in microseconds.
void await_rotations(const fleet::VariantFleet& fleet, std::uint64_t target) {
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    const auto snap = fleet.telemetry().snapshot();
    if (snap.sessions_rotated + snap.rotations_failed >= target) return;
    if (std::chrono::steady_clock::now() > give_up) {
      throw std::runtime_error("population experiment: rotations failed to settle");
    }
    std::this_thread::yield();
  }
}

}  // namespace

PopulationCurve run_population_experiment(const PopulationExperimentConfig& config) {
  if (config.pool_size == 0 || config.ticks == 0) {
    throw std::invalid_argument("population experiment needs a pool and ticks");
  }
  if (config.tick <= std::chrono::milliseconds::zero() ||
      (config.rediversify_interval.count() != 0 &&
       config.rediversify_interval.count() % config.tick.count() != 0)) {
    // The rotation check runs once per tick; an interval the tick does not
    // divide would silently rotate slower than the rate the curve reports.
    throw std::invalid_argument(
        "rediversify_interval must be a positive multiple of tick (or zero)");
  }
  if (std::find(config.variations.begin(), config.variations.end(),
                config.attacker.probed_variation) == config.variations.end()) {
    throw std::invalid_argument("probed_variation must be one of the installed variations");
  }

  // The attacker's keyspace S is the REAL, registry-reported entropy of the
  // probed variation — not an analytic model parameter. 2^bits must be small
  // enough for the deterministic every-S-th-probe schedule to realize it.
  constexpr unsigned kNVariants = 2;
  auto probed = variants::builtin_registry().make(config.attacker.probed_variation);
  if (!probed) {
    throw std::invalid_argument("population experiment: " + probed.error());
  }
  const double keyspace_bits = (*probed)->keyspace_bits(kNVariants);
  const double keys = std::exp2(keyspace_bits);
  if (keys < 2.0 || keys > static_cast<double>(1U << 20)) {
    throw std::invalid_argument(util::format(
        "probed variation \"%s\" has a keyspace of %.1f bits; the deterministic "
        "attacker needs 1..20 bits to realize its expected cost",
        config.attacker.probed_variation.c_str(), keyspace_bits));
  }
  const unsigned keyspace = static_cast<unsigned>(std::llround(keys));

  fleet::ManualClock clock;
  fleet::FleetConfig fc;
  fc.spec.n_variants = kNVariants;
  fc.spec.variations = config.variations;
  fc.pool_size = config.pool_size;
  fc.queue_capacity = std::max<std::size_t>(8, config.pool_size * 4);
  fc.seed = config.seed;
  // Strict lane affinity: with stealing off, round-robin admission fully
  // determines which lane every probe burns, so a fixed config replays
  // byte-identically (the CI curve-diffing contract).
  fc.work_stealing = false;
  fc.campaign = config.campaign;
  fc.adaptive = config.adaptive_config;
  fc.adaptive.enabled = config.adaptive;
  fc.clock = clock.fn();
  fleet::VariantFleet fleet(fc);

  const unsigned pool = fleet.pool_size();
  const auto interval_ms =
      static_cast<std::uint64_t>(config.rediversify_interval.count());
  PopulationCurve curve;
  curve.rediversify_interval_ms = interval_ms;
  curve.rediversify_rate_hz =
      interval_ms == 0 ? 0.0 : 1000.0 / static_cast<double>(interval_ms);
  curve.probed_variation = config.attacker.probed_variation;
  curve.keyspace_bits = keyspace_bits;
  curve.keyspace_keys = keyspace;

  // Attacker state: which lanes it silently controls, and its deterministic
  // expected-cost probe schedule (every S-th probe is the lucky guess).
  // `rr` mirrors the fleet's round-robin admission cursor (stealing is off
  // and probes are synchronous, so the mirror is exact): the attacker knows
  // which session its next request lands on, skips the ones it already
  // controls by weaving in benign filler traffic, and aims probes only at
  // uncontrolled sessions — it never burns its own footholds.
  std::vector<bool> compromised(pool, false);
  std::vector<std::string> fingerprints = fleet.live_fingerprints();
  std::uint64_t probe_serial = 0;
  unsigned rr = 0;
  std::uint64_t elapsed_ms = 0;

  const auto benign_job = [](core::NVariantSystem&) -> core::RunReport {
    core::RunReport report;
    report.completed = true;
    return report;
  };

  // Any lane whose live fingerprint moved was re-diversified out from under
  // the attacker (probe respawn, periodic rotation, campaign escalation):
  // its foothold is gone. Called right after every fleet-changing event so a
  // foothold gained LATER in the same tick is not mistaken for a stale one.
  const auto reconcile = [&] {
    const auto live = fleet.live_fingerprints();
    for (unsigned lane = 0; lane < pool; ++lane) {
      if (live[lane] != fingerprints[lane]) compromised[lane] = false;
    }
    fingerprints = live;
  };

  for (unsigned t = 1; t <= config.ticks; ++t) {
    clock.advance(config.tick);
    elapsed_ms += static_cast<std::uint64_t>(config.tick.count());

    // Defender: periodic fleet-wide re-diversification at the swept rate.
    if (interval_ms > 0 && elapsed_ms % interval_ms == 0) {
      const auto before = fleet.telemetry().snapshot();
      const std::size_t flagged = fleet.rotate_fleet();
      await_rotations(fleet,
                      before.sessions_rotated + before.rotations_failed + flagged);
      reconcile();
    }
    // Adaptive housekeeping runs on job completions; an attacker lull would
    // starve it, so the experiment loop polls once per tick as an operator
    // would — and settles any heightened-posture rotation it fired.
    if (config.adaptive) {
      const auto before = fleet.telemetry().snapshot();
      const std::size_t flagged = fleet.poll_adaptive();
      if (flagged > 0) {
        await_rotations(fleet,
                        before.sessions_rotated + before.rotations_failed + flagged);
        reconcile();
      }
    }

    // Attacker: probe the fleet while any session remains uncontrolled.
    for (unsigned p = 0; p < config.attacker.probes_per_tick; ++p) {
      if (std::find(compromised.begin(), compromised.end(), false) == compromised.end()) {
        break;  // full control: holding it costs nothing
      }
      // Benign filler requests walk the admission cursor past the sessions
      // the attacker already controls (it can recognize its own foothold
      // answering) — at most pool-1 fillers before an uncontrolled target.
      while (compromised[rr]) {
        (void)fleet.submit(benign_job).get();
        rr = (rr + 1) % pool;
      }
      const unsigned target = rr;
      rr = (rr + 1) % pool;

      ++curve.probes;
      ++probe_serial;
      if (probe_serial % keyspace == 0) {
        // The lucky guess: the payload matched this session's reexpression,
        // so the request runs CLEAN — the monitor sees normal traffic and
        // the attacker holds the session until re-diversification.
        (void)fleet.submit(benign_job).get();
        compromised[target] = true;
        ++curve.silent_compromises;
      } else {
        // A wrong guess diverges the variants: a REAL quarantine + respawn
        // (the probe's one-quarantine cost), synchronous via the future.
        const auto before = fleet.telemetry().snapshot();
        (void)fleet
            .submit([](core::NVariantSystem&) -> core::RunReport {
              throw std::runtime_error(kProbeSignature);
            })
            .get();
        // If this quarantine crossed the campaign threshold under an armed
        // rotation policy, every surviving live peer (all lanes except the
        // alerting one and any lane a failed respawn retired) re-diversifies
        // on its worker thread; settle them before reading fingerprints so
        // the run stays deterministic.
        const auto after = fleet.telemetry().snapshot();
        if (after.campaign_alerts > before.campaign_alerts &&
            fleet.campaign_policy().rotate_fleet_on_alert) {
          std::uint64_t dead_lanes = 0;
          for (const auto& record : fleet.quarantine_log()) {
            if (record.replacement_fingerprint.rfind("(respawn failed", 0) == 0) {
              ++dead_lanes;
            }
          }
          await_rotations(fleet, before.sessions_rotated + before.rotations_failed +
                                     (pool - 1 - dead_lanes));
        }
        reconcile();
      }
    }

    // Catch stragglers (e.g. a worker-side adaptive rotation landing late).
    reconcile();

    const auto held = static_cast<std::uint64_t>(
        std::count(compromised.begin(), compromised.end(), true));
    curve.compromised_lane_ticks += held;
    if (t % std::max(1U, config.timeline_stride) == 0 || t == config.ticks) {
      const auto snap = fleet.telemetry().snapshot();
      TimelinePoint point;
      point.t_ms = elapsed_ms;
      point.compromised_fraction = static_cast<double>(held) / pool;
      point.probes = curve.probes;
      point.rotations = snap.sessions_rotated;
      curve.timeline.push_back(point);
    }
  }

  const auto snap = fleet.telemetry().snapshot();
  curve.quarantines = snap.sessions_quarantined;
  curve.rotations = snap.sessions_rotated;
  curve.rotations_failed = snap.rotations_failed;
  curve.campaign_alerts = snap.campaign_alerts;
  curve.policy_tightened = snap.policy_tightened;
  curve.policy_decayed = snap.policy_decayed;
  curve.mean_compromised_fraction =
      static_cast<double>(curve.compromised_lane_ticks) /
      (static_cast<double>(config.ticks) * pool);
  curve.attacker_cost = static_cast<double>(curve.probes) /
                        static_cast<double>(std::max<std::uint64_t>(
                            1, curve.compromised_lane_ticks));
  fleet.shutdown();
  return curve;
}

namespace {

std::string curve_to_json(const PopulationCurve& curve, const std::string& indent) {
  std::string json = indent + "{\n";
  const std::string in = indent + "  ";
  json += in + util::format("\"rediversify_interval_ms\": %llu,\n",
                            static_cast<unsigned long long>(curve.rediversify_interval_ms));
  json += in + util::format("\"rediversify_rate_hz\": %.6f,\n", curve.rediversify_rate_hz);
  json += in + util::format("\"probed_variation\": \"%s\",\n", curve.probed_variation.c_str());
  json += in + util::format("\"keyspace_bits\": %.6f,\n", curve.keyspace_bits);
  json += in + util::format("\"keyspace_keys\": %llu,\n",
                            static_cast<unsigned long long>(curve.keyspace_keys));
  json += in + util::format("\"probes\": %llu,\n",
                            static_cast<unsigned long long>(curve.probes));
  json += in + util::format("\"silent_compromises\": %llu,\n",
                            static_cast<unsigned long long>(curve.silent_compromises));
  json += in + util::format("\"compromised_lane_ticks\": %llu,\n",
                            static_cast<unsigned long long>(curve.compromised_lane_ticks));
  json += in + util::format("\"mean_compromised_fraction\": %.6f,\n",
                            curve.mean_compromised_fraction);
  json += in + util::format("\"attacker_cost\": %.6f,\n", curve.attacker_cost);
  json += in + util::format("\"quarantines\": %llu,\n",
                            static_cast<unsigned long long>(curve.quarantines));
  json += in + util::format("\"rotations\": %llu,\n",
                            static_cast<unsigned long long>(curve.rotations));
  json += in + util::format("\"rotations_failed\": %llu,\n",
                            static_cast<unsigned long long>(curve.rotations_failed));
  json += in + util::format("\"campaign_alerts\": %llu,\n",
                            static_cast<unsigned long long>(curve.campaign_alerts));
  json += in + util::format("\"policy_tightened\": %llu,\n",
                            static_cast<unsigned long long>(curve.policy_tightened));
  json += in + util::format("\"policy_decayed\": %llu,\n",
                            static_cast<unsigned long long>(curve.policy_decayed));
  json += in + "\"timeline\": [";
  for (std::size_t i = 0; i < curve.timeline.size(); ++i) {
    const TimelinePoint& point = curve.timeline[i];
    json += i == 0 ? "\n" : ",\n";
    json += in + "  " +
            util::format("{\"t_ms\": %llu, \"compromised_fraction\": %.4f, "
                         "\"probes\": %llu, \"rotations\": %llu}",
                         static_cast<unsigned long long>(point.t_ms),
                         point.compromised_fraction,
                         static_cast<unsigned long long>(point.probes),
                         static_cast<unsigned long long>(point.rotations));
  }
  json += curve.timeline.empty() ? "]\n" : "\n" + in + "]\n";
  json += indent + "}";
  return json;
}

std::string curve_list_to_json(const std::vector<PopulationCurve>& curves) {
  std::string json = "[";
  for (std::size_t i = 0; i < curves.size(); ++i) {
    json += i == 0 ? "\n" : ",\n";
    json += curve_to_json(curves[i], "    ");
  }
  json += curves.empty() ? "]" : "\n  ]";
  return json;
}

}  // namespace

std::string curves_to_json(const PopulationExperimentConfig& base,
                           const std::vector<PopulationCurve>& grid,
                           const std::vector<PopulationCurve>& comparison,
                           const std::vector<PopulationCurve>& variation_grid, bool quick) {
  std::string json = "{\n";
  json += "  \"schema\": \"population_curves/v2\",\n";
  json += util::format("  \"quick\": %s,\n", quick ? "true" : "false");
  json += "  \"config\": {\n";
  json += util::format("    \"pool_size\": %u,\n", base.pool_size);
  json += "    \"variations\": [";
  for (std::size_t i = 0; i < base.variations.size(); ++i) {
    json += util::format("%s\"%s\"", i == 0 ? "" : ", ", base.variations[i].c_str());
  }
  json += "],\n";
  json += util::format("    \"probed_variation\": \"%s\",\n",
                       base.attacker.probed_variation.c_str());
  json += util::format("    \"probes_per_tick\": %u,\n", base.attacker.probes_per_tick);
  json += util::format("    \"tick_ms\": %lld,\n",
                       static_cast<long long>(base.tick.count()));
  json += util::format("    \"ticks\": %u,\n", base.ticks);
  json += util::format("    \"seed\": \"0x%llX\"\n",
                       static_cast<unsigned long long>(base.seed));
  json += "  },\n";
  json += "  \"grid\": " + curve_list_to_json(grid) + ",\n";
  json += "  \"adaptive_comparison\": " + curve_list_to_json(comparison) + ",\n";
  json += "  \"variation_grid\": " + curve_list_to_json(variation_grid) + "\n";
  json += "}\n";
  return json;
}

}  // namespace nv::experiments

// Multi-shard attacker-cost experiments: what does network-level diversity
// plus cross-shard campaign gossip buy, at FIXED total lane count and FIXED
// total payload keyspace?
//
// The setup is a REAL FleetCluster on one ManualClock — K VariantFleet
// shards, each with its own SessionFactory draw space and its own drawn
// network identity (endpoint/port-space diversification from the registry's
// network variations) — driven by the same scripted deterministic attacker
// as experiments/population_curves.h, extended with the two costs sharding
// adds:
//
//   - PAYLOAD probes are per shard: shard draw spaces are independent, so
//     the attacker keeps a separate probe serial per shard and pays the
//     expected keyspace-S guessing cost against each shard separately
//     (every S-th probe ON THAT SHARD silently compromises its target).
//   - ENDPOINT discovery is per (shard, network epoch): before the first
//     request ever reaches a shard — and again after every network-identity
//     rotation — the attacker pays the expected scan cost E/2 = 2^(bits-1)
//     of the shard's composed network-variation keyspace, charged as a lump
//     of probes that never touch the fleet (the scan happens off-host).
//
//   The defensive feedback loop under test: a campaign alert raised on the
//   probed shard gossips to every other shard (synchronously, delay 0), so
//   shards the attacker has NOT yet reached tighten their adaptive posture
//   first — `pre_warned_shards` counts them — and the defender's periodic
//   sweep re-diversifies TIGHTENED shards only (sessions AND network
//   identity), forcing the attacker back through endpoint discovery.
//
// Sweeping the shard count at fixed total lanes yields the
// attacker-cost-vs-shards curve archived as BENCH_network_diversity.json
// (schema network_diversity/v1): cost must rise STRICTLY with shard count.
// Everything runs on manual time with a fixed seed, stealing off, and
// synchronous probes, so a given config replays byte-identically.
#ifndef NV_EXPERIMENTS_NETWORK_DIVERSITY_H
#define NV_EXPERIMENTS_NETWORK_DIVERSITY_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/adaptive.h"
#include "fleet/ops.h"
#include "obs/trace.h"

namespace nv::experiments {

struct ClusterExperimentConfig {
  /// Shard count K. `total_lanes` must divide evenly across it: the sweep
  /// holds aggregate capacity fixed while K varies, so the curves isolate
  /// the sharding effect.
  unsigned shards = 2;
  unsigned total_lanes = 8;
  /// Per-shard session recipe (same contract as the population experiment:
  /// uid-xor rides along so the composed space never exhausts mid-run).
  std::vector<std::string> variations = {"address-partitioning", "uid-xor"};
  /// The variation whose per-shard keyspace S the payload probes guess at;
  /// must be installed and carry 1..20 realizable bits.
  std::string probed_variation = "address-partitioning";
  /// Each shard's drawn network identity. The endpoint-discovery lump is
  /// 2^(composed_bits - 1) probes; empty = static network, discovery free.
  std::vector<std::string> network_variations = {"port-hopping"};
  std::uint64_t seed = 0xC0FFEE;
  std::chrono::milliseconds tick{10};
  unsigned ticks = 400;
  unsigned probes_per_tick = 4;
  /// Global unique-key budget split across shards (FleetCluster budgeting);
  /// generous enough that no shard exhausts mid-run at the default grid.
  std::uint64_t global_key_budget = 65'536;
  /// Campaign baseline: small threshold, short window, rotation NOT armed —
  /// re-diversification is the DRIVER's lever (below), so runs at different
  /// K stay structurally comparable.
  fleet::CampaignPolicy campaign{/*threshold=*/3U,
                                 /*window=*/std::chrono::milliseconds(2'000),
                                 /*rotate_fleet_on_alert=*/false};
  /// Adaptive posture: tighten on (local or gossiped) alerts, never rotate
  /// on its own (arm_rotation off, no tightened interval), and a quiet
  /// period longer than the whole run so tightening is one-way. The posture
  /// bit is what the driver keys its sweep on.
  fleet::AdaptivePolicyConfig adaptive = [] {
    fleet::AdaptivePolicyConfig cfg;
    cfg.enabled = true;
    cfg.arm_rotation = false;
    cfg.tightened_rotation_interval = std::chrono::milliseconds(0);
    cfg.quiet_period = std::chrono::milliseconds(60'000);
    return cfg;
  }();
  /// Every this many ticks the defender sweeps the cluster and re-diversifies
  /// every TIGHTENED shard: rotate_fleet() plus a network-identity redraw.
  unsigned defender_rotate_ticks = 17;
  /// Keep every k-th tick in the emitted timeline (JSON size bound).
  unsigned timeline_stride = 8;
  /// Optional structured tracing: threaded into the FleetCluster (and from
  /// there every shard, factory, and rendezvous path) so a bench run can
  /// export a Chrome/Perfetto trace of the whole campaign. Null = untraced;
  /// tracing does not perturb the experiment's deterministic numbers.
  std::shared_ptr<obs::TraceRecorder> trace;
};

struct ClusterTimelinePoint {
  std::uint64_t t_ms = 0;
  double compromised_fraction = 0.0;   // held lanes / total lanes
  std::uint64_t probes = 0;            // cumulative payload + endpoint spend
  std::uint64_t endpoint_discoveries = 0;
  std::uint64_t rotations = 0;         // cumulative session rotations, all shards
};

/// One grid point: a full run at one shard count.
struct ClusterCurve {
  std::uint64_t shards = 0;
  std::uint64_t lanes_per_shard = 0;
  // Payload keyspace (per shard — registry-reported, real entropy units).
  std::string probed_variation;
  double payload_bits = 0.0;
  std::uint64_t payload_keys = 0;  // 2^payload_bits == the realized S
  // Network keyspace (per shard, composed over network_variations).
  double network_bits = 0.0;
  std::uint64_t endpoint_discovery_cost = 0;  // 2^(network_bits - 1), 0 if static
  // Attacker ledger.
  std::uint64_t endpoint_discoveries = 0;
  std::uint64_t endpoint_probes = 0;  // discoveries x discovery cost
  std::uint64_t payload_probes = 0;
  std::uint64_t probes = 0;  // endpoint_probes + payload_probes
  std::uint64_t silent_compromises = 0;
  std::uint64_t compromised_lane_ticks = 0;
  double mean_compromised_fraction = 0.0;
  /// THE headline: probes paid per compromised lane-tick held. Must rise
  /// strictly with `shards` at fixed total lanes + total payload keyspace.
  double attacker_cost = 0.0;
  // Defender ledger (summed across shards / read off the ClusterSnapshot).
  std::uint64_t quarantines = 0;
  std::uint64_t rotations = 0;
  std::uint64_t network_rotations = 0;
  std::uint64_t campaign_alerts = 0;
  std::uint64_t remote_campaigns = 0;
  std::uint64_t policy_tightened = 0;
  /// Shards whose posture tightened BEFORE their own first quarantine — the
  /// gossip pre-warning effect. 0 when shards == 1 (nobody to warn).
  std::uint64_t pre_warned_shards = 0;
  std::uint64_t gossip_published = 0;
  std::uint64_t gossip_delivered = 0;
  std::uint64_t keys_total = 0;
  std::uint64_t keys_remaining = 0;
  std::vector<ClusterTimelinePoint> timeline;
};

/// Run one grid point. Deterministic for a fixed config.
[[nodiscard]] ClusterCurve run_cluster_experiment(const ClusterExperimentConfig& config);

/// Serialize a shard-count sweep into the BENCH_network_diversity.json
/// document, schema "network_diversity/v1". `grid` must be ordered by
/// ascending shard count; tools/check_network_diversity.py verifies the
/// schema, the internal ledger arithmetic, and the strict attacker-cost
/// monotonicity in shard count on exactly this document.
[[nodiscard]] std::string cluster_curves_to_json(const ClusterExperimentConfig& base,
                                                 const std::vector<ClusterCurve>& grid,
                                                 bool quick);

}  // namespace nv::experiments

#endif  // NV_EXPERIMENTS_NETWORK_DIVERSITY_H

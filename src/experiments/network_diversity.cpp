#include "experiments/network_diversity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "cluster/cluster.h"
#include "util/strings.h"
#include "variants/registry.h"

namespace nv::experiments {

namespace {

/// Every failed probe throws this exact message, so all probe quarantines —
/// on every shard — share ONE AlarmSignature: the cross-shard campaign the
/// gossip loop is meant to propagate.
constexpr const char* kProbeSignature = "cluster probe: diversity guess rejected";

/// Same settling contract as the population experiment: rotations resolve on
/// worker threads; a run that cannot settle cannot stay deterministic.
void await_rotations(const fleet::VariantFleet& fleet, std::uint64_t target) {
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    const auto snap = fleet.telemetry().snapshot();
    if (snap.sessions_rotated + snap.rotations_failed >= target) return;
    if (std::chrono::steady_clock::now() > give_up) {
      throw std::runtime_error("cluster experiment: rotations failed to settle");
    }
    std::this_thread::yield();
  }
}

}  // namespace

ClusterCurve run_cluster_experiment(const ClusterExperimentConfig& config) {
  if (config.shards == 0 || config.ticks == 0 || config.defender_rotate_ticks == 0) {
    throw std::invalid_argument("cluster experiment needs shards, ticks, and a sweep period");
  }
  if (config.total_lanes == 0 || config.total_lanes % config.shards != 0) {
    throw std::invalid_argument(
        "total_lanes must split evenly across shards (the sweep holds capacity fixed)");
  }
  if (config.tick <= std::chrono::milliseconds::zero()) {
    throw std::invalid_argument("tick must be positive");
  }
  if (std::find(config.variations.begin(), config.variations.end(),
                config.probed_variation) == config.variations.end()) {
    throw std::invalid_argument("probed_variation must be one of the installed variations");
  }

  // Payload keyspace S: the probed variation's REAL registry-reported
  // entropy, realized by the deterministic every-S-th-probe schedule.
  constexpr unsigned kNVariants = 2;
  auto probed = variants::builtin_registry().make(config.probed_variation);
  if (!probed) {
    throw std::invalid_argument("cluster experiment: " + probed.error());
  }
  const double payload_bits = (*probed)->keyspace_bits(kNVariants);
  const double payload_keys_real = std::exp2(payload_bits);
  if (payload_keys_real < 2.0 || payload_keys_real > static_cast<double>(1U << 20)) {
    throw std::invalid_argument(util::format(
        "probed variation \"%s\" has a keyspace of %.1f bits; the deterministic "
        "attacker needs 1..20 bits to realize its expected cost",
        config.probed_variation.c_str(), payload_bits));
  }
  const unsigned keyspace = static_cast<unsigned>(std::llround(payload_keys_real));

  const unsigned lanes_per_shard = config.total_lanes / config.shards;

  fleet::ManualClock clock;
  cluster::ClusterConfig cc;
  cc.shards = config.shards;
  cc.shard.spec.n_variants = kNVariants;
  cc.shard.spec.variations = config.variations;
  cc.shard.pool_size = lanes_per_shard;
  cc.shard.queue_capacity = std::max<std::size_t>(8, lanes_per_shard * 4);
  cc.shard.seed = config.seed;
  // Strict per-shard lane affinity: stealing off + synchronous probes means
  // round-robin admission fully determines which lane every probe burns.
  cc.shard.work_stealing = false;
  cc.shard.campaign = config.campaign;
  cc.shard.adaptive = config.adaptive;
  cc.shard.clock = clock.fn();
  cc.network_variations = config.network_variations;
  cc.global_key_budget = config.global_key_budget;
  // The cluster's own housekeeping replaces the hand-rolled driver loop:
  // tick() pumps gossip and, every defender_rotate_ticks ticks' worth of
  // manual time, sweeps the tightened shards (sessions + network identity).
  cc.sweep_interval = config.tick * config.defender_rotate_ticks;
  cc.trace = config.trace;
  cluster::FleetCluster cluster(cc);

  // Endpoint-discovery lump: expected scan cost E/2 over the composed
  // network keyspace. Read off the cluster (the factory's composed bits).
  const double network_bits = cluster.snapshot().network_bits;
  if (network_bits > 62.0) {
    throw std::invalid_argument(
        "network keyspace too large for an integral endpoint-discovery lump");
  }
  const std::uint64_t discovery_cost =
      network_bits > 0.0
          ? static_cast<std::uint64_t>(std::llround(std::exp2(network_bits - 1.0)))
          : 0;

  ClusterCurve curve;
  curve.shards = config.shards;
  curve.lanes_per_shard = lanes_per_shard;
  curve.probed_variation = config.probed_variation;
  curve.payload_bits = payload_bits;
  curve.payload_keys = keyspace;
  curve.network_bits = network_bits;
  curve.endpoint_discovery_cost = discovery_cost;

  const unsigned total = config.total_lanes;
  const auto benign_job = [](core::NVariantSystem&) -> core::RunReport {
    core::RunReport report;
    report.completed = true;
    return report;
  };

  // Attacker state, all per shard: held lanes, last-seen fingerprints, the
  // round-robin admission mirror, the payload probe serial (draw spaces are
  // independent, so the S-schedule restarts per shard), and the network
  // identity it last paid to discover.
  std::vector<std::vector<bool>> compromised(config.shards,
                                             std::vector<bool>(lanes_per_shard, false));
  std::vector<std::vector<std::string>> fingerprints;
  fingerprints.reserve(config.shards);
  for (unsigned s = 0; s < config.shards; ++s) {
    fingerprints.push_back(cluster.shard(s).live_fingerprints());
  }
  std::vector<std::uint64_t> probe_serial(config.shards, 0);
  std::vector<unsigned> rr(config.shards, 0);
  std::vector<std::string> known_endpoint(config.shards);  // "" = never scanned

  // Gossip pre-warning classification: a shard is pre-warned when its
  // posture tightened (locally or via gossip) while it had ZERO quarantines.
  // Each shard classifies exactly once, at its first tighten-or-quarantine.
  std::vector<bool> classified(config.shards, false);

  const auto held_count = [&] {
    std::uint64_t held = 0;
    for (const auto& shard : compromised) {
      held += static_cast<std::uint64_t>(std::count(shard.begin(), shard.end(), true));
    }
    return held;
  };

  const auto reconcile = [&](unsigned s) {
    const auto live = cluster.shard(s).live_fingerprints();
    for (unsigned lane = 0; lane < lanes_per_shard; ++lane) {
      if (live[lane] != fingerprints[s][lane]) compromised[s][lane] = false;
    }
    fingerprints[s] = live;
  };

  const auto classify = [&] {
    for (unsigned s = 0; s < config.shards; ++s) {
      if (classified[s]) continue;
      const auto snap = cluster.shard(s).telemetry().snapshot();
      const bool tightened = snap.policy_tightened + snap.remote_campaigns > 0;
      if (tightened && snap.sessions_quarantined == 0) {
        classified[s] = true;
        ++curve.pre_warned_shards;
      } else if (snap.sessions_quarantined > 0) {
        classified[s] = true;  // probed before any warning reached it
      }
    }
  };

  unsigned attacker_shard = 0;
  std::uint64_t elapsed_ms = 0;

  for (unsigned t = 1; t <= config.ticks; ++t) {
    clock.advance(config.tick);
    elapsed_ms += static_cast<std::uint64_t>(config.tick.count());

    // Cluster housekeeping: pump due gossip, enforce rotation deadlines, and
    // — when the sweep interval elapsed — re-diversify every TIGHTENED shard
    // (sessions and network identity) so held footholds die and the attacker
    // must pay endpoint discovery again. The sweep only FLAGS session
    // rotations; settle each swept shard before the attacker reads
    // fingerprints, exactly as the hand-rolled loop did.
    const cluster::TickReport housekeeping = cluster.tick();
    for (const auto& sweep : housekeeping.sweeps) {
      await_rotations(cluster.shard(sweep.shard),
                      sweep.rotations_before + sweep.lanes_flagged);
      reconcile(sweep.shard);
    }

    // Attacker: probe while any lane anywhere remains uncontrolled.
    for (unsigned p = 0; p < config.probes_per_tick; ++p) {
      if (held_count() == total) break;  // full cluster control is free to keep
      // Advance past fully-controlled shards (the per-compromise advance
      // below also lands here when the next shard is already owned).
      while (std::find(compromised[attacker_shard].begin(), compromised[attacker_shard].end(),
                       false) == compromised[attacker_shard].end()) {
        attacker_shard = (attacker_shard + 1) % config.shards;
      }
      const unsigned s = attacker_shard;

      // First contact with this shard's CURRENT network epoch: pay the scan.
      if (discovery_cost > 0) {
        const std::string endpoint = cluster.network_fingerprint(s);
        if (known_endpoint[s] != endpoint) {
          known_endpoint[s] = endpoint;
          ++curve.endpoint_discoveries;
          curve.endpoint_probes += discovery_cost;
        }
      }

      // Benign filler walks the admission cursor past owned sessions.
      while (compromised[s][rr[s]]) {
        (void)cluster.submit_to(s, benign_job).get();
        rr[s] = (rr[s] + 1) % lanes_per_shard;
      }
      const unsigned target = rr[s];
      rr[s] = (rr[s] + 1) % lanes_per_shard;

      ++curve.payload_probes;
      ++probe_serial[s];
      if (probe_serial[s] % keyspace == 0) {
        // Lucky guess: clean traffic, silent foothold — and the attacker
        // moves on to the NEXT shard, where it must start over against an
        // independent draw space (and possibly an undiscovered endpoint).
        (void)cluster.submit_to(s, benign_job).get();
        compromised[s][target] = true;
        ++curve.silent_compromises;
        attacker_shard = (attacker_shard + 1) % config.shards;
      } else {
        // Wrong guess: a real divergence quarantine + respawn on shard s.
        // The alert (if this crossed the threshold) publishes on the gossip
        // bus and — at delay 0 — tightens every other shard before .get()
        // returns.
        (void)cluster
            .submit_to(s,
                       [](core::NVariantSystem&) -> core::RunReport {
                         throw std::runtime_error(kProbeSignature);
                       })
            .get();
        reconcile(s);
      }
      classify();
    }

    const std::uint64_t held = held_count();
    curve.compromised_lane_ticks += held;
    if (t % std::max(1U, config.timeline_stride) == 0 || t == config.ticks) {
      const auto snap = cluster.snapshot();
      std::uint64_t rotations = 0;
      for (const auto& view : snap.shard_views) rotations += view.fleet.sessions_rotated;
      ClusterTimelinePoint point;
      point.t_ms = elapsed_ms;
      point.compromised_fraction = static_cast<double>(held) / total;
      point.probes = curve.payload_probes + curve.endpoint_probes;
      point.endpoint_discoveries = curve.endpoint_discoveries;
      point.rotations = rotations;
      curve.timeline.push_back(point);
    }
  }

  const auto snap = cluster.snapshot();
  for (const auto& view : snap.shard_views) {
    curve.quarantines += view.fleet.sessions_quarantined;
    curve.rotations += view.fleet.sessions_rotated;
    curve.campaign_alerts += view.fleet.campaign_alerts;
    curve.policy_tightened += view.fleet.policy_tightened;
  }
  curve.remote_campaigns = snap.remote_campaigns_applied;
  curve.network_rotations = snap.network_rotations;
  curve.gossip_published = snap.gossip_published;
  curve.gossip_delivered = snap.gossip_delivered;
  curve.keys_total = snap.keys_total;
  curve.keys_remaining = snap.keys_remaining;
  curve.probes = curve.payload_probes + curve.endpoint_probes;
  curve.mean_compromised_fraction =
      static_cast<double>(curve.compromised_lane_ticks) /
      (static_cast<double>(config.ticks) * total);
  curve.attacker_cost =
      static_cast<double>(curve.probes) /
      static_cast<double>(std::max<std::uint64_t>(1, curve.compromised_lane_ticks));
  cluster.shutdown();
  return curve;
}

namespace {

std::string curve_to_json(const ClusterCurve& curve, const std::string& indent) {
  std::string json = indent + "{\n";
  const std::string in = indent + "  ";
  const auto u64 = [&](const char* key, std::uint64_t value) {
    return in + util::format("\"%s\": %llu,\n", key, static_cast<unsigned long long>(value));
  };
  json += u64("shards", curve.shards);
  json += u64("lanes_per_shard", curve.lanes_per_shard);
  json += in + util::format("\"probed_variation\": \"%s\",\n", curve.probed_variation.c_str());
  json += in + util::format("\"payload_bits\": %.6f,\n", curve.payload_bits);
  json += u64("payload_keys", curve.payload_keys);
  json += in + util::format("\"network_bits\": %.6f,\n", curve.network_bits);
  json += u64("endpoint_discovery_cost", curve.endpoint_discovery_cost);
  json += u64("endpoint_discoveries", curve.endpoint_discoveries);
  json += u64("endpoint_probes", curve.endpoint_probes);
  json += u64("payload_probes", curve.payload_probes);
  json += u64("probes", curve.probes);
  json += u64("silent_compromises", curve.silent_compromises);
  json += u64("compromised_lane_ticks", curve.compromised_lane_ticks);
  json += in + util::format("\"mean_compromised_fraction\": %.6f,\n",
                            curve.mean_compromised_fraction);
  json += in + util::format("\"attacker_cost\": %.6f,\n", curve.attacker_cost);
  json += u64("quarantines", curve.quarantines);
  json += u64("rotations", curve.rotations);
  json += u64("network_rotations", curve.network_rotations);
  json += u64("campaign_alerts", curve.campaign_alerts);
  json += u64("remote_campaigns", curve.remote_campaigns);
  json += u64("policy_tightened", curve.policy_tightened);
  json += u64("pre_warned_shards", curve.pre_warned_shards);
  json += u64("gossip_published", curve.gossip_published);
  json += u64("gossip_delivered", curve.gossip_delivered);
  json += u64("keys_total", curve.keys_total);
  json += u64("keys_remaining", curve.keys_remaining);
  json += in + "\"timeline\": [";
  for (std::size_t i = 0; i < curve.timeline.size(); ++i) {
    const ClusterTimelinePoint& point = curve.timeline[i];
    json += i == 0 ? "\n" : ",\n";
    json += in + "  " +
            util::format("{\"t_ms\": %llu, \"compromised_fraction\": %.4f, "
                         "\"probes\": %llu, \"endpoint_discoveries\": %llu, "
                         "\"rotations\": %llu}",
                         static_cast<unsigned long long>(point.t_ms),
                         point.compromised_fraction,
                         static_cast<unsigned long long>(point.probes),
                         static_cast<unsigned long long>(point.endpoint_discoveries),
                         static_cast<unsigned long long>(point.rotations));
  }
  json += curve.timeline.empty() ? "]\n" : "\n" + in + "]\n";
  json += indent + "}";
  return json;
}

}  // namespace

std::string cluster_curves_to_json(const ClusterExperimentConfig& base,
                                   const std::vector<ClusterCurve>& grid, bool quick) {
  std::string json = "{\n";
  json += "  \"schema\": \"network_diversity/v1\",\n";
  json += util::format("  \"quick\": %s,\n", quick ? "true" : "false");
  json += "  \"config\": {\n";
  json += util::format("    \"total_lanes\": %u,\n", base.total_lanes);
  json += "    \"variations\": [";
  for (std::size_t i = 0; i < base.variations.size(); ++i) {
    json += util::format("%s\"%s\"", i == 0 ? "" : ", ", base.variations[i].c_str());
  }
  json += "],\n";
  json += util::format("    \"probed_variation\": \"%s\",\n", base.probed_variation.c_str());
  json += "    \"network_variations\": [";
  for (std::size_t i = 0; i < base.network_variations.size(); ++i) {
    json += util::format("%s\"%s\"", i == 0 ? "" : ", ", base.network_variations[i].c_str());
  }
  json += "],\n";
  json += util::format("    \"probes_per_tick\": %u,\n", base.probes_per_tick);
  json += util::format("    \"tick_ms\": %lld,\n", static_cast<long long>(base.tick.count()));
  json += util::format("    \"ticks\": %u,\n", base.ticks);
  json += util::format("    \"defender_rotate_ticks\": %u,\n", base.defender_rotate_ticks);
  json += util::format("    \"global_key_budget\": %llu,\n",
                       static_cast<unsigned long long>(base.global_key_budget));
  json += util::format("    \"seed\": \"0x%llX\"\n",
                       static_cast<unsigned long long>(base.seed));
  json += "  },\n";
  json += "  \"grid\": [";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    json += i == 0 ? "\n" : ",\n";
    json += curve_to_json(grid[i], "    ");
  }
  json += grid.empty() ? "]\n" : "\n  ]\n";
  json += "}\n";
  return json;
}

}  // namespace nv::experiments

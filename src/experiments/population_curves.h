// Population-scale attacker-cost experiments (Chen et al.'s "quantifying
// cybersecurity effectiveness of software diversity", applied to this
// paper's data-diversity fleet): how much does an attacker pay, in probes,
// per unit of fleet control, as the defender re-diversifies faster?
//
// The setup is a REAL VariantFleet on a ManualClock — every probe is a real
// job that really quarantines a session, feeds the real CampaignCorrelator,
// and really respawns a re-diversified replacement — driven by a scripted,
// fully deterministic attacker:
//
//   - the fleet's reexpression space has model size S (AttackerModel::
//     keyspace). Under detect-and-respawn, probing is a memoryless guessing
//     game (the paper's §3 argument: a failed guess burns the session, so
//     the attacker restarts against a fresh draw) with expected cost S per
//     compromise. The scripted attacker walks that expectation exactly:
//     every S-th probe silently compromises its target, every other probe
//     raises a real divergence quarantine.
//   - a silent compromise HOLDS (the monitor saw nothing) until that lane's
//     session is re-diversified out from under it — by the defender's
//     periodic rotate_fleet() or by campaign-driven rotation escalation.
//     The attacker mirrors the fleet's round-robin admission (stealing off,
//     probes synchronous), weaving benign filler requests past the sessions
//     it already controls so it never burns its own footholds.
//   - the defender's lever is the re-diversification interval; sweeping it
//     yields the attacker-cost-vs-rate curve, and sampling compromised
//     lanes per tick yields the compromised-fraction-vs-time curve.
//
// Everything runs on manual time with a fixed seed and work stealing off
// (strict round-robin admission), so a given config produces byte-identical
// curves on every run — the property the CI perf-trajectory diffing relies
// on.
#ifndef NV_EXPERIMENTS_POPULATION_CURVES_H
#define NV_EXPERIMENTS_POPULATION_CURVES_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/adaptive.h"
#include "fleet/ops.h"

namespace nv::experiments {

/// The scripted attacker's parameters.
struct AttackerModel {
  /// The installed variation whose parameterization the probe payload must
  /// guess. The reexpression-space size S is NOT modeled analytically: it is
  /// the registry-reported 2^keyspace_bits() of this variation — real
  /// entropy units (address-partitioning: its genuine 16-stride space). The
  /// expected probing cost under detect-and-respawn is S per compromise; the
  /// script realizes the expectation deterministically (every S-th probe
  /// succeeds). Must name a member of PopulationExperimentConfig::variations
  /// whose keyspace is small enough to realize (2 <= S <= 2^20).
  std::string probed_variation = "address-partitioning";
  /// Probing rate: probes per simulation tick (attacker idles once every
  /// live session is compromised — full control costs nothing to keep).
  unsigned probes_per_tick = 1;
};

struct PopulationExperimentConfig {
  unsigned pool_size = 4;
  /// The fleet's DiversitySuite recipe. uid-xor rides along so the COMPOSED
  /// per-session space (keyspace_bits sum ~34 bits) never exhausts the
  /// SessionFactory during a probing run, while the attacker still pays only
  /// for the variation it probes.
  std::vector<std::string> variations = {"address-partitioning", "uid-xor"};
  std::uint64_t seed = 0xC0FFEE;
  /// Simulated duration: `ticks` steps of `tick` manual-clock time each.
  std::chrono::milliseconds tick{10};
  unsigned ticks = 400;
  /// Defender's re-diversification interval: rotate_fleet() every this much
  /// manual time. Zero = never (the static fleet the paper's single-system
  /// view ends at).
  std::chrono::milliseconds rediversify_interval{0};
  AttackerModel attacker;
  /// Campaign correlation baseline. The default threshold is effectively
  /// "off" so the primary grid isolates the periodic-rotation lever; the
  /// adaptive comparison lowers it and enables `adaptive`.
  fleet::CampaignPolicy campaign{/*threshold=*/1'000'000U,
                                 /*window=*/std::chrono::milliseconds(10'000),
                                 /*rotate_fleet_on_alert=*/false};
  bool adaptive = false;
  fleet::AdaptivePolicyConfig adaptive_config;
  /// Keep every k-th tick in the emitted timeline (JSON size bound).
  unsigned timeline_stride = 4;
};

struct TimelinePoint {
  std::uint64_t t_ms = 0;
  double compromised_fraction = 0.0;
  std::uint64_t probes = 0;     // cumulative attacker spend
  std::uint64_t rotations = 0;  // cumulative defender re-diversifications
};

/// One grid point: a full run at one re-diversification rate.
struct PopulationCurve {
  std::uint64_t rediversify_interval_ms = 0;  // 0 = never
  double rediversify_rate_hz = 0.0;           // 0 for never
  // The probed variation's REAL keyspace (registry-reported), so the curve
  // carries per-variation entropy units instead of a modeling assumption.
  std::string probed_variation;
  double keyspace_bits = 0.0;
  std::uint64_t keyspace_keys = 0;  // 2^keyspace_bits == the realized S
  // Attacker ledger.
  std::uint64_t probes = 0;
  std::uint64_t silent_compromises = 0;
  /// Attacker value: sum over ticks of compromised-lane count (lane-ticks).
  std::uint64_t compromised_lane_ticks = 0;
  double mean_compromised_fraction = 0.0;
  /// THE cost curve: probes paid per compromised lane-tick held. Rises
  /// monotonically with the re-diversification rate.
  double attacker_cost = 0.0;
  // Defender ledger (from FleetTelemetry).
  std::uint64_t quarantines = 0;
  std::uint64_t rotations = 0;
  std::uint64_t rotations_failed = 0;
  std::uint64_t campaign_alerts = 0;
  std::uint64_t policy_tightened = 0;
  std::uint64_t policy_decayed = 0;
  std::vector<TimelinePoint> timeline;
};

/// Run one grid point. Deterministic for a fixed config.
[[nodiscard]] PopulationCurve run_population_experiment(
    const PopulationExperimentConfig& config);

/// Serialize a sweep (plus the optional adaptive-vs-static comparison pair
/// and the variation A/B grid) into the BENCH_population_curves.json
/// document, schema "population_curves/v2". `grid` must be ordered by
/// ascending re-diversification rate; `variation_grid` (runs differing only
/// in the probed variation, at one fixed rotation rate) by ascending
/// keyspace_bits. tools/check_population_curves.py verifies the schema, the
/// attacker-cost monotonicity in rate, and the attacker-cost monotonicity in
/// entropy on exactly this document.
[[nodiscard]] std::string curves_to_json(const PopulationExperimentConfig& base,
                                         const std::vector<PopulationCurve>& grid,
                                         const std::vector<PopulationCurve>& comparison,
                                         const std::vector<PopulationCurve>& variation_grid,
                                         bool quick);

}  // namespace nv::experiments

#endif  // NV_EXPERIMENTS_POPULATION_CURVES_H

// GuestContext API coverage on the plain kernel (files, creds, network,
// libc-style helpers, UidOps modes).
#include <gtest/gtest.h>

#include <thread>

#include "guest/runners.h"
#include "guest/uid_ops.h"
#include "test_helpers.h"

namespace nv::guest {
namespace {

struct GuestFixture : ::testing::Test {
  vfs::FileSystem fs;
  vkernel::SocketHub hub;
  vkernel::KernelContext ctx{fs, hub};

  void SetUp() override {
    const auto root = os::Credentials::root();
    ASSERT_TRUE(fs.mkdir_p("/etc", root));
    ASSERT_TRUE(fs.mkdir_p("/data", root));
    ASSERT_TRUE(fs.write_file("/etc/passwd",
                              "root:x:0:0:root:/root:/bin/sh\n"
                              "www:x:33:33:w:/var/www:/bin/false\n",
                              root));
    ASSERT_TRUE(fs.write_file("/etc/group", "root:x:0:\nwww:x:33:alice\n", root));
    ASSERT_TRUE(fs.write_file("/data/hello.txt", "hello guest", root));
  }

  PlainRunResult run(testing::LambdaGuest::Fn fn) {
    testing::LambdaGuest guest(std::move(fn));
    return run_plain(ctx, guest);
  }
};

TEST_F(GuestFixture, FileRoundTrip) {
  const auto result = run([](GuestContext& g) {
    auto fd = g.open("/data/out.txt", os::OpenFlags::kWrite | os::OpenFlags::kCreate);
    ASSERT_TRUE(fd.has_value());
    ASSERT_TRUE(g.write(*fd, "written by guest").has_value());
    EXPECT_EQ(g.close(*fd), os::Errno::kOk);
    auto content = g.read_file("/data/out.txt");
    ASSERT_TRUE(content.has_value());
    EXPECT_EQ(*content, "written by guest");
    g.exit(0);
  });
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.exit_code, 0);
}

TEST_F(GuestFixture, ReadFileConcatenatesChunks) {
  std::string big(10000, 'x');
  ASSERT_TRUE(fs.write_file("/data/big", big, os::Credentials::root()));
  const auto result = run([&](GuestContext& g) {
    auto content = g.read_file("/data/big");
    ASSERT_TRUE(content.has_value());
    EXPECT_EQ(content->size(), 10000u);
    g.exit(0);
  });
  EXPECT_TRUE(result.completed);
}

TEST_F(GuestFixture, StatSeekUnlinkMkdir) {
  const auto result = run([](GuestContext& g) {
    EXPECT_EQ(g.mkdir("/data/sub"), os::Errno::kOk);
    auto st = g.stat("/data/hello.txt");
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->size, 11u);
    auto fd = g.open("/data/hello.txt", os::OpenFlags::kRead);
    ASSERT_TRUE(fd.has_value());
    ASSERT_TRUE(g.seek(*fd, 6).has_value());
    EXPECT_EQ(g.read(*fd, 100).value(), "guest");
    (void)g.close(*fd);
    EXPECT_EQ(g.unlink("/data/hello.txt"), os::Errno::kOk);
    EXPECT_FALSE(g.stat("/data/hello.txt").has_value());
    g.exit(0);
  });
  EXPECT_TRUE(result.completed);
}

TEST_F(GuestFixture, CredentialHelpers) {
  const auto result = run([](GuestContext& g) {
    EXPECT_EQ(g.getuid(), 0u);
    EXPECT_EQ(g.setgroups({33}), os::Errno::kOk);
    EXPECT_EQ(g.setegid(33), os::Errno::kOk);
    EXPECT_EQ(g.seteuid(33), os::Errno::kOk);
    EXPECT_EQ(g.geteuid(), 33u);
    EXPECT_EQ(g.getegid(), 33u);
    EXPECT_EQ(g.getuid(), 0u);  // real uid unchanged
    g.exit(0);
  });
  EXPECT_TRUE(result.completed);
}

TEST_F(GuestFixture, GetpwnamAndGetgrnam) {
  const auto result = run([](GuestContext& g) {
    const auto www = g.getpwnam("www");
    ASSERT_TRUE(www.has_value());
    EXPECT_EQ(www->uid, 33u);
    EXPECT_EQ(www->home, "/var/www");
    EXPECT_FALSE(g.getpwnam("nobody-here").has_value());
    const auto group = g.getgrnam("www");
    ASSERT_TRUE(group.has_value());
    EXPECT_EQ(group->gid, 33u);
    EXPECT_EQ(group->members, (std::vector<std::string>{"alice"}));
    g.exit(0);
  });
  EXPECT_TRUE(result.completed);
}

TEST_F(GuestFixture, NetworkEcho) {
  testing::LambdaGuest guest([](GuestContext& g) {
    auto sock = g.socket();
    ASSERT_TRUE(sock.has_value());
    ASSERT_EQ(g.bind(*sock, 7777), os::Errno::kOk);
    ASSERT_EQ(g.listen(*sock), os::Errno::kOk);
    auto conn = g.accept(*sock);
    ASSERT_TRUE(conn.has_value());
    auto data = g.read(*conn, 100);
    ASSERT_TRUE(data.has_value());
    ASSERT_TRUE(g.write(*conn, "echo:" + *data).has_value());
    (void)g.close(*conn);
    g.exit(0);
  });
  PlainRunResult run_result;
  std::thread server([&] { run_result = run_plain(ctx, guest); });
  ASSERT_TRUE(testing::wait_for_bind(hub, 7777));
  auto conn = hub.connect(7777);
  ASSERT_TRUE(conn.has_value());
  ASSERT_TRUE(conn->send("ping").has_value());
  EXPECT_EQ(conn->recv(100).value(), "echo:ping");
  server.join();
  EXPECT_TRUE(run_result.completed);
}

TEST_F(GuestFixture, ExitCodePropagates) {
  const auto result = run([](GuestContext& g) { g.exit(17); });
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.exit_code, 17);
}

TEST_F(GuestFixture, MemoryFaultReported) {
  const auto result = run([](GuestContext& g) {
    (void)g.memory().load_u8(0xDEADBEEF00ULL);
    g.exit(0);
  });
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.faulted);
  EXPECT_NE(result.fault_detail.find("unmapped"), std::string::npos);
}

TEST_F(GuestFixture, UidConstIsIdentityOnPlainBuild) {
  const auto result = run([](GuestContext& g) {
    EXPECT_EQ(g.uid_const(0), 0u);
    EXPECT_EQ(g.uid_const(1000), 1000u);
    g.exit(0);
  });
  EXPECT_TRUE(result.completed);
}

TEST_F(GuestFixture, UidOpsPlainAndCheckedAgreeOnPlainKernel) {
  const auto result = run([](GuestContext& g) {
    for (const auto mode :
         {UidOpsMode::kPlain, UidOpsMode::kSyscallChecked, UidOpsMode::kUserSpaceReversed}) {
      UidOps ops(g, mode);
      EXPECT_TRUE(ops.eq(5, 5)) << to_string(mode);
      EXPECT_TRUE(ops.neq(5, 6));
      EXPECT_TRUE(ops.lt(5, 6));
      EXPECT_TRUE(ops.leq(6, 6));
      EXPECT_TRUE(ops.gt(7, 6));
      EXPECT_TRUE(ops.geq(7, 7));
      EXPECT_TRUE(ops.is_root(0));
      EXPECT_FALSE(ops.is_root(1));
      EXPECT_EQ(ops.check_value(42), 42u);
      EXPECT_TRUE(ops.check_cond(true));
    }
    g.exit(0);
  });
  EXPECT_TRUE(result.completed);
}

TEST_F(GuestFixture, PermissionDeniedAfterDrop) {
  ASSERT_TRUE(fs.write_file("/data/secret", "root only", os::Credentials::root(), 0600));
  const auto result = run([](GuestContext& g) {
    ASSERT_TRUE(g.read_file("/data/secret").has_value());  // still root
    ASSERT_EQ(g.seteuid(33), os::Errno::kOk);
    auto denied = g.read_file("/data/secret");
    ASSERT_FALSE(denied.has_value());
    EXPECT_EQ(denied.error(), os::Errno::kEACCES);
    g.exit(0);
  });
  EXPECT_TRUE(result.completed);
}

}  // namespace
}  // namespace nv::guest
